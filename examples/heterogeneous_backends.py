#!/usr/bin/env python3
"""Heterogeneous backends: JET over weighted consistent hashing.

Real pools mix server generations; the LB weights its dispatching so a
2x machine takes 2x the connections. JET composes with weighted
rendezvous hashing unchanged -- the safety test is the same one-line
score comparison -- and the tracking probability generalizes to
weight(H) / weight(W ∪ H).

Run:  python examples/heterogeneous_backends.py
"""

from repro import JETLoadBalancer, WeightedHRWHash
from repro.hashing.mix import splitmix64

# Three server generations: small (1x), medium (2x), large (4x).
FLEET = {
    **{f"gen1-{i}": 1.0 for i in range(6)},
    **{f"gen2-{i}": 2.0 for i in range(4)},
    **{f"gen3-{i}": 4.0 for i in range(2)},
}
STANDBY = {"standby-large": 4.0}


def main() -> None:
    ch = WeightedHRWHash(FLEET, STANDBY)
    lb = JETLoadBalancer(ch)

    keys, state = [], 11
    for _ in range(40_000):
        state = splitmix64(state)
        keys.append(state)
    placement = {k: lb.get_destination(k) for k in keys}

    total_weight = sum(FLEET.values())
    counts = {}
    for destination in placement.values():
        counts[destination] = counts.get(destination, 0) + 1

    print(f"{'server':>14} {'weight':>6} {'share':>8} {'expected':>9}")
    for name in sorted(FLEET, key=lambda n: (-FLEET[n], n))[:6]:
        share = counts.get(name, 0) / len(keys)
        print(f"{name:>14} {FLEET[name]:>6.1f} {share:>8.2%} "
              f"{FLEET[name] / total_weight:>9.2%}")

    tracked = lb.tracked_connections / len(keys)
    expected = 4.0 / (total_weight + 4.0)
    print(f"\ntracked: {tracked:.2%} (theory w(H)/w(W∪H) = {expected:.2%})")

    # The standby 4x machine comes online: PCC must hold.
    lb.add_working_server("standby-large")
    moved = sum(lb.get_destination(k) != d for k, d in placement.items())
    print(f"after adding the standby 4x server: {moved} connections moved (expect 0)")


if __name__ == "__main__":
    main()
