#!/usr/bin/env python3
"""Trace comparison: JET vs full CT over a datacenter-like packet trace.

Reproduces the Table 1 measurement loop at example scale: replay a
UNI1-like trace (heavy-tailed flow sizes) through JET and full CT over
table-based HRW and AnchorHash, plus a full-CT MaglevHash baseline, and
print the three paper metrics -- maximum oversubscription, tracked
connections, and dispatch rate.

Run:  python examples/trace_comparison.py [scale]
      (scale: trace scale fraction, default 0.02)
"""

import sys

from repro import make_full_ct, make_jet, replay, uni1_like
from repro.ch import rows_for

N_SERVERS = 50
HORIZON = 5


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    trace = uni1_like(scale=scale, seed=3)
    print(trace.describe())
    print()

    working = [f"backend-{i}" for i in range(N_SERVERS)]
    horizon = [f"standby-{i}" for i in range(HORIZON)]

    configurations = [
        ("table-HRW / full CT",
         make_full_ct("table", working, horizon, rows=rows_for(N_SERVERS))),
        ("table-HRW / JET",
         make_jet("table", working, horizon, rows=rows_for(N_SERVERS))),
        ("AnchorHash / full CT",
         make_full_ct("anchor", working, horizon, capacity=2 * (N_SERVERS + HORIZON))),
        ("AnchorHash / JET",
         make_jet("anchor", working, horizon, capacity=2 * (N_SERVERS + HORIZON))),
        ("MaglevHash / full CT", make_full_ct("maglev", working)),
    ]

    header = f"{'configuration':24} {'oversub':>8} {'tracked':>9} {'rate':>12}"
    print(header)
    print("-" * len(header))
    for label, balancer in configurations:
        result = replay(trace, balancer)
        print(
            f"{label:24} {result.max_oversubscription:8.3f} "
            f"{result.tracked_connections:9,} "
            f"{result.rate_pps / 1e6:9.3f} Mpps"
        )
    print()
    print(
        "Expect: JET rows track ~10% of the flows (|H|/(|W|+|H|)); "
        "oversubscription identical between JET and full CT per hash family."
    )


if __name__ == "__main__":
    main()
