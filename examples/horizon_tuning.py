#!/usr/bin/env python3
"""Horizon tuning: the memory-vs-flexibility tradeoff of Section 2.3.2.

Sweeps the horizon size in the event-driven simulator at a fixed backend
update rate and reports, per horizon:

- the peak CT occupancy (JET's memory bill, ~|H|/(|W|+|H|) of the flows);
- the number of *unanticipated* additions (servers that were evicted from
  a full horizon while down and returned unannounced);
- the PCC violations that result.

The Fig. 4 conclusion reproduces directly: "there is no need to fine-tune
the horizon size -- it is sufficient to make sure it is not too small."

Run:  python examples/horizon_tuning.py
"""

from repro.sim import LogNormal, SimulationConfig, run_simulation

BASE = SimulationConfig(
    duration_s=60.0,
    connection_rate=800.0,
    n_servers=120,
    update_rate_per_min=20.0,
    downtime_dist=LogNormal(median=8.0, sigma=0.8),
    ct_capacity=None,
    mode="jet",
    seed=11,
)


def main() -> None:
    print(
        f"backend={BASE.n_servers} servers, update rate="
        f"{BASE.update_rate_per_min:g}/min, ~{BASE.connection_rate:g} concurrent connections"
    )
    header = f"{'horizon':>7} {'peak CT':>8} {'CT share':>9} {'surprise adds':>14} {'PCC violations':>15}"
    print(header)
    print("-" * len(header))
    for horizon in (1, 2, 4, 8, 12, 24, 48):
        result = run_simulation(BASE.with_(horizon_size=horizon))
        share = result.peak_tracked / max(result.flows_started, 1)
        print(
            f"{horizon:>7} {result.peak_tracked:>8,} {share:>9.1%} "
            f"{result.surprise_additions:>14} {result.pcc_violations:>15}"
        )
    print()
    print(
        "Small horizons save memory but overflow under churn (surprise "
        "additions -> violations); past the safe point, growing the horizon "
        "only costs memory."
    )


if __name__ == "__main__":
    main()
