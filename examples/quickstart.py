#!/usr/bin/env python3
"""Quickstart: a JET load balancer in ~40 lines.

Builds a JET LB over AnchorHash with ten working servers and one standby
(horizon) server, dispatches client connections, then walks through the
paper's core lifecycle: only *unsafe* connections get tracked, a horizon
addition breaks nothing, and a removal only breaks the removed server's
own connections.

Run:  python examples/quickstart.py
"""

from repro import FiveTuple, make_jet

# Backend pool: ten working servers and one announced standby.
WORKING = [f"10.0.0.{i}:8080" for i in range(1, 11)]
STANDBY = ["10.0.1.1:8080"]


def main() -> None:
    lb = make_jet("anchor", working=WORKING, horizon=STANDBY)

    # Dispatch 5,000 client connections (distinct TCP 5-tuples to one VIP).
    connections = [
        FiveTuple.make(f"198.51.{i // 250}.{i % 250 + 1}", "203.0.113.10", 10_000 + i, 443)
        for i in range(5_000)
    ]
    first = {c.key64: lb.get_destination(c.key64) for c in connections}

    tracked = lb.tracked_connections
    print(f"dispatched {len(connections)} connections over {len(lb.working)} servers")
    print(f"tracked (unsafe) connections: {tracked} "
          f"(~{tracked / len(connections):.1%}; theory: |H|/(|W|+|H|) = "
          f"{len(STANDBY) / (len(WORKING) + len(STANDBY)):.1%})")

    # Scale out: admit the standby server. PCC must hold for every
    # connection -- the unsafe ones are served from the CT table.
    lb.add_working_server(STANDBY[0])
    moved = sum(lb.get_destination(k) != destination for k, destination in first.items())
    print(f"after adding {STANDBY[0]}: {moved} connections moved (expect 0)")

    # Scale in: remove a server. Only its own connections break
    # ("inevitably broken"); everyone else stays put.
    victim = WORKING[3]
    victims = sum(destination == victim for destination in first.values())
    lb.remove_working_server(victim)
    broken = sum(
        lb.get_destination(k) != destination for k, destination in first.items()
    )
    print(f"after removing {victim}: {broken} connections rerouted "
          f"(= its own {victims} connections)")
    assert broken == victims, "JET must not disturb other connections"


if __name__ == "__main__":
    main()
