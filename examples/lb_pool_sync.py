#!/usr/bin/env python3
"""LB pools behind ECMP: the Section 6.2 scenario, end to end.

A router hash-steers flows across a pool of LB instances, each with its
own connection-tracking table. Scaling the *LB pool* re-steers flows onto
instances that never saw them; connections whose CT entry disagreed with
the current hash result break -- for JET and full CT alike. With CT
synchronization both stay consistent, and JET's advantage becomes the
size of the state that must be synchronized.

Run:  python examples/lb_pool_sync.py
"""

from repro import AnchorHash, FullCTLoadBalancer, JETLoadBalancer, LBPool
from repro.hashing.mix import splitmix64

WORKERS = [f"backend-{i}" for i in range(40)]
STANDBY = [f"standby-{i}" for i in range(4)]


def scenario(label: str, factory, sync: bool) -> None:
    pool = LBPool(factory, size=4, sync=sync)

    # 20k live connections...
    keys, state = [], splitmix64(3)
    for _ in range(20_000):
        state = splitmix64(state)
        keys.append(state)
    pinned = {k: pool.get_destination(k) for k in keys}

    # ... a scale-out (horizon addition) pins the unsafe ones to CT ...
    pool.add_working_server(STANDBY[0])
    assert all(pool.get_destination(k) == d for k, d in pinned.items())

    # ... then the LB pool itself grows: ECMP re-steers most flows.
    pool.add_lb()
    broken = sum(pool.get_destination(k) != d for k, d in pinned.items())

    print(
        f"{label:>22}: sync={'on ' if sync else 'off'}  "
        f"broken={broken:5d}  synced entries={pool.synced_entries:7,}  "
        f"pool CT total={pool.tracked_connections:7,}"
    )


def main() -> None:
    def jet_factory():
        return JETLoadBalancer(AnchorHash(WORKERS, STANDBY, capacity=96))

    def full_factory():
        return FullCTLoadBalancer(AnchorHash(WORKERS, STANDBY, capacity=96))

    print(f"{len(WORKERS)} backends, horizon {len(STANDBY)}, pool of 4 LBs + 1 added\n")
    scenario("JET", jet_factory, sync=False)
    scenario("JET", jet_factory, sync=True)
    scenario("full CT", full_factory, sync=False)
    scenario("full CT", full_factory, sync=True)
    print(
        "\nUnsynced pools break re-steered connections whose CT entry "
        "disagreed with the hash (Section 6.2); with sync, JET replicates "
        "an order of magnitude less state."
    )


if __name__ == "__main__":
    main()
