#!/usr/bin/env python3
"""Consistent-hash showdown: the Section 5 CH tradeoffs, measured.

Compares the library's CH families head-to-head on the axes the paper
discusses when choosing a CH module for JET:

- balance (max oversubscription over random keys);
- disruption on a backend change (fraction of keys that move);
- lookup throughput (Python lookups/second);
- JET tracking fraction at a 10% horizon.

Run:  python examples/ch_showdown.py
"""

import time

from repro.ch import AnchorHash, HRWHash, MaglevHash, RingHash, TableHRWHash, rows_for
from repro.ch.properties import balance_counts, check_removal_disruption, sample_keys
from repro.analysis import max_oversubscription

N, H = 50, 5
KEYS = sample_keys(60_000, seed=99)


def build_all():
    working = [f"s{i}" for i in range(N)]
    horizon = [f"h{i}" for i in range(H)]
    return [
        ("HRW", HRWHash(working, horizon)),
        ("Ring(v=100)", RingHash(working, horizon, virtual_nodes=100)),
        ("Table-HRW", TableHRWHash(working, horizon, rows=rows_for(N))),
        ("AnchorHash", AnchorHash(working, horizon, capacity=2 * (N + H))),
        ("MaglevHash", MaglevHash(working)),
    ]


def main() -> None:
    header = (
        f"{'family':>12} {'oversub':>8} {'moved on -1':>12} "
        f"{'lookups/s':>11} {'JET tracked':>12}"
    )
    print(f"{N} working servers, horizon {H}, {len(KEYS):,} keys")
    print(header)
    print("-" * len(header))
    for name, ch in build_all():
        counts = balance_counts(ch, KEYS)
        oversub = max_oversubscription(counts)

        started = time.perf_counter()
        for key in KEYS:
            ch.lookup(key)
        rate = len(KEYS) / (time.perf_counter() - started)

        if hasattr(ch, "lookup_with_safety"):
            tracked = sum(ch.lookup_with_safety(k)[1] for k in KEYS) / len(KEYS)
            tracked_text = f"{tracked:12.1%}"
        else:
            tracked_text = f"{'n/a':>12}"  # Maglev: full CT only (Sec. 3.6)

        victim = next(iter(ch.working))
        disruption = check_removal_disruption(ch, victim, KEYS[:10_000])
        print(
            f"{name:>12} {oversub:8.3f} {disruption.moved_fraction:12.2%} "
            f"{rate:11,.0f} {tracked_text}"
        )
    print()
    print(
        "Minimal disruption: only the removed server's keys move. HRW "
        "balances best but pays O(n) per lookup; the table variants pay one "
        "memory access; AnchorHash sits in between with tiny state."
    )


if __name__ == "__main__":
    main()
