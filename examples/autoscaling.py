#!/usr/bin/env python3
"""Autoscaling scenario: a service scaling out and in under live traffic.

Models the paper's "standby servers" horizon strategy (Section 2.2): an
autoscaler keeps a warm pool of standby instances announced to the LB; a
traffic ramp triggers scale-out (horizon -> working), and the later ramp-
down retires instances (working -> horizon -> permanently removed).

Shows the memory story end to end: the CT table stays an order of
magnitude below full CT's, and no connection ever experiences a PCC
violation despite the backend changing eight times mid-traffic.

Run:  python examples/autoscaling.py
"""

import random

from repro import make_full_ct, make_jet
from repro.hashing.mix import splitmix64

INITIAL_WORKERS = [f"pod-{i}" for i in range(12)]
WARM_POOL = [f"warm-{i}" for i in range(4)]


class TrafficSource:
    """Connections arrive and occasionally send follow-up packets."""

    def __init__(self, seed: int = 0):
        self._state = splitmix64(seed)
        self._rng = random.Random(seed)
        self.active = []

    def new_connection(self) -> int:
        self._state = splitmix64(self._state)
        self.active.append(self._state)
        return self._state

    def some_active(self, count: int):
        return self._rng.sample(self.active, min(count, len(self.active)))


def drive(lb, source: TrafficSource, new: int, repeats: int, truth: dict) -> int:
    """Send traffic; return the number of PCC violations observed."""
    violations = 0
    for _ in range(new):
        key = source.new_connection()
        truth[key] = lb.get_destination(key)
    for key in source.some_active(repeats):
        destination = truth.get(key)
        if destination is None:
            continue  # connection already reset after its server left
        if destination not in lb.working:
            truth.pop(key, None)  # inevitably broken; client reconnects
            continue
        if lb.get_destination(key) != destination:
            violations += 1
    return violations


def run(label: str, lb) -> None:
    source = TrafficSource(seed=7)
    truth = {}
    violations = 0

    def remove(name: str) -> None:
        """Remove a server; its connections are inevitably broken
        (Section 2.1) -- the clients reconnect, so they leave `truth`."""
        lb.remove_working_server(name)
        for key in [k for k, d in truth.items() if d == name]:
            del truth[key]

    violations += drive(lb, source, new=4_000, repeats=2_000, truth=truth)

    # Morning rush: scale out by three warm instances, traffic between each.
    for name in WARM_POOL[:3]:
        lb.add_working_server(name)
        violations += drive(lb, source, new=2_000, repeats=3_000, truth=truth)

    # Evening: scale in two pods (retire permanently) plus one maintenance
    # reboot (leaves via the horizon and comes back).
    for name in ["pod-1", "pod-2"]:
        remove(name)
        lb.remove_horizon_server(name)
        violations += drive(lb, source, new=1_000, repeats=3_000, truth=truth)

    remove("pod-3")                             # reboot: joins the horizon
    violations += drive(lb, source, new=1_000, repeats=3_000, truth=truth)
    lb.add_working_server("pod-3")              # ... and returns
    violations += drive(lb, source, new=1_000, repeats=3_000, truth=truth)

    print(
        f"{label:>8}: connections={len(truth):,}  tracked={lb.tracked_connections:,} "
        f"({lb.tracked_connections / max(len(truth), 1):.1%})  PCC violations={violations}"
    )


def main() -> None:
    print(f"workers={len(INITIAL_WORKERS)}, warm pool={len(WARM_POOL)}")
    run("JET", make_jet("anchor", INITIAL_WORKERS, WARM_POOL,
                        capacity=4 * len(INITIAL_WORKERS)))
    run("full CT", make_full_ct("anchor", INITIAL_WORKERS, WARM_POOL,
                                capacity=4 * len(INITIAL_WORKERS)))


if __name__ == "__main__":
    main()
