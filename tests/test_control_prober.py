"""HealthProber: evidence-based eviction, lossy probes, probation-ordered
readmission, and determinism (repro.control.prober)."""

import pytest

from repro.control.prober import HealthProber
from repro.faults.health import HealthMonitor


def make_prober(up, **kwargs):
    """Prober whose ground truth is the mutable set ``up``."""
    kwargs.setdefault("fail_threshold", 3)
    kwargs.setdefault("recover_threshold", 2)
    return HealthProber(is_up=lambda name: name in up, **kwargs)


class TestThresholds:
    def test_eviction_needs_consecutive_failures(self):
        up = {"a", "b"}
        prober = make_prober(up)
        prober.watch("a")
        prober.watch("b")
        up.discard("a")
        # Two failed probes: below fail_threshold=3, nothing evicted.
        assert prober.probe_all(0.0) == ([], [])
        assert prober.probe_all(1.0) == ([], [])
        # Third consecutive failure crosses the threshold.
        evict, readmit = prober.probe_all(2.0)
        assert evict == ["a"]
        assert readmit == []
        assert prober.is_evicted("a")
        assert not prober.is_evicted("b")
        assert prober.stats.evictions == 1
        assert prober.stats.false_evictions == 0

    def test_success_resets_failure_streak(self):
        up = {"a"}
        prober = make_prober(up)
        prober.watch("a")
        up.discard("a")
        prober.probe_all(0.0)
        prober.probe_all(1.0)
        up.add("a")  # blip heals before the third probe
        prober.probe_all(2.0)
        up.discard("a")
        # The streak restarted: two more failures still aren't enough.
        assert prober.probe_all(3.0)[0] == []
        assert prober.probe_all(4.0)[0] == []
        assert prober.probe_all(5.0)[0] == ["a"]

    def test_readmission_needs_recover_threshold(self):
        up = set()
        prober = make_prober(up, monitor=HealthMonitor(base_s=0.0))
        prober.watch("a")
        for t in range(3):
            prober.probe_all(float(t))
        assert prober.is_evicted("a")
        up.add("a")
        # First-offender probation is zero delay, but recover_threshold=2
        # still demands two consecutive successes.
        assert prober.probe_all(3.0)[1] == []
        assert prober.probe_all(4.0)[1] == ["a"]
        assert not prober.is_evicted("a")
        assert prober.stats.readmissions == 1

    def test_repeat_offender_waits_out_probation(self):
        up = set()
        monitor = HealthMonitor(base_s=10.0, multiplier=2.0, decay_s=1e9)
        prober = make_prober(up, monitor=monitor)
        prober.watch("a")

        def crash_and_recover(start):
            for i in range(3):
                prober.probe_all(start + i)
            up.add("a")
            out = []
            t = start + 3
            while not out:
                _, out = prober.probe_all(t)
                t += 1.0
            return t - 1.0 - (start + 3)

        # First eviction: delay_for(1) == 0, readmitted as soon as the
        # recover streak completes (one extra probe past detection).
        first_wait = crash_and_recover(0.0)
        up.discard("a")
        # Second eviction: delay_for(2) == base_s => ~10 extra seconds.
        second_wait = crash_and_recover(100.0)
        assert first_wait == 1.0
        assert second_wait >= 10.0


class TestLossyProbes:
    def test_losses_can_falsely_evict_a_live_server(self):
        up = {"a"}
        prober = make_prober(up, loss_probability=0.95, seed=7)
        prober.watch("a")
        for t in range(50):
            prober.probe_all(float(t))
            if prober.is_evicted("a"):
                break
        assert prober.is_evicted("a")
        assert prober.stats.false_evictions >= 1
        assert prober.stats.lost >= 3

    def test_failure_threshold_damps_moderate_loss(self):
        def evictions(fail_threshold):
            up = {"a"}
            prober = make_prober(
                up,
                loss_probability=0.2,
                seed=3,
                fail_threshold=fail_threshold,
                # Zero probation so eviction frequency is limited only
                # by the threshold, not by readmission backoff.
                monitor=HealthMonitor(base_s=0.0),
            )
            prober.watch("a")
            for t in range(200):
                prober.probe_all(float(t))
            return prober.stats.evictions

        # With threshold 1 every lost probe evicts; threshold 3 needs
        # p^3 runs and cuts false evictions by an order of magnitude.
        assert evictions(1) >= 10 * evictions(3)
        assert evictions(3) <= 4

    def test_degrade_window_composes_and_expires(self):
        up = {"a"}
        prober = make_prober(up, loss_probability=0.5, seed=1)
        prober.degrade(0.5, until=10.0)
        # Inside the window the two sources compose: 1 - 0.5*0.5 = 0.75.
        assert prober._loss_now(5.0) == pytest.approx(0.75)
        # At/after the deadline only the baseline remains.
        assert prober._loss_now(10.0) == pytest.approx(0.5)
        assert prober._loss_now(11.0) == pytest.approx(0.5)


class TestOrderingAndDeterminism:
    def test_mixed_int_and_str_names_probe_fine(self):
        up = {3, "auto1"}
        prober = make_prober(up)
        prober.watch(3)
        prober.watch("auto1")
        up.clear()
        for t in range(3):
            evict, _ = prober.probe_all(float(t))
        assert set(evict) == {3, "auto1"}
        assert prober.evicted == sorted([3, "auto1"], key=str)

    def test_same_tick_readmission_is_ordered(self):
        up = set()
        prober = make_prober(up, monitor=HealthMonitor(base_s=0.0))
        for name in ("b", "a", 10):
            prober.watch(name)
        for t in range(3):
            prober.probe_all(float(t))
        up.update({"b", "a", 10})
        prober.probe_all(3.0)
        _, readmit = prober.probe_all(4.0)
        # All three recover in the same tick with equal eligible_at:
        # the (eligible_time, str(name)) order ties-breaks by name.
        assert readmit == [10, "a", "b"]

    def test_identical_seeds_identical_trajectories(self):
        def trajectory(seed):
            up = {"a", "b", "c"}
            prober = make_prober(up, loss_probability=0.4, seed=seed)
            for name in up:
                prober.watch(name)
            events = []
            for t in range(60):
                evict, readmit = prober.probe_all(float(t))
                if t == 20:
                    up.discard("b")
                if t == 30:
                    up.add("b")
                events.append((tuple(evict), tuple(readmit)))
            return events, prober.stats

        events_a, stats_a = trajectory(42)
        events_b, stats_b = trajectory(42)
        events_c, stats_c = trajectory(43)
        assert events_a == events_b
        assert stats_a == stats_b
        assert (events_a, stats_a) != (events_c, stats_c)

    def test_forget_stops_probing(self):
        up = set()
        prober = make_prober(up)
        prober.watch("a")
        prober.forget("a")
        prober.probe_all(0.0)
        assert prober.stats.sent == 0
        assert prober.evicted == []
