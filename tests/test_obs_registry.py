"""Unit tests for the repro.obs metrics registry, exporters, and timers."""

import json
import math

import pytest

from repro.obs import (
    NULL,
    JsonlExporter,
    NullRegistry,
    Registry,
    Stopwatch,
    best_of,
    coalesce,
    last_snapshot,
    load_jsonl,
    prometheus_sibling,
    render_prometheus,
    write_prometheus,
)
from repro.obs.registry import DEFAULT_TIME_BUCKETS, series_name


class TestInstruments:
    def test_counter_inc_and_reuse(self):
        reg = Registry()
        reg.counter("repro_test_total").inc()
        reg.counter("repro_test_total").inc(4)
        assert reg.value("repro_test_total") == 5

    def test_counter_rejects_negative_inc(self):
        with pytest.raises(ValueError):
            Registry().counter("repro_test_total").inc(-1)

    def test_counter_set_total_monotonic(self):
        counter = Registry().counter("repro_test_total")
        counter.set_total(10)
        counter.set_total(10)  # equal is fine
        counter.set_total(12)
        with pytest.raises(ValueError):
            counter.set_total(5)

    def test_gauge_moves_both_ways(self):
        reg = Registry()
        gauge = reg.gauge("repro_test")
        gauge.set(3.5)
        gauge.inc()
        gauge.dec(2.0)
        assert reg.value("repro_test") == pytest.approx(2.5)

    def test_labelled_series_are_independent(self):
        reg = Registry()
        reg.counter("repro_ch_lookups_total", family="hrw").inc(7)
        reg.counter("repro_ch_lookups_total", family="ring").inc(2)
        assert reg.value("repro_ch_lookups_total", family="hrw") == 7
        assert reg.value("repro_ch_lookups_total", family="ring") == 2
        assert reg.value("repro_ch_lookups_total") is None

    def test_kind_conflict_rejected(self):
        reg = Registry()
        reg.counter("repro_test_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_test_total")

    def test_invalid_names_rejected(self):
        reg = Registry()
        with pytest.raises(ValueError):
            reg.counter("not a metric")
        with pytest.raises(ValueError):
            reg.counter("repro_ok_total", **{"bad-label": "x"})

    def test_histogram_buckets(self):
        reg = Registry()
        hist = reg.histogram("repro_lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.total == pytest.approx(56.05)
        assert hist.cumulative_buckets() == [
            ("0.1", 1), ("1", 3), ("10", 4), ("+Inf", 5),
        ]

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Registry().histogram("repro_lat", buckets=(1.0, 0.1))

    def test_timer_observes_elapsed(self):
        reg = Registry()
        with reg.timer("repro_span") as span:
            pass
        assert span.elapsed >= 0.0
        hist = reg.histogram("repro_span")
        assert hist.count == 1

    def test_default_time_buckets_sorted(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)


class TestRegistry:
    def test_collectors_run_on_snapshot(self):
        reg = Registry()
        seen = []
        reg.add_collector(lambda r: seen.append(r.gauge("repro_g").set(1.0)))
        reg.snapshot()
        reg.snapshot()
        assert len(seen) == 2

    def test_snapshot_flattens_series(self):
        reg = Registry()
        reg.counter("repro_c_total").inc(3)
        reg.histogram("repro_h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["repro_c_total"] == 3
        assert snap["repro_h"]["count"] == 1
        assert snap["repro_h"]["buckets"] == {"1": 1, "+Inf": 1}

    def test_series_name_rendering(self):
        assert series_name("m", ()) == "m"
        assert series_name("m", (("a", "1"), ("b", "x"))) == 'm{a="1",b="x"}'


class TestPrometheus:
    def test_render_counter_gauge(self):
        reg = Registry()
        reg.counter("repro_c_total", "a counter", family="hrw").inc(2)
        reg.gauge("repro_g", "a gauge").set(0.25)
        text = render_prometheus(reg)
        assert "# HELP repro_c_total a counter" in text
        assert "# TYPE repro_c_total counter" in text
        assert 'repro_c_total{family="hrw"} 2' in text
        assert "# TYPE repro_g gauge" in text
        assert "repro_g 0.25" in text

    def test_render_histogram_expansion(self):
        reg = Registry()
        reg.histogram("repro_h", "hist", buckets=(1.0, 5.0)).observe(0.4)
        text = render_prometheus(reg)
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="5"} 1' in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_sum 0.4" in text
        assert "repro_h_count 1" in text

    def test_write_prometheus_and_sibling(self, tmp_path):
        reg = Registry()
        reg.counter("repro_c_total").inc()
        out = write_prometheus(reg, tmp_path / "m.prom")
        assert out.read_text().endswith("repro_c_total 1\n")
        assert prometheus_sibling("run/m.jsonl").name == "m.prom"
        assert prometheus_sibling("m").name == "m.prom"

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(Registry()) == ""


class TestJsonl:
    def test_round_trip_and_final(self, tmp_path):
        path = tmp_path / "m.jsonl"
        reg = Registry()
        with JsonlExporter(path) as exporter:
            reg.attach_exporter(exporter)
            reg.counter("repro_c_total").inc()
            reg.export_snapshot(t=1.0)
            reg.counter("repro_c_total").inc()
            reg.export_snapshot(t=2.0, final=True, invariants=[])
        records = load_jsonl(path)
        assert [r["t"] for r in records] == [1.0, 2.0]
        assert records[0]["metrics"]["repro_c_total"] == 1
        final = last_snapshot(records)
        assert final["final"] is True
        assert final["metrics"]["repro_c_total"] == 2

    def test_last_snapshot_without_final_line(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps({"t": 0.5, "metrics": {}}) + "\n")
        assert last_snapshot(load_jsonl(path))["t"] == 0.5
        assert last_snapshot([]) is None


class TestNullRegistry:
    def test_shared_inert_instruments(self):
        null = NullRegistry()
        counter = null.counter("repro_c_total", family="hrw")
        assert counter is null.gauge("repro_g") is null.histogram("repro_h")
        counter.inc(5)
        counter.set_total(10)
        null.gauge("repro_g").set(3)
        null.histogram("repro_h").observe(1.0)
        assert null.value("repro_c_total", family="hrw") is None
        assert null.series() == {}
        assert null.snapshot() == {}
        assert not null.enabled

    def test_timer_context_is_noop(self):
        with NULL.timer("repro_span") as span:
            pass
        assert span.elapsed == 0.0

    def test_collectors_and_exporters_ignored(self):
        NULL.add_collector(lambda r: (_ for _ in ()).throw(AssertionError))
        NULL.attach_exporter(object())
        NULL.collect()
        NULL.export_snapshot(t=0.0)

    def test_coalesce(self):
        assert coalesce(None) is NULL
        live = Registry()
        assert coalesce(live) is live


class TestTimers:
    def test_stopwatch_measures_positive_time(self):
        watch = Stopwatch()
        total = sum(range(1000))
        elapsed = watch.stop()
        assert elapsed > 0.0
        assert math.isfinite(elapsed)
        assert total == 499500

    def test_stopwatch_context_manager(self):
        with Stopwatch() as watch:
            pass
        assert watch.stop() >= 0.0

    def test_best_of_returns_minimum(self):
        calls = []
        wall = best_of(3, lambda: calls.append(len(calls)))
        assert len(calls) == 3
        assert wall > 0.0
