"""Experiment-harness tests: each paper artifact runs end-to-end at tiny
scale and produces sane, correctly shaped output."""

import pytest

from repro.experiments import scales
from repro.experiments.extensions import load_aware_comparison, simultaneous_changes
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6a, run_fig6b
from repro.experiments.fig7 import run_fig7
from repro.experiments.report import format_table
from repro.experiments.table12 import run_table
from repro.experiments.theory import (
    concentration,
    modn_unsafe_fraction,
    order_invariance,
    paired_dispatching,
    tracking_probability,
)
from repro.experiments.trace_eval import evaluate_trace
from repro.traces import zipf_trace

TINY = scales.base_config("smoke").with_(
    duration_s=10.0, connection_rate=150.0, n_servers=30, horizon_size=3
)


class TestScales:
    def test_presets_resolve(self):
        for name in ("smoke", "default", "paper"):
            cfg = scales.base_config(name)
            assert cfg.n_servers > 0

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            scales.scale_name("huge")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert scales.scale_name() == "smoke"

    def test_overrides_apply(self):
        cfg = scales.base_config("smoke", n_servers=7)
        assert cfg.n_servers == 7


class TestFigureHarnesses:
    def test_fig3_matrix_shape(self):
        result = run_fig3(
            base=TINY, update_rates=(6, 30), ct_fractions=(0.2, 1.0), seed=5
        )
        assert set(result.full_ct) == {6, 30}
        assert all(len(v) == 2 for v in result.full_ct.values())
        assert all(len(v) == 2 for v in result.jet.values())
        # JET never worse than full CT in total violations.
        assert sum(sum(v) for v in result.jet.values()) <= sum(
            sum(v) for v in result.full_ct.values()
        )

    def test_fig4_horizon_sweep(self):
        result = run_fig4(
            base=TINY, horizon_fractions=(0.03, 0.1), ct_fractions=(0.5,), seed=6
        )
        assert len(result.horizons) == 2
        assert len(result.full_ct) == 1

    def test_fig5_series(self):
        result = run_fig5(
            base=TINY, update_rates=(6,), rate_multipliers=(0.5, 1.0), seed=7
        )
        series = result.oversubscription[6]
        assert len(series) == 2
        assert all(v >= 1.0 for v in series)
        assert result.jet_equals_full  # Proposition 4.1

    def test_fig6_histograms(self):
        a = run_fig6a(scale="smoke")
        assert set(a) == {"UNI1", "NY18"}
        assert all(series for series in a.values())
        b = run_fig6b(scale="smoke", skews=(0.6, 1.4))
        low = sum(count for _, count in b[0.6])
        high = sum(count for _, count in b[1.4])
        assert high < low  # higher skew, fewer distinct flows

    def test_fig7_cells(self):
        results = run_fig7(
            scale="smoke",
            skews=(1.0,),
            backend_sizes=(20,),
            repetitions=2,
            configs=(("anchor", "full"), ("anchor", "jet")),
        )
        cells = results[(1.0, 20)]
        full = next(c for c in cells if c.mode == "full")
        jet = next(c for c in cells if c.mode == "jet")
        assert jet.tracked.mean < 0.3 * full.tracked.mean
        assert jet.oversubscription.mean == pytest.approx(
            full.oversubscription.mean, rel=1e-9
        )


class TestTraceEval:
    def test_tracked_ratio_and_balance_equality(self):
        trace = zipf_trace(0.9, n_packets=30_000, population=10_000, seed=3)
        cells = evaluate_trace(trace, 20, repetitions=2)
        by = {(c.family, c.mode): c for c in cells}
        assert by[("table", "full")].tracked.mean == trace.n_flows
        assert by[("maglev", "full")].tracked.mean == trace.n_flows
        for family in ("table", "anchor"):
            jet = by[(family, "jet")]
            assert jet.tracked.mean / trace.n_flows == pytest.approx(
                2 / 22, rel=0.4
            )
            assert jet.oversubscription.mean == pytest.approx(
                by[(family, "full")].oversubscription.mean, rel=1e-9
            )

    def test_maglev_jet_rejected(self):
        trace = zipf_trace(0.9, n_packets=1000, population=500, seed=4)
        with pytest.raises(ValueError):
            evaluate_trace(trace, 10, repetitions=1, configs=(("maglev", "jet"),))

    def test_table12_runner(self):
        results, trace = run_table(
            "uni1", scale="smoke", backend_sizes=(20,), repetitions=2
        )
        assert 20 in results
        assert len(results[20]) == 5  # the five paper configurations


class TestTheoryHarness:
    def test_tracking_probability_rows(self):
        rows = tracking_probability(
            families=("hrw",), alphas=(0.1,), n_working=20, n_keys=4000
        )
        family, alpha, measured, predicted = rows[0]
        assert measured == pytest.approx(predicted, rel=0.3)

    def test_concentration_bound_respected(self):
        result = concentration(trials=40, keys_per_trial=1000)
        for _, empirical, hoeffding in result.exceed_by_t:
            assert empirical <= max(hoeffding * 3, 0.15)

    def test_order_invariance_all_families(self):
        outcome = order_invariance(n_keys=600)
        assert all(p1 and prefix for p1, prefix in outcome.values())

    def test_paired_dispatching_agrees(self):
        compared, disagreements = paired_dispatching(n_keys=800, n_events=8)
        assert compared > 0
        assert disagreements == 0

    def test_modn_strawman(self):
        measured, predicted = modn_unsafe_fraction(n_servers=30, n_keys=4000)
        assert measured == pytest.approx(predicted, abs=0.05)


class TestExtensionsHarness:
    def test_simultaneous_changes_pcc_clean(self):
        outcome = simultaneous_changes(n_packets=40_000)
        assert outcome["pcc_violations"] == 0
        assert outcome["inevitably_broken"] > 0

    def test_load_aware_rows_ordered(self):
        rows = load_aware_comparison(n_packets=40_000)
        by = {r.mode: r for r in rows}
        assert by["jet"].tracked_fraction < by["jet-p2c"].tracked_fraction < 1.0
        assert by["full"].tracked_fraction == pytest.approx(1.0)
        assert by["jet-p2c"].max_oversubscription <= by["jet"].max_oversubscription


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")
        assert "2.500" in lines[2]
