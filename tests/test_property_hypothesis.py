"""Property-based tests (hypothesis) on the core data structures.

These encode the paper's invariants as universally quantified properties:
Theorem 4.4's safety condition, consistent-hashing minimal disruption,
AnchorHash's stack discipline, CT-table model conformance, and the
stability of the hashing layer.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ch import AnchorHash, HRWHash, JumpHash, RingHash, TableHRWHash
from repro.ch.anchor import AnchorBuckets
from repro.ch.jump import jump_bucket
from repro.ct import LRUCT
from repro.hashing.mix import MASK64, fmix64, mix2, splitmix64
from repro.hashing.xxh import xxhash64

keys64 = st.integers(min_value=0, max_value=MASK64)
small_names = st.integers(min_value=0, max_value=200)

FAMILY_BUILDERS = {
    "hrw": lambda w, h: HRWHash(w, h),
    "ring": lambda w, h: RingHash(w, h, virtual_nodes=10),
    "table": lambda w, h: TableHRWHash(w, h, rows=257),
    "anchor": lambda w, h: AnchorHash(w, h, capacity=2 * (len(w) + len(h)) + 4),
}


class TestHashingProperties:
    @given(keys64)
    def test_fmix64_bounded_and_deterministic(self, x):
        out = fmix64(x)
        assert 0 <= out <= MASK64
        assert out == fmix64(x)

    @given(keys64, keys64)
    def test_mix2_differs_when_either_side_flips(self, a, b):
        assert mix2(a, b) == mix2(a, b)
        assert mix2(a, b ^ 1) != mix2(a, b) or mix2(a ^ 1, b) != mix2(a, b)

    @given(st.binary(max_size=200), st.integers(min_value=0, max_value=MASK64))
    def test_xxhash64_total_and_bounded(self, data, seed):
        out = xxhash64(data, seed)
        assert 0 <= out <= MASK64
        assert out == xxhash64(data, seed)

    @given(st.binary(min_size=1, max_size=100))
    def test_xxhash64_sensitive_to_truncation(self, data):
        assert xxhash64(data) != xxhash64(data[:-1])

    @given(keys64)
    def test_splitmix_stream_advances(self, x):
        assert splitmix64(x) != splitmix64(splitmix64(x))


class TestCHSafetyProperty:
    @given(
        family=st.sampled_from(sorted(FAMILY_BUILDERS)),
        n_working=st.integers(min_value=2, max_value=12),
        n_horizon=st.integers(min_value=0, max_value=4),
        key_sample=st.lists(keys64, min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_safety_flag_matches_union_everywhere(
        self, family, n_working, n_horizon, key_sample
    ):
        working = [f"w{i}" for i in range(n_working)]
        horizon = [f"h{i}" for i in range(n_horizon)]
        ch = FAMILY_BUILDERS[family](working, horizon)
        for k in key_sample:
            destination, unsafe = ch.lookup_with_safety(k)
            assert destination in ch.working
            assert unsafe == (destination != ch.lookup_union(k))

    @given(
        family=st.sampled_from(sorted(FAMILY_BUILDERS)),
        n_working=st.integers(min_value=3, max_value=10),
        victim_index=st.integers(min_value=0, max_value=9),
        key_sample=st.lists(keys64, min_size=5, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_minimal_disruption_on_removal(
        self, family, n_working, victim_index, key_sample
    ):
        working = [f"w{i}" for i in range(n_working)]
        ch = FAMILY_BUILDERS[family](working, [])
        victim = working[victim_index % n_working]
        before = {k: ch.lookup(k) for k in key_sample}
        ch.remove_working(victim)
        for k in key_sample:
            if before[k] != victim:
                assert ch.lookup(k) == before[k]
            else:
                assert ch.lookup(k) != victim

    @given(
        family=st.sampled_from(sorted(FAMILY_BUILDERS)),
        n_working=st.integers(min_value=2, max_value=10),
        key_sample=st.lists(keys64, min_size=5, max_size=40),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_safe_keys_never_move_under_any_admission_order(
        self, family, n_working, key_sample, seed
    ):
        working = [f"w{i}" for i in range(n_working)]
        horizon = ["h0", "h1", "h2"]
        ch = FAMILY_BUILDERS[family](working, horizon)
        safe = {
            k: ch.lookup(k)
            for k in key_sample
            if not ch.lookup_with_safety(k)[1]
        }
        order = list(horizon)
        random.Random(seed).shuffle(order)
        for server in order:
            ch.add_working(server)
            for k, destination in safe.items():
                assert ch.lookup(k) == destination


class TestAnchorStackProperties:
    @given(
        ops=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=80),
        capacity=st.integers(min_value=4, max_value=24),
    )
    @settings(max_examples=80, deadline=None)
    def test_stack_A_values_always_consecutive(self, ops, capacity):
        buckets = AnchorBuckets(capacity, capacity)
        rng = random.Random(42)
        for op in ops:
            if op < 2 and buckets.N > 1:
                working = [b for b in range(capacity) if buckets.is_working(b)]
                buckets.remove(rng.choice(working))
            elif buckets.R:
                buckets.add()
            for depth, bucket in enumerate(reversed(buckets.R)):
                assert buckets.A[bucket] == buckets.N + depth

    @given(
        key=keys64,
        removals=st.lists(st.integers(min_value=0, max_value=15), max_size=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_get_always_working_bucket(self, key, removals):
        buckets = AnchorBuckets(16, 16)
        for r in removals:
            if buckets.N > 1 and buckets.is_working(r % 16):
                buckets.remove(r % 16)
        assert buckets.is_working(buckets.get(key))


class TestJumpProperties:
    @given(key=keys64, n=st.integers(min_value=1, max_value=64))
    def test_bucket_in_range(self, key, n):
        assert 0 <= jump_bucket(key, n) < n

    @given(key=keys64, n=st.integers(min_value=1, max_value=63))
    def test_growth_moves_only_to_new_bucket(self, key, n):
        before = jump_bucket(key, n)
        after = jump_bucket(key, n + 1)
        assert after == before or after == n


class TestLRUModelConformance:
    """The LRU CT must behave exactly like a reference model."""

    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["put", "get", "delete"]), small_names),
            max_size=120,
        ),
        capacity=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_against_reference_model(self, ops, capacity):
        from collections import OrderedDict

        ct = LRUCT(capacity)
        model = OrderedDict()
        for op, key in ops:
            if op == "put":
                if key in model:
                    model[key] = f"d{key}"
                    model.move_to_end(key)
                else:
                    if len(model) >= capacity:
                        model.popitem(last=False)
                    model[key] = f"d{key}"
                ct.put(key, f"d{key}")
            elif op == "get":
                expected = model.get(key)
                if expected is not None:
                    model.move_to_end(key)
                assert ct.get(key) == expected
            else:
                expected = key in model
                model.pop(key, None)
                assert ct.delete(key) == expected
            assert len(ct) == len(model)
            assert set(ct) == set(model)
