"""End-to-end closed-loop simulation: ControlledMembership against real
JET balancers, and full runs through repro.sim with the control plane
driving the horizon (repro.control.loop)."""

import pytest

from repro.control.loop import ControlledMembership
from repro.core.factories import make_jet
from repro.faults import (
    PROBE_LOSS,
    CRASH,
    STALE_AUTOSCALER,
    FaultEvent,
    FaultSchedule,
)
from repro.sim.distributions import Constant, Exponential
from repro.sim.scenario import SimulationConfig, run_simulation
from repro.sim.workload import RateProfile

W = list(range(8))


def make_membership(horizon_cap=4, n_lbs=1):
    balancers = [make_jet("ring", W, []) for _ in range(n_lbs)]
    return ControlledMembership(balancers, horizon_cap), balancers


class TestControlledMembership:
    def test_announce_then_realize_is_proper(self):
        membership, (lb,) = make_membership()
        membership.announce("auto1")
        assert "auto1" in membership.members
        assert membership.horizon_occupancy == 1
        assert membership.realize("auto1") is True
        assert membership.proper_additions == 1
        assert membership.surprise_additions == 0
        assert membership.horizon_occupancy == 0
        assert "auto1" in lb.ch.working

    def test_unannounced_realize_is_surprise(self):
        membership, (lb,) = make_membership()
        assert membership.realize("auto1") is False
        assert membership.surprise_additions == 1
        assert membership.scorecard.missed == 1
        assert "auto1" in lb.ch.working

    def test_cap_overflow_revokes_oldest_announcement(self):
        membership, (lb,) = make_membership(horizon_cap=2)
        membership.announce("a")
        membership.announce("b")
        membership.announce("c")  # overflows: "a" is revoked
        assert membership.revoked_announcements == 1
        assert membership.members == frozenset({"b", "c"})
        # The revoked launch later lands as a surprise.
        assert membership.realize("a") is False
        assert membership.surprise_additions == 1

    def test_phantom_expiry_scores_against_precision(self):
        membership, _ = make_membership()
        membership.announce("ghost")
        membership.expire("ghost")
        assert membership.phantom_announcements == 1
        assert membership.scorecard.phantom == 1
        assert membership.horizon_occupancy == 0

    def test_evict_then_recover_is_proper(self):
        membership, (lb,) = make_membership()
        membership.remove_server(3)
        assert 3 in membership.down_servers
        assert 3 not in lb.ch.working
        # The eviction auto-announced the server's return into H.
        assert 3 in membership.members
        assert membership.recover_server(3) is True
        assert membership.proper_additions == 1
        assert 3 in lb.ch.working

    def test_retire_revokes_the_horizon_slot(self):
        membership, (lb,) = make_membership()
        membership.retire(5)
        assert membership.retirements == 1
        assert 5 not in lb.ch.working
        assert 5 not in membership.members
        # Retired identity is fully gone: re-adding is a surprise, and
        # the CH accepts it as a brand-new working server.
        assert membership.realize(5) is False
        assert 5 in lb.ch.working

    def test_fans_out_to_all_balancers(self):
        membership, balancers = make_membership(n_lbs=3)
        membership.announce("auto1")
        membership.realize("auto1")
        membership.remove_server(0)
        for lb in balancers:
            assert "auto1" in lb.ch.working
            assert 0 not in lb.ch.working


def control_config(**overrides):
    """A fast closed-loop config: short run, flash crowd, perfect forecast."""
    base = dict(
        duration_s=24.0,
        connection_rate=200.0,
        n_servers=12,
        horizon_size=8,
        update_rate_per_min=0.0,
        mode="jet",
        seed=0,
        duration_dist=Exponential(2.0),
        size_dist=Constant(8),
        control=True,
        control_interval_s=0.5,
        scale_lead_time_s=6.0,
        autoscale_max=8,
        rate_profile=RateProfile.flash_crowd(
            start=6.0, ramp_s=3.0, magnitude=2.0, hold_s=8.0
        ),
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestClosedLoopRuns:
    def test_perfect_forecast_scales_out_with_no_surprises(self):
        result = run_simulation(control_config())
        assert result.control_ticks > 0
        assert result.scale_outs >= 1
        assert result.additions >= 1
        assert result.surprise_additions == 0
        assert result.horizon_precision == pytest.approx(1.0)
        assert result.horizon_recall == pytest.approx(1.0)
        assert result.phantom_announcements == 0

    def test_tracked_fraction_matches_dynamic_expectation(self):
        result = run_simulation(control_config())
        assert result.observed_tracked_fraction is not None
        assert result.mean_expected_tracked_fraction is not None
        # Theorem 4.2 with a time-varying H: flow-weighted expectation.
        assert result.observed_tracked_fraction == pytest.approx(
            result.mean_expected_tracked_fraction, abs=0.1
        )

    def test_closed_loop_is_deterministic(self):
        cfg = control_config(seed=5)
        a, b = run_simulation(cfg), run_simulation(cfg)
        assert a.pcc_violations == b.pcc_violations
        assert a.flows_started == b.flows_started
        assert a.scale_outs == b.scale_outs
        assert a.probe_evictions == b.probe_evictions
        assert a.horizon_precision == b.horizon_precision
        assert a.tracked_series == b.tracked_series

    def test_degraded_recall_produces_surprises(self):
        result = run_simulation(control_config(forecast_recall=0.0))
        assert result.scale_outs >= 1
        assert result.surprise_additions >= 1
        assert result.horizon_recall == pytest.approx(0.0)

    def test_degraded_precision_produces_phantoms(self):
        result = run_simulation(
            control_config(forecast_precision=0.5, seed=2)
        )
        assert result.phantom_announcements >= 1
        assert result.horizon_precision is not None
        assert result.horizon_precision < 1.0

    def test_crash_is_detected_by_probes_not_fiat(self):
        schedule = FaultSchedule.at(
            FaultEvent(6.0, CRASH), FaultEvent(10.0, CRASH)
        )
        result = run_simulation(
            control_config(fault_schedule=schedule, rate_profile=None)
        )
        assert result.crashes == 2
        # Detection lag: fail_threshold consecutive probe misses.
        assert result.probe_evictions >= 1
        assert result.probes_sent > 0
        # Flows dispatched into the detection window are accounted.
        assert result.blackholed_flows >= 0

    def test_probe_loss_chaos_runs_clean(self):
        schedule = FaultSchedule.at(
            FaultEvent(4.0, PROBE_LOSS, duration=8.0, intensity=0.6)
        )
        result = run_simulation(
            control_config(
                fault_schedule=schedule,
                rate_profile=None,
                probe_loss_probability=0.1,
                seed=3,
            )
        )
        assert result.fault_events == 1
        assert result.flows_started > 0
        # False evictions (if any) must be followed by readmissions.
        if result.probe_false_evictions:
            assert result.probe_readmissions >= 1

    def test_stale_autoscaler_freezes_the_signal(self):
        # Freeze the load signal across the entire flash-crowd ramp: the
        # scaler plans on stale data, so it scales out later/less than
        # the live-signal run during the ramp.
        schedule = FaultSchedule.at(
            FaultEvent(2.0, STALE_AUTOSCALER, duration=16.0)
        )
        stale = run_simulation(control_config(fault_schedule=schedule))
        live = run_simulation(control_config())
        assert stale.fault_events == 1
        assert stale.scale_outs <= live.scale_outs

    def test_scale_in_retires_what_was_launched(self):
        # A full diurnal cycle: load rises then falls back, and the loop
        # must retire on the way down.
        result = run_simulation(
            control_config(
                duration_s=40.0,
                rate_profile=RateProfile.diurnal(
                    period_s=40.0, amplitude=0.6
                ),
            )
        )
        assert result.scale_outs >= 1
        assert result.scale_ins >= 1
