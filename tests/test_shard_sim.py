"""Sharded event-driven simulation: the merge fold and the driver.

``merge_sim_results`` is checked as algebra (sums, maxima, weighted
means, series folding, associativity); ``simulate_sharded`` as a driver
(flow conservation, replicated membership schedule, worker-count
determinism up to timing).
"""

import multiprocessing

import pytest

from repro.shard import simulate_sharded
from repro.sim import SimulationConfig, merge_sim_results, run_simulation
from repro.sim.metrics import SimResult


def small_config(**overrides):
    defaults = dict(
        duration_s=20.0,
        connection_rate=200.0,
        n_servers=20,
        horizon_size=2,
        update_rate_per_min=6.0,
        seed=3,
        sample_interval=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestMergeFold:
    def test_sums_and_maxima(self):
        a = SimResult(
            pcc_violations=2, flows_started=100, packets_processed=1_000,
            removals=3, additions=3, max_oversubscription=1.5,
            wall_seconds=2.0, ct_peak_size=10,
        )
        b = SimResult(
            pcc_violations=1, flows_started=50, packets_processed=500,
            removals=3, additions=3, max_oversubscription=2.5,
            wall_seconds=1.0, ct_peak_size=7,
        )
        merged = merge_sim_results([a, b])
        assert merged.pcc_violations == 3
        assert merged.flows_started == 150
        assert merged.packets_processed == 1_500
        assert merged.ct_peak_size == 17
        # The one shared membership schedule fans out to every shard:
        # summing would multiply-count it.
        assert merged.removals == 3 and merged.additions == 3
        assert merged.max_oversubscription == 2.5
        assert merged.wall_seconds == 2.0

    def test_weighted_ratios(self):
        a = SimResult(
            flows_started=100, packets_processed=1_000, ct_hit_rate=0.8,
            observed_tracked_fraction=0.10,
        )
        b = SimResult(
            flows_started=300, packets_processed=3_000, ct_hit_rate=0.4,
            observed_tracked_fraction=0.20,
        )
        merged = merge_sim_results([a, b])
        assert merged.ct_hit_rate == pytest.approx(0.5)
        assert merged.observed_tracked_fraction == pytest.approx(0.175)

    def test_none_ratios_stay_none(self):
        merged = merge_sim_results([SimResult(), SimResult()])
        assert merged.observed_tracked_fraction is None
        assert merged.horizon_precision is None

    def test_series_fold(self):
        a = SimResult(
            sample_times=[1.0, 2.0, 3.0], tracked_series=[5, 6, 7],
            oversubscription_series=[1.1, 1.2, 1.3],
        )
        b = SimResult(
            sample_times=[1.0, 2.0], tracked_series=[10, 20],
            oversubscription_series=[2.0, 1.0],
        )
        merged = merge_sim_results([a, b])
        assert merged.sample_times == [1.0, 2.0, 3.0]
        assert merged.tracked_series == [15, 26, 7]
        assert merged.oversubscription_series == [2.0, 1.2, 1.3]

    def test_associative(self):
        shards = [
            SimResult(flows_started=10 * (i + 1), packets_processed=100 * (i + 1),
                      ct_hit_rate=0.1 * (i + 1), pcc_violations=i)
            for i in range(4)
        ]
        nested = merge_sim_results(
            [merge_sim_results(shards[:2]), merge_sim_results(shards[2:])]
        )
        flat = merge_sim_results(shards)
        assert nested.flows_started == flat.flows_started
        assert nested.pcc_violations == flat.pcc_violations
        assert nested.ct_hit_rate == pytest.approx(flat.ct_hit_rate)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_sim_results([])


class TestSimulateSharded:
    def test_flow_conservation_and_replicated_schedule(self):
        config = small_config()
        single = run_simulation(config)
        merged = simulate_sharded(config, n_workers=1, n_shards=2)
        # Shards split the arrival rate: flow volume is conserved within
        # Poisson noise, not byte-equal (independent per-shard streams).
        assert merged.flows_started == pytest.approx(single.flows_started, rel=0.25)
        # The membership schedule replicates (engine seed = master seed),
        # so the merged event counts are one schedule's worth, not N.
        assert merged.removals == single.removals
        assert merged.additions == single.additions

    def test_worker_count_is_immaterial(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        config = small_config(seed=7)
        serial = simulate_sharded(config, n_workers=1, n_shards=2)
        forked = simulate_sharded(config, n_workers=2, n_shards=2)
        for field in serial.__dataclass_fields__:
            if field == "wall_seconds":
                continue
            assert getattr(forked, field) == getattr(serial, field), field

    def test_merged_registry(self):
        from repro.obs import Registry
        from repro.obs import metrics as m

        registry = Registry()
        config = small_config(registry=registry)
        merged = simulate_sharded(config, n_workers=1, n_shards=2)
        assert registry.value(m.FLOWS) == merged.flows_started

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            simulate_sharded(small_config(), n_workers=0)
