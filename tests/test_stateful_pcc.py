"""Stateful property test: PCC holds under arbitrary event interleavings.

A hypothesis rule machine drives a JET load balancer through arbitrary
sequences of packets and backend events, maintaining the client-side
ground truth: once a connection's first packet is dispatched, every later
packet must reach the same server until that server is removed (the
connection is then inevitably broken and forgotten).

This is the library's strongest end-to-end guarantee: with an unbounded
CT and all additions arriving via the horizon, *no* interleaving of
events may break a connection.  Runs against all four paper CH families.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.ch import AnchorHash, HRWHash, RingHash, TableHRWHash
from repro.ch.base import BackendError
from repro.core import JETLoadBalancer
from repro.hashing.mix import splitmix64

FAMILIES = {
    "hrw": lambda w, h: HRWHash(w, h),
    "ring": lambda w, h: RingHash(w, h, virtual_nodes=8),
    "table": lambda w, h: TableHRWHash(w, h, rows=211),
    "anchor": lambda w, h: AnchorHash(w, h, capacity=64),
}


class JETConsistencyMachine(RuleBasedStateMachine):
    @initialize(family=st.sampled_from(sorted(FAMILIES)))
    def setup(self, family):
        self.working = [f"w{i}" for i in range(8)]
        self.horizon = [f"h{i}" for i in range(3)]
        self.lb = JETLoadBalancer(FAMILIES[family](self.working, self.horizon))
        self.truth = {}
        self.key_state = 7
        self.fresh_counter = 0

    # ------------------------------------------------------------ rules
    @rule()
    def new_connection(self):
        self.key_state = splitmix64(self.key_state)
        key = self.key_state
        self.truth[key] = self.lb.get_destination(key)

    @rule(index=st.integers(min_value=0, max_value=10**6))
    def repeat_packet(self, index):
        if not self.truth:
            return
        keys = sorted(self.truth)
        key = keys[index % len(keys)]
        expected = self.truth[key]
        if expected not in self.lb.working:
            del self.truth[key]  # inevitably broken; client reconnects
            return
        assert self.lb.get_destination(key) == expected

    @rule(index=st.integers(min_value=0, max_value=10**6))
    def admit_from_horizon(self, index):
        horizon = sorted(self.lb.horizon, key=str)
        if not horizon:
            return
        self.lb.add_working_server(horizon[index % len(horizon)])

    @rule(index=st.integers(min_value=0, max_value=10**6))
    def remove_working(self, index):
        working = sorted(self.lb.working, key=str)
        if len(working) <= 2:
            return
        victim = working[index % len(working)]
        self.lb.remove_working_server(victim)
        # Victim's connections are inevitably broken.
        for key in [k for k, d in self.truth.items() if d == victim]:
            del self.truth[key]

    @rule()
    def announce_new_horizon_server(self):
        self.fresh_counter += 1
        try:
            self.lb.add_horizon_server(f"fresh-{self.fresh_counter}")
        except BackendError:
            pass  # anchor capacity bound: acceptable refusal

    @rule(index=st.integers(min_value=0, max_value=10**6))
    def retire_horizon_server(self, index):
        horizon = sorted(self.lb.horizon, key=str)
        if not horizon:
            return
        self.lb.remove_horizon_server(horizon[index % len(horizon)])

    # -------------------------------------------------------- invariant
    @invariant()
    def all_live_connections_consistent(self):
        if not hasattr(self, "lb"):
            return
        working = self.lb.working
        for key, expected in list(self.truth.items()):
            if expected not in working:
                del self.truth[key]
                continue
            assert self.lb.get_destination(key) == expected


TestJETConsistency = JETConsistencyMachine.TestCase
TestJETConsistency.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
