"""Trace generation, persistence, and calibration tests."""

import numpy as np
import pytest

from repro.traces import (
    Trace,
    cached_trace,
    load_trace,
    ny18_like,
    save_trace,
    uni1_like,
    zipf_trace,
)


class TestTraceModel:
    def test_basic_shape(self):
        t = Trace("t", np.array([11, 22, 33], dtype=np.uint64),
                  np.array([0, 1, 1, 2, 0], dtype=np.int64))
        assert t.n_flows == 3
        assert t.n_packets == 5
        assert list(t.flow_sizes()) == [2, 2, 1]
        assert t.mean_flow_size() == pytest.approx(5 / 3)

    def test_iter_packets_yields_keys(self):
        t = Trace("t", np.array([11, 22], dtype=np.uint64),
                  np.array([1, 0], dtype=np.int64))
        assert list(t.iter_packets()) == [(22, 1), (11, 0)]

    def test_size_histogram(self):
        t = Trace("t", np.array([1, 2, 3], dtype=np.uint64),
                  np.array([0, 0, 1, 2], dtype=np.int64))
        assert t.size_histogram() == {1: 2, 2: 1}

    def test_out_of_range_packet_rejected(self):
        with pytest.raises(ValueError):
            Trace("t", np.array([1], dtype=np.uint64), np.array([3], dtype=np.int64))

    def test_empty_flows_rejected(self):
        with pytest.raises(ValueError):
            Trace("t", np.array([], dtype=np.uint64), np.array([], dtype=np.int64))

    def test_describe_mentions_counts(self):
        t = zipf_trace(1.0, n_packets=1000, population=500, seed=1)
        text = t.describe()
        assert "1,000 packets" in text


class TestZipf:
    def test_packet_count_exact(self):
        t = zipf_trace(0.8, n_packets=5000, population=2000, seed=2)
        assert t.n_packets == 5000

    def test_flow_keys_unique(self):
        t = zipf_trace(0.8, n_packets=5000, population=2000, seed=2)
        assert len(set(t.flow_keys.tolist())) == t.n_flows

    def test_higher_skew_fewer_distinct_flows(self):
        low = zipf_trace(0.6, n_packets=30_000, population=20_000, seed=3)
        high = zipf_trace(1.4, n_packets=30_000, population=20_000, seed=3)
        assert high.n_flows < low.n_flows

    def test_higher_skew_bigger_heavy_hitter(self):
        low = zipf_trace(0.6, n_packets=30_000, population=20_000, seed=4)
        high = zipf_trace(1.4, n_packets=30_000, population=20_000, seed=4)
        assert high.flow_sizes().max() > low.flow_sizes().max()

    def test_seeded_determinism(self):
        a = zipf_trace(1.0, n_packets=2000, population=1000, seed=5)
        b = zipf_trace(1.0, n_packets=2000, population=1000, seed=5)
        assert np.array_equal(a.packets, b.packets)
        assert np.array_equal(a.flow_keys, b.flow_keys)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            zipf_trace(-0.5)
        with pytest.raises(ValueError):
            zipf_trace(1.0, n_packets=0)


class TestDatacenterStandins:
    def test_uni1_flow_count_scales(self):
        t = uni1_like(scale=0.01, seed=1)
        assert t.n_flows == 3340

    def test_ny18_flow_count_scales(self):
        t = ny18_like(scale=0.01, seed=1)
        assert t.n_flows == 16_000

    def test_relative_skew_matches_fig6a(self):
        # UNI1: fewer flows, larger mean and larger heavy hitters.
        u = uni1_like(scale=0.01, seed=2)
        n = ny18_like(scale=0.01, seed=2)
        assert u.n_flows < n.n_flows
        assert u.mean_flow_size() > n.mean_flow_size()
        assert u.flow_sizes().max() > n.flow_sizes().max()

    def test_packets_shuffled_not_grouped(self):
        t = uni1_like(scale=0.005, seed=3)
        # A grouped trace would have long runs of equal flow ids; a shuffled
        # one has adjacent-equal probability ~ sum of (share^2).
        adjacent_equal = (t.packets[1:] == t.packets[:-1]).mean()
        assert adjacent_equal < 0.2


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        t = zipf_trace(1.0, n_packets=1500, population=700, seed=6)
        save_trace(t, tmp_path / "trace.npz")
        loaded = load_trace(tmp_path / "trace.npz")
        assert loaded.name == t.name
        assert np.array_equal(loaded.packets, t.packets)
        assert np.array_equal(loaded.flow_keys, t.flow_keys)

    def test_cached_trace_generates_then_reuses(self, tmp_path):
        calls = []

        def factory():
            calls.append(1)
            return zipf_trace(0.7, n_packets=500, population=300, seed=7)

        a = cached_trace(factory, tmp_path, "zipf07")
        b = cached_trace(factory, tmp_path, "zipf07")
        assert len(calls) == 1
        assert np.array_equal(a.packets, b.packets)
