"""Observability must be read-only: metrics off / disabled / live runs
make identical decisions.

The contract the whole obs layer rests on: ``replay(metrics=None)``
(uninstrumented), ``replay(metrics=NULL)`` (instrumented code path, no-op
registry), and ``replay(metrics=Registry())`` (live telemetry) produce
byte-identical routing decisions, PCC accounting, and post-run CT state
-- across every balancer stack, through both scalar and batched replay,
in the event-driven engine, and (via hypothesis) under arbitrary
injected churn schedules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ch import rows_for
from repro.core import StatelessLoadBalancer, make_ch, make_full_ct, make_jet
from repro.obs import NULL, Registry, metrics as M
from repro.sim import SimulationConfig, run_simulation
from repro.traces import replay, replay_batch, zipf_trace

WORKING = [f"s{i}" for i in range(20)]
HORIZON = [f"h{i}" for i in range(4)]

TRACE = zipf_trace(skew=1.0, n_packets=12_000, population=2_500, seed=11)


def _builders():
    table_rows = rows_for(len(WORKING))
    return {
        "jet-hrw": lambda: make_jet("hrw", WORKING, HORIZON),
        "jet-table": lambda: make_jet("table", WORKING, HORIZON, rows=table_rows),
        "jet-anchor": lambda: make_jet(
            "anchor", WORKING, HORIZON, capacity=4 * (len(WORKING) + len(HORIZON))
        ),
        "full-maglev": lambda: make_full_ct("maglev", WORKING, table_size=251),
        "stateless-table": lambda: StatelessLoadBalancer(
            make_ch("table", WORKING, HORIZON, rows=table_rows)
        ),
    }


def _fingerprint(balancer, result):
    """Everything a run decided: per-flow loads, accounting, CT contents.

    CT contents go through ``tracked_items`` where available: it decodes
    the columnar path's integer-index storage back to names, so scalar,
    name-batch, and index-batch runs fingerprint identically.
    """
    ct = getattr(balancer, "ct", None)
    if hasattr(balancer, "tracked_items"):
        ct_entries = balancer.tracked_items()
    else:
        ct_entries = dict(ct.items()) if ct is not None else None
    return {
        "server_loads": result.server_loads,
        "pcc_violations": result.pcc_violations,
        "inevitably_broken": result.inevitably_broken,
        "tracked_connections": result.tracked_connections,
        "ct_peak_size": result.ct_peak_size,
        "ct_entries": ct_entries,
    }


REGISTRY_VARIANTS = {
    "off": lambda: None,
    "disabled": lambda: NULL,
    "live": Registry,
}


@pytest.fixture(params=sorted(_builders()))
def stack(request):
    return request.param


class TestReplayDifferential:
    def test_scalar_replay_identical_across_registries(self, stack):
        build = _builders()[stack]
        base = None
        for variant, registry_factory in REGISTRY_VARIANTS.items():
            balancer = build()
            result = replay(TRACE, balancer, metrics=registry_factory())
            fingerprint = _fingerprint(balancer, result)
            if base is None:
                base = fingerprint
            else:
                assert fingerprint == base, f"{stack}: {variant} diverged"

    def test_batch_replay_identical_across_registries(self, stack):
        build = _builders()[stack]
        base = None
        for variant, registry_factory in REGISTRY_VARIANTS.items():
            balancer = build()
            result = replay_batch(TRACE, balancer, metrics=registry_factory())
            fingerprint = _fingerprint(balancer, result)
            if base is None:
                base = fingerprint
            else:
                assert fingerprint == base, f"{stack}: batch {variant} diverged"

    def test_live_registry_sees_the_run(self):
        registry = Registry()
        balancer = _builders()["jet-hrw"]()
        result = replay(TRACE, balancer, metrics=registry)
        registry.collect()
        dispatched = sum(result.server_loads.values())
        assert registry.value(M.FLOWS) == dispatched
        assert registry.value(M.DISPATCH_PACKETS, path="scalar") == TRACE.n_packets
        assert registry.value(M.CT_OCCUPANCY_PEAK) == result.ct_peak_size
        assert registry.value(M.CH_LOOKUPS, family="hrw") == balancer.ct.stats.misses


def _events_from_schedule(schedule):
    """(packet_index, op) pairs -> replay TraceEvents over WORKING/HORIZON."""
    events = []
    removed = []
    for packet_index, op in schedule:
        if op == "remove" and len(removed) < len(WORKING) - 2:
            victim = WORKING[len(removed)]
            removed.append(victim)
            events.append(
                (packet_index, lambda lb, v=victim: lb.remove_working_server(v))
            )
        elif op == "readmit" and removed:
            server = removed.pop()
            events.append(
                (packet_index, lambda lb, s=server: lb.add_working_server(s))
            )
    return events


churn_schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=TRACE.n_packets - 1),
        st.sampled_from(["remove", "readmit"]),
    ),
    max_size=6,
)


class TestChurnHypothesis:
    @settings(max_examples=25, deadline=None)
    @given(schedule=churn_schedules)
    def test_jet_replay_identical_under_random_churn(self, schedule):
        events = _events_from_schedule(sorted(schedule))
        base = None
        for registry_factory in REGISTRY_VARIANTS.values():
            balancer = make_jet("hrw", WORKING, HORIZON)
            result = replay(TRACE, balancer, events=events, metrics=registry_factory())
            fingerprint = _fingerprint(balancer, result)
            if base is None:
                base = fingerprint
            else:
                assert fingerprint == base

    @settings(max_examples=10, deadline=None)
    @given(schedule=churn_schedules)
    def test_batch_replay_matches_scalar_under_churn_with_metrics(self, schedule):
        events = _events_from_schedule(sorted(schedule))
        scalar_lb = make_jet("hrw", WORKING, HORIZON)
        scalar = replay(TRACE, scalar_lb, events=events, metrics=Registry())
        batch_lb = make_jet("hrw", WORKING, HORIZON)
        batch = replay_batch(TRACE, batch_lb, events=events, metrics=Registry())
        assert _fingerprint(batch_lb, batch) == _fingerprint(scalar_lb, scalar)


class TestEngineDifferential:
    CONFIG = dict(
        duration_s=20.0,
        connection_rate=300.0,
        n_servers=50,
        horizon_size=5,
        update_rate_per_min=10.0,
        mode="jet",
        ch_family="anchor",
        seed=3,
    )

    @staticmethod
    def _stable_fields(result):
        fields = vars(result).copy()
        fields.pop("wall_seconds")
        return fields

    def test_simulation_identical_with_and_without_registry(self):
        plain = run_simulation(SimulationConfig(**self.CONFIG))
        nulled = run_simulation(SimulationConfig(**self.CONFIG, registry=NULL))
        live = run_simulation(SimulationConfig(**self.CONFIG, registry=Registry()))
        assert self._stable_fields(nulled) == self._stable_fields(plain)
        assert self._stable_fields(live) == self._stable_fields(plain)

    def test_chaos_simulation_identical_with_registry(self):
        from repro.faults import chaos_mix

        def config(registry):
            return SimulationConfig(
                **{**self.CONFIG, "ch_family": "table",
                   "ch_kwargs": {"rows": rows_for(50)}},
                fault_schedule=chaos_mix(20.0, 20.0, seed=5),
                registry=registry,
            )

        plain = run_simulation(config(None))
        live = run_simulation(config(Registry()))
        assert self._stable_fields(live) == self._stable_fields(plain)

    def test_batched_engine_identical_with_registry(self):
        base = dict(self.CONFIG, coalesce_packets=True)
        plain = run_simulation(SimulationConfig(**base))
        live = run_simulation(SimulationConfig(**base, registry=Registry()))
        assert self._stable_fields(live) == self._stable_fields(plain)
