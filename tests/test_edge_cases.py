"""Edge-case and failure-injection tests across modules."""

import pytest

from repro.ch import AnchorHash, HRWHash, RingHash
from repro.ch.base import BackendError
from repro.ch.properties import sample_keys
from repro.core import FullCTLoadBalancer, JETLoadBalancer
from repro.core.lb_pool import LBPool
from repro.sim import Constant, SimulationConfig, run_simulation
from repro.traces.io import load_trace, save_trace
from repro.traces.zipf import zipf_trace

KEYS = sample_keys(500, seed=81)


class TestLastServerProtection:
    def test_simulator_never_removes_last_server(self):
        # Update rate absurdly high vs a 2-server backend: the simulator
        # must keep at least one server up at all times.
        cfg = SimulationConfig(
            duration_s=10.0,
            connection_rate=50.0,
            n_servers=2,
            horizon_size=1,
            update_rate_per_min=600.0,
            downtime_dist=Constant(30.0),
            seed=1,
        )
        result = run_simulation(cfg)
        assert result.flows_started > 0  # ran to completion, no crash


class TestSingleServerBackends:
    def test_hrw_single_server(self):
        ch = HRWHash(["solo"], ["spare"])
        for k in KEYS:
            destination, unsafe = ch.lookup_with_safety(k)
            assert destination == "solo"
        # About half the keys prefer the spare.
        unsafe_count = sum(ch.lookup_with_safety(k)[1] for k in KEYS)
        assert 0.3 < unsafe_count / len(KEYS) < 0.7

    def test_anchor_single_server(self):
        ch = AnchorHash(["solo"], ["spare"], capacity=8)
        assert all(ch.lookup(k) == "solo" for k in KEYS)

    def test_jet_single_server_pcc(self):
        lb = JETLoadBalancer(HRWHash(["solo"], ["spare"]))
        first = {k: lb.get_destination(k) for k in KEYS}
        lb.add_working_server("spare")
        assert all(lb.get_destination(k) == first[k] for k in KEYS)


class TestHugeChurn:
    def test_backend_fully_cycled(self):
        # Replace the entire backend one server at a time; connections to
        # surviving servers must never move until their server's turn.
        working = [f"old{i}" for i in range(6)]
        horizon = [f"new{i}" for i in range(6)]
        lb = JETLoadBalancer(AnchorHash(working, horizon, capacity=48))
        truth = {k: lb.get_destination(k) for k in KEYS}
        for old, new in zip(working, horizon):
            lb.add_working_server(new)
            lb.remove_working_server(old)
            lb.remove_horizon_server(old)
            truth = {k: d for k, d in truth.items() if d != old}
            for k, d in truth.items():
                assert lb.get_destination(k) == d
        assert lb.working == frozenset(horizon)

    def test_rapid_flapping_server(self):
        lb = JETLoadBalancer(RingHash([f"s{i}" for i in range(5)], ["f"], virtual_nodes=20))
        lb.add_working_server("f")
        truth = {k: lb.get_destination(k) for k in KEYS}
        for _ in range(10):  # f flaps up and down
            lb.remove_working_server("f")
            truth = {k: d for k, d in truth.items() if d != "f"}
            for k, d in truth.items():
                assert lb.get_destination(k) == d
            lb.add_working_server("f")
            for k, d in truth.items():
                assert lb.get_destination(k) == d


class TestPoolShrink:
    def test_remove_lb_resteers_without_backend_change(self):
        pool = LBPool(lambda: FullCTLoadBalancer(HRWHash(W := [f"w{i}" for i in range(8)], [])), size=3)
        first = {k: pool.get_destination(k) for k in KEYS}
        pool.remove_lb()
        assert pool.size == 2
        # No backend change happened: CH answers alone preserve PCC.
        assert all(pool.get_destination(k) == d for k, d in first.items())


class TestTraceIOSuffixes:
    def test_save_load_without_npz_suffix(self, tmp_path):
        trace = zipf_trace(1.0, n_packets=500, population=300, seed=1)
        save_trace(trace, tmp_path / "plain")
        loaded = load_trace(tmp_path / "plain")
        assert loaded.n_packets == 500


class TestErrorMessages:
    def test_backend_error_is_value_error(self):
        assert issubclass(BackendError, ValueError)

    def test_helpful_unknown_family_message(self):
        from repro.core import make_ch

        with pytest.raises(ValueError, match="maglev"):
            make_ch("bogus", ["a"])
