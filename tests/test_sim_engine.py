"""Event-driven simulator integration tests (Section 5.1 semantics)."""

import pytest

from repro.sim import LogNormal, SimulationConfig, run_paired, run_simulation

BASE = SimulationConfig(
    duration_s=20.0,
    connection_rate=300.0,
    n_servers=40,
    horizon_size=4,
    update_rate_per_min=12.0,
    downtime_dist=LogNormal(median=4.0, sigma=0.6),
    seed=7,
)


class TestAccounting:
    def test_flow_conservation(self):
        result = run_simulation(BASE)
        finished = (
            result.flows_completed + result.pcc_violations + result.inevitably_broken
        )
        assert finished <= result.flows_started
        assert result.packets_processed > result.flows_started  # multi-packet flows

    def test_removals_and_additions_counted(self):
        result = run_simulation(BASE)
        assert result.removals > 0
        assert result.additions > 0
        assert result.additions <= result.removals

    def test_sampling_series_lengths_match(self):
        result = run_simulation(BASE)
        assert len(result.tracked_series) == len(result.sample_times)
        assert result.sample_times == sorted(result.sample_times)


class TestPCCBehaviour:
    def test_unbounded_jet_with_ample_horizon_no_violations(self):
        cfg = BASE.with_(horizon_size=10, ct_capacity=None, mode="jet", seed=3)
        result = run_simulation(cfg)
        assert result.surprise_additions == 0
        assert result.pcc_violations == 0

    def test_stateless_lb_breaks_unsafe_flows(self):
        # Enough churn that several additions land mid-flow.
        cfg = BASE.with_(duration_s=40.0, connection_rate=600.0, update_rate_per_min=45.0)
        jet = run_simulation(cfg.with_(mode="jet"))
        stateless = run_simulation(cfg.with_(mode="stateless"))
        assert stateless.pcc_violations > 0
        assert stateless.pcc_violations >= jet.pcc_violations

    def test_tiny_full_ct_worse_than_tiny_jet_ct(self):
        # The Fig. 3 relation, at test scale: with an undersized table,
        # full CT breaks (far) more connections than JET.
        cfg = BASE.with_(duration_s=30, update_rate_per_min=30, ct_capacity=40, seed=11)
        full = run_simulation(cfg.with_(mode="full"))
        jet = run_simulation(cfg.with_(mode="jet"))
        assert full.pcc_violations >= jet.pcc_violations

    def test_inevitably_broken_excluded_from_violations(self):
        result = run_simulation(BASE)
        assert result.inevitably_broken > 0  # removals did break flows
        # Violations counted separately from inevitable breakage.
        assert result.pcc_violations + result.inevitably_broken < result.flows_started


class TestDeterminismAndPairing:
    def test_same_seed_same_outcome(self):
        a = run_simulation(BASE)
        b = run_simulation(BASE)
        assert a.pcc_violations == b.pcc_violations
        assert a.flows_started == b.flows_started
        assert a.tracked_series == b.tracked_series

    def test_different_seed_different_workload(self):
        a = run_simulation(BASE)
        b = run_simulation(BASE.with_(seed=8))
        assert a.flows_started != b.flows_started

    def test_prop41_paired_balance_identical(self):
        results = run_paired(BASE.with_(ct_capacity=None))
        assert (
            results["jet"].oversubscription_series
            == results["full"].oversubscription_series
        )
        assert results["jet"].max_oversubscription == pytest.approx(
            results["full"].max_oversubscription
        )

    def test_jet_tracks_fraction_of_full(self):
        results = run_paired(BASE.with_(ct_capacity=None))
        assert results["jet"].peak_tracked < 0.45 * results["full"].peak_tracked


class TestWarmup:
    def test_warmup_excludes_startup_transient(self):
        no_warmup = run_simulation(BASE.with_(warmup_s=0.0))
        warmed = run_simulation(BASE.with_(warmup_s=10.0))
        assert warmed.max_oversubscription <= no_warmup.max_oversubscription


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_simulation(BASE.with_(mode="quantum"))

    @pytest.mark.parametrize("family", ["hrw", "ring", "table", "anchor"])
    def test_all_ch_families_run(self, family):
        cfg = BASE.with_(
            duration_s=6.0,
            connection_rate=120.0,
            n_servers=20,
            horizon_size=2,
            ch_family=family,
        )
        result = run_simulation(cfg)
        assert result.flows_started > 0
        assert result.pcc_violations == 0

    def test_p2c_mode_runs_and_tracks_more_than_jet(self):
        cfg = BASE.with_(duration_s=10.0, update_rate_per_min=0.0)
        p2c = run_simulation(cfg.with_(mode="p2c"))
        jet = run_simulation(cfg.with_(mode="jet"))
        assert p2c.pcc_violations == 0
        assert p2c.peak_tracked > jet.peak_tracked
