"""Unit tests for keyed hashing (connection identifiers, server seeds)."""

import pytest

from repro.hashing.keyed import KeyedHasher, hash_int, hash_key, hash_str, server_seed
from repro.hashing.mix import MASK64


class TestHashKey:
    def test_int_string_bytes_tuple_all_supported(self):
        for key in (42, "flow-1", b"\x01\x02", ("10.0.0.1", 443, "t", 5)):
            assert 0 <= hash_key(key) <= MASK64

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            hash_key(3.14)

    def test_int_and_equal_string_differ(self):
        assert hash_key(7) != hash_key("7")

    def test_seed_changes_result(self):
        assert hash_key("conn", seed=1) != hash_key("conn", seed=2)

    def test_tuple_order_matters(self):
        assert hash_key((1, 2)) != hash_key((2, 1))

    def test_nested_tuples(self):
        assert hash_key(((1, 2), 3)) != hash_key((1, (2, 3)))

    def test_deterministic_across_calls(self):
        assert hash_key(("a", 1)) == hash_key(("a", 1))

    def test_int_path_matches_hash_int(self):
        assert hash_key(123) == hash_int(123)

    def test_str_path_matches_hash_str(self):
        assert hash_key("abc") == hash_str("abc")


class TestServerSeed:
    def test_deterministic(self):
        assert server_seed("srv-1") == server_seed("srv-1")

    def test_distinct_names_distinct_seeds(self):
        seeds = {server_seed(f"srv-{i}") for i in range(1000)}
        assert len(seeds) == 1000

    def test_int_names_supported(self):
        assert server_seed(5) == server_seed(5)
        assert server_seed(5) != server_seed(6)


class TestKeyedHasher:
    def test_weight_deterministic(self):
        h = KeyedHasher("server-a")
        assert h.weight(999) == h.weight(999)

    def test_different_servers_independent_streams(self):
        a, b = KeyedHasher("a"), KeyedHasher("b")
        agreements = sum(a.weight(k) == b.weight(k) for k in range(2000))
        assert agreements == 0

    def test_weight_varies_with_key(self):
        h = KeyedHasher("a")
        assert len({h.weight(k) for k in range(2000)}) == 2000

    def test_same_name_same_stream(self):
        assert KeyedHasher("x").weight(7) == KeyedHasher("x").weight(7)

    def test_uniformity_of_argmax(self):
        # Rendezvous fairness: each of 8 servers should win ~1/8 of keys.
        hashers = [KeyedHasher(f"s{i}") for i in range(8)]
        wins = [0] * 8
        for k in range(8000):
            weights = [h.weight(k * 2654435761) for h in hashers]
            wins[weights.index(max(weights))] += 1
        assert min(wins) > 800 and max(wins) < 1200
