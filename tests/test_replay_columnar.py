"""The columnar replay loop: integer-index dispatch end to end.

Three contracts:

1. **Metric equivalence** -- for every (family, LB mode) combination whose
   ``columnar_effective`` probe answers True, ``replay_batch`` (which takes
   the columnar loop) must reproduce the scalar ``replay`` metrics exactly,
   with and without injected churn events.
2. **Zero objects on the hot path** -- once warmed, a churn-free columnar
   replay allocates no object-dtype arrays anywhere except the single
   name-resolution call at the result edge (asserted by instrumenting the
   numpy allocators).
3. **Bigger-than-RAM traces** -- a chunk-streamed trace at least twice a
   stated RAM-equivalent budget, loaded via memmap, replays with metrics
   identical to an in-memory load of the same file.
"""

import numpy as np
import pytest

from repro.core import StatelessLoadBalancer, make_ch, make_full_ct, make_jet
from repro.obs import Registry, metrics as M
from repro.traces import load_trace, replay, replay_batch, zipf_trace, zipf_trace_stream

WORKING = [f"s{i}" for i in range(16)]
HORIZON = [f"h{i}" for i in range(4)]

TRACE = zipf_trace(skew=1.0, n_packets=15_000, population=3_000, seed=21)

IDX_FAMILIES = ["hrw", "table", "ring", "anchor", "maglev", "jump", "modulo",
                "concury"]
LB_MODES = ["jet", "full-ct", "stateless", "concury"]


def _skip_cell(family, mode):
    """Reason a (family, mode) composition is undefined, or None."""
    if family == "maglev" and mode in ("jet", "concury"):
        return "Maglev has no horizon: no JET/Concury composition"
    if family == "concury" and mode == "concury":
        return "Concury cannot be its own inner family"
    return None


def _ch_kwargs(family):
    if family == "table":
        return {"rows": 389}
    if family == "anchor":
        return {"capacity": 4 * (len(WORKING) + len(HORIZON))}
    if family == "ring":
        return {"virtual_nodes": 20}
    if family == "maglev":
        return {"table_size": 251}
    if family == "concury":
        return {"flowsets": 512, "rows": 389}
    return {}


def build_lb(family, mode):
    kwargs = _ch_kwargs(family)
    if mode == "concury":
        from repro.core.factories import make_concury

        return make_concury(family, WORKING, HORIZON, flowsets=512, **kwargs)
    if family == "maglev":
        if mode == "full-ct":
            return make_full_ct("maglev", WORKING, table_size=251)
        return StatelessLoadBalancer(make_ch("maglev", WORKING, table_size=251))
    if mode == "jet":
        return make_jet(family, WORKING, HORIZON, **kwargs)
    if mode == "full-ct":
        return make_full_ct(family, WORKING, HORIZON, **kwargs)
    return StatelessLoadBalancer(make_ch(family, WORKING, HORIZON, **kwargs))


def _fields(result):
    return (
        result.pcc_violations,
        result.inevitably_broken,
        result.tracked_connections,
        result.max_oversubscription,
        result.server_loads,
        result.n_flows,
        result.n_packets,
    )


class TestColumnarEquivalence:
    @pytest.mark.parametrize("family", IDX_FAMILIES)
    @pytest.mark.parametrize("mode", LB_MODES)
    def test_matches_scalar(self, family, mode):
        reason = _skip_cell(family, mode)
        if reason:
            pytest.skip(reason)
        columnar_lb = build_lb(family, mode)
        assert columnar_lb.columnar_effective, (family, mode)
        columnar = replay_batch(TRACE, columnar_lb)
        scalar = replay(TRACE, build_lb(family, mode))
        assert _fields(columnar) == _fields(scalar), (family, mode)

    @pytest.mark.parametrize("family", ["hrw", "table", "anchor", "jump"])
    @pytest.mark.parametrize("mode", ["jet", "full-ct", "concury"])
    def test_matches_scalar_with_events(self, family, mode):
        victim = WORKING[-1]  # Jump retires in LIFO order
        admit = victim if family == "jump" else HORIZON[0]

        def events():
            return [
                (4_000, lambda lb: lb.remove_working_server(victim)),
                (10_000, lambda lb: lb.add_working_server(admit)),
            ]

        columnar = replay_batch(TRACE, build_lb(family, mode), events())
        scalar = replay(TRACE, build_lb(family, mode), events())
        assert _fields(columnar) == _fields(scalar), (family, mode)

    def test_publishes_columnar_dispatch_path(self):
        registry = Registry()
        replay_batch(TRACE, build_lb("table", "jet"), metrics=registry)
        registry.collect()
        assert registry.value(M.DISPATCH_PACKETS, path="columnar") == TRACE.n_packets

    def test_columnar_run_never_touches_name_batch(self):
        lb = build_lb("table", "jet")

        def forbidden(keys):
            raise AssertionError("columnar replay fell back to the name batch path")

        lb.get_destinations_batch = forbidden
        result = replay_batch(TRACE, lb)
        assert result.n_packets == TRACE.n_packets

    @pytest.mark.parametrize("chunk_size", [1, 7, 100_000])
    def test_chunk_size_edges(self, chunk_size):
        scalar = replay(TRACE, build_lb("table", "jet"))
        columnar = replay_batch(TRACE, build_lb("table", "jet"), chunk_size=chunk_size)
        assert _fields(columnar) == _fields(scalar)


class TestZeroObjectHotPath:
    #: numpy constructors this codebase builds object arrays with.
    ALLOCATORS = ("empty", "zeros", "full", "array")

    def test_no_object_arrays_outside_the_edge(self, monkeypatch):
        lb = build_lb("table", "jet")
        # Warm everything that legitimately allocates once: index-mode
        # engagement, the backend-table translation, the CT mirror.
        replay_batch(TRACE, lb)

        in_edge = {"on": False}
        stray = []
        for name in self.ALLOCATORS:
            original = getattr(np, name)

            def wrapped(*args, _original=original, _name=name, **kwargs):
                out = _original(*args, **kwargs)
                if getattr(out, "dtype", None) == object and not in_edge["on"]:
                    stray.append(_name)
                return out

            monkeypatch.setattr(np, name, wrapped)

        edge = lb.dispatch_names

        def flagged_edge():
            in_edge["on"] = True
            try:
                return edge()
            finally:
                in_edge["on"] = False

        monkeypatch.setattr(lb, "dispatch_names", flagged_edge)
        result = replay_batch(TRACE, lb)
        assert result.n_packets == TRACE.n_packets
        assert stray == [], f"object arrays allocated on the hot path via {stray}"


class TestBiggerThanRamTrace:
    #: The RAM-equivalent budget this test simulates.  The streamed trace
    #: below is >= 2x this size on disk; nothing in the mmap replay path
    #: may materialize it wholesale (the in-memory twin load is the
    #: explicitly-paid comparison point).
    RAM_BUDGET_BYTES = 4 * 1024 * 1024

    def test_mmap_replay_matches_in_memory_replay(self, tmp_path):
        path = zipf_trace_stream(
            tmp_path / "big", skew=1.0, n_packets=1_200_000, population=40_000,
            seed=5, chunk=200_000,
        )
        assert path.stat().st_size >= 2 * self.RAM_BUDGET_BYTES
        mapped = load_trace(path, mmap=True)
        assert isinstance(mapped.packets, np.memmap)
        in_memory = load_trace(path)
        assert not isinstance(in_memory.packets, np.memmap)
        from_map = replay_batch(mapped, build_lb("table", "jet"))
        from_mem = replay_batch(in_memory, build_lb("table", "jet"))
        assert _fields(from_map) == _fields(from_mem)

    def test_streamed_trace_columnar_matches_scalar_at_small_scale(self, tmp_path):
        path = zipf_trace_stream(
            tmp_path / "small", skew=1.0, n_packets=30_000, population=6_000,
            seed=5, chunk=7_000,
        )
        trace = load_trace(path, mmap=True)
        scalar = replay(trace, build_lb("table", "jet"))
        columnar = replay_batch(trace, build_lb("table", "jet"))
        assert _fields(columnar) == _fields(scalar)
