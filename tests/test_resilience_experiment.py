"""Resilience-experiment acceptance tests (at smoke scale).

The ISSUE's acceptance criteria: the sweep is bit-reproducible for a
fixed seed; JET's violations under fault track full CT's while its table
stays near |H|/(|W|+|H|) of full's; and the §2.3 unannounced-addition
scenario measures degradation consistent with the paper's prediction
(below it, by the right-censoring observation factor)."""

import json

import pytest

from repro.experiments.resilience import build_payload

SEED = 7


@pytest.fixture(scope="module")
def payload():
    return build_payload("smoke", seed=SEED)


def test_payload_is_bit_reproducible(payload):
    again = build_payload("smoke", seed=SEED)
    assert json.dumps(payload, sort_keys=True) == json.dumps(again, sort_keys=True)


def test_sweep_shape_and_fault_accounting(payload):
    rows = payload["sweep"]
    assert len(rows) == len(payload["fault_rates_per_min"]) * 3
    for row in rows:
        if row["fault_rate_per_min"] == 0.0:
            assert row["fault_events"] == 0
            assert row["pcc_violations"] == 0
        else:
            assert row["fault_events"] > 0
        assert row["violations_under_fault"] <= row["pcc_violations"]

    def violations(mode):
        return {
            r["fault_rate_per_min"]: r["pcc_violations"]
            for r in rows
            if r["mode"] == mode
        }

    jet, full, stateless = violations("jet"), violations("full"), violations("stateless")
    top = max(payload["fault_rates_per_min"])
    # Full CT absorbs even chaos-driven churn; JET only leaks on the
    # unannounced component; stateless is the upper envelope.
    for rate in jet:
        assert full[rate] == 0
        assert jet[rate] <= stateless[rate]
    assert stateless[top] > 0


def test_tracking_economy_bound_survives_chaos(payload):
    economy = payload["tracking_economy"]
    expected = economy["expected_fraction"]
    assert economy["full_mean_tracked"] > 0
    # Theorem 4.2's fraction, with slack for chaos-time noise.
    assert economy["tracked_ratio"] <= expected + 0.05
    assert economy["tracked_ratio"] > 0


def test_contract_check_matches_prediction_band(payload):
    modes = payload["contract_check"]["modes"]
    jet, full, stateless = modes["jet"], modes["full"], modes["stateless"]
    assert jet["unannounced_additions"] > 0
    assert jet["predicted_breakage_adjusted"] > 10  # enough signal to judge
    # Full CT tracked every connection, so unannounced adds break ~none.
    assert full["pcc_violations"] <= 1
    # JET's measured breakage sits below the §2.3 prediction by the
    # right-censoring observation factor, but well above zero.
    ratio = jet["measured_over_predicted"]
    assert 0.15 <= ratio <= 1.2
    # All of JET's contract-scenario violations are fault-attributed.
    assert jet["violations_under_fault"] == jet["pcc_violations"]
    # Stateless breaks at least as much as JET.
    assert stateless["pcc_violations"] >= jet["pcc_violations"]
