"""JET load-balancer tests: Algorithm 1 line by line, plus PCC end-to-end."""

import pytest

from repro.ch import AnchorHash, HRWHash
from repro.ch.properties import sample_keys
from repro.core import JETLoadBalancer, make_jet
from repro.ct import LRUCT, UnboundedCT

W = [f"w{i}" for i in range(10)]
H = ["h0", "h1"]


def fresh_lb(ct=None, **kwargs):
    return JETLoadBalancer(HRWHash(W, H), ct=ct, **kwargs)


class TestGetDestination:
    def test_tracked_connection_served_from_ct(self):
        lb = fresh_lb()
        lb.ct.put(42, W[7])
        assert lb.get_destination(42) == W[7]

    def test_untracked_safe_connection_not_inserted(self):
        lb = fresh_lb()
        keys = sample_keys(500, seed=1)
        safe = [k for k in keys if not lb.ch.lookup_with_safety(k)[1]]
        for k in safe:
            lb.get_destination(k)
        assert lb.tracked_connections == 0

    def test_unsafe_connection_inserted(self):
        lb = fresh_lb()
        keys = sample_keys(500, seed=2)
        unsafe = [k for k in keys if lb.ch.lookup_with_safety(k)[1]]
        assert unsafe, "test needs at least one unsafe key"
        for k in unsafe:
            lb.get_destination(k)
        assert lb.tracked_connections == len(unsafe)

    def test_tracking_fraction_matches_theorem42(self):
        lb = fresh_lb()
        keys = sample_keys(4000, seed=3)
        for k in keys:
            lb.get_destination(k)
        fraction = lb.tracked_connections / len(keys)
        assert fraction == pytest.approx(len(H) / (len(W) + len(H)), rel=0.3)

    def test_stale_ct_entry_cleaned_lazily(self):
        lb = fresh_lb(active_cleanup=False)
        lb.ct.put(42, "long-gone")  # simulates an entry surviving removal
        destination = lb.get_destination(42)
        assert destination in lb.working
        assert lb.ct.peek(42) != "long-gone"


class TestBackendEvents:
    def test_add_working_requires_horizon(self):
        lb = fresh_lb()
        from repro.ch.base import BackendError

        with pytest.raises(BackendError):
            lb.add_working_server("unknown")

    def test_remove_cleans_ct_actively(self):
        lb = fresh_lb()
        keys = sample_keys(3000, seed=4)
        for k in keys:
            lb.get_destination(k)
        victim = W[0]
        had = sum(1 for k in lb.ct if lb.ct.peek(k) == victim)
        lb.remove_working_server(victim)
        assert all(lb.ct.peek(k) != victim for k in lb.ct)
        assert lb.ct.stats.invalidations == had

    def test_remove_without_active_cleanup_still_correct(self):
        lb = fresh_lb(active_cleanup=False)
        keys = sample_keys(2000, seed=5)
        for k in keys:
            lb.get_destination(k)
        lb.remove_working_server(W[0])
        for k in keys:
            assert lb.get_destination(k) in lb.working

    def test_horizon_management_delegates(self):
        lb = fresh_lb()
        lb.add_horizon_server("h9")
        assert "h9" in lb.horizon
        lb.remove_horizon_server("h9")
        assert "h9" not in lb.horizon

    def test_force_add(self):
        lb = fresh_lb()
        lb.force_add_working_server("surprise")
        assert "surprise" in lb.working


class TestPCCInvariants:
    """End-to-end: no tracked-or-safe connection ever changes destination."""

    def test_pcc_through_horizon_addition(self):
        lb = fresh_lb()
        keys = sample_keys(2000, seed=6)
        first = {k: lb.get_destination(k) for k in keys}
        lb.add_working_server("h0")
        for k in keys:
            assert lb.get_destination(k) == first[k]

    def test_pcc_through_full_horizon_admission(self):
        lb = fresh_lb()
        keys = sample_keys(2000, seed=7)
        first = {k: lb.get_destination(k) for k in keys}
        for h in list(lb.horizon):
            lb.add_working_server(h)
        for k in keys:
            assert lb.get_destination(k) == first[k]

    def test_pcc_through_removal_except_victims(self):
        lb = fresh_lb()
        keys = sample_keys(2000, seed=8)
        first = {k: lb.get_destination(k) for k in keys}
        lb.remove_working_server(W[4])
        for k in keys:
            if first[k] == W[4]:
                continue  # inevitably broken
            assert lb.get_destination(k) == first[k]

    def test_pcc_through_remove_then_rejoin(self):
        lb = fresh_lb()
        keys = sample_keys(1500, seed=9)
        first = {k: lb.get_destination(k) for k in keys}
        lb.remove_working_server(W[2])
        survivors = {k: d for k, d in first.items() if d != W[2]}
        mid = {k: lb.get_destination(k) for k in survivors}
        lb.add_working_server(W[2])  # rejoin via the horizon
        for k, d in survivors.items():
            assert lb.get_destination(k) == d == mid[k]

    def test_pcc_with_anchor_family_and_churn(self):
        ch = AnchorHash(W, H, capacity=64)
        lb = JETLoadBalancer(ch)
        keys = sample_keys(1500, seed=10)
        truth = {k: lb.get_destination(k) for k in keys}
        script = [
            ("add", "h0"), ("remove", W[1]), ("add", "h1"),
            ("remove", W[6]), ("add", W[1]), ("add", W[6]),
        ]
        for op, name in script:
            if op == "add":
                lb.add_working_server(name)
            else:
                lb.remove_working_server(name)
                truth = {k: d for k, d in truth.items() if d != name}
            for k, d in truth.items():
                assert lb.get_destination(k) == d, (op, name)


class TestBoundedCTBehaviour:
    def test_eviction_can_break_unsafe_connections(self):
        # With a tiny CT, JET's guarantee degrades exactly as the paper's
        # Fig. 3 smallest-table points show.
        lb = JETLoadBalancer(HRWHash(W, H), ct=LRUCT(4))
        keys = sample_keys(3000, seed=11)
        first = {k: lb.get_destination(k) for k in keys}
        for h in list(lb.horizon):
            lb.add_working_server(h)
        broken = sum(lb.get_destination(k) != first[k] for k in keys)
        assert broken > 0  # guarantee needs table >= unsafe count

    def test_unbounded_default(self):
        lb = JETLoadBalancer(HRWHash(W, H))
        assert isinstance(lb.ct, UnboundedCT)


class TestFactory:
    def test_make_jet_families(self):
        for family in ("hrw", "ring", "table", "anchor"):
            lb = make_jet(family, W, H)
            assert lb.get_destination(12345) in lb.working

    def test_make_jet_rejects_maglev(self):
        with pytest.raises(ValueError):
            make_jet("maglev", W, H)

    def test_make_jet_unknown_family(self):
        with pytest.raises(ValueError):
            make_jet("sha256", W, H)

    def test_ct_capacity_plumbing(self):
        lb = make_jet("hrw", W, H, ct_capacity=16, ct_policy="fifo")
        from repro.ct import FIFOCT

        assert isinstance(lb.ct, FIFOCT)
        assert lb.ct.capacity == 16
