"""The RSS front stage: shard function, seed stream, and shard plans.

The contract under test is worker-count invariance: a flow's shard and a
shard's seeds are pure functions of (key/master seed, shard id), the
per-shard packet subsequences are a disjoint order-preserving cover of
the trace, and event translation reproduces the single-process
interleaving -- including events that trail a shard's last packet.
"""

import numpy as np
import pytest

from repro.shard import SHARD_SALT, ShardPlan, shard_of_key, shard_of_keys, shard_seed
from repro.traces import zipf_trace


def small_trace(seed=11):
    return zipf_trace(skew=1.0, n_packets=5_000, population=1_000, seed=seed)


class TestShardFunction:
    def test_scalar_and_vector_agree(self):
        keys = small_trace().flow_keys
        for n_shards in (1, 2, 3, 7):
            vector = shard_of_keys(keys, n_shards)
            assert vector.dtype == np.int32
            scalar = [shard_of_key(int(k), n_shards) for k in keys[:200]]
            assert vector[:200].tolist() == scalar

    def test_deterministic_and_in_range(self):
        keys = small_trace().flow_keys
        a = shard_of_keys(keys, 5)
        b = shard_of_keys(keys, 5)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 5

    def test_single_shard_is_zero(self):
        keys = small_trace().flow_keys
        assert not shard_of_keys(keys, 1).any()
        assert shard_of_key(123, 1) == 0

    def test_roughly_balanced(self):
        # splitmix64 over salted keys: shard sizes within ~3 sigma of even.
        keys = small_trace().flow_keys
        counts = np.bincount(shard_of_keys(keys, 4), minlength=4)
        expected = len(keys) / 4
        assert np.all(np.abs(counts - expected) < 4 * np.sqrt(expected))

    def test_salt_decorrelates_from_unsalted_mix(self):
        keys = small_trace().flow_keys
        salted = shard_of_keys(keys, 2)
        unsalted = shard_of_keys(keys ^ np.uint64(SHARD_SALT), 2)
        assert not np.array_equal(salted, unsalted)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            shard_of_key(1, 0)
        with pytest.raises(ValueError):
            shard_of_keys(np.array([1], dtype=np.uint64), 0)


class TestShardSeed:
    def test_pure_and_distinct(self):
        seeds = [shard_seed(42, shard) for shard in range(16)]
        assert seeds == [shard_seed(42, shard) for shard in range(16)]
        assert len(set(seeds)) == 16

    def test_master_seed_matters(self):
        assert shard_seed(1, 0) != shard_seed(2, 0)

    def test_rejects_negative_shard(self):
        with pytest.raises(ValueError):
            shard_seed(0, -1)


class TestShardPlan:
    def test_positions_partition_the_trace(self):
        trace = small_trace()
        plan = ShardPlan.partition(trace, 3)
        merged = np.concatenate(plan.positions)
        assert len(merged) == trace.n_packets
        assert np.array_equal(np.sort(merged), np.arange(trace.n_packets))
        for pos in plan.positions:
            assert np.all(np.diff(pos) > 0)  # order-preserving

    def test_shard_trace_shares_keys_and_keeps_flow_ids(self):
        trace = small_trace()
        plan = ShardPlan.partition(trace, 4)
        for shard in range(4):
            sub = plan.shard_trace(shard)
            assert sub.flow_keys is trace.flow_keys  # zero-copy column
            assert np.array_equal(sub.packets, trace.packets[plan.positions[shard]])
            # Every packet's flow belongs to this shard.
            assert np.all(plan.flow_shards[sub.packets] == shard)

    def test_packets_per_shard_sums_to_trace(self):
        trace = small_trace()
        plan = ShardPlan.partition(trace, 5)
        assert sum(plan.packets_per_shard()) == trace.n_packets

    def test_event_translation_local_and_trailing(self):
        trace = small_trace()
        plan = ShardPlan.partition(trace, 2)
        fired = []
        pos0 = plan.positions[0]
        mid_global = int(pos0[len(pos0) // 2])
        events = [
            (mid_global, lambda lb: fired.append("mid")),
            # Past shard 0's last packet but inside the trace: trailing there.
            (int(pos0[-1]) + 1 if int(pos0[-1]) + 1 < trace.n_packets
             else trace.n_packets - 1, lambda lb: fired.append("late")),
            # At/past the end of the trace: dropped, as in single-process replay.
            (trace.n_packets, lambda lb: fired.append("never")),
        ]
        local, trailing = plan.shard_events(0, events)
        indices = [index for index, _ in local]
        assert indices == sorted(indices)
        for index, _ in local:
            assert 0 <= index < len(pos0)
        # The mid event lands exactly before the first local packet at or
        # past its global index.
        expected_local = int(np.searchsorted(pos0, mid_global, side="left"))
        assert (expected_local, events[0][1]) in [(i, f) for i, f in local]
        assert all(f is not events[2][1] for _, f in local)
        assert events[2][1] not in trailing

    def test_membership_event_objects_are_accepted(self):
        from repro.shard import MembershipEvent

        trace = small_trace()
        plan = ShardPlan.partition(trace, 2)
        event = MembershipEvent(10, "remove_working", "s0")
        local, trailing = plan.shard_events(0, [event])
        assert len(local) + len(trailing) == 1
