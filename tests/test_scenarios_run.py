"""Scenario compilation, envelope monitors, and the determinism contract.

The load-bearing guarantees:

- timeline lowering is exact (zone failures target the zone's contiguous
  server range, rolling deploys march through explicit batches, region
  failovers black out past the end of the run);
- envelope bounds compile to monitors with the documented units and
  skip/violate semantics;
- a scenario's result is a pure function of (spec, seed, shards):
  byte-identical across repeat runs AND across ``--workers``, and a
  ``--config-out`` persisted config replays to the same numbers through
  the plain simulate path.
"""

import json

import pytest

from repro.faults.events import FLAP, GROUP, PROBE_LOSS
from repro.obs import Registry, metrics as M
from repro.scenarios import (
    BalanceCVMonitor,
    BreakageBoundMonitor,
    EnvelopeSpec,
    ScenarioSpec,
    build_fault_schedule,
    compile_scenario,
    envelope_margins,
    envelope_monitors,
    fingerprint,
    run_scenario,
)
from repro.shard import simulate_sharded
from repro.sim.persist import load_config, save_config

TINY = {
    "name": "tiny",
    "duration_s": 8,
    "seed": 5,
    "shards": 2,
    "fleet": {"servers": 12, "horizon": 2},
    "workload": {
        "connection_rate": 90,
        "flow_duration": {"kind": "exponential", "mean": 2.0},
    },
    "update_rate_per_min": 6,
    "envelope": {"tracked_fraction_tolerance": 1.0, "max_breakage": 0.5},
}

ZONED = {
    "name": "zoned",
    "duration_s": 20,
    "fleet": {
        "horizon": 2,
        "zones": [
            {"name": "a", "servers": 4},
            {"name": "b", "servers": 6, "weight": 2.0},
        ],
    },
    "workload": {"connection_rate": 50},
}


def tiny_spec(**overrides):
    return ScenarioSpec.parse({**TINY, **overrides})


def zoned_spec(timeline=None, **overrides):
    data = {**ZONED, **overrides}
    if timeline is not None:
        data["timeline"] = timeline
    return ScenarioSpec.parse(data)


class TestCompileLowering:
    def test_zone_failure_targets_contiguous_range(self):
        spec = zoned_spec(
            [{"kind": "zone_failure", "zone": "b", "at": 5, "downtime_s": 3}]
        )
        schedule = build_fault_schedule(spec)
        (event,) = schedule.events
        assert event.kind == GROUP
        assert event.time == 5.0
        assert event.targets == (4, 5, 6, 7, 8, 9)  # zone b = servers [4, 10)
        assert event.downtime == 3.0

    def test_rolling_deploy_marches_in_batches(self):
        spec = tiny_spec(
            timeline=[
                {
                    "kind": "rolling_deploy",
                    "at": 1,
                    "servers": 5,
                    "batch": 2,
                    "interval_s": 1.5,
                    "drain_s": 0.5,
                }
            ]
        )
        events = build_fault_schedule(spec).events
        assert [e.targets for e in events] == [(0, 1), (2, 3), (4,)]
        assert [e.time for e in events] == [1.0, 2.5, 4.0]
        assert all(e.kind == GROUP and e.downtime == 0.5 for e in events)

    def test_region_failover_outlasts_the_run(self):
        spec = zoned_spec([{"kind": "region_failover", "zone": "a", "at": 12}])
        (event,) = build_fault_schedule(spec).events
        assert event.targets == (0, 1, 2, 3)
        # blackout = duration - when + slack: the region never returns.
        assert event.downtime == pytest.approx(20 - 12 + 60.0)

    def test_flap_storm_spreads_victims(self):
        spec = tiny_spec(
            timeline=[
                {
                    "kind": "flap_storm",
                    "at": 2,
                    "victims": 3,
                    "flaps": 4,
                    "interval_s": 0.5,
                    "spread_s": 3.0,
                }
            ]
        )
        events = build_fault_schedule(spec).events
        assert all(e.kind == FLAP and e.flap_count == 4 for e in events)
        assert [e.time for e in events] == [2.0, 3.0, 4.0]

    def test_probe_blackout_lowered(self):
        spec = tiny_spec(
            control={},
            timeline=[
                {"kind": "probe_blackout", "at": 3, "duration_s": 2, "loss": 0.7}
            ],
        )
        (event,) = build_fault_schedule(spec).events
        assert event.kind == PROBE_LOSS
        assert event.duration == 2.0 and event.intensity == 0.7

    def test_chaos_merges_with_scripted_events(self):
        spec = zoned_spec(
            [
                {"kind": "zone_failure", "zone": "a", "at": 5},
                {"kind": "chaos", "crash_rate_per_min": 30},
            ]
        )
        schedule = build_fault_schedule(spec)
        kinds = {e.kind for e in schedule.events}
        assert GROUP in kinds and len(schedule) > 1
        times = [e.time for e in schedule.events]
        assert times == sorted(times)

    def test_empty_timeline_has_no_schedule(self):
        assert build_fault_schedule(zoned_spec()) is None

    def test_fleet_maps_only_non_default(self):
        compiled = compile_scenario(zoned_spec())
        # zone a has default weight -> only zone b appears in the map.
        assert compiled.config.server_weights == {s: 2.0 for s in range(4, 10)}
        assert compiled.config.probe_loss_by_server is None
        assert compiled.zone_ranges == {"a": (0, 4), "b": (4, 10)}

    def test_seed_override_reseeds_chaos(self):
        spec = tiny_spec(timeline=[{"kind": "chaos", "crash_rate_per_min": 30}])
        a = compile_scenario(spec, seed=1).config.fault_schedule
        b = compile_scenario(spec, seed=2).config.fault_schedule
        assert [e.time for e in a.events] != [e.time for e in b.events]

    def test_control_block_compiles_to_closed_loop(self):
        compiled = compile_scenario(tiny_spec(control={"lead_time_s": 4.0}))
        assert compiled.config.control
        assert compiled.config.scale_lead_time_s == 4.0


class TestEnvelopeMonitors:
    def test_breakage_bound_semantics(self):
        reg = Registry()
        reg.counter(M.FLOWS).inc(1000)
        reg.counter(M.PCC_VIOLATIONS).inc(30)
        assert BreakageBoundMonitor(0.05).evaluate(reg).ok
        result = BreakageBoundMonitor(0.02).evaluate(reg)
        assert result.violated
        assert result.observed == pytest.approx(0.03)

    def test_breakage_skips_without_flows(self):
        result = BreakageBoundMonitor(0.05).evaluate(Registry())
        assert result.skipped and result.ok

    def test_balance_cv_semantics(self):
        reg = Registry()
        reg.gauge(M.BALANCE_CV_MAX).set(0.9)
        assert BalanceCVMonitor(1.0).evaluate(reg).ok
        assert BalanceCVMonitor(0.8).evaluate(reg).violated
        assert BalanceCVMonitor(0.8).evaluate(Registry()).skipped

    def test_monitor_suite_composition(self):
        env = EnvelopeSpec.parse(
            {"tracked_fraction_tolerance": 0.3, "max_breakage": 0.1}
        )
        names = [m.name for m in envelope_monitors(env)]
        assert "tracked_fraction" in names
        assert "breakage_bound" in names
        assert "balance_cv" not in names  # bound not set

    def test_margins_units(self):
        env = EnvelopeSpec.parse(
            {"tracked_fraction_tolerance": 0.3, "max_breakage": 0.1}
        )
        reg = Registry()
        reg.counter(M.FLOWS).inc(1000)
        reg.counter(M.TRACKED_FLOWS).inc(110)
        reg.gauge(M.EXPECTED_TRACKED_FRACTION).set(0.1)
        reg.counter(M.PCC_VIOLATIONS).inc(40)
        margins = envelope_margins(env, [m.evaluate(reg) for m in envelope_monitors(env)])
        # tracked error = |0.11 - 0.1| / 0.1 = 0.1 -> margin 0.3 - 0.1
        assert margins["tracked_fraction"] == pytest.approx(0.2)
        # breakage margin is in the bound's own units: 0.1 - 0.04
        assert margins["breakage_bound"] == pytest.approx(0.06)

    def test_margins_none_when_skipped(self):
        env = EnvelopeSpec.parse({"max_breakage": 0.1})
        margins = envelope_margins(
            env, [m.evaluate(Registry()) for m in envelope_monitors(env)]
        )
        assert margins["breakage_bound"] is None


class TestDeterminism:
    def test_run_twice_is_byte_identical(self):
        spec = tiny_spec()
        a = run_scenario(spec)
        b = run_scenario(spec)
        assert fingerprint(a.result) == fingerprint(b.result)

    def test_workers_do_not_change_results(self):
        spec = tiny_spec()
        one = run_scenario(spec, workers=1)
        two = run_scenario(spec, workers=2)
        assert fingerprint(one.result) == fingerprint(two.result)
        assert [m.to_json() for m in one.monitors] == [
            m.to_json() for m in two.monitors
        ]
        assert one.margins == two.margins

    def test_fingerprint_ignores_wall_clock(self):
        result = run_scenario(tiny_spec()).result
        assert "wall_seconds" not in fingerprint(result)

    def test_config_out_replays_identically(self, tmp_path):
        # compile -> persist -> load -> run must equal compile -> run:
        # the persisted config is the whole effective scenario.
        compiled = compile_scenario(tiny_spec())
        path = str(tmp_path / "tiny.json")
        save_config(compiled.config, path)
        loaded = load_config(path)
        direct = simulate_sharded(compiled.config, n_workers=1, n_shards=2)
        replayed = simulate_sharded(loaded, n_workers=1, n_shards=2)
        assert fingerprint(direct) == fingerprint(replayed)

    def test_mode_override_changes_run_not_spec(self):
        spec = tiny_spec()
        report = run_scenario(spec, mode="full")
        assert report.mode == "full"
        assert spec.mode == "jet"


class TestReport:
    def test_report_surface(self):
        report = run_scenario(tiny_spec())
        assert report.ok
        assert report.scenario == "tiny"
        payload = report.to_json()
        assert payload["ok"] is True
        assert payload["result"]["flows_started"] == report.result.flows_started
        text = report.render()
        assert "tiny" in text and "OK" in text

    def test_violation_flips_ok(self):
        # An absurdly tight breakage bound under heavy churn must trip.
        spec = tiny_spec(
            envelope={"max_breakage": 0.0},
            update_rate_per_min=60,
        )
        report = run_scenario(spec)
        if report.result.pcc_violations > 0:
            assert not report.ok
            assert any(m.name == "breakage_bound" for m in report.violations)

    def test_json_report_is_serializable(self):
        report = run_scenario(tiny_spec())
        json.dumps(report.to_json())
