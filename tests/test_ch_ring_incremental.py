"""Differential tests: incremental ring == rebuild-from-scratch ring."""

import random

import pytest

from repro.ch.base import BackendError
from repro.ch.properties import sample_keys
from repro.ch.ring import RingHash
from repro.ch.ring_incremental import IncrementalRingHash

W = [f"w{i}" for i in range(8)]
H = [f"h{i}" for i in range(3)]
KEYS = sample_keys(800, seed=31)


def assert_equivalent(incremental: IncrementalRingHash, keys=KEYS):
    """Compare against a fresh ring built from the same sets."""
    reference = RingHash(
        sorted(incremental.working, key=str),
        sorted(incremental.horizon, key=str),
        virtual_nodes=incremental.virtual_nodes,
    )
    for k in keys:
        assert incremental.lookup_with_safety(k) == reference.lookup_with_safety(k)


class TestFreshEquivalence:
    def test_initial_state_matches_rebuild(self):
        assert_equivalent(IncrementalRingHash(W, H, virtual_nodes=20))

    def test_no_horizon(self):
        assert_equivalent(IncrementalRingHash(W, [], virtual_nodes=20))


class TestSingleOps:
    def make(self):
        return IncrementalRingHash(W, H, virtual_nodes=20)

    def test_add_working(self):
        ch = self.make()
        ch.add_working("h0")
        assert_equivalent(ch)

    def test_remove_working(self):
        ch = self.make()
        ch.remove_working("w3")
        assert_equivalent(ch)

    def test_add_horizon(self):
        ch = self.make()
        ch.add_horizon("fresh")
        assert_equivalent(ch)

    def test_remove_horizon(self):
        ch = self.make()
        ch.remove_horizon("h1")
        assert_equivalent(ch)

    def test_remove_then_readd(self):
        ch = self.make()
        before = [ch.lookup(k) for k in KEYS]
        ch.remove_working("w5")
        ch.add_working("w5")
        assert [ch.lookup(k) for k in KEYS] == before

    def test_error_paths(self):
        ch = self.make()
        with pytest.raises(BackendError):
            ch.add_working("nope")
        with pytest.raises(BackendError):
            ch.remove_working("h0")
        with pytest.raises(BackendError):
            ch.add_horizon("w0")
        with pytest.raises(BackendError):
            ch.remove_horizon("w0")


class TestChurnEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_sequences_stay_equivalent(self, seed):
        ch = IncrementalRingHash(W, H, virtual_nodes=12)
        rng = random.Random(seed)
        for step in range(40):
            working = sorted(ch.working, key=str)
            horizon = sorted(ch.horizon, key=str)
            op = rng.random()
            if op < 0.3 and horizon:
                ch.add_working(rng.choice(horizon))
            elif op < 0.6 and len(working) > 1:
                ch.remove_working(rng.choice(working))
            elif op < 0.8:
                ch.add_horizon(f"s{seed}-{step}")
            elif horizon:
                ch.remove_horizon(rng.choice(horizon))
            if ch.working:
                assert_equivalent(ch, KEYS[:200])

    def test_empty_working_recovery(self):
        ch = IncrementalRingHash(["only"], ["h0"], virtual_nodes=10)
        ch.remove_working("only")
        with pytest.raises(BackendError):
            ch.lookup(1)
        ch.add_working("only")  # triggers the lazy rebuild path
        assert_equivalent(ch, KEYS[:100])


class TestJETContractHolds:
    def test_safety_flag_vs_union(self):
        ch = IncrementalRingHash(W, H, virtual_nodes=20)
        ch.remove_working("w0")
        ch.add_working("h2")
        for k in KEYS:
            destination, unsafe = ch.lookup_with_safety(k)
            assert destination in ch.working
            assert unsafe == (destination != ch.lookup_union(k))
