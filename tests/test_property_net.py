"""Property-based tests for the packet-parsing layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flow import PROTO_TCP, PROTO_UDP, FiveTuple
from repro.net.flow6 import FiveTuple6
from repro.net.parse import build_ethernet, build_ipv4, parse_ethernet, parse_ipv4, try_parse_ethernet
from repro.net.parse6 import build_ipv6, parse_ipv6

ports = st.integers(min_value=0, max_value=65535)
protocols = st.sampled_from([PROTO_TCP, PROTO_UDP])
ipv4 = st.integers(min_value=0, max_value=2**32 - 1)
ipv6 = st.integers(min_value=0, max_value=2**128 - 1)
payloads = st.binary(max_size=64)


class TestParseRoundtripProperties:
    @given(src=ipv4, dst=ipv4, sport=ports, dport=ports, proto=protocols, payload=payloads)
    @settings(max_examples=200, deadline=None)
    def test_ipv4_build_parse_identity(self, src, dst, sport, dport, proto, payload):
        ft = FiveTuple(src, dst, sport, dport, proto)
        assert parse_ipv4(build_ipv4(ft, payload)) == ft
        assert parse_ethernet(build_ethernet(ft, payload)) == ft

    @given(src=ipv6, dst=ipv6, sport=ports, dport=ports, proto=protocols, payload=payloads)
    @settings(max_examples=200, deadline=None)
    def test_ipv6_build_parse_identity(self, src, dst, sport, dport, proto, payload):
        ft = FiveTuple6(src, dst, sport, dport, proto)
        assert parse_ipv6(build_ipv6(ft, payload)) == ft

    @given(src=ipv4, dst=ipv4, sport=ports, dport=ports, proto=protocols)
    @settings(max_examples=100, deadline=None)
    def test_key64_agrees_across_representations(self, src, dst, sport, dport, proto):
        # Parsing a built frame yields a tuple with the same dispatch key.
        ft = FiveTuple(src, dst, sport, dport, proto)
        parsed = parse_ethernet(build_ethernet(ft))
        assert parsed.key64 == ft.key64

    @given(data=st.binary(max_size=100))
    @settings(max_examples=300, deadline=None)
    def test_try_parse_never_raises(self, data):
        result = try_parse_ethernet(data)
        assert result is None or isinstance(result, FiveTuple)
