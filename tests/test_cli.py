"""CLI tests (direct invocation of repro.cli.main)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.mode == "jet"
        assert args.family == "anchor"
        # Chaos is opt-in: every fault rate defaults to zero.
        assert args.crash_rate == args.flap_rate == 0.0
        assert args.group_rate == args.unannounced_rate == 0.0

    def test_resilience_is_a_known_experiment(self):
        args = build_parser().parse_args(["experiment", "resilience", "--seed", "4"])
        assert args.name == "resilience"
        assert args.seed == 4


class TestCommands:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        assert capsys.readouterr().out.strip()

    def test_simulate_runs(self, capsys):
        code = main(
            [
                "simulate", "--servers", "20", "--horizon", "2",
                "--rate", "100", "--duration", "5", "--update-rate", "6",
                "--downtime", "2",
            ]
        )
        assert code == 0
        assert "PCC violations" in capsys.readouterr().out

    def test_simulate_ttl_policy(self, capsys):
        code = main(
            [
                "simulate", "--servers", "20", "--horizon", "2",
                "--rate", "100", "--duration", "5", "--ct-policy", "ttl",
                "--ct-ttl", "3",
            ]
        )
        assert code == 0

    def test_simulate_with_chaos(self, capsys):
        code = main(
            [
                "simulate", "--family", "table", "--servers", "20",
                "--horizon", "2", "--rate", "100", "--duration", "8",
                "--update-rate", "0", "--crash-rate", "10",
                "--unannounced-rate", "10", "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults=" in out

    def test_trace_generate_info_replay_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "t.npz")
        assert (
            main(
                [
                    "trace", "generate", "zipf", "--skew", "1.0",
                    "--packets", "20000", "--out", out,
                ]
            )
            == 0
        )
        assert main(["trace", "info", out]) == 0
        assert (
            main(
                [
                    "trace", "replay", out, "--family", "anchor",
                    "--mode", "jet", "--servers", "10", "--horizon", "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "tracked=" in output

    def test_trace_replay_sharded_matches_single(self, tmp_path, capsys):
        out = str(tmp_path / "t.npz")
        main(["trace", "generate", "zipf", "--packets", "20000", "--out", out])
        base = ["trace", "replay", out, "--family", "table", "--mode", "jet",
                "--servers", "10", "--horizon", "2"]
        assert main(base) == 0
        single = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        sharded = capsys.readouterr().out
        assert "shards=2 workers=2" in sharded
        # Same tracked/violations figures as the single-process replay.
        for token in single.split():
            if token.startswith(("tracked=", "violations=", "oversub=")):
                assert token in sharded

    def test_simulate_sharded_runs(self, capsys):
        code = main(
            [
                "simulate", "--servers", "20", "--horizon", "2",
                "--rate", "100", "--duration", "5", "--update-rate", "6",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert "flows=" in capsys.readouterr().out

    def test_trace_replay_maglev_full(self, tmp_path, capsys):
        out = str(tmp_path / "t.npz")
        main(["trace", "generate", "zipf", "--packets", "10000", "--out", out])
        assert (
            main(["trace", "replay", out, "--family", "maglev", "--mode", "full"])
            == 0
        )

    def test_experiment_theory_smoke(self, capsys):
        assert main(["experiment", "theory"]) == 0
        assert "Theorem 4.2" in capsys.readouterr().out
