"""HRW- and Ring-specific behaviour beyond the shared contract."""

import pytest

from repro.ch.base import BackendError
from repro.ch.hrw import HRWHash
from repro.ch.properties import sample_keys
from repro.ch.ring import RingHash, _vnode_positions


class TestHRW:
    def test_winner_has_max_weight(self):
        ch = HRWHash([f"w{i}" for i in range(8)], ["h0"])
        for k in sample_keys(300, seed=2):
            winner = ch.lookup(k)
            weights = {
                name: hasher.weight(k) for name, hasher in ch._working.items()
            }
            assert weights[winner] == max(weights.values())

    def test_unsafe_iff_horizon_weight_beats_winner(self):
        ch = HRWHash([f"w{i}" for i in range(8)], ["h0", "h1"])
        for k in sample_keys(500, seed=3):
            winner, unsafe = ch.lookup_with_safety(k)
            winner_weight = ch._working[winner].weight(k)
            beats = any(h.weight(k) > winner_weight for h in ch._horizon.values())
            assert unsafe == beats

    def test_empty_working_raises(self):
        ch = HRWHash([], ["h0"])
        with pytest.raises(BackendError):
            ch.lookup(1)

    def test_union_lookup_empty_everything_raises(self):
        ch = HRWHash([], [])
        with pytest.raises(BackendError):
            ch.lookup_union(1)

    def test_insertion_order_irrelevant(self):
        keys = sample_keys(400, seed=4)
        a = HRWHash(["s1", "s2", "s3", "s4"], [])
        b = HRWHash(["s4", "s2", "s1", "s3"], [])
        assert all(a.lookup(k) == b.lookup(k) for k in keys)


class TestRing:
    def test_vnode_positions_deterministic_and_distinct(self):
        p1 = _vnode_positions("server-a", 100)
        p2 = _vnode_positions("server-a", 100)
        assert p1 == p2
        assert len(set(p1)) == 100
        assert set(p1) != set(_vnode_positions("server-b", 100))

    def test_more_vnodes_better_balance(self):
        keys = sample_keys(6000, seed=6)
        working = [f"s{i}" for i in range(10)]

        def spread(vnodes):
            ch = RingHash(working, virtual_nodes=vnodes)
            counts = {}
            for k in keys:
                d = ch.lookup(k)
                counts[d] = counts.get(d, 0) + 1
            mean = len(keys) / len(working)
            return max(counts.values()) / mean

        assert spread(200) < spread(2)

    def test_invalid_vnodes_rejected(self):
        with pytest.raises(ValueError):
            RingHash(["a"], virtual_nodes=0)

    def test_horizon_entry_maps_to_working_successor(self):
        # Every key must be served by a *working* server even when its ring
        # successor is a horizon vnode (Algorithm 3's two-step population).
        ch = RingHash([f"s{i}" for i in range(5)], [f"t{i}" for i in range(5)],
                      virtual_nodes=20)
        for k in sample_keys(2000, seed=8):
            destination, unsafe = ch.lookup_with_safety(k)
            assert destination in ch.working
            if unsafe:
                assert ch.lookup_union(k) in ch.horizon

    def test_rebuild_is_lazy_but_correct(self):
        ch = RingHash(["a", "b", "c"], ["x"], virtual_nodes=30)
        keys = sample_keys(200, seed=10)
        before = [ch.lookup(k) for k in keys]
        ch.remove_working("b")            # marks dirty
        after = [ch.lookup(k) for k in keys]
        assert all(d != "b" for d in after)
        moved = sum(x != y for x, y in zip(before, after))
        assert moved == sum(d == "b" for d in before)

    def test_empty_working_raises(self):
        ch = RingHash([], ["x"], virtual_nodes=10)
        with pytest.raises(BackendError):
            ch.lookup(1)
