"""Unit tests for the scalar 64-bit mixers."""

import pytest

from repro.hashing.mix import MASK64, fmix64, mix2, mix3, splitmix64, to_unit


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_within_64_bits(self):
        for x in (0, 1, MASK64, 2**63, 12345678901234567890):
            assert 0 <= splitmix64(x) <= MASK64

    def test_distinct_on_sequential_inputs(self):
        outputs = {splitmix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000

    def test_known_reference_value(self):
        # splitmix64 of state 0 (first output of the reference generator).
        assert splitmix64(0) == 0xE220A8397B1DCDAF

    def test_avalanche_rough(self):
        # Flipping one input bit should flip roughly half the output bits.
        base = splitmix64(0x12345678)
        flipped = splitmix64(0x12345678 ^ 1)
        differing = bin(base ^ flipped).count("1")
        assert 10 <= differing <= 54


class TestFmix64:
    def test_deterministic_and_bounded(self):
        assert fmix64(99) == fmix64(99)
        assert 0 <= fmix64(99) <= MASK64

    def test_bijective_on_sample(self):
        outputs = {fmix64(i) for i in range(20_000)}
        assert len(outputs) == 20_000

    def test_zero_fixed_point(self):
        # fmix64 famously maps 0 -> 0 (xor/multiply structure).
        assert fmix64(0) == 0

    def test_handles_values_above_64_bits(self):
        assert fmix64(2**64 + 5) == fmix64(5)


class TestMixCombiners:
    def test_mix2_asymmetric(self):
        assert mix2(1, 2) != mix2(2, 1)

    def test_mix2_sensitive_to_both_arguments(self):
        assert mix2(1, 2) != mix2(1, 3)
        assert mix2(1, 2) != mix2(4, 2)

    def test_mix3_differs_from_mix2(self):
        assert mix3(1, 2, 3) != mix2(1, 2)

    def test_mix3_order_sensitive(self):
        assert mix3(1, 2, 3) != mix3(3, 2, 1)

    def test_bounded(self):
        assert 0 <= mix2(MASK64, MASK64) <= MASK64
        assert 0 <= mix3(MASK64, MASK64, MASK64) <= MASK64


class TestToUnit:
    def test_range(self):
        for x in (0, 1, MASK64, 2**63):
            assert 0.0 <= to_unit(x) < 1.0

    def test_monotone_scaling(self):
        assert to_unit(0) == 0.0
        assert to_unit(2**63) == pytest.approx(0.5)
        assert to_unit(MASK64) == pytest.approx(1.0, abs=1e-15)
