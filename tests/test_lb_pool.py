"""LB-pool (Section 6.2) tests."""

import pytest

from repro.ch import AnchorHash, HRWHash
from repro.ch.properties import sample_keys
from repro.core import FullCTLoadBalancer, JETLoadBalancer
from repro.core.lb_pool import LBPool

W = [f"w{i}" for i in range(12)]
H = ["h0", "h1"]
KEYS = sample_keys(2000, seed=61)


def jet_factory():
    return JETLoadBalancer(HRWHash(W, H))


def full_factory():
    return FullCTLoadBalancer(HRWHash(W, H))


class TestSteering:
    def test_pool_size_validation(self):
        with pytest.raises(ValueError):
            LBPool(jet_factory, size=0)

    def test_steering_is_deterministic_and_spread(self):
        pool = LBPool(jet_factory, size=4)
        assignments = [pool._steer(k) for k in KEYS]
        assert assignments == [pool._steer(k) for k in KEYS]
        counts = {id(m): 0 for m in pool.members}
        for member in assignments:
            counts[id(member)] += 1
        assert min(counts.values()) > len(KEYS) / 8  # roughly even

    def test_destinations_valid(self):
        pool = LBPool(jet_factory, size=3)
        for k in KEYS[:300]:
            assert pool.get_destination(k) in pool.working


class TestBackendBroadcast:
    def test_backend_events_reach_all_members(self):
        pool = LBPool(jet_factory, size=3)
        pool.remove_working_server(W[0])
        assert all(W[0] not in m.working for m in pool.members)
        pool.add_working_server(W[0])
        assert all(W[0] in m.working for m in pool.members)

    def test_horizon_events_reach_all_members(self):
        pool = LBPool(jet_factory, size=2)
        pool.add_horizon_server("h9")
        assert all("h9" in m.horizon for m in pool.members)
        pool.remove_horizon_server("h9")
        assert all("h9" not in m.horizon for m in pool.members)


class TestPoolChanges:
    def test_cannot_remove_last(self):
        pool = LBPool(jet_factory, size=1)
        with pytest.raises(ValueError):
            pool.remove_lb()

    def test_new_member_gets_current_backend_state(self):
        pool = LBPool(jet_factory, size=2)
        pool.remove_working_server(W[0])
        pool.add_working_server("h0")
        member = pool.add_lb()
        assert member.working == pool.members[0].working
        assert member.horizon == pool.members[0].horizon

    def test_pool_growth_resteers_and_breaks_unsynced(self):
        # §6.2: after a backend *addition*, tracked connections are pinned
        # to destinations that disagree with the current CH; re-steering
        # them onto a CT-less new LB breaks them.
        pool = LBPool(full_factory, size=3, sync=False)
        first = {k: pool.get_destination(k) for k in KEYS}
        pool.add_working_server("h0")
        for k in first:
            assert pool.get_destination(k) == first[k]  # CT protects them
        pool.add_lb()  # mod-n re-steer
        broken = sum(pool.get_destination(k) != d for k, d in first.items())
        assert broken > 0  # the Section 6.2 failure mode

    def test_sync_prevents_breakage(self):
        pool = LBPool(full_factory, size=3, sync=True)
        first = {k: pool.get_destination(k) for k in KEYS}
        pool.add_working_server("h0")
        for k in first:
            pool.get_destination(k)
        pool.add_lb()
        broken = sum(pool.get_destination(k) != d for k, d in first.items())
        assert broken == 0
        assert pool.synced_entries > 0


class TestSyncEconomy:
    def test_jet_syncs_fraction_of_full(self):
        jet_pool = LBPool(
            lambda: JETLoadBalancer(AnchorHash(W, H, capacity=56)), size=2, sync=True
        )
        full_pool = LBPool(
            lambda: FullCTLoadBalancer(AnchorHash(W, H, capacity=56)), size=2, sync=True
        )
        for k in KEYS:
            jet_pool.get_destination(k)
            full_pool.get_destination(k)
        assert full_pool.synced_entries == len(KEYS)
        ratio = jet_pool.synced_entries / full_pool.synced_entries
        assert ratio == pytest.approx(len(H) / (len(W) + len(H)), rel=0.4)

    def test_tracked_total_aggregates_members(self):
        pool = LBPool(full_factory, size=2, sync=False)
        for k in KEYS[:100]:
            pool.get_destination(k)
        assert pool.tracked_connections == 100  # each flow on exactly one LB
