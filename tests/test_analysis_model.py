"""Analytical-model tests: closed forms vs simulation."""

import pytest

from repro.analysis.model import (
    CTOccupancyModel,
    memory_saving_factor,
    tracking_probability,
    _inverse_normal_tail,
)
from repro.sim import Exponential, LogNormal, SimulationConfig, run_simulation


class TestClosedForms:
    def test_tracking_probability(self):
        assert tracking_probability(90, 10) == pytest.approx(0.1)
        assert tracking_probability(468, 47) == pytest.approx(47 / 515)

    def test_tracking_probability_validation(self):
        with pytest.raises(ValueError):
            tracking_probability(0, 0)

    def test_memory_saving_paper_example(self):
        # "if |H| is no more than 10% of |W| ... 11x smaller" (Section 3).
        assert memory_saving_factor(0.1) == pytest.approx(11.0)

    def test_memory_saving_validation(self):
        with pytest.raises(ValueError):
            memory_saving_factor(0)

    def test_inverse_normal_tail_known_points(self):
        assert _inverse_normal_tail(0.5) == pytest.approx(0.0, abs=1e-6)
        assert _inverse_normal_tail(0.1587) == pytest.approx(1.0, abs=5e-3)
        assert _inverse_normal_tail(0.00135) == pytest.approx(3.0, abs=2e-2)


class TestOccupancyModel:
    def test_littles_law(self):
        model = CTOccupancyModel(100.0, 20.0, 90, 10)
        assert model.active_connections == pytest.approx(2000.0)
        assert model.expected_tracked == pytest.approx(200.0)

    def test_retention_adds_dead_entries(self):
        lazy = CTOccupancyModel(100.0, 20.0, 90, 10, retention=30.0)
        assert lazy.expected_tracked == pytest.approx(200.0 + 0.1 * 100 * 30)

    def test_full_ct_ratio_matches_saving_factor(self):
        model = CTOccupancyModel(50.0, 10.0, 90, 10)
        ratio = model.full_ct_expected() / model.expected_tracked
        assert ratio == pytest.approx(memory_saving_factor(10 / 90), rel=1e-9)

    def test_table_size_exceeds_mean(self):
        model = CTOccupancyModel(100.0, 20.0, 90, 10)
        assert model.table_size_for(1e-3) > model.expected_tracked

    def test_validation(self):
        with pytest.raises(ValueError):
            CTOccupancyModel(0, 1, 9, 1)
        with pytest.raises(ValueError):
            CTOccupancyModel(1, 1, 9, 1, retention=-1)
        with pytest.raises(ValueError):
            CTOccupancyModel(1, 1, 9, 1).table_size_for(0)


class TestModelVsSimulation:
    def test_predicts_ttl_ct_occupancy(self):
        # Static backend so the tracked population is purely workload-driven.
        duration_dist = Exponential(8.0)
        cfg = SimulationConfig(
            duration_s=60.0,
            connection_rate=800.0,  # target concurrency
            n_servers=45,
            horizon_size=5,
            update_rate_per_min=0.0,
            duration_dist=duration_dist,
            ct_policy="ttl",
            ct_ttl=10.0,
            mode="jet",
            seed=9,
        )
        result = run_simulation(cfg)
        arrival_rate = cfg.connection_rate / duration_dist.mean()
        model = CTOccupancyModel(
            arrival_rate, duration_dist.mean(), 45, 5, retention=10.0
        )
        measured = result.tracked_series[len(result.tracked_series) // 2 :]
        mean_measured = sum(measured) / len(measured)
        assert mean_measured == pytest.approx(model.expected_tracked, rel=0.30)
