"""Tests for the Section 2.1 safety model."""

import pytest

from repro.ch import HRWHash
from repro.ch.properties import sample_keys
from repro.core.safety import (
    SafetyClass,
    SafetyReport,
    classify_event,
    classify_for_horizon,
)

W = [f"w{i}" for i in range(8)]
KEYS = sample_keys(1500, seed=13)


class TestClassifyEvent:
    def test_three_way_partition_on_removal(self):
        ch = HRWHash(W, ["h0"])
        truth = {k: ch.lookup(k) for k in KEYS}
        victim = W[0]
        ch.remove_working(victim)
        report = classify_event(truth, ch.lookup, removed=victim)
        assert report.total == len(KEYS)
        # Inevitably broken = exactly the victim's connections.
        assert report.inevitably_broken == {k for k, d in truth.items() if d == victim}
        # Consistent hashing: a removal makes nothing unsafe (property 1 of
        # Section 2.4).
        assert report.unsafe == set()

    def test_addition_has_no_inevitable_breakage(self):
        ch = HRWHash(W, ["h0"])
        truth = {k: ch.lookup(k) for k in KEYS}
        ch.add_working("h0")
        report = classify_event(truth, ch.lookup, removed=None)
        assert report.inevitably_broken == set()
        # Unsafe = precisely keys the new server captured.
        assert all(ch.lookup(k) == "h0" for k in report.unsafe)
        assert report.unsafe_fraction == pytest.approx(1 / 9, rel=0.5)

    def test_classify_lookup(self):
        report = SafetyReport(safe={1}, unsafe={2}, inevitably_broken={3})
        assert report.classify(1) is SafetyClass.SAFE
        assert report.classify(2) is SafetyClass.UNSAFE
        assert report.classify(3) is SafetyClass.INEVITABLY_BROKEN
        with pytest.raises(KeyError):
            report.classify(4)

    def test_unsafe_fraction_excludes_inevitable(self):
        report = SafetyReport(safe={1, 2, 3}, unsafe={4}, inevitably_broken={5, 6})
        assert report.unsafe_fraction == pytest.approx(0.25)

    def test_empty_report(self):
        report = SafetyReport()
        assert report.total == 0
        assert report.unsafe_fraction == 0.0


class TestClassifyForHorizon:
    def test_matches_lookup_with_safety(self):
        # Theorem 4.4: the connections JET flags unsafe must be exactly the
        # whole-horizon-addition unsafe set.
        ch = HRWHash(W, ["h0", "h1"])
        truth = {k: ch.lookup(k) for k in KEYS}
        report = classify_for_horizon(truth, ch.lookup_union)
        flagged = {k for k in KEYS if ch.lookup_with_safety(k)[1]}
        assert report.unsafe == flagged
        assert report.inevitably_broken == set()

    def test_no_horizon_means_all_safe(self):
        ch = HRWHash(W, [])
        truth = {k: ch.lookup(k) for k in KEYS[:200]}
        report = classify_for_horizon(truth, ch.lookup_union)
        assert report.unsafe == set()
        assert len(report.safe) == 200
