"""Trace persistence: atomic saves, memmap loads, streaming writes.

The cache contract under test: every writer publishes complete files
atomically (a torn write never leaves a half-trace under a cache key),
dotted cache tags survive suffix handling, unusable cache entries are
regenerated rather than fatal, and the uncompressed layout -- whether
written in one shot or streamed chunk by chunk -- is memmap-loadable
with contents identical to the in-memory load.
"""

import zipfile

import numpy as np
import pytest

from repro.traces import (
    TraceWriter,
    cached_trace,
    load_trace,
    save_trace,
    zipf_trace,
    zipf_trace_stream,
)
from repro.traces.io import _with_npz_suffix


def small_trace(seed=3):
    return zipf_trace(skew=1.0, n_packets=4_000, population=900, seed=seed)


def assert_traces_equal(a, b):
    assert a.name == b.name
    assert np.array_equal(a.flow_keys, b.flow_keys)
    assert np.array_equal(a.packets, b.packets)


class TestRoundtrip:
    def test_compressed_roundtrip(self, tmp_path):
        trace = small_trace()
        save_trace(trace, tmp_path / "t")
        assert_traces_equal(load_trace(tmp_path / "t"), trace)

    def test_uncompressed_roundtrip_and_mmap(self, tmp_path):
        trace = small_trace()
        save_trace(trace, tmp_path / "t", compressed=False)
        assert_traces_equal(load_trace(tmp_path / "t"), trace)
        mapped = load_trace(tmp_path / "t", mmap=True)
        assert isinstance(mapped.flow_keys, np.memmap)
        assert isinstance(mapped.packets, np.memmap)
        assert_traces_equal(mapped, trace)

    def test_mmap_of_compressed_archive_is_rejected(self, tmp_path):
        save_trace(small_trace(), tmp_path / "t", compressed=True)
        with pytest.raises(ValueError, match="compressed"):
            load_trace(tmp_path / "t", mmap=True)

    def test_mmap_trace_replays_like_memory_load(self, tmp_path):
        # The memmap view must be a drop-in Trace: same derived stats.
        trace = small_trace()
        save_trace(trace, tmp_path / "t", compressed=False)
        mapped = load_trace(tmp_path / "t", mmap=True)
        assert mapped.size_histogram() == trace.size_histogram()
        assert mapped.mean_flow_size() == trace.mean_flow_size()


class TestLifecycle:
    def test_close_releases_memmap_handles(self, tmp_path):
        save_trace(small_trace(), tmp_path / "t", compressed=False)
        mapped = load_trace(tmp_path / "t", mmap=True)
        backing = mapped.flow_keys._mmap
        mapped.close()
        assert backing.closed
        # Columns are detached, not left pointing at the dead mapping.
        assert mapped.flow_keys.size == 0 and mapped.packets.size == 0

    def test_close_is_idempotent(self, tmp_path):
        save_trace(small_trace(), tmp_path / "t", compressed=False)
        mapped = load_trace(tmp_path / "t", mmap=True)
        mapped.close()
        mapped.close()

    def test_close_on_in_memory_trace_is_noop(self):
        trace = small_trace()
        before = trace.n_flows
        trace.close()
        assert trace.n_flows == before  # columns untouched

    def test_context_manager_closes(self, tmp_path):
        trace = small_trace()
        save_trace(trace, tmp_path / "t", compressed=False)
        with load_trace(tmp_path / "t", mmap=True) as mapped:
            assert_traces_equal(mapped, trace)
            backing = mapped.packets._mmap
        assert backing.closed

    def test_load_error_leaves_no_open_handle(self, tmp_path):
        # The non-mmap loader owns its file handle, so a parse failure
        # (truncated archive) must not leak it -- checked by promoting
        # ResourceWarning to an error for the collection window.
        import gc
        import warnings

        save_trace(small_trace(), tmp_path / "t", compressed=False)
        path = tmp_path / "t.npz"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            with pytest.raises(
                (ValueError, OSError, EOFError, zipfile.BadZipFile, KeyError)
            ):
                load_trace(path)
            gc.collect()


class TestSuffixHandling:
    def test_dotted_tag_not_mangled(self):
        # with_suffix would turn "zipf.1.2" into "zipf.1.npz".
        assert _with_npz_suffix("cache/zipf.1.2").name == "zipf.1.2.npz"
        assert _with_npz_suffix("cache/zipf.1.2.npz").name == "zipf.1.2.npz"

    def test_dotted_tag_roundtrip(self, tmp_path):
        trace = small_trace()
        save_trace(trace, tmp_path / "zipf.1.2")
        assert (tmp_path / "zipf.1.2.npz").exists()
        assert_traces_equal(load_trace(tmp_path / "zipf.1.2"), trace)

    def test_cached_trace_dotted_tag_hits_cache(self, tmp_path):
        calls = []

        def factory():
            calls.append(1)
            return small_trace()

        a = cached_trace(factory, tmp_path, "zipf.1.2")
        b = cached_trace(factory, tmp_path, "zipf.1.2")
        assert len(calls) == 1
        assert_traces_equal(a, b)


class TestAtomicity:
    def test_save_leaves_no_temp_files(self, tmp_path):
        save_trace(small_trace(), tmp_path / "t")
        save_trace(small_trace(), tmp_path / "u", compressed=False)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.npz", "u.npz"]

    def test_overwrite_is_atomic_last_writer_wins(self, tmp_path):
        first, second = small_trace(seed=1), small_trace(seed=2)
        save_trace(first, tmp_path / "t")
        save_trace(second, tmp_path / "t")
        assert_traces_equal(load_trace(tmp_path / "t"), second)
        assert [p.name for p in tmp_path.iterdir()] == ["t.npz"]

    def test_writer_abort_leaves_nothing(self, tmp_path):
        writer = TraceWriter(tmp_path / "t", "partial", n_flows=10, n_packets=10)
        writer.write_flow_keys(np.arange(1, 11, dtype=np.uint64))
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_writer_context_aborts_on_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            with TraceWriter(tmp_path / "t", "partial", n_flows=4, n_packets=4):
                raise RuntimeError("generator died mid-write")
        assert list(tmp_path.iterdir()) == []


class TestCorruptionHandling:
    def test_truncated_file_rejected(self, tmp_path):
        save_trace(small_trace(), tmp_path / "t", compressed=False)
        path = tmp_path / "t.npz"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises((ValueError, OSError, EOFError, zipfile.BadZipFile, KeyError)):
            load_trace(path)
        with pytest.raises((ValueError, OSError, EOFError, zipfile.BadZipFile, KeyError)):
            load_trace(path, mmap=True)

    def test_garbage_file_rejected(self, tmp_path):
        (tmp_path / "t.npz").write_bytes(b"this is not a zip archive")
        with pytest.raises((ValueError, OSError, zipfile.BadZipFile)):
            load_trace(tmp_path / "t")

    def test_cached_trace_regenerates_over_corrupt_entry(self, tmp_path):
        calls = []

        def factory():
            calls.append(1)
            return small_trace()

        cached_trace(factory, tmp_path, "tag")
        (tmp_path / "tag.npz").write_bytes(b"torn write debris")
        regenerated = cached_trace(factory, tmp_path, "tag")
        assert len(calls) == 2
        assert_traces_equal(regenerated, small_trace())
        # The regeneration also repaired the cache entry.
        assert_traces_equal(load_trace(tmp_path / "tag"), small_trace())

    def test_cached_trace_mmap_mode(self, tmp_path):
        mapped = cached_trace(lambda: small_trace(), tmp_path, "tag", mmap=True)
        assert isinstance(mapped.packets, np.memmap)
        again = cached_trace(lambda: small_trace(), tmp_path, "tag", mmap=True)
        assert isinstance(again.packets, np.memmap)
        assert_traces_equal(mapped, again)

    def test_concurrent_writers_race_benignly(self, tmp_path):
        # Two "processes" caching under the same tag: interleave their
        # saves; whichever replace lands last, the entry stays complete.
        a, b = small_trace(seed=1), small_trace(seed=2)
        save_trace(a, tmp_path / "tag")
        save_trace(b, tmp_path / "tag")
        got = cached_trace(lambda: pytest.fail("cache should hit"), tmp_path, "tag")
        assert_traces_equal(got, b)


class TestTraceWriter:
    def test_streamed_trace_equals_one_shot(self, tmp_path):
        trace = small_trace()
        save_trace(trace, tmp_path / "oneshot", compressed=False)
        with TraceWriter(
            tmp_path / "streamed", trace.name, trace.n_flows, trace.n_packets
        ) as writer:
            for start in range(0, trace.n_flows, 257):
                writer.write_flow_keys(trace.flow_keys[start : start + 257])
            for start in range(0, trace.n_packets, 1013):
                writer.write_packets(trace.packets[start : start + 1013])
        # Same member layout (ZIP_STORED npy members), so both load paths
        # must see identical content -- including the memmap fast path.
        assert_traces_equal(load_trace(tmp_path / "streamed"), trace)
        streamed = load_trace(tmp_path / "streamed", mmap=True)
        assert isinstance(streamed.packets, np.memmap)
        assert_traces_equal(streamed, load_trace(tmp_path / "oneshot", mmap=True))

    def test_rejects_packets_before_keys_complete(self, tmp_path):
        with TraceWriter(tmp_path / "t", "t", n_flows=10, n_packets=5) as writer:
            writer.write_flow_keys(np.arange(1, 6, dtype=np.uint64))
            with pytest.raises(ValueError, match="fewer flow keys"):
                writer.write_packets(np.zeros(5, dtype=np.int64))
            writer.abort()

    def test_rejects_keys_after_packets(self, tmp_path):
        with TraceWriter(tmp_path / "t", "t", n_flows=2, n_packets=2) as writer:
            writer.write_flow_keys(np.array([1, 2], dtype=np.uint64))
            writer.write_packets(np.array([0, 1], dtype=np.int64))
            with pytest.raises(ValueError, match="before packets"):
                writer.write_flow_keys(np.array([3], dtype=np.uint64))
            writer.abort()

    def test_rejects_overflow_of_declared_lengths(self, tmp_path):
        with TraceWriter(tmp_path / "t", "t", n_flows=2, n_packets=2) as writer:
            with pytest.raises(ValueError, match="more flow keys"):
                writer.write_flow_keys(np.array([1, 2, 3], dtype=np.uint64))
            writer.write_flow_keys(np.array([1, 2], dtype=np.uint64))
            with pytest.raises(ValueError, match="more packets"):
                writer.write_packets(np.zeros(3, dtype=np.int64))
            writer.abort()

    def test_rejects_out_of_range_packet_indices(self, tmp_path):
        with TraceWriter(tmp_path / "t", "t", n_flows=4, n_packets=4) as writer:
            writer.write_flow_keys(np.arange(1, 5, dtype=np.uint64))
            with pytest.raises(ValueError, match="out of range"):
                writer.write_packets(np.array([0, 4], dtype=np.int64))
            with pytest.raises(ValueError, match="out of range"):
                writer.write_packets(np.array([-1], dtype=np.int64))
            writer.abort()

    def test_close_rejects_underfilled_trace(self, tmp_path):
        writer = TraceWriter(tmp_path / "t", "t", n_flows=4, n_packets=4)
        writer.write_flow_keys(np.arange(1, 5, dtype=np.uint64))
        writer.write_packets(np.array([0, 1], dtype=np.int64))
        with pytest.raises(ValueError, match="fewer packets"):
            writer.close()
        assert list(tmp_path.iterdir()) == []

    def test_zero_packet_trace(self, tmp_path):
        with TraceWriter(tmp_path / "t", "empty", n_flows=3, n_packets=0) as writer:
            writer.write_flow_keys(np.array([1, 2, 3], dtype=np.uint64))
        loaded = load_trace(tmp_path / "t", mmap=True)
        assert loaded.n_flows == 3 and loaded.n_packets == 0


class TestZipfStream:
    def test_deterministic(self, tmp_path):
        for sub in ("a", "b"):
            zipf_trace_stream(
                tmp_path / sub / "t", skew=1.1, n_packets=30_000,
                population=5_000, seed=9, chunk=7_001,
            )
        assert (tmp_path / "a" / "t.npz").read_bytes() == (
            tmp_path / "b" / "t.npz"
        ).read_bytes()

    def test_keeps_full_population_and_valid_indices(self, tmp_path):
        path = zipf_trace_stream(
            tmp_path / "t", skew=1.0, n_packets=10_000, population=2_000, seed=4,
            chunk=3_000,
        )
        trace = load_trace(path, mmap=True)
        assert trace.n_flows == 2_000
        assert trace.n_packets == 10_000
        assert trace.packets.min() >= 0 and trace.packets.max() < 2_000
        # Keys are the same splitmix64 window regardless of chunking.
        full = load_trace(
            zipf_trace_stream(
                tmp_path / "u", skew=1.0, n_packets=1, population=2_000, seed=4,
                chunk=1 << 20,
            )
        )
        assert np.array_equal(np.asarray(trace.flow_keys), full.flow_keys)
