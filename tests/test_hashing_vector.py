"""Differential tests: vectorized mixers must equal the scalar ones bit-for-bit."""

import numpy as np

from repro.hashing.mix import fmix64, mix2, splitmix64
from repro.hashing.vector import v_fmix64, v_mix2, v_mix2_outer, v_splitmix64


def _random_uint64(n, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**64, size=n, dtype=np.uint64)


class TestVectorScalarEquivalence:
    def test_v_fmix64_matches_scalar(self):
        xs = _random_uint64(500, 1)
        out = v_fmix64(xs)
        for x, o in zip(xs.tolist(), out.tolist()):
            assert o == fmix64(x)

    def test_v_fmix64_does_not_mutate_input(self):
        xs = _random_uint64(10, 2)
        copy = xs.copy()
        v_fmix64(xs)
        assert np.array_equal(xs, copy)

    def test_v_mix2_matches_scalar(self):
        bs = _random_uint64(300, 3)
        for a in (0, 1, 2**63, 2**64 - 1, 0xDEADBEEF):
            out = v_mix2(a, bs)
            for b, o in zip(bs.tolist(), out.tolist()):
                assert o == mix2(a, b)

    def test_v_mix2_outer_matches_scalar(self):
        a = _random_uint64(7, 4)
        b = _random_uint64(11, 5)
        out = v_mix2_outer(a, b)
        for i, ai in enumerate(a.tolist()):
            for j, bj in enumerate(b.tolist()):
                assert out[i, j] == mix2(ai, bj)

    def test_v_splitmix64_matches_scalar(self):
        xs = _random_uint64(300, 6)
        out = v_splitmix64(xs)
        for x, o in zip(xs.tolist(), out.tolist()):
            assert o == splitmix64(x)

    def test_empty_arrays(self):
        empty = np.array([], dtype=np.uint64)
        assert v_fmix64(empty).shape == (0,)
        assert v_mix2(5, empty).shape == (0,)
        assert v_splitmix64(empty).shape == (0,)
