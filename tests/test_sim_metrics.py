"""LoadTracker / SimResult unit tests."""

import pytest

from repro.sim.metrics import LoadTracker, SimResult


class TestLoadTracker:
    def test_start_end_counts(self):
        tracker = LoadTracker()
        tracker.flow_started("a")
        tracker.flow_started("a")
        tracker.flow_started("b")
        assert tracker.active_flows == 3
        assert tracker.server_load("a") == 2
        tracker.flow_ended("a")
        assert tracker.server_load("a") == 1
        assert tracker.active_flows == 2

    def test_end_without_start_is_noop(self):
        tracker = LoadTracker()
        tracker.flow_ended("ghost")
        assert tracker.active_flows == 0
        assert tracker.server_load("ghost") == 0

    def test_oversubscription(self):
        tracker = LoadTracker()
        for _ in range(6):
            tracker.flow_started("hot")
        for _ in range(2):
            tracker.flow_started("cold")
        # 8 flows over 4 active servers: average 2, max 6.
        assert tracker.oversubscription(4) == pytest.approx(3.0)

    def test_oversubscription_idle(self):
        assert LoadTracker().oversubscription(10) is None

    def test_oversubscription_no_servers(self):
        tracker = LoadTracker()
        tracker.flow_started("a")
        assert tracker.oversubscription(0) is None


class TestSimResult:
    def test_summary_renders(self):
        result = SimResult(pcc_violations=3, flows_started=10, max_oversubscription=1.5)
        text = result.summary()
        assert "PCC violations=3" in text
        assert "1.500" in text

    def test_defaults(self):
        result = SimResult()
        assert result.pcc_violations == 0
        assert result.oversubscription_series == []
        assert result.tracked_series == []
