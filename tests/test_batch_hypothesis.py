"""Property-based differential tests for the batch lookup path.

For every registered CH family (the paper's four JET families, the
incremental-ring variant, and the jump/modulo extensions), under random
working/horizon sets and random key batches -- including the empty batch
and single-key batches -- the vectorized ``lookup_batch`` /
``lookup_with_safety_batch`` must agree with the scalar reference,
key for key, before and after backend churn.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ch import (
    EXTENSION_FAMILIES,
    JET_FAMILIES,
    AnchorHash,
    IncrementalRingHash,
    MaglevHash,
    RingHash,
    TableHRWHash,
)
from repro.hashing.mix import MASK64

keys64 = st.integers(min_value=0, max_value=MASK64)

ALL_FAMILIES = sorted(JET_FAMILIES) + sorted(EXTENSION_FAMILIES)


def build(family, working, horizon):
    """Small-parameter CH instance so hypothesis examples stay fast."""
    if family == "concury":
        from repro.ch import ConcuryHash

        return ConcuryHash(working, horizon, inner="table", flowsets=128, rows=127)
    if family == "ring":
        return RingHash(working, horizon, virtual_nodes=8)
    if family == "ring-incremental":
        return IncrementalRingHash(working, horizon, virtual_nodes=8)
    if family == "table":
        return TableHRWHash(working, horizon, rows=127)
    if family == "anchor":
        return AnchorHash(
            working, horizon, capacity=2 * (len(working) + len(horizon)) + 4
        )
    cls = JET_FAMILIES.get(family) or EXTENSION_FAMILIES[family]
    return cls(working=working, horizon=horizon)


def assert_batch_equals_scalar(ch, key_sample):
    keys = np.array(key_sample, dtype=np.uint64)
    destinations, unsafe = ch.lookup_with_safety_batch(keys)
    assert len(destinations) == len(key_sample)
    assert len(unsafe) == len(key_sample)
    expected = [ch.lookup_with_safety(k) for k in key_sample]
    assert list(destinations) == [d for d, _ in expected]
    assert unsafe.tolist() == [u for _, u in expected]
    assert list(ch.lookup_batch(keys)) == [d for d, _ in expected]


class TestBatchEqualsScalarEverywhere:
    @given(
        family=st.sampled_from(ALL_FAMILIES),
        n_working=st.integers(min_value=1, max_value=10),
        n_horizon=st.integers(min_value=0, max_value=4),
        key_sample=st.lists(keys64, min_size=0, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_fresh_instance(self, family, n_working, n_horizon, key_sample):
        working = [f"w{i}" for i in range(n_working)]
        horizon = [f"h{i}" for i in range(n_horizon)]
        ch = build(family, working, horizon)
        assert_batch_equals_scalar(ch, key_sample)

    @given(
        family=st.sampled_from(ALL_FAMILIES),
        n_working=st.integers(min_value=2, max_value=10),
        n_horizon=st.integers(min_value=1, max_value=4),
        key_sample=st.lists(keys64, min_size=0, max_size=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_after_churn(self, family, n_working, n_horizon, key_sample):
        working = [f"w{i}" for i in range(n_working)]
        horizon = [f"h{i}" for i in range(n_horizon)]
        ch = build(family, working, horizon)
        # Jump's horizon is a stack: the server that just left the working
        # set is the only admissible one; other families admit any member.
        victim = working[-1]
        admit = victim if family == "jump" else horizon[0]
        ch.remove_working(victim)
        assert_batch_equals_scalar(ch, key_sample)
        ch.add_working(admit)
        assert_batch_equals_scalar(ch, key_sample)

    @given(family=st.sampled_from(ALL_FAMILIES), key=keys64)
    @settings(max_examples=25, deadline=None)
    def test_single_key_batch(self, family, key):
        ch = build(family, ["w0", "w1", "w2"], ["h0"])
        assert_batch_equals_scalar(ch, [key])


class TestIndexKernelProperties:
    """The integer twin under the same randomization: for every family,
    ``backend_table()[lookup_batch_idx(keys)]`` must equal
    ``lookup_batch(keys)`` (and the safety masks must agree) under random
    membership, random key batches, and churn."""

    @staticmethod
    def _assert_idx_equals_names(ch, key_sample):
        keys = np.array(key_sample, dtype=np.uint64)
        idx, unsafe_idx = ch.lookup_with_safety_batch_idx(keys)
        names, unsafe = ch.lookup_with_safety_batch(keys)
        assert idx.dtype == np.int32
        table = ch.backend_table()
        assert list(table[idx]) == list(names)
        assert unsafe_idx.tolist() == unsafe.tolist()
        assert ch.lookup_batch_idx(keys).tolist() == idx.tolist()

    @given(
        family=st.sampled_from(ALL_FAMILIES),
        n_working=st.integers(min_value=1, max_value=10),
        n_horizon=st.integers(min_value=0, max_value=4),
        key_sample=st.lists(keys64, min_size=0, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_fresh_instance(self, family, n_working, n_horizon, key_sample):
        working = [f"w{i}" for i in range(n_working)]
        horizon = [f"h{i}" for i in range(n_horizon)]
        self._assert_idx_equals_names(build(family, working, horizon), key_sample)

    @given(
        family=st.sampled_from(ALL_FAMILIES),
        n_working=st.integers(min_value=2, max_value=10),
        n_horizon=st.integers(min_value=1, max_value=4),
        key_sample=st.lists(keys64, min_size=0, max_size=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_after_churn(self, family, n_working, n_horizon, key_sample):
        working = [f"w{i}" for i in range(n_working)]
        horizon = [f"h{i}" for i in range(n_horizon)]
        ch = build(family, working, horizon)
        victim = working[-1]
        admit = victim if family == "jump" else horizon[0]
        ch.remove_working(victim)
        self._assert_idx_equals_names(ch, key_sample)
        ch.add_working(admit)
        self._assert_idx_equals_names(ch, key_sample)

    @given(
        n_working=st.integers(min_value=1, max_value=10),
        key_sample=st.lists(keys64, min_size=0, max_size=40),
        churn=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_maglev_idx_equals_names(self, n_working, key_sample, churn):
        ch = MaglevHash([f"w{i}" for i in range(n_working)], table_size=251)
        if churn:
            ch.add("fresh")
            ch.remove("w0")
        keys = np.array(key_sample, dtype=np.uint64)
        idx = ch.lookup_batch_idx(keys)
        assert idx.dtype == np.int32
        assert list(ch.backend_table()[idx]) == [ch.lookup(k) for k in key_sample]


class TestMaglevBatchProperties:
    """Maglev has no safety variant; hold lookup_batch to the lookup loop."""

    @given(
        n_working=st.integers(min_value=1, max_value=10),
        key_sample=st.lists(keys64, min_size=0, max_size=40),
        churn=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_equals_scalar(self, n_working, key_sample, churn):
        ch = MaglevHash([f"w{i}" for i in range(n_working)], table_size=251)
        if churn:
            ch.add("fresh")
            ch.remove("w0")
        keys = np.array(key_sample, dtype=np.uint64)
        assert list(ch.lookup_batch(keys)) == [ch.lookup(k) for k in key_sample]


class TestRingBoundaryKeys:
    """Keys drawn from the materialized vnode positions themselves: the
    searchsorted(side="right") boundary must agree with bisect_right."""

    @given(
        variant=st.sampled_from(["ring", "ring-incremental"]),
        n_working=st.integers(min_value=1, max_value=8),
        n_horizon=st.integers(min_value=0, max_value=3),
        picks=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=25),
        offset=st.sampled_from([0, 1, MASK64]),  # on, just after, just before
    )
    @settings(max_examples=40, deadline=None)
    def test_vnode_position_keys(self, variant, n_working, n_horizon, picks, offset):
        ch = build(variant, [f"w{i}" for i in range(n_working)],
                   [f"h{i}" for i in range(n_horizon)])
        ch.lookup(0)  # force the initial rebuild
        positions = ch._positions
        key_sample = [
            (positions[p % len(positions)] + offset) & MASK64 for p in picks
        ]
        assert_batch_equals_scalar(ch, key_sample)
