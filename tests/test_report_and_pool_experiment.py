"""Reporting helpers and the §6.2 experiment harness."""

import json

import pytest

from repro.experiments import report
from repro.experiments.lb_pool import run_pool_experiment


class TestReport:
    def test_save_json_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr(report, "RESULTS_DIR", tmp_path / "results")
        path = report.save_json("unit", {"x": [1, 2]})
        assert path.exists()
        assert json.loads(path.read_text()) == {"x": [1, 2]}

    def test_save_json_survives_unwritable_dir(self, monkeypatch):
        monkeypatch.setattr(report, "RESULTS_DIR", type(report.RESULTS_DIR)("/proc/nope"))
        report.save_json("unit", {"x": 1})  # must not raise

    def test_banner(self):
        text = report.banner("Title")
        lines = text.splitlines()
        assert lines[1] == "Title"
        assert set(lines[0]) == {"="}

    def test_format_table_handles_mixed_types(self):
        text = report.format_table(["a"], [[None], [1.23456], ["x"]])
        assert "1.235" in text
        assert "None" in text


class TestPoolExperimentHarness:
    def test_small_run_shape(self):
        rows = run_pool_experiment(
            n_servers=20, horizon_size=2, pool_size=2, n_packets=30_000, seed=3
        )
        by = {(r.mode, r.sync): r for r in rows}
        assert len(rows) == 4
        # Unsynced violations identical for JET and full CT (§6.2).
        assert (
            by[("jet", False)].pcc_violations
            == by[("full", False)].pcc_violations
        )
        assert by[("jet", True)].pcc_violations == 0
        assert by[("full", True)].pcc_violations == 0
        # JET's replicated state is a small fraction of full CT's.
        assert (
            by[("jet", True)].synced_entries
            < 0.3 * by[("full", True)].synced_entries
        )

    def test_rows_render(self):
        rows = run_pool_experiment(
            n_servers=10, horizon_size=1, pool_size=2, n_packets=5_000, seed=4
        )
        assert all(len(r.cells()) == 5 for r in rows)
