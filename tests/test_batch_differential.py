"""Differential tests for the batched dataplane.

The scalar path is the executable spec: every batch entry point
(CH ``lookup_batch``/``lookup_with_safety_batch``, CT ``get_batch``/
``put_batch``, LB ``get_destinations_batch``, ``replay_batch``, and the
engine's packet-coalescing mode) must reproduce the scalar results
key-for-key -- destinations, unsafe flags, post-batch CT state, and
replay/simulation metrics.
"""

import numpy as np
import pytest

from repro.ch import (
    EXTENSION_FAMILIES,
    JET_FAMILIES,
    MaglevHash,
    ScalarTableHRW,
    has_batch_kernel,
    has_index_kernel,
)
from repro.ch.properties import sample_keys
from repro.core import (
    JETLoadBalancer,
    StatelessLoadBalancer,
    make_ch,
    make_full_ct,
    make_jet,
)
from repro.ct import LRUCT, UnboundedCT
from repro.sim import (
    EventDrivenSimulation,
    SimulationConfig,
    WorkloadGenerator,
    build_balancer,
    hadoop_flow_duration,
    hadoop_flow_size,
    run_simulation,
    server_downtime,
)
from repro.traces import replay, replay_batch, zipf_trace

WORKING = [f"w{i}" for i in range(12)]
HORIZON = [f"h{i}" for i in range(4)]
ALL_FAMILIES = sorted(JET_FAMILIES) + sorted(EXTENSION_FAMILIES)

KEYS = np.array(sample_keys(1500, seed=7), dtype=np.uint64)


def build(family):
    """Fresh test-sized CH of the given family."""
    kwargs = {}
    if family == "table":
        kwargs["rows"] = 389
    elif family == "anchor":
        kwargs["capacity"] = 4 * (len(WORKING) + len(HORIZON))
    elif family in ("ring", "ring-incremental"):
        kwargs["virtual_nodes"] = 20
    elif family == "concury":
        kwargs.update(flowsets=512, rows=389)  # inner defaults to table
    return make_ch(family, WORKING, HORIZON, **kwargs)


def assert_batch_matches_scalar(ch, keys):
    """Batch results must equal the scalar loop, key for key."""
    destinations, unsafe = ch.lookup_with_safety_batch(keys)
    expected = [ch.lookup_with_safety(int(k)) for k in keys]
    assert list(destinations) == [d for d, _ in expected]
    assert unsafe.dtype == bool
    assert unsafe.tolist() == [u for _, u in expected]
    # lookup_batch is the destination column of the same computation.
    assert list(ch.lookup_batch(keys)) == [d for d, _ in expected]


@pytest.fixture(params=ALL_FAMILIES)
def family(request):
    return request.param


class TestCHBatch:
    def test_matches_scalar(self, family):
        assert_batch_matches_scalar(build(family), KEYS)

    def test_empty_batch(self, family):
        ch = build(family)
        destinations, unsafe = ch.lookup_with_safety_batch(np.empty(0, dtype=np.uint64))
        assert len(destinations) == 0
        assert len(unsafe) == 0
        assert len(ch.lookup_batch(np.empty(0, dtype=np.uint64))) == 0

    def test_single_key_batch(self, family):
        ch = build(family)
        assert_batch_matches_scalar(ch, KEYS[:1])

    def test_matches_scalar_after_churn(self, family):
        ch = build(family)
        # Retire one working server, re-check, re-admit, re-check.  Jump's
        # horizon is a stack, so the retired server is also the only
        # admissible one; other families can admit any horizon member.
        victim = WORKING[-1]
        admit = victim if family == "jump" else HORIZON[0]
        ch.remove_working(victim)
        assert_batch_matches_scalar(ch, KEYS[:600])
        ch.add_working(admit)
        assert_batch_matches_scalar(ch, KEYS[:600])

    def test_accepts_plain_int_lists(self, family):
        ch = build(family)
        ints = [int(k) for k in KEYS[:32]]
        destinations, _ = ch.lookup_with_safety_batch(ints)
        assert list(destinations) == [ch.lookup(k) for k in ints]


class TestMaglevBatch:
    """Maglev's int32-table kernel against the scalar table walk."""

    def test_matches_scalar(self):
        ch = MaglevHash(WORKING, table_size=251)
        out = ch.lookup_batch(KEYS[:500])
        assert list(out) == [ch.lookup(int(k)) for k in KEYS[:500]]

    def test_empty_batch(self):
        ch = MaglevHash(WORKING, table_size=251)
        assert len(ch.lookup_batch(np.empty(0, dtype=np.uint64))) == 0

    def test_single_server_owns_every_row(self):
        ch = MaglevHash(["only"], table_size=251)
        out = ch.lookup_batch(KEYS[:64])
        assert set(out.tolist()) == {"only"}

    def test_matches_scalar_after_churn(self):
        ch = MaglevHash(WORKING, table_size=251)
        ch.remove(WORKING[0])
        ch.add("fresh")
        out = ch.lookup_batch(KEYS[:500])
        assert list(out) == [ch.lookup(int(k)) for k in KEYS[:500]]

    def test_empty_working_set_raises(self):
        from repro.ch import BackendError

        ch = MaglevHash(["only"], table_size=251)
        ch.remove("only")
        with pytest.raises(BackendError):
            ch.lookup_batch(KEYS[:4])


class TestRingKernelEdges:
    """Searchsorted boundary and cache-invalidation cases for the ring."""

    @pytest.mark.parametrize("family", ["ring", "ring-incremental"])
    def test_key_exactly_on_vnode_position(self, family):
        # bisect_right/searchsorted(side="right") place an exact hit
        # *after* the vnode, so the key belongs to the next entry; batch
        # must agree with scalar on every materialized position.
        ch = build(family)
        ch.lookup(0)  # force the initial rebuild
        boundary = np.array(ch._positions[:200], dtype=np.uint64)
        assert_batch_matches_scalar(ch, boundary)

    @pytest.mark.parametrize("family", ["ring", "ring-incremental"])
    def test_wraparound_past_last_vnode(self, family):
        # Keys beyond the highest vnode wrap to entry 0 (clockwise ring).
        ch = build(family)
        ch.lookup(0)
        top = max(ch._positions)
        wrap = np.array([top, (top + 1) & 0xFFFF_FFFF_FFFF_FFFF, 2**64 - 1, 0],
                        dtype=np.uint64)
        assert_batch_matches_scalar(ch, wrap)

    @pytest.mark.parametrize("family", ["ring", "ring-incremental"])
    def test_horizon_dominated_ring(self, family):
        # One working server, many horizon vnodes: most merged-ring
        # entries are tracked horizon entries pointing at the lone worker.
        ch = make_ch(family, ["solo"], HORIZON, virtual_nodes=20)
        destinations, unsafe = ch.lookup_with_safety_batch(KEYS[:400])
        assert set(destinations.tolist()) == {"solo"}
        assert unsafe.any()
        assert_batch_matches_scalar(ch, KEYS[:400])

    @pytest.mark.parametrize("family", ["ring", "ring-incremental"])
    def test_batch_after_remove_working_dirty_rebuild(self, family):
        # remove_working marks the ring dirty (or edits it in place for
        # the incremental variant); the *batch* call must be the one that
        # triggers the rebuild/kernel refresh and still match scalar.
        ch = build(family)
        ch.lookup_with_safety_batch(KEYS[:100])  # warm the kernel arrays
        ch.remove_working(WORKING[0])
        fresh = build(family)
        fresh.remove_working(WORKING[0])
        destinations, unsafe = ch.lookup_with_safety_batch(KEYS[:400])
        expected = [fresh.lookup_with_safety(int(k)) for k in KEYS[:400]]
        assert list(destinations) == [d for d, _ in expected]
        assert unsafe.tolist() == [u for _, u in expected]

    def test_single_server_no_horizon(self):
        ch = make_ch("ring", ["solo"], [], virtual_nodes=20)
        destinations, unsafe = ch.lookup_with_safety_batch(KEYS[:100])
        assert set(destinations.tolist()) == {"solo"}
        assert not unsafe.any()

    def test_union_cache_tracks_membership_changes(self):
        ch = build("ring")
        before = [ch.lookup_union(int(k)) for k in KEYS[:200]]
        # W <-> H moves must not change the union ring ...
        ch.remove_working(WORKING[0])
        assert [ch.lookup_union(int(k)) for k in KEYS[:200]] == before
        ch.add_working(HORIZON[0])
        assert [ch.lookup_union(int(k)) for k in KEYS[:200]] == before
        # ... while identity changes must refresh the cached union.
        ch.add_horizon("brand-new")
        fresh = build("ring")
        fresh.remove_working(WORKING[0])
        fresh.add_working(HORIZON[0])
        fresh.add_horizon("brand-new")
        assert [ch.lookup_union(int(k)) for k in KEYS[:200]] == [
            fresh.lookup_union(int(k)) for k in KEYS[:200]
        ]


class TestAnchorKernelEdges:
    def test_single_working_bucket(self):
        ch = make_ch("anchor", ["solo"], HORIZON, capacity=32)
        destinations, unsafe = ch.lookup_with_safety_batch(KEYS[:200])
        assert set(destinations.tolist()) == {"solo"}
        assert_batch_matches_scalar(ch, KEYS[:200])

    def test_deep_wandering_after_mass_removal(self):
        # Remove most workers so GETBUCKET paths wander through many
        # removed buckets (exercises the active-mask iterations and the
        # inner K-chase) and every surviving key reports unsafe=True
        # against the large horizon region.
        ch = build("anchor")
        for name in WORKING[2:]:
            ch.remove_working(name)
        assert_batch_matches_scalar(ch, KEYS[:600])


class TestCTBatch:
    def test_unbounded_batch_matches_scalar_twin(self):
        batched, scalar = UnboundedCT(), UnboundedCT()
        keys = KEYS[:400]
        destinations = np.array([int(k) % 7 for k in keys], dtype=object)
        batched.put_batch(keys, destinations)
        for k, d in zip(keys.tolist(), destinations):
            scalar.put(k, d)
        probe = np.concatenate(
            [keys[:200], np.array(sample_keys(200, seed=8), dtype=np.uint64)]
        )
        got = batched.get_batch(probe)
        expected = [scalar.get(int(k)) for k in probe.tolist()]
        assert list(got) == expected
        assert dict(batched.items()) == dict(scalar.items())
        assert batched.stats == scalar.stats

    def test_bounded_fallback_preserves_eviction_order(self):
        # LRUCT keeps batch_reorder_safe=False, so the default loops run;
        # the recency order (and therefore who got evicted) must be
        # byte-identical to the interleaved scalar sequence.
        assert not LRUCT.batch_reorder_safe
        batched, scalar = LRUCT(capacity=16), LRUCT(capacity=16)
        keys = KEYS[:64]
        destinations = np.array([int(k) % 5 for k in keys], dtype=object)
        batched.put_batch(keys, destinations)
        batched.get_batch(keys[10:40])
        batched.put_batch(keys[:8], destinations[:8])
        for k, d in zip(keys.tolist(), destinations):
            scalar.put(k, d)
        for k in keys[10:40].tolist():
            scalar.get(k)
        for k, d in zip(keys[:8].tolist(), destinations[:8]):
            scalar.put(k, d)
        assert list(batched.items()) == list(scalar.items())
        assert batched.stats == scalar.stats


def _lb_pair(maker):
    """Two identically configured balancers: one driven batched, one scalar."""
    return maker(), maker()


def assert_lb_batch_matches(batched, scalar, keys):
    got = batched.get_destinations_batch(keys)
    expected = [scalar.get_destination(int(k)) for k in keys.tolist()]
    assert list(got) == expected
    assert dict(batched.ct.items()) == dict(scalar.ct.items())


class TestLBBatch:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_jet_batch_matches_scalar_twin(self, family):
        batched, scalar = _lb_pair(lambda: make_jet(family, WORKING, HORIZON))
        assert_lb_batch_matches(batched, scalar, KEYS[:800])
        # Second batch re-reads the CT entries populated by the first.
        assert_lb_batch_matches(batched, scalar, KEYS[:800])
        assert batched.ct.stats == scalar.ct.stats

    def test_jet_batch_with_duplicate_keys(self):
        batched, scalar = _lb_pair(lambda: make_jet("hrw", WORKING, HORIZON))
        keys = np.concatenate([KEYS[:300], KEYS[:300], KEYS[100:200]])
        # Destinations and the CT mapping must agree even when a key
        # repeats within one batch (stats may differ: the scalar twin
        # hits the CT on the repeat, the batch path re-looks it up).
        assert_lb_batch_matches(batched, scalar, keys)

    def test_jet_batch_after_backend_churn(self):
        batched, scalar = _lb_pair(lambda: make_jet("table", WORKING, HORIZON, rows=389))
        assert_lb_batch_matches(batched, scalar, KEYS[:500])
        for lb in (batched, scalar):
            lb.remove_working_server(WORKING[3])
            lb.add_working_server(HORIZON[0])
        assert_lb_batch_matches(batched, scalar, KEYS[:500])

    def test_jet_bounded_ct_falls_back_to_scalar(self):
        batched, scalar = _lb_pair(
            lambda: make_jet("hrw", WORKING, HORIZON, ct=LRUCT(capacity=32))
        )
        assert_lb_batch_matches(batched, scalar, KEYS[:400])
        # Fallback must preserve the LRU recency order exactly.
        assert list(batched.ct.items()) == list(scalar.ct.items())
        assert batched.ct.stats == scalar.ct.stats

    def test_jet_lazy_cleanup_falls_back_to_scalar(self):
        def maker():
            return JETLoadBalancer(build("hrw"), UnboundedCT(), active_cleanup=False)

        batched, scalar = _lb_pair(maker)
        assert_lb_batch_matches(batched, scalar, KEYS[:400])
        # Stale entries (lazy cleanup) are the reason this config must
        # take the scalar loop: per-key validation interleaves deletes.
        for lb in (batched, scalar):
            lb.remove_working_server(WORKING[5])
        assert_lb_batch_matches(batched, scalar, KEYS[:400])
        assert batched.ct.stats == scalar.ct.stats

    @pytest.mark.parametrize("family", ["maglev", "table"])
    def test_full_ct_batch_matches_scalar_twin(self, family):
        kwargs = {"table_size": 251} if family == "maglev" else {"rows": 389}
        batched, scalar = _lb_pair(
            lambda: make_full_ct(family, WORKING, **kwargs)
        )
        assert_lb_batch_matches(batched, scalar, KEYS[:600])
        assert_lb_batch_matches(batched, scalar, KEYS[:600])
        assert batched.ct.stats == scalar.ct.stats

    def test_stateless_batch_matches_scalar_twin(self):
        batched, scalar = _lb_pair(lambda: StatelessLoadBalancer(build("table")))
        keys = KEYS[:600]
        got = batched.get_destinations_batch(keys)
        assert list(got) == [scalar.get_destination(int(k)) for k in keys.tolist()]

    def test_empty_batch(self):
        lb = make_jet("hrw", WORKING, HORIZON)
        assert len(lb.get_destinations_batch(np.empty(0, dtype=np.uint64))) == 0


IDX_FAMILIES = ["hrw", "table", "ring", "anchor", "maglev", "jump", "modulo",
                "concury"]
LB_MODES = ["jet", "full-ct", "stateless", "concury"]


def _skip_cell(family, mode):
    """Reason a (family, mode) composition is undefined, or None."""
    if family == "maglev" and mode in ("jet", "concury"):
        return "Maglev has no horizon: no JET/Concury composition"
    if family == "concury" and mode == "concury":
        return "Concury cannot be its own inner family"
    return None


def build_lb(family, mode):
    """One of the 8 families wrapped in one of the 4 LB modes.

    Maglev cannot be JET- or Concury-composed (no horizon); Concury
    cannot nest inside itself; callers skip those cells.
    """
    if mode == "concury":
        from repro.core.factories import make_concury

        return make_concury(family, WORKING, HORIZON, flowsets=512,
                            **_ch_kwargs(family))
    if family == "maglev":
        if mode == "full-ct":
            return make_full_ct("maglev", WORKING, table_size=251)
        return StatelessLoadBalancer(MaglevHash(WORKING, table_size=251))
    if mode == "jet":
        return make_jet(family, WORKING, HORIZON, **_ch_kwargs(family))
    if mode == "full-ct":
        return make_full_ct(family, WORKING, HORIZON, **_ch_kwargs(family))
    return StatelessLoadBalancer(build(family))


def _ch_kwargs(family):
    if family == "table":
        return {"rows": 389}
    if family == "anchor":
        return {"capacity": 4 * (len(WORKING) + len(HORIZON))}
    if family in ("ring", "ring-incremental"):
        return {"virtual_nodes": 20}
    if family == "concury":
        return {"flowsets": 512, "rows": 389}
    return {}


def _tracked(lb):
    return lb.tracked_items() if hasattr(lb, "tracked_items") else None


def _decode_idx_run(lb, keys):
    """Dispatch through the integer path and decode at the edge."""
    ids = lb.get_destinations_batch_idx(keys)
    assert ids.dtype == np.int32
    names = lb.dispatch_names()
    return [names[i] for i in ids.tolist()]


class TestIndexKernels:
    """CH layer: ``backend_table()[lookup_batch_idx(keys)]`` must equal
    ``lookup_batch(keys)`` element for element, for every family."""

    @pytest.mark.parametrize("family", IDX_FAMILIES)
    def test_every_family_has_an_index_kernel(self, family):
        ch = (MaglevHash(WORKING, table_size=251) if family == "maglev"
              else build(family))
        assert has_index_kernel(ch), family
        # The loop-based reference transcription keeps the spec default.
        assert not has_index_kernel(ScalarTableHRW(WORKING, HORIZON, rows=389))

    @pytest.mark.parametrize("family", IDX_FAMILIES)
    def test_idx_matches_names(self, family):
        if family == "maglev":
            ch = MaglevHash(WORKING, table_size=251)
            idx = ch.lookup_batch_idx(KEYS[:600])
            assert idx.dtype == np.int32
            assert list(ch.backend_table()[idx]) == list(ch.lookup_batch(KEYS[:600]))
            return
        ch = build(family)
        idx, unsafe_idx = ch.lookup_with_safety_batch_idx(KEYS[:600])
        names, unsafe = ch.lookup_with_safety_batch(KEYS[:600])
        assert idx.dtype == np.int32
        assert list(ch.backend_table()[idx]) == list(names)
        assert unsafe_idx.tolist() == unsafe.tolist()
        # lookup_batch_idx is the destination column of the same kernel.
        assert ch.lookup_batch_idx(KEYS[:600]).tolist() == idx.tolist()

    @pytest.mark.parametrize("family", IDX_FAMILIES)
    def test_idx_matches_names_after_churn(self, family):
        if family == "maglev":
            ch = MaglevHash(WORKING, table_size=251)
            ch.remove(WORKING[0])
            ch.add("fresh")
            idx = ch.lookup_batch_idx(KEYS[:400])
            assert list(ch.backend_table()[idx]) == list(ch.lookup_batch(KEYS[:400]))
            return
        ch = build(family)
        victim = WORKING[-1]
        admit = victim if family == "jump" else HORIZON[0]
        ch.remove_working(victim)
        idx, unsafe_idx = ch.lookup_with_safety_batch_idx(KEYS[:400])
        names, unsafe = ch.lookup_with_safety_batch(KEYS[:400])
        assert list(ch.backend_table()[idx]) == list(names)
        assert unsafe_idx.tolist() == unsafe.tolist()
        ch.add_working(admit)
        idx, _ = ch.lookup_with_safety_batch_idx(KEYS[:400])
        assert list(ch.backend_table()[idx]) == list(ch.lookup_batch(KEYS[:400]))

    @pytest.mark.parametrize("family", IDX_FAMILIES)
    def test_backend_table_identity_contract(self, family):
        # Identity is the columnar translation-cache key: the table must
        # stay the same object while the backend is unchanged, and a
        # published table must never be mutated in place -- a position
        # remap requires a NEW array object (W <-> H moves that keep the
        # position->name mapping intact may keep the same table).
        ch = (MaglevHash(WORKING, table_size=251) if family == "maglev"
              else build(family))
        ch.lookup_batch_idx(KEYS[:16])
        table = ch.backend_table()
        snapshot = table.copy()
        ch.lookup_batch_idx(KEYS[16:64])
        assert ch.backend_table() is table
        admitted = "brand-new"
        if family == "maglev":
            ch.remove(WORKING[0])
            ch.add(admitted)
        elif family == "jump":
            # Jump's membership is an ordered stack: the retired server is
            # the only admissible one, so churn without a new identity.
            admitted = WORKING[-1]
            ch.remove_working(admitted)
            ch.add_working(admitted)
        else:
            ch.remove_working(WORKING[-1])
            ch.add_horizon(admitted)
            ch.add_working(admitted)
        ch.lookup_batch_idx(KEYS[:64])
        fresh = ch.backend_table()
        if fresh is table:
            assert (fresh == snapshot).all(), "published table mutated in place"
        else:
            assert admitted in fresh.tolist()

    @pytest.mark.parametrize("family", IDX_FAMILIES)
    def test_empty_batch(self, family):
        ch = (MaglevHash(WORKING, table_size=251) if family == "maglev"
              else build(family))
        out = ch.lookup_batch_idx(np.empty(0, dtype=np.uint64))
        assert out.dtype == np.int32 and len(out) == 0


class TestColumnarLB:
    """LB layer: index dispatch == name dispatch == scalar dispatch --
    destinations AND post-run CT contents -- for 7 families x 3 modes."""

    @pytest.mark.parametrize("family", IDX_FAMILIES)
    @pytest.mark.parametrize("mode", LB_MODES)
    def test_idx_name_scalar_agree(self, family, mode):
        reason = _skip_cell(family, mode)
        if reason:
            pytest.skip(reason)
        idx_lb, name_lb, scalar_lb = (build_lb(family, mode) for _ in range(3))
        keys = KEYS[:800]
        got_idx = _decode_idx_run(idx_lb, keys)
        got_name = list(name_lb.get_destinations_batch(keys))
        got_scalar = [scalar_lb.get_destination(int(k)) for k in keys.tolist()]
        assert got_idx == got_name == got_scalar
        # The CT (where one exists) must hold identical name mappings no
        # matter which representation the run used internally.
        assert _tracked(idx_lb) == _tracked(name_lb) == _tracked(scalar_lb)
        # Second pass re-reads the CT entries the first one wrote.
        assert _decode_idx_run(idx_lb, keys) == got_scalar

    @pytest.mark.parametrize("family", [f for f in IDX_FAMILIES if f != "maglev"])
    @pytest.mark.parametrize("mode", LB_MODES)
    def test_idx_path_survives_churn(self, family, mode):
        reason = _skip_cell(family, mode)
        if reason:
            pytest.skip(reason)
        idx_lb, scalar_lb = build_lb(family, mode), build_lb(family, mode)
        keys = KEYS[:500]
        assert _decode_idx_run(idx_lb, keys) == [
            scalar_lb.get_destination(int(k)) for k in keys.tolist()
        ]
        victim = WORKING[-1]  # Jump retires in LIFO order
        admit = victim if family == "jump" else HORIZON[0]
        for lb in (idx_lb, scalar_lb):
            lb.remove_working_server(victim)
            lb.add_working_server(admit)
        assert _decode_idx_run(idx_lb, keys) == [
            scalar_lb.get_destination(int(k)) for k in keys.tolist()
        ]
        assert _tracked(idx_lb) == _tracked(scalar_lb)

    def test_mixed_mode_single_balancer(self):
        # One balancer serving scalar, name-batch, and index-batch calls
        # interleaved must stay consistent with a scalar-only twin.
        mixed, twin = build_lb("table", "jet"), build_lb("table", "jet")
        k1, k2, k3 = KEYS[:200], KEYS[200:400], KEYS[100:300]
        assert list(mixed.get_destinations_batch(k1)) == [
            twin.get_destination(int(k)) for k in k1.tolist()
        ]
        assert _decode_idx_run(mixed, k2) == [
            twin.get_destination(int(k)) for k in k2.tolist()
        ]
        assert [mixed.get_destination(int(k)) for k in k3.tolist()] == [
            twin.get_destination(int(k)) for k in k3.tolist()
        ]
        assert _tracked(mixed) == _tracked(twin)

    @pytest.mark.parametrize("mode", LB_MODES)
    def test_columnar_effective_probes(self, mode):
        assert build_lb("table", mode).columnar_effective
        # Stacks without an index kernel must report not-effective ...
        scalar_ch = ScalarTableHRW(WORKING, HORIZON, rows=389)
        if mode == "jet":
            assert not JETLoadBalancer(scalar_ch).columnar_effective
            # ... as must CT configs the columnar path cannot serve.
            assert not make_jet(
                "hrw", WORKING, HORIZON, ct=LRUCT(capacity=32)
            ).columnar_effective
            assert not JETLoadBalancer(
                build("hrw"), UnboundedCT(), active_cleanup=False
            ).columnar_effective
        elif mode == "stateless":
            assert not StatelessLoadBalancer(scalar_ch).columnar_effective

    def test_idx_empty_batch(self):
        lb = build_lb("hrw", "jet")
        out = lb.get_destinations_batch_idx(np.empty(0, dtype=np.uint64))
        assert out.dtype == np.int32 and len(out) == 0


class TestNeverSlowerRouting:
    """Capability probes: stacks without vector kernels must route
    straight through the scalar loop, never through batch assembly."""

    def test_has_batch_kernel_probe(self):
        # Every shipped family now has a kernel ...
        for family in ALL_FAMILIES:
            assert has_batch_kernel(build(family)), family
        assert has_batch_kernel(MaglevHash(WORKING, table_size=251))
        # ... and the loop-based reference transcription does not.
        assert not has_batch_kernel(ScalarTableHRW(WORKING, HORIZON, rows=389))

    def test_lb_batch_effective_probes(self):
        scalar_ch = ScalarTableHRW(WORKING, HORIZON, rows=389)
        assert not JETLoadBalancer(scalar_ch).batch_effective
        assert not StatelessLoadBalancer(
            ScalarTableHRW(WORKING, HORIZON, rows=389)
        ).batch_effective
        assert JETLoadBalancer(build("ring")).batch_effective
        assert StatelessLoadBalancer(build("table")).batch_effective
        # CT/cleanup gates fold into the same probe.
        assert not make_jet(
            "hrw", WORKING, HORIZON, ct=LRUCT(capacity=32)
        ).batch_effective
        assert not JETLoadBalancer(
            build("hrw"), UnboundedCT(), active_cleanup=False
        ).batch_effective
        assert not make_full_ct(
            "table", WORKING, HORIZON, rows=389, ct=LRUCT(capacity=32)
        ).batch_effective
        assert make_full_ct("maglev", WORKING, table_size=251).batch_effective

    def test_jet_scalar_ch_routes_through_scalar_loop(self):
        def maker():
            return JETLoadBalancer(ScalarTableHRW(WORKING, HORIZON, rows=389))

        batched, scalar = _lb_pair(maker)
        # The composed path would call ct.get_batch; the scalar route
        # never does.  Results must still match the scalar twin exactly.
        def forbidden(keys):
            raise AssertionError("batch assembly ran for a scalar-only CH")

        batched.ct.get_batch = forbidden
        assert_lb_batch_matches(batched, scalar, KEYS[:300])

    def test_replay_batch_delegates_for_scalar_only_stack(self):
        trace = zipf_trace(skew=1.0, n_packets=5_000, population=1_000, seed=13)
        balancer = JETLoadBalancer(ScalarTableHRW(WORKING, HORIZON, rows=389))

        def forbidden(keys):
            raise AssertionError("replay_batch assembled batches without a kernel")

        balancer.get_destinations_batch = forbidden
        batched = replay_batch(trace, balancer)
        scalar = replay(
            trace, JETLoadBalancer(ScalarTableHRW(WORKING, HORIZON, rows=389))
        )
        assert _replay_fields(batched) == _replay_fields(scalar)


def _replay_fields(result):
    """The deterministic ReplayResult fields (rate/wall excluded)."""
    return (
        result.pcc_violations,
        result.inevitably_broken,
        result.tracked_connections,
        result.max_oversubscription,
        result.server_loads,
        result.n_flows,
        result.n_packets,
    )


class TestReplayBatch:
    TRACE = zipf_trace(skew=1.0, n_packets=20_000, population=4_000, seed=11)

    def test_matches_scalar_without_events(self):
        scalar = replay(self.TRACE, make_jet("table", WORKING, HORIZON, rows=389))
        batched = replay_batch(self.TRACE, make_jet("table", WORKING, HORIZON, rows=389))
        assert _replay_fields(batched) == _replay_fields(scalar)

    def test_matches_scalar_with_events(self):
        def events():
            return [
                (5_000, lambda lb: lb.remove_working_server(WORKING[2])),
                (12_000, lambda lb: lb.add_working_server(HORIZON[0])),
            ]

        scalar = replay(self.TRACE, make_jet("hrw", WORKING, HORIZON), events())
        batched = replay_batch(self.TRACE, make_jet("hrw", WORKING, HORIZON), events())
        assert _replay_fields(batched) == _replay_fields(scalar)

    @pytest.mark.parametrize("chunk_size", [1, 7, 100_000])
    def test_chunk_size_edges(self, chunk_size):
        scalar = replay(self.TRACE, StatelessLoadBalancer(build("hrw")))
        batched = replay_batch(
            self.TRACE, StatelessLoadBalancer(build("hrw")), chunk_size=chunk_size
        )
        assert _replay_fields(batched) == _replay_fields(scalar)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            replay_batch(self.TRACE, StatelessLoadBalancer(build("hrw")), chunk_size=0)


class QuantizedWorkload(WorkloadGenerator):
    """Workload with all event times floored to a coarse tick.

    The base generator draws continuous times, so exact same-timestamp
    packet ties (what the engine's coalescing mode batches) almost never
    occur.  Flooring arrival gaps and per-flow packet offsets onto a grid
    makes ties abundant while keeping every packet inside its flow's
    lifetime (floor never moves a time later).
    """

    TICK = 0.05

    def next_arrival_gap(self):
        gap = super().next_arrival_gap()
        return max(self.TICK, int(gap / self.TICK) * self.TICK)

    def make_flow(self, now):
        flow = super().make_flow(now)
        tick = self.TICK
        flow.packet_times = [
            now + int((t - now) / tick) * tick for t in flow.packet_times
        ]
        return flow


class TestEngineCoalescing:
    CONFIG = SimulationConfig(
        duration_s=30.0,
        n_servers=8,
        horizon_size=2,
        update_rate_per_min=20.0,
        mode="jet",
        ch_family="table",
        ch_kwargs={"rows": 389},
        seed=3,
    )

    def _run(self, coalesce):
        balancer, working, standby = build_balancer(self.CONFIG)
        workload = QuantizedWorkload(
            arrival_rate=30.0,
            size_dist=hadoop_flow_size(),
            duration_dist=hadoop_flow_duration(),
            seed=self.CONFIG.seed,
        )
        sim = EventDrivenSimulation(
            balancer=balancer,
            workload=workload,
            working_servers=working,
            standby_servers=standby,
            duration_s=self.CONFIG.duration_s,
            update_rate_per_min=self.CONFIG.update_rate_per_min,
            downtime_dist=server_downtime(),
            seed=self.CONFIG.seed,
            coalesce_packets=coalesce,
        )
        batch_sizes = []
        original = balancer.get_destinations_batch
        original_idx = balancer.get_destinations_batch_idx

        def spy(keys):
            batch_sizes.append(len(keys))
            return original(keys)

        def spy_idx(keys):
            # The engine prefers the columnar entry point when the LB
            # offers one; both count as batched dispatch.
            batch_sizes.append(len(keys))
            return original_idx(keys)

        balancer.get_destinations_batch = spy
        balancer.get_destinations_batch_idx = spy_idx
        return sim.run(), batch_sizes

    def test_coalesced_run_matches_scalar_run(self):
        scalar, _ = self._run(coalesce=False)
        coalesced, batch_sizes = self._run(coalesce=True)
        # The quantized workload must actually produce multi-packet ties,
        # otherwise this test proves nothing.
        assert batch_sizes and max(batch_sizes) >= 2
        for field in (
            "pcc_violations",
            "inevitably_broken",
            "flows_started",
            "flows_completed",
            "packets_processed",
            "removals",
            "additions",
            "peak_tracked",
            "final_tracked",
            "tracked_series",
            "sample_times",
            "oversubscription_series",
            "max_oversubscription",
        ):
            assert getattr(coalesced, field) == getattr(scalar, field), field


def test_samples_stop_at_duration():
    """_on_sample must not re-push sample events past the horizon of the
    run; every recorded sample time stays within duration_s."""
    result = run_simulation(
        SimulationConfig(
            duration_s=5.0,
            connection_rate=50.0,
            n_servers=4,
            horizon_size=1,
            update_rate_per_min=0.0,
            sample_interval=1.0,
            seed=1,
        )
    )
    assert result.sample_times == [1.0, 2.0, 3.0, 4.0, 5.0]
