"""Tests for the non-JET baselines: MaglevHash, JumpHash, mod-N."""

import pytest

from repro.ch.base import BackendError
from repro.ch.jump import JumpHash, jump_bucket
from repro.ch.maglev import MaglevHash, _is_prime
from repro.ch.modulo import ModuloHash
from repro.ch.properties import sample_keys

KEYS = sample_keys(3000, seed=77)


class TestMaglev:
    def test_table_size_must_be_prime(self):
        with pytest.raises(ValueError):
            MaglevHash(["a"], table_size=100)

    def test_prime_helper(self):
        assert _is_prime(2) and _is_prime(65537) and _is_prime(4099)
        assert not _is_prime(1) and not _is_prime(4098)

    def test_population_fills_table_evenly(self):
        ch = MaglevHash([f"s{i}" for i in range(10)], table_size=1031)
        counts = ch.row_counts()
        assert sum(counts.values()) == 1031
        # NSDI'16 guarantee: near-equal row shares after a fresh populate.
        assert max(counts.values()) - min(counts.values()) <= 2

    def test_lookup_returns_member(self):
        ch = MaglevHash(["a", "b", "c"], table_size=101)
        assert all(ch.lookup(k) in {"a", "b", "c"} for k in KEYS[:300])

    def test_empty_lookup_raises(self):
        ch = MaglevHash([], table_size=11)
        with pytest.raises(BackendError):
            ch.lookup(1)

    def test_duplicate_add_raises(self):
        ch = MaglevHash(["a"], table_size=11)
        with pytest.raises(BackendError):
            ch.add("a")

    def test_remove_unknown_raises(self):
        ch = MaglevHash(["a"], table_size=11)
        with pytest.raises(BackendError):
            ch.remove("b")

    def test_removal_reroutes_victims(self):
        ch = MaglevHash([f"s{i}" for i in range(8)], table_size=1031)
        before = {k: ch.lookup(k) for k in KEYS}
        ch.remove("s3")
        assert all(ch.lookup(k) != "s3" for k in KEYS)
        # Most keys keep their destination, but Maglev may "flip" a few
        # unrelated keys (Section 3.6) -- that is exactly why it cannot
        # host JET.  Check disruption is low but note flips are allowed.
        moved = sum(ch.lookup(k) != before[k] for k in KEYS)
        victims = sum(d == "s3" for d in before.values())
        assert victims <= moved <= victims + 0.25 * len(KEYS)

    def test_flips_exist_hence_no_jet_integration(self):
        # Demonstrate the disqualifying behaviour: a removal moves at least
        # one key between two *surviving* backends for some population.
        ch = MaglevHash([f"s{i}" for i in range(8)], table_size=503)
        before = {k: ch.lookup(k) for k in KEYS}
        ch.remove("s1")
        flips = sum(
            1 for k in KEYS if before[k] != "s1" and ch.lookup(k) != before[k]
        )
        assert flips > 0

    def test_deterministic_across_instances(self):
        a = MaglevHash(["x", "y", "z"], table_size=101)
        b = MaglevHash(["z", "x", "y"], table_size=101)
        assert all(a.lookup(k) == b.lookup(k) for k in KEYS[:300])


class TestJump:
    def test_reference_bucket_ranges(self):
        for n in (1, 2, 10, 100):
            for k in KEYS[:200]:
                assert 0 <= jump_bucket(k, n) < n

    def test_zero_buckets_raises(self):
        with pytest.raises(BackendError):
            jump_bucket(5, 0)

    def test_monotone_growth_property(self):
        # Growing n either keeps the bucket or moves the key to the new one.
        for k in KEYS[:500]:
            for n in (1, 2, 5, 9):
                a, b = jump_bucket(k, n), jump_bucket(k, n + 1)
                assert b == a or b == n

    def test_stack_discipline(self):
        ch = JumpHash(["a", "b"], ["c", "d"])
        with pytest.raises(BackendError):
            ch.add_working("d")  # must admit "c" first
        ch.add_working("c")
        with pytest.raises(BackendError):
            ch.remove_working("a")  # LIFO removal only
        ch.remove_working("c")
        assert ch.working == frozenset({"a", "b"})

    def test_safety_flag_matches_union(self):
        ch = JumpHash([f"s{i}" for i in range(10)], [f"t{i}" for i in range(2)])
        for k in KEYS[:500]:
            destination, unsafe = ch.lookup_with_safety(k)
            assert unsafe == (destination != ch.lookup_union(k))

    def test_tracking_fraction(self):
        ch = JumpHash([f"s{i}" for i in range(20)], ["t0", "t1"])
        tracked = sum(ch.lookup_with_safety(k)[1] for k in KEYS)
        assert tracked / len(KEYS) == pytest.approx(2 / 22, rel=0.35)


class TestModulo:
    def test_lookup_is_mod_n(self):
        ch = ModuloHash([f"s{i}" for i in range(7)])
        for k in KEYS[:100]:
            assert ch.lookup(k) == ch.lookup(k + 7 * 10**6)  # same residue...
            # (same residue class mod 7 maps to the same slot)

    def test_nearly_all_keys_unsafe(self):
        # Section 2.4: ~1 - 1/N of keys move on a change.
        ch = ModuloHash([f"s{i}" for i in range(50)], ["new"])
        unsafe = sum(ch.lookup_with_safety(k)[1] for k in KEYS)
        assert unsafe / len(KEYS) > 0.9

    def test_addition_disrupts_massively(self):
        ch = ModuloHash([f"s{i}" for i in range(50)], ["new"])
        before = {k: ch.lookup(k) for k in KEYS}
        ch.add_working("new")
        moved = sum(ch.lookup(k) != before[k] for k in KEYS)
        assert moved / len(KEYS) > 0.9
