"""Property-based suite for the Othello perfect mapping.

Four contracts (ISSUE 9 satellite):

1. **Build/lookup correctness** -- over random key sets and values, every
   stored key must look up to exactly its value, scalar and batch alike.
2. **Seeded rebuild determinism** -- two builds from the same
   ``(keys, values, seed)`` are bit-identical arrays, same attempt count.
3. **Incremental update == full rebuild** -- after ``update(k, v)`` the
   structure answers exactly like a fresh build of the mutated mapping
   (same seed, so the probe graph is the same object), and no other key
   moved.
4. **Cycle-retry bounds** -- undersized arrays force cyclic draws; the
   builder must either succeed within ``max_attempts`` seeded retries or
   raise :class:`OthelloBuildError`, never loop or return a broken map.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.mix import MASK64
from repro.hashing.othello import Othello, OthelloBuildError

keys64 = st.integers(min_value=0, max_value=MASK64)


@st.composite
def keyed_mappings(draw, min_size=1, max_size=200, value_bits=12):
    keys = draw(
        st.lists(keys64, min_size=min_size, max_size=max_size, unique=True)
    )
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << value_bits) - 1),
            min_size=len(keys),
            max_size=len(keys),
        )
    )
    return keys, values


class TestBuildLookup:
    @given(mapping=keyed_mappings(), seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=60, deadline=None)
    def test_every_key_maps_to_its_value(self, mapping, seed):
        keys, values = mapping
        o = Othello(keys, values, seed=seed, value_bits=12)
        assert all(o.lookup(k) == v for k, v in zip(keys, values))
        got = o.lookup_batch(np.array(keys, dtype=np.uint64))
        assert got.tolist() == values

    @given(mapping=keyed_mappings(max_size=60), probes=st.lists(keys64, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_batch_equals_scalar_on_arbitrary_probes(self, mapping, probes):
        # Non-member keys return well-defined garbage; batch and scalar
        # must still agree on it bit for bit.
        keys, values = mapping
        o = Othello(keys, values, value_bits=12)
        got = o.lookup_batch(np.array(probes, dtype=np.uint64))
        assert got.tolist() == [o.lookup(p) for p in probes]

    def test_rejects_duplicate_keys(self):
        with pytest.raises(ValueError, match="distinct"):
            Othello([1, 1], [0, 1])

    def test_rejects_out_of_range_values(self):
        with pytest.raises(ValueError, match="bits"):
            Othello([1, 2], [0, 1 << 12], value_bits=12)

    def test_memory_is_probe_arrays_only(self):
        o = Othello(range(1000), [i % 7 for i in range(1000)], value_bits=12)
        assert o.memory_bytes == o.a.nbytes + o.b.nbytes
        assert o.ma >= int(Othello.A_LOAD * 1000)
        assert o.mb >= 1000


class TestSeededDeterminism:
    @given(mapping=keyed_mappings(max_size=120), seed=st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_arrays(self, mapping, seed):
        keys, values = mapping
        first = Othello(keys, values, seed=seed, value_bits=12)
        second = Othello(keys, values, seed=seed, value_bits=12)
        assert first.attempts == second.attempts
        assert (first.a == second.a).all()
        assert (first.b == second.b).all()

    @given(mapping=keyed_mappings(min_size=20, max_size=120))
    @settings(max_examples=20, deadline=None)
    def test_different_seeds_usually_differ(self, mapping):
        # Not a strict guarantee per example, but seeds must actually
        # reach the probe functions: identical arrays under EVERY seed
        # would mean the seed is dead code.
        keys, values = mapping
        builds = [Othello(keys, values, seed=s, value_bits=12) for s in range(4)]
        distinct = {(b.a.tobytes(), b.b.tobytes()) for b in builds}
        assert len(distinct) >= 2 or len(keys) < 25


class TestIncrementalUpdate:
    @given(
        mapping=keyed_mappings(min_size=2, max_size=150),
        pick=st.integers(min_value=0, max_value=10_000),
        new_value=st.integers(min_value=0, max_value=(1 << 12) - 1),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_update_equals_full_rebuild(self, mapping, pick, new_value, seed):
        keys, values = mapping
        i = pick % len(keys)
        o = Othello(keys, values, seed=seed, value_bits=12)
        touched = o.update(keys[i], new_value)
        mutated = list(values)
        mutated[i] = new_value
        rebuilt = Othello(keys, mutated, seed=seed, value_bits=12)
        # Same seed -> same probe graph, so patched and rebuilt must agree
        # on every member key (array cells may differ: the XOR delta lands
        # on whichever side of the key's edge excludes the walk root).
        probe = np.array(keys, dtype=np.uint64)
        assert o.lookup_batch(probe).tolist() == mutated
        assert rebuilt.lookup_batch(probe).tolist() == mutated
        assert (touched == 0) == (values[i] == new_value)

    @given(mapping=keyed_mappings(min_size=2, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_update_moves_exactly_one_key(self, mapping):
        keys, values = mapping
        o = Othello(keys, values, value_bits=12)
        o.update(keys[0], (values[0] + 1) & 0xFFF)
        got = o.lookup_batch(np.array(keys, dtype=np.uint64)).tolist()
        assert got[0] == (values[0] + 1) & 0xFFF
        assert got[1:] == list(values[1:])

    def test_clone_isolates_mutation(self):
        keys = list(range(50))
        values = [k % 9 for k in keys]
        o = Othello(keys, values, value_bits=12)
        patched = o.clone()
        patched.update(7, 8)
        assert o.lookup(7) == 7 % 9
        assert patched.lookup(7) == 8
        assert all(patched.lookup(k) == o.lookup(k) for k in keys if k != 7)

    def test_update_rejects_out_of_range_value(self):
        o = Othello([1, 2, 3], [0, 1, 2], value_bits=4)
        with pytest.raises(ValueError):
            o.update(1, 16)
        with pytest.raises(KeyError):
            o.update(99, 0)


class TestCycleRetryBounds:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_undersized_arrays_fail_within_bound(self, seed):
        # 40 edges into 8+8 nodes can never be acyclic (a forest on 16
        # nodes has at most 15 edges): every attempt must burn one seed
        # pair and the build must give up at exactly max_attempts.
        with pytest.raises(OthelloBuildError, match="8 attempts"):
            Othello(range(40), [0] * 40, seed=seed, ma=8, mb=8, max_attempts=8)

    @given(mapping=keyed_mappings(min_size=1, max_size=100), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_default_sizing_builds_in_few_attempts(self, mapping, seed):
        # At the enforced subcritical load the acyclic probability per
        # attempt is high; the retry chain must stay short (this is the
        # bound that keeps control-plane rebuilds predictable).
        keys, values = mapping
        o = Othello(keys, values, seed=seed, value_bits=12, max_attempts=64)
        assert 1 <= o.attempts <= 16

    def test_tight_arrays_may_retry_then_succeed(self):
        # Arrays exactly at n nodes per side: cycles are likely, success
        # is still possible, and `attempts` records the burned retries.
        for seed in range(20):
            try:
                o = Othello(range(12), [0] * 12, seed=seed, ma=16, mb=16,
                            max_attempts=64)
            except OthelloBuildError:
                continue
            assert o.attempts >= 1
            assert all(o.lookup(k) == 0 for k in range(12))
            return
        pytest.fail("no seed built a tight Othello in 20 tries")
