"""GossipSync: epidemic CT replication with versioned per-origin logs,
tombstones, partition anti-entropy, and crash accounting
(repro.control.gossip)."""

import pytest

from repro.control.gossip import GossipSync
from repro.ct import make_ct


class Member:
    """Minimal gossip participant: a name and a CT."""

    def __init__(self, name, capacity=512):
        self.name = name
        self.ct = make_ct(capacity, "lru")

    def __repr__(self):
        return f"Member({self.name})"


def make_pool(n, **kwargs):
    kwargs.setdefault("fanout", 2)
    kwargs.setdefault("round_lookups", 8)
    sync = GossipSync(**kwargs)
    members = [Member(i) for i in range(n)]
    for member in members:
        sync.register_member(member)
    return sync, members


class TestDissemination:
    def test_every_delta_reaches_every_member(self):
        sync, members = make_pool(5)
        for key in range(40):
            # The origin inserts locally first (as LBPool does), then
            # offers the delta to the pool.
            members[key % 5].ct.put(key, f"s{key}")
            sync.offer(members[key % 5], key, f"s{key}")
        assert sync.staleness() == 40 * 4
        rounds = sync.drain()
        assert sync.converged
        assert rounds >= 1
        for member in members:
            for key in range(40):
                assert member.ct.get(key) == f"s{key}"

    def test_on_lookup_paces_rounds(self):
        sync, members = make_pool(3, round_lookups=8)
        sync.offer(members[0], 1, "a")
        for _ in range(7):
            sync.on_lookup()
        assert sync.stats.rounds == 0
        sync.on_lookup()
        assert sync.stats.rounds == 1

    def test_tombstones_delete_at_peers(self):
        sync, members = make_pool(3)
        sync.offer(members[0], 7, "a")
        sync.drain()
        assert members[1].ct.get(7) == "a"
        sync.offer(members[0], 7, None, tombstone=True)
        sync.drain()
        for member in members:
            assert member.ct.get(7) is None
        # One tombstone applied at each of the two peers.
        assert sync.stats.tombstones == 2

    def test_third_party_forwarding_is_epidemic(self):
        # Origin pushes to one peer, then partitions: the delta still
        # reaches everyone because peers forward what they applied.
        sync, members = make_pool(4, fanout=1, seed=2)
        sync.offer(members[0], 1, "a")
        while sync.staleness_of(members[1]) and sync.staleness_of(
            members[2]
        ) and sync.staleness_of(members[3]):
            sync.run_round()
        sync.partition_member(members[0])
        sync.drain()
        assert all(
            m.ct.get(1) == "a" for m in members[1:]
        ), "survivors must forward a partitioned origin's delivered deltas"

    def test_lossy_network_still_converges(self):
        sync, members = make_pool(4, loss_probability=0.3, seed=9)
        for key in range(30):
            sync.offer(members[key % 4], key, key)
        sync.drain()
        assert sync.converged
        assert sync.stats.lost_pushes > 0
        assert sync.stats.retries == sync.stats.lost_pushes

    def test_mean_lag_counts_rounds(self):
        sync, members = make_pool(3)
        sync.offer(members[0], 1, "a")
        sync.drain()
        assert sync.stats.lag_rounds_count == 2
        assert sync.stats.mean_lag_rounds >= 1.0


class TestPartitionAndHeal:
    def test_partitioned_member_accrues_staleness(self):
        sync, members = make_pool(4)
        sync.partition_member(members[3])
        for key in range(20):
            sync.offer(members[key % 3], key, key)
        sync.drain()
        # Live members converged among themselves...
        assert sync.staleness_of(members[0]) == 0
        # ...but the partitioned one still owes 20 deltas.
        assert sync.staleness_of(members[3]) == 20
        assert members[3].ct.get(0) is None

    def test_heal_repairs_via_anti_entropy(self):
        sync, members = make_pool(4)
        sync.partition_member(members[3])
        for key in range(20):
            sync.offer(members[key % 3], key, key)
        sync.drain()
        before = sync.stats.anti_entropy
        sync.heal_member(members[3])
        sync.drain()
        assert sync.converged
        assert sync.staleness_of(members[3]) == 0
        assert sync.stats.anti_entropy - before == 20
        assert members[3].ct.get(19) == 19

    def test_drain_does_not_wait_on_active_partition(self):
        # The partitioned member originated deltas nobody else holds;
        # drain must converge on *reachable* debt, while staleness()
        # keeps reporting the true (unreachable) debt.
        sync, members = make_pool(3)
        sync.partition_member(members[2])
        sync.offer(members[2], 1, "trapped")
        sync.offer(members[0], 2, "fine")
        sync.drain()
        assert sync.staleness() > 0  # the trapped delta is still owed
        assert members[1].ct.get(2) == "fine"
        sync.heal_member(members[2])
        sync.drain()
        assert sync.converged
        assert members[0].ct.get(1) == "trapped"

    def test_fresh_member_is_backfilled(self):
        sync, members = make_pool(3)
        for key in range(10):
            sync.offer(members[0], key, key)
        sync.drain()
        newcomer = Member("new")
        sync.register_member(newcomer)
        sync.drain()
        assert sync.staleness_of(newcomer) == 0
        assert all(newcomer.ct.get(k) == k for k in range(10))


class TestCrashAccounting:
    def test_unreplicated_deltas_are_counted_in_lost(self):
        sync, members = make_pool(3)
        # Partition the future victim so its inserts cannot disseminate,
        # then crash it: every one of them is unreplicated by definition.
        sync.partition_member(members[2])
        for key in range(15):
            sync.offer(members[2], key, key)
        sync.forget_target(members[2])
        assert sync.stats.unreplicated == 15
        assert sync.stats.lost >= 15
        assert sync.degraded

    def test_deliveries_owed_to_the_dead_are_voided(self):
        sync, members = make_pool(3)
        for key in range(10):
            sync.offer(members[0], key, key)
        # members[2] never got anything; crash it while deltas pend.
        sync.forget_target(members[2])
        assert sync.stats.dropped_targets == 10
        sync.drain()
        assert sync.converged  # the survivor pair still converges

    def test_ghost_log_keeps_replicated_deltas_flowing(self):
        sync, members = make_pool(3, fanout=2)
        sync.offer(members[0], 1, "a")
        # Deliver to member 1 only, then crash the origin.
        st0 = sync._by_member[members[0]]
        st1 = sync._by_member[members[1]]
        sync._apply(st1, sync._payload(st0, st1))
        sync.forget_target(members[0])
        assert sync.stats.unreplicated == 0
        sync.drain()
        # Member 2 got the delta from member 1's forwarding of the ghost.
        assert members[2].ct.get(1) == "a"


class TestDeterminism:
    def run_trace(self, seed):
        sync, members = make_pool(
            4, loss_probability=0.25, seed=seed, fanout=2
        )
        for key in range(25):
            sync.offer(members[key % 4], key, key)
            sync.run_round()
        sync.drain()
        return sync.stats

    def test_same_seed_same_stats(self):
        assert self.run_trace(123) == self.run_trace(123)

    def test_different_seed_different_trace(self):
        assert self.run_trace(123) != self.run_trace(124)

    def test_validation(self):
        with pytest.raises(ValueError):
            GossipSync(fanout=0)
        with pytest.raises(ValueError):
            GossipSync(round_lookups=0)
        with pytest.raises(ValueError):
            GossipSync(loss_probability=1.0)
        with pytest.raises(ValueError):
            GossipSync(backoff_rounds=0)
