"""Invariant monitors and the telemetry integration they run over.

Covers monitor semantics on synthetic registries (ok / violation /
skip), the collector layer's derived series, the ``evaluate_and_export``
final line, ``repro obs summarize --strict``, and the acceptance bar:
a live-registry simulation whose observed tracked fraction lands within
tolerance of |H|/(|W|+|H|) with every monitor green.
"""

import pytest

from repro import cli
from repro.obs import (
    JsonlExporter,
    MonitorResult,
    MonitorSuite,
    OccupancyBoundMonitor,
    PCCAccountingMonitor,
    Registry,
    TrackedFractionMonitor,
    default_monitors,
    evaluate_and_export,
    metrics as M,
    observed_tracked_fraction,
)
from repro.obs.summarize import main as summarize_main, summarize
from repro.sim import SimulationConfig, run_simulation


def _registry_with(flows=1000, tracked=100, expected=0.1):
    reg = Registry()
    reg.counter(M.FLOWS).inc(flows)
    reg.counter(M.TRACKED_FLOWS).inc(tracked)
    reg.gauge(M.EXPECTED_TRACKED_FRACTION).set(expected)
    return reg


class TestTrackedFractionMonitor:
    def test_within_tolerance(self):
        result = TrackedFractionMonitor(0.10).evaluate(
            _registry_with(flows=1000, tracked=105, expected=0.1)
        )
        assert result.ok and not result.skipped
        assert result.observed == pytest.approx(0.105)

    def test_violation_outside_tolerance(self):
        result = TrackedFractionMonitor(0.10).evaluate(
            _registry_with(flows=1000, tracked=200, expected=0.1)
        )
        assert result.violated

    def test_skips_without_expectation(self):
        reg = Registry()
        reg.counter(M.FLOWS).inc(1000)
        result = TrackedFractionMonitor().evaluate(reg)
        assert result.skipped and result.ok

    def test_skips_below_min_flows(self):
        result = TrackedFractionMonitor(min_flows=200).evaluate(
            _registry_with(flows=50, tracked=5, expected=0.1)
        )
        assert result.skipped

    def test_rejects_nonpositive_tolerance(self):
        with pytest.raises(ValueError):
            TrackedFractionMonitor(tolerance=0.0)


class TestPCCAccountingMonitor:
    def test_ok_within_exposure(self):
        reg = Registry()
        reg.counter(M.PCC_VIOLATIONS).inc(3)
        reg.counter(M.INEVITABLY_BROKEN).inc(4)
        reg.counter(M.CHURN_EXPOSED).inc(100)
        assert PCCAccountingMonitor().evaluate(reg).ok

    def test_violation_when_broken_exceeds_exposure(self):
        reg = Registry()
        reg.counter(M.PCC_VIOLATIONS).inc(10)
        reg.counter(M.CHURN_EXPOSED).inc(4)
        assert PCCAccountingMonitor().evaluate(reg).violated

    def test_skips_without_exposure_series(self):
        assert PCCAccountingMonitor().evaluate(Registry()).skipped


class TestOccupancyBoundMonitor:
    def test_capacity_bound_holds(self):
        reg = Registry()
        reg.gauge(M.CT_OCCUPANCY_PEAK).set(90)
        reg.gauge(M.CT_CAPACITY).set(100)
        result = OccupancyBoundMonitor().evaluate(reg)
        assert result.ok and "capacity" in result.detail

    def test_capacity_violation(self):
        reg = Registry()
        reg.gauge(M.CT_OCCUPANCY_PEAK).set(150)
        reg.gauge(M.CT_CAPACITY).set(100)
        assert OccupancyBoundMonitor().evaluate(reg).violated

    def test_falls_back_to_inserts_bound(self):
        reg = Registry()
        reg.gauge(M.CT_OCCUPANCY_PEAK).set(10)
        reg.counter(M.CT_INSERTS).set_total(12)
        result = OccupancyBoundMonitor().evaluate(reg)
        assert result.ok and "inserts" in result.detail

    def test_skips_stateless(self):
        assert OccupancyBoundMonitor().evaluate(Registry()).skipped


class TestSuiteAndSerialization:
    def test_default_suite_composition(self):
        names = [m.name for m in default_monitors()]
        assert names == [
            "tracked_fraction",
            "pcc_accounting",
            "ct_occupancy_bound",
            "horizon_fidelity",
            "gossip_convergence",
        ]

    def test_result_json_round_trip(self):
        result = MonitorResult(name="x", ok=False, observed=1.0, expected=2.0)
        assert MonitorResult.from_json(result.to_json()) == result
        assert result.violated

    def test_render_marks_status(self):
        rendered = MonitorSuite.render([
            MonitorResult(name="a", ok=True),
            MonitorResult(name="b", ok=False),
            MonitorResult(name="c", ok=True, skipped=True),
        ])
        assert "VIOLATION" in rendered and "SKIP" in rendered

    def test_observed_tracked_fraction_helper(self):
        assert observed_tracked_fraction(Registry()) is None
        reg = _registry_with(flows=200, tracked=30)
        assert observed_tracked_fraction(reg) == pytest.approx(0.15)


class TestEvaluateAndExport:
    def test_writes_final_line_with_invariants(self, tmp_path):
        path = tmp_path / "m.jsonl"
        reg = _registry_with()
        with JsonlExporter(path) as exporter:
            reg.attach_exporter(exporter)
            results = evaluate_and_export(reg, t=5.0)
        assert all(not r.violated for r in results)
        digest = summarize(path)
        assert digest["final_t"] == 5.0
        assert [r.name for r in digest["invariants"]] == [
            "tracked_fraction", "pcc_accounting", "ct_occupancy_bound",
            "horizon_fidelity", "gossip_convergence",
        ]


class TestSummarizeCLI:
    def _artifact(self, tmp_path, tracked):
        path = tmp_path / "m.jsonl"
        reg = _registry_with(tracked=tracked)
        with JsonlExporter(path) as exporter:
            reg.attach_exporter(exporter)
            evaluate_and_export(reg)
        return str(path)

    def test_strict_green(self, tmp_path, capsys):
        assert summarize_main([self._artifact(tmp_path, tracked=100), "--strict"]) == 0
        assert "tracked_fraction" in capsys.readouterr().out

    def test_strict_red_on_violation(self, tmp_path, capsys):
        path = self._artifact(tmp_path, tracked=300)
        assert summarize_main([path]) == 0  # non-strict only reports
        assert summarize_main([path, "--strict"]) == 1
        assert "violation" in capsys.readouterr().out


class TestSimulationTelemetry:
    """The acceptance bar, at test-sized scale."""

    @pytest.fixture(scope="class")
    def instrumented(self):
        registry = Registry()
        config = SimulationConfig(
            duration_s=40.0,
            connection_rate=500.0,
            n_servers=100,
            horizon_size=10,
            update_rate_per_min=10.0,
            mode="jet",
            ch_family="anchor",
            seed=0,
            registry=registry,
        )
        return run_simulation(config), registry

    def test_all_monitors_green(self, instrumented):
        _, registry = instrumented
        results = MonitorSuite(default_monitors(tolerance=0.10)).evaluate(registry)
        assert [r for r in results if r.violated] == []
        assert not all(r.skipped for r in results)

    def test_tracked_fraction_near_theorem(self, instrumented):
        _, registry = instrumented
        registry.collect()
        expected = registry.value(M.EXPECTED_TRACKED_FRACTION)
        # Scraped live, so |W| reflects servers down at run end -- near
        # (not exactly) the nominal 10/110.
        assert expected == pytest.approx(10 / 110, rel=0.10)
        observed = observed_tracked_fraction(registry)
        assert observed == pytest.approx(expected, rel=0.10)

    def test_series_match_sim_result(self, instrumented):
        result, registry = instrumented
        registry.collect()
        assert registry.value(M.PCC_VIOLATIONS) == result.pcc_violations
        assert registry.value(M.CT_OCCUPANCY_PEAK) == result.ct_peak_size
        assert registry.value(M.CHURN_EXPOSED) == result.churn_exposed_flows
        assert result.ct_peak_size > 0
        assert result.churn_exposed_flows > 0
        removals = registry.value(M.BACKEND_EVENTS, kind="removal")
        assert removals == result.removals

    def test_ch_lookups_labelled_by_family(self, instrumented):
        _, registry = instrumented
        registry.collect()
        lookups = registry.value(M.CH_LOOKUPS, family="anchor")
        assert lookups is not None and lookups > 0


class TestCLIMetricsOut:
    def test_simulate_emits_artifacts_and_green_monitors(self, tmp_path, capsys):
        out = tmp_path / "sim.jsonl"
        code = cli.main([
            "simulate", "--duration", "20", "--rate", "300",
            "--metrics-out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "invariant monitors" in captured
        assert "VIOLATION" not in captured
        assert out.exists()
        assert out.with_suffix(".prom").exists()
        assert summarize_main([str(out), "--strict"]) == 0

    def test_obs_summarize_subcommand(self, tmp_path, capsys):
        out = tmp_path / "sim.jsonl"
        cli.main(["simulate", "--duration", "10", "--rate", "200",
                  "--metrics-out", str(out)])
        capsys.readouterr()
        assert cli.main(["obs", "summarize", str(out), "--strict"]) == 0
        assert "invariant monitors" in capsys.readouterr().out
