"""Shared fixtures: server populations, key samples, CH factories."""

import pytest

from repro.ch import AnchorHash, HRWHash, JumpHash, RingHash, TableHRWHash
from repro.ch.properties import sample_keys

WORKING = [f"w{i}" for i in range(16)]
HORIZON = [f"h{i}" for i in range(3)]


def make_family(family: str, working=None, horizon=None):
    """Construct a JET-capable CH of the given family with test-sized
    parameters (small tables/capacities keep tests fast)."""
    working = WORKING if working is None else working
    horizon = HORIZON if horizon is None else horizon
    if family == "hrw":
        return HRWHash(working, horizon)
    if family == "ring":
        return RingHash(working, horizon, virtual_nodes=40)
    if family == "table":
        return TableHRWHash(working, horizon, rows=1031)
    if family == "anchor":
        return AnchorHash(working, horizon, capacity=4 * (len(working) + len(horizon)))
    if family == "jump":
        return JumpHash(working, horizon)
    raise ValueError(family)


#: The four CH families the paper integrates with JET (Algorithms 2-5).
JET_FAMILY_NAMES = ("hrw", "ring", "table", "anchor")


@pytest.fixture(params=JET_FAMILY_NAMES)
def jet_ch(request):
    """A fresh horizon-aware CH instance per paper family."""
    return make_family(request.param)


@pytest.fixture(params=JET_FAMILY_NAMES)
def jet_ch_factory(request):
    """A factory producing fresh same-configured CH instances."""
    family = request.param
    return lambda: make_family(family)


@pytest.fixture(scope="session")
def keys():
    """A reusable batch of pseudo-random 64-bit connection keys."""
    return sample_keys(4000, seed=12345)


@pytest.fixture(scope="session")
def few_keys():
    return sample_keys(400, seed=54321)
