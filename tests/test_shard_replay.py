"""Sharded replay equals single-process replay -- the merge contract.

The property the whole sharded dataplane rests on: for any CH family and
LB mode, partitioning a trace over shards and merging the per-shard
results reproduces the single-process replay byte for byte -- metrics,
CT contents, invariant verdicts -- and the merged result is invariant to
how shards are spread over worker processes.
"""

import multiprocessing

import pytest

from repro.obs import Registry
from repro.obs.invariants import MonitorSuite, default_monitors
from repro.shard import BalancerSpec, MembershipEvent, replay_sharded
from repro.traces import replay_batch, zipf_trace
from repro.traces.replay import merge_replay_results

#: Every (mode, family) pair the CLI can build; JET and Concury need a
#: horizon, so maglev (horizonless, paper Section 3.6) only runs
#: full/stateless, and Concury cannot be its own inner family.
FAMILIES = ("hrw", "ring", "table", "anchor", "maglev", "jump", "modulo",
            "concury")
MODES = ("jet", "full", "stateless", "concury")
MATRIX = [
    (mode, family)
    for mode in MODES
    for family in FAMILIES
    if not (mode in ("jet", "concury") and family == "maglev")
    and not (mode == "concury" and family == "concury")
]

TIMING_FIELDS = ("rate_pps", "wall_seconds")


def small_trace(seed=3):
    return zipf_trace(skew=1.0, n_packets=6_000, population=1_200, seed=seed)


def assert_results_equal(a, b):
    for field in a.__dataclass_fields__:
        if field in TIMING_FIELDS:
            continue
        assert getattr(a, field) == getattr(b, field), field


def fleet(mode, family, **kwargs):
    return BalancerSpec.fleet(
        mode=mode, family=family, n_servers=10, horizon_size=2, seed=5, **kwargs
    )


class TestMergeEqualsSingle:
    @pytest.mark.parametrize("mode,family", MATRIX)
    def test_metrics_ct_and_verdicts_match(self, mode, family):
        trace = small_trace()
        spec = fleet(mode, family)

        single_registry = Registry()
        single_balancer = spec.build(0)
        single = replay_batch(trace, single_balancer, metrics=single_registry)
        single_registry.collect()

        merged_registry = Registry()
        sharded = replay_sharded(
            trace, spec, n_workers=1, n_shards=3,
            metrics=merged_registry, collect_tracked=True,
        )
        assert_results_equal(sharded.result, single)

        # CT contents: the union of per-shard tables is the single table.
        items = getattr(single_balancer, "tracked_items", None)
        if items is not None:
            union = {}
            for outcome in sharded.outcomes:
                assert not union.keys() & outcome.tracked_items.keys()
                union.update(outcome.tracked_items)
            assert union == items()

        # Invariant verdicts over the merged registry match byte for byte.
        suite = MonitorSuite(default_monitors())
        single_verdicts = [v.to_json() for v in suite.evaluate(single_registry)]
        merged_verdicts = [v.to_json() for v in suite.evaluate(merged_registry)]
        assert merged_verdicts == single_verdicts

    def test_registry_counters_match_single(self):
        from repro.obs import metrics as m
        from repro.obs.collectors import CT_HITS, CT_INSERTS, CT_LOOKUPS

        trace = small_trace()
        spec = fleet("jet", "table")
        r_single, r_merged = Registry(), Registry()
        replay_batch(trace, spec.build(0), metrics=r_single)
        r_single.collect()
        replay_sharded(trace, spec, n_workers=1, n_shards=4, metrics=r_merged)
        for name in (
            m.FLOWS, m.TRACKED_FLOWS, m.OBSERVED_TRACKED_FRACTION,
            CT_LOOKUPS, CT_HITS, CT_INSERTS,
        ):
            assert r_merged.value(name) == r_single.value(name), name


class TestMembershipFanOut:
    def test_events_reach_every_shard(self):
        trace = small_trace(seed=9)
        spec = fleet("jet", "table")
        events = [
            MembershipEvent(500, "remove_working", "s0"),
            MembershipEvent(2_000, "add_working", "h0"),
            MembershipEvent(4_500, "remove_working", "s3"),
        ]
        single_balancer = fleet("jet", "table").build(0)
        single = replay_batch(
            trace, single_balancer, [(e.packet_index, e.apply) for e in events]
        )
        for n_shards in (2, 3, 5):
            sharded = replay_sharded(trace, spec, n_shards=n_shards, events=events)
            assert_results_equal(sharded.result, single)

    def test_trailing_event_state_is_rederived(self):
        # An event after nearly every packet: it trails most shards, yet
        # merged tracked/active/oversub must match the single run, which
        # applies it before finalizing.
        trace = small_trace(seed=4)
        spec = fleet("jet", "hrw")
        events = [MembershipEvent(trace.n_packets - 1, "remove_working", "s1")]
        single = replay_batch(
            trace, spec.build(0), [(e.packet_index, e.apply) for e in events]
        )
        sharded = replay_sharded(trace, spec, n_shards=4, events=events)
        assert_results_equal(sharded.result, single)

    def test_event_past_trace_end_never_fires(self):
        trace = small_trace(seed=4)
        spec = fleet("jet", "table")
        quiet = replay_sharded(trace, spec, n_shards=3)
        noisy = replay_sharded(
            trace, spec, n_shards=3,
            events=[MembershipEvent(trace.n_packets, "remove_working", "s0")],
        )
        assert_results_equal(noisy.result, quiet.result)


class TestMergeAlgebra:
    def test_merge_is_associative(self):
        trace = small_trace()
        spec = fleet("jet", "ring")
        results = [
            o.result for o in replay_sharded(trace, spec, n_shards=4).outcomes
        ]
        left = merge_replay_results(
            [merge_replay_results(results[:2]), merge_replay_results(results[2:])]
        )
        flat = merge_replay_results(results)
        assert_results_equal(left, flat)

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_replay_results([])


class TestWorkerCountStability:
    """Satellite: merged results are byte-stable in the worker count."""

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_workers_do_not_change_results(self):
        # random-evict bounded CT: every RNG draw flows from the shard
        # seed, so even eviction choices cannot depend on the process
        # layout or scheduling order.
        trace = small_trace(seed=8)
        spec = fleet("jet", "table", ct_capacity=64, ct_policy="random")
        runs = {
            workers: replay_sharded(
                trace, spec, n_workers=workers, n_shards=4, collect_tracked=True
            )
            for workers in (1, 2, 3)
        }
        baseline = runs[1]
        for workers in (2, 3):
            assert_results_equal(runs[workers].result, baseline.result)
            for mine, theirs in zip(runs[workers].outcomes, baseline.outcomes):
                assert mine.shard_id == theirs.shard_id
                assert_results_equal(mine.result, theirs.result)
                assert mine.tracked_items == theirs.tracked_items

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_concury_workers_do_not_change_results(self):
        # Concury has no CT and no shard-local randomness at all: every
        # shard builds the identical Othello map from the master seed, so
        # the merged result must be byte-stable in the worker count even
        # under mid-trace membership churn.
        trace = small_trace(seed=8)
        spec = fleet("concury", "table")
        events = [
            MembershipEvent(1_000, "remove_working", "s2"),
            MembershipEvent(3_500, "add_working", "h0"),
        ]
        runs = {
            workers: replay_sharded(
                trace, spec, n_workers=workers, n_shards=4, events=events
            )
            for workers in (1, 2, 3)
        }
        baseline = runs[1]
        for workers in (2, 3):
            assert_results_equal(runs[workers].result, baseline.result)
            for mine, theirs in zip(runs[workers].outcomes, baseline.outcomes):
                assert mine.shard_id == theirs.shard_id
                assert_results_equal(mine.result, theirs.result)

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_forked_metrics_match_serial(self):
        trace = small_trace(seed=2)
        spec = fleet("jet", "anchor")
        serial, forked = Registry(), Registry()
        replay_sharded(trace, spec, n_workers=1, n_shards=2, metrics=serial)
        replay_sharded(trace, spec, n_workers=2, n_shards=2, metrics=forked)

        def series(registry):
            # Wall-clock histograms measure the host, not the workload.
            return [
                entry for entry in registry.dump_series()
                if entry["name"] != "repro_wall_seconds"
            ]

        assert series(forked) == series(serial)

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_worker_failure_surfaces(self):
        trace = small_trace()

        def bad_factory(shard_id):
            raise RuntimeError("boom in worker")

        with pytest.raises(RuntimeError, match="boom in worker"):
            replay_sharded(trace, bad_factory, n_workers=2, n_shards=2)


class TestValidation:
    def test_rejects_bad_counts(self):
        trace = small_trace()
        spec = fleet("jet", "table")
        with pytest.raises(ValueError):
            replay_sharded(trace, spec, n_workers=0)
        with pytest.raises(ValueError):
            replay_sharded(trace, spec, n_workers=1, n_shards=0)

    def test_jet_maglev_rejected_at_spec(self):
        with pytest.raises(ValueError, match="maglev"):
            fleet("jet", "maglev")
