"""TTL (idle-timeout) CT table tests."""

import pytest

from repro.ct import TTLCT, make_ct
from repro.ct.ttl import Clock


@pytest.fixture
def clocked():
    clock = Clock(0.0)
    return TTLCT(ttl=10.0, clock=clock), clock


class TestExpiry:
    def test_fresh_entry_hit(self, clocked):
        ct, clock = clocked
        ct.put(1, "a")
        clock.now = 9.9
        assert ct.get(1) == "a"

    def test_idle_entry_expires(self, clocked):
        ct, clock = clocked
        ct.put(1, "a")
        clock.now = 10.1
        assert ct.get(1) is None
        assert ct.expired == 1

    def test_touch_refreshes_ttl(self, clocked):
        ct, clock = clocked
        ct.put(1, "a")
        clock.now = 8.0
        assert ct.get(1) == "a"  # touch
        clock.now = 17.0         # 9s after the touch, 17s after insert
        assert ct.get(1) == "a"

    def test_len_excludes_expired(self, clocked):
        ct, clock = clocked
        ct.put(1, "a")
        ct.put(2, "b")
        clock.now = 5.0
        ct.get(2)  # refresh 2 only
        clock.now = 12.0
        assert len(ct) == 1
        assert set(ct) == {2}

    def test_peek_respects_ttl_without_mutation(self, clocked):
        ct, clock = clocked
        ct.put(1, "a")
        clock.now = 11.0
        assert ct.peek(1) is None
        clock.now = 5.0
        # peek never refreshed, so the original stamp still governs.
        assert ct.peek(1) == "a"

    def test_put_reaps_stale_entries(self, clocked):
        ct, clock = clocked
        for i in range(5):
            ct.put(i, "x")
        clock.now = 20.0
        ct.put(99, "y")
        assert len(ct) == 1
        assert ct.expired == 5


class TestBoundedTTL:
    def test_capacity_eviction_of_stalest(self):
        clock = Clock(0.0)
        ct = TTLCT(ttl=100.0, capacity=2, clock=clock)
        ct.put(1, "a")
        clock.now = 1.0
        ct.put(2, "b")
        clock.now = 2.0
        ct.put(3, "c")  # evicts 1 (stalest)
        assert ct.peek(1) is None
        assert ct.peek(2) == "b"
        assert ct.stats.evictions == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TTLCT(ttl=0)
        with pytest.raises(ValueError):
            TTLCT(ttl=1, capacity=0)


class TestIntegration:
    def test_make_ct_ttl(self):
        ct = make_ct(policy="ttl", ttl=5.0, clock=Clock(0.0))
        assert isinstance(ct, TTLCT)
        assert ct.ttl == 5.0

    def test_simulator_tracks_active_only(self):
        from repro.sim import LogNormal, SimulationConfig, run_simulation

        base = SimulationConfig(
            duration_s=30.0,
            connection_rate=300.0,
            n_servers=30,
            horizon_size=3,
            update_rate_per_min=6.0,
            downtime_dist=LogNormal(median=5.0, sigma=0.6),
            seed=5,
        )
        unbounded = run_simulation(base.with_(mode="full"))
        ttl = run_simulation(base.with_(mode="full", ct_policy="ttl", ct_ttl=10.0))
        # TTL reclaims dead flows: strictly smaller peak than grow-forever.
        assert ttl.peak_tracked < unbounded.peak_tracked
        assert ttl.pcc_violations == 0

    def test_wall_clock_default(self):
        ct = TTLCT(ttl=1000.0)
        ct.put(1, "a")
        assert ct.get(1) == "a"
