"""The shipped scenario library, the matrix experiment, and the CLI verbs.

Every library scenario must load strictly, carry a non-trivial envelope,
and pass that envelope at its shipped scale -- the library is executable
documentation, so a scenario that fails its own envelope is a bug in one
or the other.  The matrix/bench plumbing (``bench_section`` ->
``merge_into_bench`` -> ``throughput.check_against``) is exercised on
synthetic payloads so regressions in the gate itself fail fast.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.scenario_matrix import bench_section, merge_into_bench
from repro.experiments.throughput import check_against
from repro.scenarios import (
    ScenarioError,
    load_all,
    load_scenario,
    run_scenario,
    scenario_names,
    scenario_path,
)

LIBRARY = load_all()


class TestLibraryShape:
    def test_at_least_six_scenarios(self):
        assert len(LIBRARY) >= 6

    def test_names_match_file_stems(self):
        for name in scenario_names():
            assert load_scenario(name).name == name

    def test_unknown_name_lists_available(self):
        with pytest.raises(ScenarioError) as err:
            scenario_path("no-such-scenario")
        assert "flash-crowd" in str(err.value)

    def test_every_scenario_has_description_and_envelope(self):
        for name, spec in LIBRARY.items():
            assert spec.description, name
            assert spec.envelope.bounds(), f"{name} ships without an envelope"

    def test_library_covers_the_production_situations(self):
        names = set(LIBRARY)
        assert {
            "flash-crowd",
            "rolling-deploy",
            "zone-failure",
            "multi-region-failover",
            "churn-storm",
            "heterogeneous-fleet",
        } <= names

    def test_shards_pinned_for_worker_invariance(self):
        for name, spec in LIBRARY.items():
            assert spec.shards >= 1, name


class TestLibraryEnvelopes:
    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_scenario_meets_its_own_envelope(self, name):
        report = run_scenario(LIBRARY[name])
        assert report.ok, report.render()


class TestMatrixBenchPlumbing:
    PAYLOAD = {
        "experiment": "scenario_matrix",
        "scale": "smoke",
        "workers": 1,
        "wall_seconds_total": 2.0,
        "scenarios": {
            "s1": {
                "native_mode": "jet",
                "seed": 1,
                "ok": True,
                "modes": {
                    "jet": {
                        "ok": True,
                        "wall_seconds": 0.5,
                        "margins": {"tracked_fraction": 0.2},
                    },
                    "full": {"ok": True, "wall_seconds": 0.5, "margins": {}},
                },
            }
        },
        "ok": True,
    }

    def test_bench_section_keeps_native_row_only(self):
        section = bench_section(self.PAYLOAD)
        assert section["scale"] == "smoke"
        assert section["scenarios"]["s1"]["margins"] == {"tracked_fraction": 0.2}

    def test_merge_preserves_other_sections(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"scale": "smoke", "ch_lookup": [{"x": 1}]}))
        merge_into_bench(self.PAYLOAD, str(path))
        recorded = json.loads(path.read_text())
        assert recorded["ch_lookup"] == [{"x": 1}]  # untouched
        assert recorded["scenarios"]["scenarios"]["s1"]["ok"] is True

    def test_check_against_flags_envelope_violation(self):
        fresh = {"scale": "smoke", "scenarios": bench_section(self.PAYLOAD)}
        fresh["scenarios"]["scenarios"]["s1"]["ok"] = False
        failures = check_against(fresh, {"scale": "smoke"})
        assert any("s1" in f and "envelope violated" in f for f in failures)

    def test_check_against_flags_margin_collapse(self):
        recorded = {"scale": "smoke", "scenarios": bench_section(self.PAYLOAD)}
        fresh = json.loads(json.dumps(recorded))
        fresh["scenarios"]["scenarios"]["s1"]["margins"]["tracked_fraction"] = 0.05
        failures = check_against(fresh, recorded)
        assert any("margin collapsed" in f for f in failures)

    def test_check_against_ignores_scale_mismatch_and_none_margins(self):
        recorded = {"scale": "paper", "scenarios": bench_section(self.PAYLOAD)}
        fresh = {"scale": "smoke", "scenarios": bench_section(self.PAYLOAD)}
        fresh["scenarios"]["scenarios"]["s1"]["margins"]["tracked_fraction"] = 0.0001
        assert check_against(fresh, recorded) == []
        recorded["scale"] = "smoke"
        recorded["scenarios"]["scenarios"]["s1"]["margins"]["tracked_fraction"] = None
        assert check_against(fresh, recorded) == []


class TestScenarioCLI:
    def test_list_names_every_scenario(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_show_prints_spec_and_compilation(self, capsys):
        assert main(["scenario", "show", "zone-failure"]) == 0
        out = capsys.readouterr().out
        assert '"name": "zone-failure"' in out
        assert "# compiles to:" in out and "fault events" in out

    def test_run_judges_and_reports(self, tmp_path, capsys):
        json_out = str(tmp_path / "report.json")
        code = main(
            ["scenario", "run", "zone-failure", "--json-out", json_out]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "OK" in out
        payload = json.loads(open(json_out).read())
        assert payload["scenario"] == "zone-failure" and payload["ok"]

    def test_run_from_file_with_overrides(self, tmp_path, capsys):
        spec = {
            "name": "mini",
            "duration_s": 6,
            "fleet": {"servers": 10, "horizon": 2},
            "workload": {"connection_rate": 60},
        }
        path = tmp_path / "mini.json"
        path.write_text(json.dumps(spec))
        code = main(
            ["scenario", "run", "--file", str(path), "--mode", "full", "--seed", "9"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[full]" in out and "seed=9" in out

    def test_run_without_source_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["scenario", "run"])

    def test_simulate_scenario_and_config_roundtrip(self, tmp_path, capsys):
        config_out = str(tmp_path / "cfg.json")
        assert (
            main(["simulate", "--scenario", "zone-failure", "--config-out", config_out])
            == 0
        )
        first = capsys.readouterr().out
        # The config persists the engine parameters; the keyspace
        # partition is the runner's, so the replay pins the same shards.
        assert main(["simulate", "--config", config_out, "--shards", "2"]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_simulate_source_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--scenario", "zone-failure", "--config", "x.json"])
