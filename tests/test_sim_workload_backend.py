"""Workload-generator and horizon-manager tests."""

import pytest

from repro.core import make_jet
from repro.sim.backend import HorizonManager
from repro.sim.distributions import Constant, Exponential
from repro.sim.workload import WorkloadGenerator

W = [f"w{i}" for i in range(12)]
STANDBY = ["s0", "s1", "s2"]


def generator(rate=50.0, seed=0, size=Constant(5), duration=Constant(2.0)):
    return WorkloadGenerator(rate, size, duration, seed=seed)


class TestWorkloadGenerator:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            generator(rate=0)

    def test_arrival_gaps_positive_with_correct_mean(self):
        g = generator(rate=50.0)
        gaps = [g.next_arrival_gap() for _ in range(20_000)]
        assert all(gap >= 0 for gap in gaps)
        assert sum(gaps) / len(gaps) == pytest.approx(1 / 50.0, rel=0.05)

    def test_flow_packet_schedule(self):
        g = generator(size=Constant(10), duration=Constant(4.0))
        flow = g.make_flow(now=100.0)
        assert flow.size == 10
        assert len(flow.packet_times) == 10
        assert flow.packet_times[0] == 100.0
        assert all(100.0 <= t <= 104.0 for t in flow.packet_times)
        assert flow.packet_times == sorted(flow.packet_times)

    def test_single_packet_flow(self):
        g = generator(size=Constant(1))
        flow = g.make_flow(now=5.0)
        assert flow.packet_times == [5.0]

    def test_keys_unique_across_flows(self):
        g = generator()
        keys = {g.make_flow(i * 0.1).key for i in range(5000)}
        assert len(keys) == 5000

    def test_seeded_reproducibility(self):
        a, b = generator(seed=9), generator(seed=9)
        fa, fb = a.make_flow(1.0), b.make_flow(1.0)
        assert fa.key == fb.key
        assert fa.packet_times == fb.packet_times

    def test_flow_ids_sequential(self):
        g = generator()
        flows = [g.make_flow(0.0) for _ in range(5)]
        assert [f.flow_id for f in flows] == list(range(5))
        assert g.flows_created == 5


class TestHorizonManager:
    def make(self):
        lb = make_jet("hrw", W, STANDBY)
        return lb, HorizonManager([lb], STANDBY)

    def test_initial_members(self):
        _, manager = self.make()
        assert manager.members == frozenset(STANDBY)
        assert manager.horizon_size == 3

    def test_removal_enters_horizon_and_evicts_oldest(self):
        lb, manager = self.make()
        manager.remove_server(W[0])
        assert W[0] in manager.members
        assert "s0" not in manager.members  # oldest standby evicted
        assert lb.horizon == manager.members

    def test_proper_recovery(self):
        lb, manager = self.make()
        manager.remove_server(W[0])
        assert manager.recover_server(W[0]) is True
        assert W[0] in lb.working
        assert manager.proper_additions == 1
        # Horizon topped back up with the spare standby.
        assert len(manager.members) == 3
        assert "s0" in manager.members

    def test_surprise_recovery_after_eviction(self):
        lb, manager = self.make()
        for name in W[:4]:  # overflow the 3-slot horizon
            manager.remove_server(name)
        assert W[0] not in manager.members  # evicted while down
        assert manager.recover_server(W[0]) is False
        assert manager.surprise_additions == 1
        assert W[0] in lb.working

    def test_lockstep_across_two_balancers(self):
        jet = make_jet("hrw", W, STANDBY)
        full = make_jet("hrw", W, STANDBY)
        manager = HorizonManager([jet, full], STANDBY)
        manager.remove_server(W[1])
        manager.remove_server(W[2])
        manager.recover_server(W[1])
        assert jet.working == full.working
        assert jet.horizon == full.horizon

    def test_down_servers_tracked(self):
        _, manager = self.make()
        manager.remove_server(W[5])
        assert manager.down_servers == frozenset({W[5]})
        manager.recover_server(W[5])
        assert manager.down_servers == frozenset()
