"""Distribution tests: analytic means vs empirical, bounds, validation."""

import random

import pytest

from repro.sim.distributions import (
    BoundedPareto,
    Constant,
    Exponential,
    LogNormal,
    Mixture,
    hadoop_flow_duration,
    hadoop_flow_size,
    server_downtime,
)


def empirical_mean(dist, n=30_000, seed=5):
    rng = random.Random(seed)
    return sum(dist.sample(rng) for _ in range(n)) / n


class TestBasicDistributions:
    def test_constant(self):
        d = Constant(4.2)
        assert d.sample(random.Random(0)) == 4.2
        assert d.mean() == 4.2

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            Constant(0)

    def test_exponential_mean(self):
        d = Exponential(10.0)
        assert empirical_mean(d) == pytest.approx(10.0, rel=0.05)

    def test_exponential_validation(self):
        with pytest.raises(ValueError):
            Exponential(-1)

    def test_lognormal_mean(self):
        d = LogNormal(median=10.0, sigma=0.5)
        assert empirical_mean(d) == pytest.approx(d.mean(), rel=0.05)

    def test_lognormal_validation(self):
        with pytest.raises(ValueError):
            LogNormal(0, 1)

    def test_bounded_pareto_range(self):
        d = BoundedPareto(1.2, 2.0, 50.0)
        rng = random.Random(1)
        samples = [d.sample(rng) for _ in range(5000)]
        assert all(2.0 <= s <= 50.0 for s in samples)

    def test_bounded_pareto_mean(self):
        d = BoundedPareto(1.5, 1.0, 1000.0)
        assert empirical_mean(d, n=100_000) == pytest.approx(d.mean(), rel=0.05)

    def test_bounded_pareto_alpha_one_mean(self):
        d = BoundedPareto(1.0, 1.0, 100.0)
        assert empirical_mean(d, n=100_000) == pytest.approx(d.mean(), rel=0.05)

    def test_bounded_pareto_validation(self):
        with pytest.raises(ValueError):
            BoundedPareto(1.0, 5.0, 2.0)


class TestMixture:
    def test_mean_is_weighted(self):
        m = Mixture([(1, Constant(10)), (3, Constant(2))])
        assert m.mean() == pytest.approx(0.25 * 10 + 0.75 * 2)

    def test_sampling_respects_weights(self):
        m = Mixture([(9, Constant(1)), (1, Constant(100))])
        rng = random.Random(2)
        big = sum(m.sample(rng) == 100 for _ in range(10_000))
        assert big == pytest.approx(1000, rel=0.2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Mixture([])


class TestPaperFactories:
    def test_flow_size_shape(self):
        d = hadoop_flow_size()
        rng = random.Random(3)
        samples = sorted(d.sample(rng) for _ in range(20_000))
        # Mice-dominated: median small, mean much larger (heavy tail).
        median = samples[len(samples) // 2]
        mean = sum(samples) / len(samples)
        assert median < 10
        assert mean > 3 * median

    def test_flow_duration_mean_about_20s(self):
        d = hadoop_flow_duration()
        assert d.mean() == pytest.approx(20.0, rel=0.25)

    def test_downtime_scale(self):
        d = server_downtime()
        rng = random.Random(4)
        samples = [d.sample(rng) for _ in range(5000)]
        median = sorted(samples)[2500]
        assert 40 < median < 90  # around a minute
