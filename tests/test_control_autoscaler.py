"""Autoscaler planning: forecasting, watermark hysteresis, seeded
forecast degradation, and the horizon scorecard (repro.control.autoscaler)."""

import pytest

from repro.control.autoscaler import Autoscaler, HorizonScorecard


def feed(scaler, samples):
    for t, flows, working in samples:
        scaler.observe(t, flows, working)


class TestForecast:
    def test_extrapolates_linear_growth(self):
        scaler = Autoscaler(target_load=8.0, lead_time_s=5.0)
        # load/server rises 1.0 per second: 0..3 at t=0..3.
        feed(scaler, [(float(t), t * 10, 10) for t in range(4)])
        # At t=3 the 5s-ahead forecast is load(8) = 8.0.
        assert scaler.forecast(3.0) == pytest.approx(8.0)

    def test_flat_signal_forecasts_itself(self):
        scaler = Autoscaler(target_load=8.0)
        feed(scaler, [(float(t), 40, 10) for t in range(4)])
        assert scaler.forecast(3.0) == pytest.approx(4.0)

    def test_single_sample_and_empty(self):
        scaler = Autoscaler()
        assert scaler.forecast(0.0) is None
        scaler.observe(0.0, 30, 10)
        assert scaler.forecast(0.0) == pytest.approx(3.0)

    def test_freeze_discards_samples_until_deadline(self):
        scaler = Autoscaler()
        scaler.observe(0.0, 10, 10)
        scaler.freeze(until=5.0)
        scaler.observe(1.0, 1000, 10)  # dropped: signal is stale
        assert scaler.forecast(1.0) == pytest.approx(1.0)
        scaler.observe(6.0, 50, 10)  # past the deadline: accepted again
        assert len(scaler._samples) == 2


class TestWatermarks:
    def grown_scaler(self, **kwargs):
        kwargs.setdefault("target_load", 8.0)
        kwargs.setdefault("cooldown_s", 10.0)
        scaler = Autoscaler(**kwargs)
        # Steeply rising load: forecast will clear the high watermark.
        feed(scaler, [(float(t), 40 + 30 * t, 10) for t in range(4)])
        return scaler

    def test_launch_above_high_watermark(self):
        scaler = self.grown_scaler(max_step=4)
        decision = scaler.plan(3.0, working=10)
        assert decision is not None and decision.kind == "launch"
        assert 1 <= decision.count <= 4
        assert scaler.scale_outs == 1

    def test_hysteresis_band_does_nothing(self):
        scaler = Autoscaler(
            target_load=8.0, high_watermark=1.25, low_watermark=0.5
        )
        # Steady 8.0 load/server: between 4.0 and 10.0, inside the band.
        feed(scaler, [(float(t), 80, 10) for t in range(4)])
        assert scaler.plan(3.0, working=10) is None
        assert scaler.scale_outs == scaler.scale_ins == 0

    def test_cooldown_suppresses_back_to_back_actions(self):
        scaler = self.grown_scaler()
        assert scaler.plan(3.0, working=10) is not None
        feed(scaler, [(4.0, 400, 10)])
        assert scaler.plan(4.0, working=10) is None  # inside cooldown
        feed(scaler, [(14.0, 500, 10)])
        assert scaler.plan(14.0, working=10) is not None

    def test_retire_below_low_watermark_keeps_one_server(self):
        scaler = Autoscaler(
            target_load=8.0, low_watermark=0.5, max_step=4, cooldown_s=0.0
        )
        feed(scaler, [(float(t), 10, 10) for t in range(4)])
        decision = scaler.plan(3.0, working=10)
        assert decision.kind == "retire"
        assert decision.count == 4
        assert decision.announced == 0
        # With one server left, never retire to zero.
        assert scaler.plan(10.0, working=1) is None


class TestForecastDegradation:
    def launch_many(self, scaler, rounds=40):
        decisions = []
        t = 0.0
        feed(scaler, [(t, 400, 10), (t + 1, 430, 10)])
        for _ in range(rounds):
            t += 1.0
            feed(scaler, [(t, 400 + 30 * t, 10)])
            decision = scaler.plan(t, working=10)
            if decision is not None:
                decisions.append(decision)
        return decisions

    def test_perfect_forecast_announces_everything(self):
        scaler = Autoscaler(target_load=8.0, cooldown_s=0.0, max_step=2)
        for decision in self.launch_many(scaler):
            assert decision.announced == decision.count
            assert decision.phantoms == 0

    def test_recall_draws_are_per_launch(self):
        # With one draw per decision, announced would always be 0 or
        # count; per-launch draws produce intermediate values.
        scaler = Autoscaler(
            target_load=8.0, cooldown_s=0.0, max_step=4,
            forecast_recall=0.5, seed=11,
        )
        announced = [d.announced for d in self.launch_many(scaler, 80)]
        counts = [d.count for d in self.launch_many(
            Autoscaler(target_load=8.0, cooldown_s=0.0, max_step=4,
                       forecast_recall=0.5, seed=11), 80)]
        assert any(0 < a < c for a, c in zip(announced, counts) if c > 1)
        total_launched = sum(counts)
        total_announced = sum(announced)
        assert 0 < total_announced < total_launched

    def test_zero_recall_never_announces(self):
        scaler = Autoscaler(
            target_load=8.0, cooldown_s=0.0, forecast_recall=0.0
        )
        for decision in self.launch_many(scaler):
            assert decision.announced == 0
            assert decision.phantoms == 0  # phantoms ride on announcements

    def test_phantom_rate_matches_precision_odds(self):
        # precision 0.5 => odds (1-p)/p = 1 phantom per announcement.
        scaler = Autoscaler(
            target_load=8.0, cooldown_s=0.0, max_step=2,
            forecast_precision=0.5, seed=5,
        )
        decisions = self.launch_many(scaler, 120)
        announced = sum(d.announced for d in decisions)
        phantoms = sum(d.phantoms for d in decisions)
        assert announced > 0
        assert phantoms == announced  # odds=1.0 is deterministic

    def test_fractional_odds_are_stochastic_but_seeded(self):
        def total_phantoms(seed):
            scaler = Autoscaler(
                target_load=8.0, cooldown_s=0.0, max_step=2,
                forecast_precision=0.75, seed=seed,
            )
            return sum(d.phantoms for d in self.launch_many(scaler, 120))

        # odds = 1/3: some but not all announcements drag a phantom.
        count = total_phantoms(9)
        assert count > 0
        assert count == total_phantoms(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Autoscaler(target_load=0.0)
        with pytest.raises(ValueError):
            Autoscaler(low_watermark=1.5, high_watermark=1.25)
        with pytest.raises(ValueError):
            Autoscaler(forecast_precision=1.5)
        with pytest.raises(ValueError):
            Autoscaler(forecast_recall=-0.1)
        with pytest.raises(ValueError):
            Autoscaler(window=1)


class TestScorecard:
    def test_precision_recall_arithmetic(self):
        card = HorizonScorecard(matched=8, phantom=2, missed=2)
        assert card.precision == pytest.approx(0.8)
        assert card.recall == pytest.approx(0.8)
        payload = card.as_dict()
        assert payload["matched"] == 8
        assert payload["precision"] == pytest.approx(0.8)

    def test_empty_scorecard_is_undefined_not_zero(self):
        card = HorizonScorecard()
        assert card.precision is None
        assert card.recall is None
