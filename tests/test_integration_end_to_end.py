"""End-to-end integration: pcap capture -> parse -> trace -> JET replay ->
simulation cross-checks.  Exercises the full pipeline a downstream user
would run on their own capture."""

import pytest

from repro import FiveTuple, make_full_ct, make_jet
from repro.net.parse import build_ethernet
from repro.net.pcap import write_pcap
from repro.traces import replay, trace_from_pcap
from repro.analysis import max_oversubscription, tracking_probability


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """A synthetic capture: 200 flows, heavy-tailed packet counts."""
    path = tmp_path_factory.mktemp("caps") / "dc.pcap"
    frames = []
    t = 0.0
    for i in range(200):
        ft = FiveTuple.make(
            f"172.16.{i // 200}.{i % 200 + 1}", "198.51.100.10", 20000 + i, 443
        )
        for _ in range(1 + (7 * i) % 13):
            t += 0.0001
            frames.append((t, build_ethernet(ft)))
    write_pcap(path, iter(frames))
    return path


class TestCaptureToReplayPipeline:
    def test_pipeline_counts(self, capture):
        trace, skipped = trace_from_pcap(capture)
        assert skipped == 0
        assert trace.n_flows == 200

    def test_jet_vs_full_on_capture(self, capture):
        trace, _ = trace_from_pcap(capture)
        working = [f"be{i}" for i in range(10)]
        horizon = ["standby"]
        jet = replay(trace, make_jet("anchor", working, horizon, capacity=32))
        full = replay(trace, make_full_ct("anchor", working, horizon, capacity=32))
        assert jet.pcc_violations == full.pcc_violations == 0
        assert jet.max_oversubscription == full.max_oversubscription
        assert full.tracked_connections == trace.n_flows
        predicted = tracking_probability(len(working), len(horizon))
        assert jet.tracked_connections / trace.n_flows == pytest.approx(
            predicted, abs=0.08
        )

    def test_capture_survives_backend_change_midway(self, capture):
        trace, _ = trace_from_pcap(capture)
        lb = make_jet("anchor", [f"be{i}" for i in range(10)], ["standby"], capacity=32)
        events = [(trace.n_packets // 2, lambda b: b.add_working_server("standby"))]
        outcome = replay(trace, lb, events=events)
        assert outcome.pcc_violations == 0

    def test_loads_match_balance_helper(self, capture):
        trace, _ = trace_from_pcap(capture)
        lb = make_jet("hrw", [f"be{i}" for i in range(10)], [])
        outcome = replay(trace, lb)
        assert outcome.max_oversubscription == pytest.approx(
            max_oversubscription(outcome.server_loads, active_servers=10)
        )
