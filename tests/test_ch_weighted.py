"""Weighted CH tests: proportional balance + JET compatibility."""

import pytest

from repro.ch.base import BackendError
from repro.ch.properties import sample_keys
from repro.ch.weighted import WeightedHRWHash, WeightedRingHash
from repro.core import JETLoadBalancer

KEYS = sample_keys(30_000, seed=91)


def share(ch, keys, name):
    return sum(ch.lookup(k) == name for k in keys) / len(keys)


class TestWeightedHRW:
    def test_uniform_weights_behave_uniformly(self):
        ch = WeightedHRWHash({f"s{i}": 1.0 for i in range(10)})
        for i in range(10):
            assert share(ch, KEYS[:10_000], f"s{i}") == pytest.approx(0.1, rel=0.25)

    def test_share_proportional_to_weight(self):
        ch = WeightedHRWHash({"small": 1.0, "big": 3.0})
        assert share(ch, KEYS, "big") == pytest.approx(0.75, rel=0.05)

    def test_three_way_weights(self):
        ch = WeightedHRWHash({"a": 1.0, "b": 2.0, "c": 7.0})
        assert share(ch, KEYS, "a") == pytest.approx(0.1, rel=0.15)
        assert share(ch, KEYS, "c") == pytest.approx(0.7, rel=0.1)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(BackendError):
            WeightedHRWHash({"a": 0.0})
        with pytest.raises(BackendError):
            WeightedHRWHash({"a": -2.0})

    def test_weight_of(self):
        ch = WeightedHRWHash({"a": 2.5}, {"h": 1.5})
        assert ch.weight_of("a") == 2.5
        assert ch.weight_of("h") == 1.5
        with pytest.raises(BackendError):
            ch.weight_of("nope")

    def test_safety_flag_matches_union(self):
        ch = WeightedHRWHash({f"s{i}": 1.0 + i % 3 for i in range(8)}, {"h0": 2.0})
        for k in KEYS[:3000]:
            destination, unsafe = ch.lookup_with_safety(k)
            assert unsafe == (destination != ch.lookup_union(k))

    def test_tracking_probability_is_weight_fraction(self):
        # Generalized Theorem 4.2: P(track) = weight(H) / weight(W ∪ H).
        ch = WeightedHRWHash({f"s{i}": 1.0 for i in range(9)}, {"h0": 3.0})
        tracked = sum(ch.lookup_with_safety(k)[1] for k in KEYS)
        assert tracked / len(KEYS) == pytest.approx(3 / 12, rel=0.15)

    def test_minimal_disruption(self):
        ch = WeightedHRWHash({f"s{i}": 1.0 + (i % 2) for i in range(6)})
        before = {k: ch.lookup(k) for k in KEYS[:5000]}
        ch.remove_working("s3")
        for k, d in before.items():
            if d != "s3":
                assert ch.lookup(k) == d

    def test_jet_integration_pcc(self):
        ch = WeightedHRWHash({f"s{i}": 1.0 + i for i in range(5)}, {"h0": 4.0})
        lb = JETLoadBalancer(ch)
        first = {k: lb.get_destination(k) for k in KEYS[:4000]}
        lb.add_working_server("h0")
        assert all(lb.get_destination(k) == first[k] for k in first)

    def test_horizon_add_with_weight(self):
        ch = WeightedHRWHash({"a": 1.0})
        ch.add_horizon("h", weight=5.0)
        assert ch.weight_of("h") == 5.0
        ch.add_working("h")
        assert share(ch, KEYS[:10_000], "h") == pytest.approx(5 / 6, rel=0.1)

    def test_empty_lookup_raises(self):
        with pytest.raises(BackendError):
            WeightedHRWHash().lookup(1)


class TestWeightedRing:
    def test_share_roughly_proportional(self):
        ch = WeightedRingHash({"small": 1.0, "big": 3.0}, base_virtual_nodes=200)
        assert share(ch, KEYS[:15_000], "big") == pytest.approx(0.75, rel=0.12)

    def test_vnode_counts_scale(self):
        ch = WeightedRingHash({"a": 1.0, "b": 2.5}, base_virtual_nodes=100)
        assert len(ch._working["a"]) == 100
        assert len(ch._working["b"]) == 250

    def test_safety_flag_matches_union(self):
        ch = WeightedRingHash(
            {f"s{i}": 1.0 + (i % 2) for i in range(6)},
            {"h0": 2.0},
            base_virtual_nodes=40,
        )
        for k in KEYS[:2000]:
            destination, unsafe = ch.lookup_with_safety(k)
            assert destination in ch.working
            assert unsafe == (destination != ch.lookup_union(k))

    def test_remove_readd_restores(self):
        ch = WeightedRingHash({"a": 2.0, "b": 1.0, "c": 1.5}, base_virtual_nodes=60)
        before = [ch.lookup(k) for k in KEYS[:2000]]
        ch.remove_working("a")
        ch.add_working("a")
        assert [ch.lookup(k) for k in KEYS[:2000]] == before

    def test_invalid_weight_rejected(self):
        with pytest.raises(BackendError):
            WeightedRingHash({"a": -1.0})
        ch = WeightedRingHash({"a": 1.0})
        with pytest.raises(BackendError):
            ch.add_horizon("h", weight=0.0)
