"""Flow/packet/address model tests."""

import pytest

from repro.net import FiveTuple, Packet, ServerPool, random_five_tuples
from repro.net.flow import PROTO_TCP, PROTO_UDP


class TestFiveTuple:
    def test_make_from_strings(self):
        ft = FiveTuple.make("10.0.0.1", "10.0.0.2", 1234, 443)
        assert ft.src_port == 1234
        assert ft.protocol == PROTO_TCP

    def test_port_validation(self):
        with pytest.raises(ValueError):
            FiveTuple(1, 2, 70000, 443)
        with pytest.raises(ValueError):
            FiveTuple(1, 2, -1, 443)

    def test_protocol_validation(self):
        with pytest.raises(ValueError):
            FiveTuple(1, 2, 1, 2, protocol=300)

    def test_ip_validation(self):
        with pytest.raises(ValueError):
            FiveTuple.make(2**32, "10.0.0.1", 1, 2)

    def test_encode_is_13_bytes(self):
        assert len(FiveTuple(1, 2, 3, 4).encode()) == 13

    def test_key64_stable_golden(self):
        # Pins the canonical encoding + xxHash64 combination: if this
        # changes, persisted traces stop dispatching identically.
        ft = FiveTuple.make("192.0.2.1", "198.51.100.2", 12345, 443, PROTO_TCP)
        assert ft.key64 == FiveTuple.make("192.0.2.1", "198.51.100.2", 12345, 443).key64
        assert isinstance(ft.key64, int)
        assert ft.key64 == ft.key64  # cached property determinism

    def test_distinct_tuples_distinct_keys(self):
        keys = {
            FiveTuple(src, 2, port, 443).key64
            for src in range(50)
            for port in range(1024, 1074)
        }
        assert len(keys) == 2500

    def test_direction_matters(self):
        a = FiveTuple(1, 2, 10, 20)
        b = FiveTuple(2, 1, 20, 10)
        assert a.key64 != b.key64

    def test_protocol_matters(self):
        a = FiveTuple(1, 2, 10, 20, PROTO_TCP)
        b = FiveTuple(1, 2, 10, 20, PROTO_UDP)
        assert a.key64 != b.key64

    def test_str_rendering(self):
        text = str(FiveTuple.make("10.0.0.1", "10.0.0.2", 1, 2))
        assert "10.0.0.1:1" in text and "tcp" in text

    def test_hashable_and_frozen(self):
        ft = FiveTuple(1, 2, 3, 4)
        assert ft in {ft}
        with pytest.raises(AttributeError):
            ft.src_ip = 9


class TestPacket:
    def test_is_first(self):
        assert Packet(1, 0, 0).is_first
        assert not Packet(1, 0, 3).is_first

    def test_slots_block_arbitrary_attributes(self):
        packet = Packet(1, 0, 0)
        with pytest.raises(AttributeError):
            packet.payload = b"x"


class TestServerPool:
    def test_sequential_allocation(self):
        pool = ServerPool("10.9.0.0/24", port=80)
        first = pool.allocate(3)
        assert first == ["10.9.0.1:80", "10.9.0.2:80", "10.9.0.3:80"]
        assert pool.allocate(1) == ["10.9.0.4:80"]
        assert pool.allocated == 4

    def test_exhaustion_raises(self):
        pool = ServerPool("10.9.0.0/30")
        with pytest.raises(ValueError):
            pool.allocate(10)

    def test_regeneration_is_deterministic(self):
        assert ServerPool("10.3.0.0/16").allocate(5) == ServerPool("10.3.0.0/16").allocate(5)


class TestRandomFiveTuples:
    def test_count_and_distinctness(self):
        tuples = list(random_five_tuples(500, seed=1))
        assert len(tuples) == 500
        assert len({t.key64 for t in tuples}) == 500

    def test_all_target_the_vip(self):
        for t in random_five_tuples(50, seed=2, vip="203.0.113.9", vip_port=8443):
            assert t.dst_port == 8443

    def test_seeded_reproducibility(self):
        a = [t.key64 for t in random_five_tuples(100, seed=3)]
        b = [t.key64 for t in random_five_tuples(100, seed=3)]
        assert a == b
