"""Remaining scale-preset and fig-harness coverage."""

import pytest

from repro.experiments.scales import (
    REPEATS,
    SCALES,
    TRACE_SCALES,
    ZIPF_SCALES,
    base_config,
    repeats,
    trace_scale,
    zipf_params,
)


class TestPresetTables:
    def test_all_presets_defined_consistently(self):
        assert set(SCALES) == set(TRACE_SCALES) == set(ZIPF_SCALES) == set(REPEATS)

    def test_paper_preset_matches_publication(self):
        cfg = base_config("paper")
        assert cfg.n_servers == 468
        assert cfg.horizon_size == 47
        assert cfg.duration_s == 1000.0
        assert cfg.connection_rate == 100_000.0
        assert TRACE_SCALES["paper"] == 1.0
        assert ZIPF_SCALES["paper"]["n_packets"] == 100_000_000
        assert REPEATS["paper"] == 10  # the paper's repetition count

    def test_horizon_is_ten_percent_everywhere(self):
        for name in SCALES:
            cfg = base_config(name)
            assert cfg.horizon_size == pytest.approx(0.1 * cfg.n_servers, rel=0.05)

    def test_downtime_scales_with_duration(self):
        smoke = base_config("smoke").downtime_dist
        paper = base_config("paper").downtime_dist
        assert smoke.mean() < paper.mean()

    def test_helpers_return_active_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert trace_scale() == TRACE_SCALES["smoke"]
        assert zipf_params() == ZIPF_SCALES["smoke"]
        assert repeats() == REPEATS["smoke"]

    def test_zipf_params_is_a_copy(self):
        params = zipf_params("smoke")
        params["n_packets"] = 1
        assert ZIPF_SCALES["smoke"]["n_packets"] != 1


class TestConfigWith:
    def test_with_creates_modified_copy(self):
        cfg = base_config("smoke")
        other = cfg.with_(seed=99, mode="full")
        assert other.seed == 99
        assert other.mode == "full"
        assert cfg.seed != 99 or cfg.mode == "jet"  # original untouched
        assert cfg.mode == "jet"
