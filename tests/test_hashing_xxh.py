"""Unit tests for the pure-Python xxHash64."""

import pytest

from repro.hashing.mix import MASK64
from repro.hashing.xxh import xxhash64


class TestReferenceVectors:
    def test_empty_input_seed0(self):
        # Canonical XXH64 test vector.
        assert xxhash64(b"") == 0xEF46DB3751D8E999

    def test_empty_input_nonzero_seed_differs(self):
        assert xxhash64(b"", seed=1) != xxhash64(b"", seed=0)

    def test_seed_wraps_at_64_bits(self):
        assert xxhash64(b"abc", seed=2**64 + 3) == xxhash64(b"abc", seed=3)


class TestStructure:
    def test_deterministic(self):
        assert xxhash64(b"hello world") == xxhash64(b"hello world")

    def test_bounded(self):
        for n in range(0, 100, 7):
            assert 0 <= xxhash64(bytes(range(n % 256)) * (n // 256 + 1)) <= MASK64

    @pytest.mark.parametrize(
        "length", [0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 65, 100, 1000]
    )
    def test_all_block_paths_distinct(self, length):
        # Cover the <32-byte path, the 32-byte striping path, and each of
        # the 8/4/1-byte tail handlers; nearby lengths must not collide.
        data = bytes((i * 131 + 17) % 256 for i in range(length + 1))
        assert xxhash64(data[:length]) != xxhash64(data[: length + 1])

    def test_last_byte_matters(self):
        a = b"x" * 40 + b"a"
        b = b"x" * 40 + b"b"
        assert xxhash64(a) != xxhash64(b)

    def test_first_byte_matters(self):
        assert xxhash64(b"a" + b"x" * 40) != xxhash64(b"b" + b"x" * 40)

    def test_no_trivial_length_extension(self):
        assert xxhash64(b"ab") != xxhash64(b"a")

    def test_distribution_over_counter_inputs(self):
        # Low bits should be close to uniform over sequential inputs.
        ones = sum(xxhash64(i.to_bytes(8, "little")) & 1 for i in range(4000))
        assert 1800 <= ones <= 2200
