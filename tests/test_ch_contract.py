"""Contract tests every JET-capable CH family must satisfy.

Parametrized over the paper's four families (HRW, Ring, Table, Anchor) via
the ``jet_ch`` / ``jet_ch_factory`` fixtures -- these are the semantics
Algorithm 1 relies on.
"""

import random

import pytest

from repro.ch.base import BackendError
from repro.ch.properties import (
    balance_counts,
    check_addition_disruption,
    check_removal_disruption,
)
from tests.conftest import HORIZON, WORKING


class TestLookupBasics:
    def test_lookup_returns_working_server(self, jet_ch, few_keys):
        for k in few_keys:
            assert jet_ch.lookup(k) in jet_ch.working

    def test_lookup_deterministic(self, jet_ch, few_keys):
        assert [jet_ch.lookup(k) for k in few_keys] == [
            jet_ch.lookup(k) for k in few_keys
        ]

    def test_lookup_union_in_union(self, jet_ch, few_keys):
        union = jet_ch.working | jet_ch.horizon
        for k in few_keys:
            assert jet_ch.lookup_union(k) in union

    def test_safety_flag_equals_union_disagreement(self, jet_ch, keys):
        for k in keys:
            destination, unsafe = jet_ch.lookup_with_safety(k)
            assert destination == jet_ch.lookup(k)
            assert unsafe == (destination != jet_ch.lookup_union(k))

    def test_len_and_contains(self, jet_ch):
        assert len(jet_ch) == len(WORKING)
        assert WORKING[0] in jet_ch
        assert HORIZON[0] not in jet_ch


class TestSetManagement:
    def test_initial_sets(self, jet_ch):
        assert jet_ch.working == frozenset(WORKING)
        assert jet_ch.horizon == frozenset(HORIZON)

    def test_add_working_moves_from_horizon(self, jet_ch):
        jet_ch.add_working(HORIZON[0])
        assert HORIZON[0] in jet_ch.working
        assert HORIZON[0] not in jet_ch.horizon

    def test_add_working_requires_horizon_membership(self, jet_ch):
        with pytest.raises(BackendError):
            jet_ch.add_working("never-announced")

    def test_remove_working_moves_to_horizon(self, jet_ch):
        jet_ch.remove_working(WORKING[0])
        assert WORKING[0] not in jet_ch.working
        assert WORKING[0] in jet_ch.horizon

    def test_remove_unknown_working_raises(self, jet_ch):
        with pytest.raises(BackendError):
            jet_ch.remove_working("missing")

    def test_duplicate_horizon_add_raises(self, jet_ch):
        with pytest.raises(BackendError):
            jet_ch.add_horizon(HORIZON[0])

    def test_adding_working_name_to_horizon_raises(self, jet_ch):
        with pytest.raises(BackendError):
            jet_ch.add_horizon(WORKING[0])

    def test_remove_unknown_horizon_raises(self, jet_ch):
        with pytest.raises(BackendError):
            jet_ch.remove_horizon("missing")

    def test_permanent_removal_cycle(self, jet_ch):
        jet_ch.remove_working(WORKING[0])
        jet_ch.remove_horizon(WORKING[0])
        assert WORKING[0] not in jet_ch.working | jet_ch.horizon

    def test_force_add_reaches_working(self, jet_ch, few_keys):
        jet_ch.force_add_working("forced-1")
        assert "forced-1" in jet_ch.working
        for k in few_keys:
            assert jet_ch.lookup(k) in jet_ch.working


class TestMinimalDisruption:
    def test_addition_moves_keys_only_to_new_server(self, jet_ch, keys):
        report = check_addition_disruption(jet_ch, HORIZON[0], keys)
        assert report.is_minimal
        # Balance property: roughly 1/(|W|+1) of keys move to the addition.
        expected = 1 / (len(WORKING) + 1)
        assert report.moved_fraction == pytest.approx(expected, rel=0.6)

    def test_removal_moves_only_victims_keys(self, jet_ch, keys):
        report = check_removal_disruption(jet_ch, WORKING[3], keys)
        assert report.is_minimal
        expected = 1 / len(WORKING)
        assert report.moved_fraction == pytest.approx(expected, rel=0.6)

    def test_remove_then_readd_restores_mapping(self, jet_ch, few_keys):
        before = {k: jet_ch.lookup(k) for k in few_keys}
        jet_ch.remove_working(WORKING[5])
        jet_ch.add_working(WORKING[5])
        after = {k: jet_ch.lookup(k) for k in few_keys}
        assert before == after


class TestBalance:
    def test_rough_uniformity(self, jet_ch, keys):
        counts = balance_counts(jet_ch, keys)
        expected = len(keys) / len(WORKING)
        # Generous envelope: table/ring granularity adds variance.
        assert min(counts.values()) > expected * 0.4
        assert max(counts.values()) < expected * 1.9

    def test_tracking_fraction_near_theory(self, jet_ch, keys):
        # Theorem 4.2: P(track) = |H| / (|W| + |H|).
        tracked = sum(jet_ch.lookup_with_safety(k)[1] for k in keys)
        expected = len(HORIZON) / (len(WORKING) + len(HORIZON))
        assert tracked / len(keys) == pytest.approx(expected, rel=0.35)


class TestEmptyAndSmall:
    def test_lookup_after_removing_all_but_one(self, jet_ch, few_keys):
        for name in WORKING[1:]:
            jet_ch.remove_working(name)
        for k in few_keys:
            assert jet_ch.lookup(k) == WORKING[0]

    def test_single_server_all_safe_when_horizon_empty(self, jet_ch_factory, few_keys):
        ch = jet_ch_factory()
        for name in list(ch.horizon):
            ch.remove_horizon(name)
        for k in few_keys:
            destination, unsafe = ch.lookup_with_safety(k)
            assert not unsafe


class TestChurnSequences:
    def test_long_random_event_sequence_keeps_invariants(self, jet_ch_factory, few_keys):
        ch = jet_ch_factory()
        rng = random.Random(77)
        for step in range(60):
            working = sorted(ch.working, key=str)
            horizon = sorted(ch.horizon, key=str)
            op = rng.random()
            if op < 0.35 and horizon:
                ch.add_working(rng.choice(horizon))
            elif op < 0.65 and len(working) > 2:
                ch.remove_working(rng.choice(working))
            elif op < 0.85:
                ch.add_horizon(f"fresh-{step}")
            elif horizon:
                ch.remove_horizon(rng.choice(horizon))
            for k in few_keys[:60]:
                destination, unsafe = ch.lookup_with_safety(k)
                assert destination in ch.working
                assert unsafe == (destination != ch.lookup_union(k))
