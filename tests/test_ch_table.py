"""Table-based HRW tests: Algorithm 4 semantics, vector-vs-scalar
equivalence, and the single-boolean-per-row memory claim."""

import random

import pytest

from repro.ch.base import BackendError
from repro.ch.properties import sample_keys
from repro.ch.table_hrw import ScalarTableHRW, TableHRWHash, rows_for

W = [f"w{i}" for i in range(10)]
H = [f"h{i}" for i in range(2)]


class TestRowsFor:
    def test_paper_sizing(self):
        assert rows_for(50) == 15_000
        assert rows_for(500) == 150_000
        assert rows_for(10, copies=100) == 1_000

    def test_minimum_one_row(self):
        assert rows_for(0) == 1


class TestRowSemantics:
    def test_same_row_same_destination(self):
        ch = TableHRWHash(W, H, rows=127)
        k1, k2 = 127 * 3 + 5, 127 * 10 + 5  # same row
        assert ch.lookup(k1) == ch.lookup(k2)
        assert ch.lookup_with_safety(k1) == ch.lookup_with_safety(k2)

    def test_invalid_rows_rejected(self):
        with pytest.raises(ValueError):
            TableHRWHash(W, rows=0)

    def test_tracked_row_fraction_near_theory(self):
        ch = TableHRWHash(W, H, rows=8209)
        expected = len(H) / (len(W) + len(H))
        assert ch.tracked_row_fraction() == pytest.approx(expected, rel=0.3)

    def test_empty_working_lookup_raises(self):
        ch = TableHRWHash([], ["h0"], rows=17)
        with pytest.raises(BackendError):
            ch.lookup(5)


class TestAlgorithm4Updates:
    def test_add_working_claims_only_tracked_rows(self):
        ch = TableHRWHash(W, H, rows=509)
        tr_before = ch._tr.copy()
        winners_before = ch._ch.copy()
        ch.add_working(H[0])
        changed = winners_before != ch._ch
        # Every row that changed winner was a tracked row beforehand.
        assert bool((changed & ~tr_before).any()) is False

    def test_remove_working_marks_owned_rows_unsafe(self):
        ch = TableHRWHash(W, H, rows=509)
        victim_id = ch._ids[W[0]]
        owned = ch._ch == victim_id
        ch.remove_working(W[0])
        assert bool(ch._tr[owned].all()) is True

    def test_add_horizon_only_raises_flags(self):
        ch = TableHRWHash(W, H, rows=509)
        tr_before = ch._tr.copy()
        winners_before = ch._ch.copy()
        ch.add_horizon("late")
        assert (ch._ch == winners_before).all()  # winners untouched
        assert bool((tr_before & ~ch._tr).any()) is False  # flags never drop

    def test_remove_horizon_only_lowers_flags(self):
        ch = TableHRWHash(W, H, rows=509)
        tr_before = ch._tr.copy()
        ch.remove_horizon(H[0])
        assert bool((~tr_before & ch._tr).any()) is False

    def test_empty_horizon_means_no_tracking(self):
        ch = TableHRWHash(W, H, rows=509)
        for h in list(ch.horizon):
            ch.remove_horizon(h)
        assert ch.tracked_row_fraction() == 0.0


class TestVectorVsScalarReference:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_operation_sequences_agree(self, seed):
        rows = 193
        vec = TableHRWHash(W, H, rows=rows)
        ref = ScalarTableHRW(W, H, rows=rows)
        rng = random.Random(seed)
        keys = sample_keys(200, seed=seed)
        for step in range(50):
            working = sorted(vec.working, key=str)
            horizon = sorted(vec.horizon, key=str)
            op = rng.random()
            if op < 0.3 and horizon:
                s = rng.choice(horizon)
                vec.add_working(s)
                ref.add_working(s)
            elif op < 0.6 and len(working) > 2:
                s = rng.choice(working)
                vec.remove_working(s)
                ref.remove_working(s)
            elif op < 0.8:
                s = f"x{seed}-{step}"
                vec.add_horizon(s)
                ref.add_horizon(s)
            elif horizon:
                s = rng.choice(horizon)
                vec.remove_horizon(s)
                ref.remove_horizon(s)
            for k in keys:
                assert vec.lookup_with_safety(k) == ref.lookup_with_safety(k)

    def test_fresh_tables_agree_row_by_row(self):
        rows = 311
        vec = TableHRWHash(W, H, rows=rows)
        ref = ScalarTableHRW(W, H, rows=rows)
        for row in range(rows):
            assert vec.lookup_with_safety(row) == ref.lookup_with_safety(row)
