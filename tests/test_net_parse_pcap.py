"""Packet parsing and pcap container tests."""

import struct

import pytest

from repro.net.flow import PROTO_TCP, PROTO_UDP, FiveTuple
from repro.net.parse import (
    ParseError,
    build_ethernet,
    build_ipv4,
    parse_ethernet,
    parse_ipv4,
    try_parse_ethernet,
)
from repro.net.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IPV4,
    PcapError,
    read_pcap,
    write_pcap,
)
from repro.traces.from_pcap import trace_from_pcap

FT_TCP = FiveTuple.make("192.0.2.1", "198.51.100.9", 40000, 443, PROTO_TCP)
FT_UDP = FiveTuple.make("10.1.2.3", "10.4.5.6", 5353, 53, PROTO_UDP)


class TestBuildParseRoundtrip:
    @pytest.mark.parametrize("ft", [FT_TCP, FT_UDP])
    def test_ipv4_roundtrip(self, ft):
        assert parse_ipv4(build_ipv4(ft)) == ft

    @pytest.mark.parametrize("ft", [FT_TCP, FT_UDP])
    def test_ethernet_roundtrip(self, ft):
        assert parse_ethernet(build_ethernet(ft)) == ft

    def test_payload_does_not_affect_tuple(self):
        assert parse_ipv4(build_ipv4(FT_TCP, b"x" * 100)) == FT_TCP

    def test_vlan_tagged_frame(self):
        frame = bytearray(build_ethernet(FT_TCP))
        vlan = frame[:12] + b"\x81\x00\x00\x64" + b"\x08\x00" + frame[14:]
        assert parse_ethernet(bytes(vlan)) == FT_TCP

    def test_checksum_is_valid(self):
        header = build_ipv4(FT_TCP)[:20]
        total = sum(
            struct.unpack(">H", header[i : i + 2])[0] for i in range(0, 20, 2)
        )
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        assert total == 0xFFFF  # one's-complement sum checks out


class TestParseErrors:
    def test_short_frame(self):
        with pytest.raises(ParseError):
            parse_ethernet(b"\x00" * 5)

    def test_non_ipv4_ethertype(self):
        frame = bytearray(build_ethernet(FT_TCP))
        frame[12:14] = b"\x86\xdd"  # IPv6
        with pytest.raises(ParseError):
            parse_ethernet(bytes(frame))

    def test_ipv6_version_rejected(self):
        packet = bytearray(build_ipv4(FT_TCP))
        packet[0] = 0x65
        with pytest.raises(ParseError):
            parse_ipv4(bytes(packet))

    def test_bad_ihl(self):
        packet = bytearray(build_ipv4(FT_TCP))
        packet[0] = 0x41  # IHL 4 words < 20 bytes
        with pytest.raises(ParseError):
            parse_ipv4(bytes(packet))

    def test_fragment_rejected(self):
        packet = bytearray(build_ipv4(FT_TCP))
        packet[6:8] = (5).to_bytes(2, "big")  # fragment offset 5
        with pytest.raises(ParseError):
            parse_ipv4(bytes(packet))

    def test_non_l4_protocol(self):
        packet = bytearray(build_ipv4(FT_TCP))
        packet[9] = 1  # ICMP
        with pytest.raises(ParseError):
            parse_ipv4(bytes(packet))

    def test_truncated_l4(self):
        packet = build_ipv4(FT_TCP)[:22]
        with pytest.raises(ParseError):
            parse_ipv4(packet)

    def test_try_parse_returns_none(self):
        assert try_parse_ethernet(b"junk") is None
        assert try_parse_ethernet(build_ethernet(FT_UDP)) == FT_UDP


class TestPcapContainer:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "t.pcap"
        frames = [(1.5, build_ethernet(FT_TCP)), (2.25, build_ethernet(FT_UDP))]
        assert write_pcap(path, iter(frames)) == 2
        linktype, packets = read_pcap(path)
        assert linktype == LINKTYPE_ETHERNET
        assert len(packets) == 2
        assert packets[0].data == frames[0][1]
        assert packets[0].timestamp == pytest.approx(1.5, abs=1e-6)
        assert packets[1].timestamp == pytest.approx(2.25, abs=1e-6)

    def test_big_endian_and_nanosecond_variants(self, tmp_path):
        # Hand-craft a big-endian nanosecond capture.
        path = tmp_path / "be.pcap"
        frame = build_ipv4(FT_TCP)
        with open(path, "wb") as fh:
            fh.write(struct.pack(">IHHiIII", 0xA1B23C4D, 2, 4, 0, 0, 65535,
                                 LINKTYPE_RAW_IPV4))
            fh.write(struct.pack(">IIII", 7, 500_000_000, len(frame), len(frame)))
            fh.write(frame)
        linktype, packets = read_pcap(path)
        assert linktype == LINKTYPE_RAW_IPV4
        assert packets[0].timestamp == pytest.approx(7.5)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.pcap"
        path.write_bytes(b"\x00" * 40)
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        write_pcap(path, iter([(0.0, b"\x00" * 60)]))
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(PcapError):
            read_pcap(path)


class TestTraceFromPcap:
    def test_capture_to_trace(self, tmp_path):
        path = tmp_path / "cap.pcap"
        # 3 packets of flow A, 2 of flow B, one junk frame.
        frames = (
            [(float(i), build_ethernet(FT_TCP)) for i in range(3)]
            + [(float(i), build_ethernet(FT_UDP)) for i in range(2)]
            + [(9.0, b"\xff" * 20)]
        )
        write_pcap(path, iter(frames))
        trace, skipped = trace_from_pcap(path)
        assert skipped == 1
        assert trace.n_flows == 2
        assert trace.n_packets == 5
        assert sorted(trace.flow_sizes().tolist()) == [2, 3]
        assert set(trace.flow_keys.tolist()) == {FT_TCP.key64, FT_UDP.key64}

    def test_replayable(self, tmp_path):
        from repro.core import make_jet
        from repro.traces import replay

        path = tmp_path / "cap.pcap"
        tuples = [
            FiveTuple.make("10.0.0.1", "10.9.9.9", 1024 + i, 80) for i in range(50)
        ]
        frames = [(i * 0.001, build_ethernet(t)) for i, t in enumerate(tuples * 4)]
        write_pcap(path, iter(frames))
        trace, _ = trace_from_pcap(path)
        outcome = replay(trace, make_jet("hrw", ["a", "b", "c"], ["d"]))
        assert outcome.pcc_violations == 0
        assert outcome.n_flows == 50

    def test_empty_capture_rejected(self, tmp_path):
        path = tmp_path / "empty.pcap"
        write_pcap(path, iter([(0.0, b"\x00" * 30)]))
        with pytest.raises(ParseError):
            trace_from_pcap(path)
