"""LB-pool tests with *bounded* CTs and fallible sync (Section 6.2 under
real-world constraints): eviction-masking, member crash/partition, and
degraded-mode replication."""

import pytest

from repro.ch import HRWHash
from repro.ch.properties import sample_keys
from repro.core import FullCTLoadBalancer, JETLoadBalancer
from repro.core.lb_pool import LBPool
from repro.ct import make_ct
from repro.faults import SyncChannel

W = [f"w{i}" for i in range(12)]
H = ["h0", "h1"]
KEYS = sample_keys(1500, seed=77)


def bounded_full_factory(capacity=32):
    return lambda: FullCTLoadBalancer(HRWHash(W, H), make_ct(capacity, "lru"))


def bounded_jet_factory(capacity=32):
    return lambda: JETLoadBalancer(HRWHash(W, H), make_ct(capacity, "lru"))


class TestEvictionMasksInsert:
    def test_every_insert_replicates_even_at_capacity(self):
        # With a full bounded CT, each insert coincides with an eviction
        # and the table size never changes; size-based "did we insert?"
        # detection silently stops replicating at that point.
        pool = LBPool(bounded_full_factory(capacity=16), size=2, sync=True)
        for k in KEYS[:400]:  # distinct keys, well past capacity
            pool.get_destination(k)
        # Full CT inserts every new flow; each is offered to the one peer.
        assert pool.channel.stats.offered == 400
        assert pool.synced_entries == 400

    def test_entry_inserted_at_capacity_reaches_peer(self):
        pool = LBPool(bounded_full_factory(capacity=8), size=2, sync=True)
        origin, peer = pool.members
        mine = [k for k in KEYS if pool._steer(k) is origin]
        for k in mine[:8]:  # fill the origin's CT exactly
            pool.get_destination(k)
        assert len(origin.ct) == 8
        fresh = mine[8]
        destination = pool.get_destination(fresh)
        assert len(origin.ct) == 8  # eviction masked the insert...
        assert peer.ct.peek(fresh) == destination  # ...but it replicated


class TestPoolChangesMidTraffic:
    def test_grow_seeds_new_member_from_donor(self):
        pool = LBPool(bounded_full_factory(capacity=64), size=2, sync=True)
        for k in KEYS[:200]:
            pool.get_destination(k)
        member = pool.add_lb()
        assert member.tracked_connections > 0
        # The donor's (bounded) CT is what gets copied, capped by capacity.
        assert member.tracked_connections <= 64
        assert member.working == pool.members[0].working

    def test_shrink_reports_lost_entries(self):
        pool = LBPool(bounded_full_factory(capacity=64), size=3, sync=False)
        for k in KEYS[:300]:
            pool.get_destination(k)
        doomed = pool.members[-1]
        lost = pool.remove_lb()
        assert lost == doomed.tracked_connections
        assert lost > 0
        assert pool.lost_entries == lost
        assert pool.size == 2

    def test_remove_lb_validates_index(self):
        pool = LBPool(bounded_full_factory(), size=3)
        with pytest.raises(ValueError):
            pool.remove_lb(3)
        with pytest.raises(ValueError):
            pool.remove_lb(-4)
        with pytest.raises(ValueError):
            pool.remove_lb("first")
        with pytest.raises(ValueError):
            pool.remove_lb(True)
        assert pool.size == 3  # nothing removed by the failed calls

    def test_traffic_continues_after_grow_and_shrink(self):
        pool = LBPool(bounded_jet_factory(capacity=32), size=2, sync=True)
        for k in KEYS[:100]:
            assert pool.get_destination(k) in pool.working
        pool.add_lb()
        pool.remove_working_server(W[0])
        for k in KEYS[100:200]:
            assert pool.get_destination(k) in pool.working
        pool.remove_lb(0)
        for k in KEYS[200:300]:
            assert pool.get_destination(k) in pool.working


class TestCrashAndPartition:
    def test_crash_counts_and_loses_state(self):
        pool = LBPool(bounded_full_factory(capacity=64), size=3, sync=False)
        for k in KEYS[:300]:
            pool.get_destination(k)
        lost = pool.crash_lb(1)
        assert lost > 0
        assert pool.crashes == 1
        assert pool.lost_entries == lost

    def test_partitioned_member_misses_broadcasts(self):
        pool = LBPool(bounded_jet_factory(), size=3)
        stale = pool.partition_lb(1)
        assert pool.degraded
        pool.remove_working_server(W[0])
        assert W[0] in stale.working  # missed the broadcast
        assert all(
            W[0] not in m.working for m in pool.members if m is not stale
        )

    def test_heal_replays_missed_suffix(self):
        pool = LBPool(bounded_jet_factory(), size=3)
        pool.remove_working_server(W[0])  # applied everywhere
        stale = pool.partition_lb(1)
        pool.remove_working_server(W[1])
        pool.add_working_server(W[0])
        assert stale.working != pool.members[0].working
        replayed = pool.heal_lb(1)
        assert replayed == 2  # only the missed suffix, not the full log
        assert stale.working == pool.members[0].working
        assert not pool.degraded
        assert pool.heal_lb(1) == 0  # idempotent

    def test_partition_stops_sync_to_member(self):
        pool = LBPool(bounded_full_factory(capacity=64), size=2, sync=True)
        isolated = pool.partition_lb(1)
        before = isolated.tracked_connections
        for k in KEYS[:100]:
            pool.get_destination(k)
        served = isolated.tracked_connections - before
        # It still serves its own ECMP slice but receives no replication.
        assert served == sum(1 for k in KEYS[:100] if pool._steer(k) is isolated)


class TestDegradedSync:
    def test_lossy_channel_reports_degraded(self):
        channel = SyncChannel(
            loss_probability=0.9, lag_lookups=1, max_retries=1,
            backoff_lookups=2, seed=2,
        )
        pool = LBPool(bounded_full_factory(capacity=256), size=2, sync=channel)
        for k in KEYS[:400]:
            pool.get_destination(k)
        channel.drain()
        assert channel.stats.unreplicated > 0
        assert pool.degraded
        stats = channel.stats
        assert stats.delivered + stats.unreplicated == stats.offered

    def test_lagged_sync_eventually_protects(self):
        channel = SyncChannel(lag_lookups=4)
        pool = LBPool(bounded_full_factory(capacity=1024), size=2, sync=channel)
        destinations = {k: pool.get_destination(k) for k in KEYS[:200]}
        channel.drain()
        # After the lag settles, every entry is on both members.
        for member in pool.members:
            for k, d in destinations.items():
                assert member.ct.peek(k) == d

    def test_sync_bool_back_compat(self):
        assert LBPool(bounded_full_factory(), size=2, sync=True).sync is True
        assert LBPool(bounded_full_factory(), size=2, sync=False).sync is False
        channel = SyncChannel(loss_probability=0.1, seed=1)
        assert LBPool(bounded_full_factory(), size=2, sync=channel).sync is True


class TestCrashSyncAccounting:
    def test_crash_voids_pending_deliveries_into_lost(self):
        # Entries still in flight to the crashed member must show up in
        # the channel's accounted bill (stats.lost), never vanish.
        channel = SyncChannel(lag_lookups=10_000)  # nothing delivers yet
        pool = LBPool(bounded_full_factory(capacity=256), size=2, sync=channel)
        for k in KEYS[:100]:
            pool.get_destination(k)
        pending_before = channel.pending
        assert pending_before > 0
        pool.crash_lb(1)
        # Only deliveries owed *to* the victim are voided; entries the
        # victim originated still pend toward the survivor.
        dropped = channel.stats.dropped_targets
        assert 0 < dropped < pending_before
        assert channel.stats.lost >= dropped
        assert channel.pending == pending_before - dropped

    def test_heal_repairs_ct_via_anti_entropy(self):
        # A healed member must not resume with a stale CT: heal_lb runs a
        # donor-diff repair, billed to stats.anti_entropy.
        channel = SyncChannel()
        pool = LBPool(bounded_full_factory(capacity=1024), size=3, sync=channel)
        stale = pool.partition_lb(1)
        destinations = {k: pool.get_destination(k) for k in KEYS[:200]}
        missing = [
            k for k, d in destinations.items() if stale.ct.peek(k) != d
        ]
        assert missing  # the partitioned member missed replication
        pool.heal_lb(1)
        channel.drain()
        assert channel.stats.anti_entropy >= len(missing)
        donor = pool.members[0]
        for k, d in donor.ct.items():
            assert stale.ct.peek(k) == d


class TestGossipPool:
    """LBPool driven by the epidemic GossipSync channel."""

    def make_pool(self, size=3, **gossip_kwargs):
        from repro.control import GossipSync

        gossip_kwargs.setdefault("fanout", 2)
        gossip_kwargs.setdefault("round_lookups", 16)
        channel = GossipSync(**gossip_kwargs)
        pool = LBPool(
            bounded_full_factory(capacity=4096), size=size, sync=channel
        )
        return pool, channel

    def test_gossip_replicates_inserts_to_all_members(self):
        pool, channel = self.make_pool()
        destinations = {k: pool.get_destination(k) for k in KEYS[:300]}
        channel.drain()
        assert channel.converged
        for member in pool.members:
            for k, d in destinations.items():
                assert member.ct.peek(k) == d

    def test_partition_heal_converges_staleness_to_zero(self):
        pool, channel = self.make_pool()
        stale = pool.partition_lb(2)
        for k in KEYS[:300]:
            pool.get_destination(k)
        channel.drain()
        owed = channel.staleness_of(stale)
        assert owed > 0
        before = channel.stats.anti_entropy
        pool.heal_lb(2)
        channel.drain()
        assert channel.staleness() == 0
        assert channel.stats.anti_entropy - before >= owed

    def test_gossip_crash_accounts_unreplicated_in_lost(self):
        # Partition the victim first so its own inserts cannot spread:
        # crashing it then *guarantees* un-replicated deltas to account.
        pool, channel = self.make_pool()
        victim = pool.partition_lb(2)
        inserted = sum(
            1 for k in KEYS[:300]
            if pool._steer(k) is victim and pool.get_destination(k) is not None
            and victim.ct.peek(k) is not None
        )
        assert inserted > 0
        pool.crash_lb(2)
        assert channel.stats.unreplicated > 0
        assert channel.stats.lost >= channel.stats.unreplicated
        assert pool.degraded or channel.degraded

    def test_grow_backfills_new_member_by_anti_entropy(self):
        pool, channel = self.make_pool(size=2)
        destinations = {k: pool.get_destination(k) for k in KEYS[:200]}
        channel.drain()
        member = pool.add_lb()
        assert channel.staleness_of(member) > 0
        channel.drain()
        assert channel.staleness_of(member) == 0
        for k, d in destinations.items():
            assert member.ct.peek(k) == d
