"""ConcuryHash / ConcuryLoadBalancer contracts beyond the shared matrices.

The registry-driven suites (test_batch_differential, test_batch_hypothesis,
test_replay_columnar, test_shard_replay) already hold Concury to the
idx == name == scalar and merge == single contracts.  This file pins the
family-specific properties: flowset granularity, control-plane patching
with atomic version flips, connection-count-independent memory, the
horizon-safety semantics at flowset level, and the JET-over-Concury
composition.
"""

import numpy as np
import pytest

from repro.ch import BackendError, ConcuryHash
from repro.ch.properties import sample_keys
from repro.core.concury import ConcuryLoadBalancer
from repro.core.factories import make_concury, make_jet, make_lb
from repro.hashing.othello import Othello

WORKING = [f"s{i}" for i in range(10)]
HORIZON = [f"h{i}" for i in range(3)]
KEYS = np.array(sample_keys(4000, seed=19), dtype=np.uint64)


def build(**kwargs):
    kwargs.setdefault("inner", "table")
    kwargs.setdefault("flowsets", 512)
    kwargs.setdefault("rows", 389)
    return ConcuryHash(WORKING, HORIZON, **kwargs)


class TestFlowsetGranularity:
    def test_same_flowset_same_backend(self):
        ch = build()
        fs = np.array([ch.flowset_of(int(k)) for k in KEYS.tolist()])
        names = ch.lookup_batch(KEYS)
        by_fs = {}
        for s, name in zip(fs.tolist(), names.tolist()):
            assert by_fs.setdefault(s, name) == name

    def test_lookup_agrees_with_inner_on_flowset_key(self):
        # New-flow assignment stays CH-driven: a flowset lands where the
        # inner CH sends its pseudo-key.
        ch = build()
        for k in KEYS[:200].tolist():
            s = ch.flowset_of(k)
            assert ch.lookup(k) == ch._inner.lookup(int(ch._fs_keys[s]))

    def test_flowsets_must_be_pow2(self):
        with pytest.raises(BackendError, match="power of two"):
            build(flowsets=500)

    def test_unknown_inner_rejected(self):
        with pytest.raises(BackendError, match="inner"):
            build(inner="maglev")
        with pytest.raises(BackendError, match="inner"):
            build(inner="concury")

    @pytest.mark.parametrize("inner", ["hrw", "ring", "anchor", "modulo"])
    def test_other_inner_families(self, inner):
        kwargs = {"inner": inner, "flowsets": 256}
        if inner == "anchor":
            kwargs["capacity"] = 4 * (len(WORKING) + len(HORIZON))
        ch = ConcuryHash(WORKING, HORIZON, **kwargs)
        names, unsafe = ch.lookup_with_safety_batch(KEYS[:500])
        expected = [ch.lookup_with_safety(int(k)) for k in KEYS[:500]]
        assert list(names) == [d for d, _ in expected]
        assert unsafe.tolist() == [u for _, u in expected]
        assert set(names.tolist()) <= set(WORKING)


class TestSafetySemantics:
    def test_safe_flowsets_never_move_on_horizon_admission(self):
        ch = build()
        names, unsafe = ch.lookup_with_safety_batch(KEYS)
        for h in HORIZON:
            ch.add_working(h)
        after = ch.lookup_batch(KEYS)
        moved_safe = [
            (b, a)
            for b, a, u in zip(names.tolist(), after.tolist(), unsafe.tolist())
            if not u and b != a
        ]
        assert moved_safe == []

    def test_unsafe_fraction_scales_with_horizon(self):
        small = ConcuryHash(WORKING, HORIZON[:1], flowsets=1024, rows=389)
        large = ConcuryHash(WORKING, HORIZON + [f"hx{i}" for i in range(9)],
                            flowsets=1024, rows=389)
        _, u_small = small.lookup_with_safety_batch(KEYS)
        _, u_large = large.lookup_with_safety_batch(KEYS)
        assert u_small.mean() < u_large.mean()


class TestControlPlanePatching:
    def test_membership_change_patches_not_rebuilds(self):
        ch = build()
        assert ch.rebuilds == 1 and ch.patches == 0  # initial build
        ch.remove_working(WORKING[-1])
        assert ch.patches == 1 and ch.rebuilds == 1
        # Roughly 1/|W| of flowsets move; far fewer than the rebuild
        # threshold, and each touches O(log S) Othello cells.
        assert 0 < ch.last_refresh_changed <= ch.flowsets // 2
        assert ch.last_refresh_touched >= ch.last_refresh_changed

    def test_atomic_version_flip(self):
        ch = build()
        old_map = ch._map
        ch.remove_working(WORKING[0])
        assert ch._map is not old_map  # readers saw old or new, never mixed

    def test_mass_change_falls_back_to_rebuild(self):
        ch = ConcuryHash(WORKING, HORIZON, inner="modulo", flowsets=256)
        # mod-N renumbers nearly everything on removal: the patch path
        # would touch more cells than a bulk build, so refresh rebuilds.
        ch.remove_working(WORKING[0])
        assert ch.rebuilds == 2

    def test_backend_table_identity_per_version(self):
        ch = build()
        t1 = ch.backend_table()
        assert ch.backend_table() is t1
        ch.add_horizon("brand-new")
        t2 = ch.backend_table()
        assert t2 is not t1
        assert "brand-new" in ch._slot_index

    def test_empty_working_set(self):
        ch = ConcuryHash(["a"], [], flowsets=64)
        ch.remove_working("a")
        with pytest.raises(BackendError):
            ch.lookup(1)
        with pytest.raises(BackendError):
            ch.lookup_with_safety_batch_idx(KEYS[:4])
        ch.add_working("a")
        assert ch.lookup(1) == "a"


class TestMemoryModel:
    def test_memory_independent_of_connection_count(self):
        ch = build()
        before = ch.memory_bytes
        ch.lookup_batch(KEYS)  # 4k distinct connections
        ch.lookup_batch(np.array(sample_keys(4000, seed=77), dtype=np.uint64))
        assert ch.memory_bytes == before

    def test_memory_scales_with_flowsets(self):
        small = build(flowsets=256)
        large = build(flowsets=4096)
        assert large.memory_bytes > small.memory_bytes
        # Othello A+B at 16-bit cells: a few bytes per flowset.
        assert large.memory_bytes < 64 * 4096


class TestLoadBalancer:
    def test_factory_and_registry(self):
        lb = make_concury("table", WORKING, HORIZON, flowsets=512, rows=389)
        assert isinstance(lb, ConcuryLoadBalancer)
        via_mode = make_lb("concury", "table", WORKING, HORIZON,
                           flowsets=512, rows=389)
        assert isinstance(via_mode, ConcuryLoadBalancer)
        with pytest.raises(TypeError):
            ConcuryLoadBalancer(build()._inner)

    def test_no_tracked_state(self):
        lb = make_concury("table", WORKING, HORIZON, flowsets=512, rows=389)
        lb.get_destinations_batch(KEYS)
        assert lb.tracked_connections == 0
        assert lb.batch_effective and lb.columnar_effective

    def test_update_stats_surface(self):
        lb = make_concury("table", WORKING, HORIZON, flowsets=512, rows=389)
        lb.remove_working_server(WORKING[0])
        stats = lb.update_stats
        assert stats["patches"] == 1 and stats["rebuilds"] == 1
        # flowsets_changed accumulates the initial bulk build too;
        # the patch event itself is the last_* pair.
        assert stats["last_touched"] >= stats["last_changed"] > 0
        assert stats["flowsets_changed"] >= stats["last_changed"]
        assert lb.map_memory_bytes == lb.ch.memory_bytes

    def test_jet_over_concury_tracks_flowset_unsafe_only(self):
        # Bonus composition: JET at flowset granularity.  Tracked entries
        # are exactly the packets whose flowset is horizon-unsafe.
        jet = make_jet("concury", WORKING, HORIZON, flowsets=512, rows=389)
        jet.get_destinations_batch(KEYS)
        _, unsafe = jet.ch.lookup_with_safety_batch(KEYS)
        assert jet.tracked_connections == len(
            {int(k) for k, u in zip(KEYS.tolist(), unsafe.tolist()) if u}
        )


class TestOthelloValueWidth:
    def test_slot_space_fits_value_bits(self):
        # The Othello map stores 16-bit slot ids; the family must keep
        # working until the append-only slot space approaches that bound.
        ch = build(flowsets=256)
        for i in range(40):
            ch.add_horizon(f"extra{i}")
        assert isinstance(ch._map, Othello)
        assert len(ch._slots) == len(WORKING) + len(HORIZON) + 40
        names = ch.lookup_batch(KEYS[:200])
        assert set(names.tolist()) <= set(WORKING)
