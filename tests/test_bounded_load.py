"""Bounded-load JET (CH-BL, Section 6.3 direction) tests."""

import math

import pytest

from repro.ch import RingHash
from repro.ch.properties import sample_keys
from repro.core.bounded_load import BoundedLoadJET
from repro.core import JETLoadBalancer

W = [f"w{i}" for i in range(10)]
H = ["h0"]
KEYS = sample_keys(5000, seed=71)


def make(epsilon=0.25):
    return BoundedLoadJET(RingHash(W, H, virtual_nodes=50), epsilon=epsilon)


def drive(lb, keys):
    placement = {}
    for k in keys:
        d = lb.get_destination(k, new_connection=True)
        lb.note_flow_start(d)
        placement[k] = d
    return placement


class TestCapEnforcement:
    @pytest.mark.parametrize("epsilon", [0.1, 0.25, 0.5])
    def test_max_load_within_cap(self, epsilon):
        lb = make(epsilon)
        drive(lb, KEYS)
        cap = math.ceil((1 + epsilon) * len(KEYS) / len(W))
        assert lb.max_load() <= cap + 1  # +1: cap computed pre-insert

    def test_tighter_epsilon_balances_better(self):
        tight = make(0.05)
        loose = make(1.0)
        drive(tight, KEYS)
        drive(loose, KEYS)
        assert tight.max_load() <= loose.max_load()

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            make(0.0)

    def test_cascade_counter(self):
        lb = make(0.05)
        drive(lb, KEYS)
        assert lb.cascaded > 0  # a tight cap must deflect some keys

    def test_uncascaded_placements_match_plain_jet(self):
        lb = make(0.25)
        plain = JETLoadBalancer(RingHash(W, H, virtual_nodes=50))
        placement = drive(lb, KEYS[:2000])
        agree = sum(plain.get_destination(k) == d for k, d in placement.items())
        # Deviations are exactly the cascaded keys.
        assert agree == len(placement) - lb.cascaded


class TestTrackingEconomy:
    def test_tracks_unsafe_plus_cascaded_only(self):
        lb = make(0.25)
        drive(lb, KEYS)
        plain = RingHash(W, H, virtual_nodes=50)
        unsafe = sum(plain.lookup_with_safety(k)[1] for k in KEYS)
        assert lb.tracked_connections <= unsafe + lb.cascaded
        # Far cheaper than power-of-2-choices' ~50%.
        assert lb.tracked_connections / len(KEYS) < 0.35

    def test_mid_connection_packets_follow_ch(self):
        lb = make(0.25)
        placement = drive(lb, KEYS[:2000])
        # Untracked flows: later (non-SYN) packets take the CH result,
        # which equals their placement (they were not cascaded).
        for k, d in placement.items():
            assert lb.get_destination(k) == d


class TestPCC:
    def test_pcc_through_horizon_addition(self):
        lb = make(0.25)
        placement = drive(lb, KEYS[:3000])
        lb.add_working_server("h0")
        assert all(lb.get_destination(k) == d for k, d in placement.items())

    def test_pcc_through_removal_except_victims(self):
        lb = make(0.25)
        placement = drive(lb, KEYS[:3000])
        victim = W[2]
        lb.remove_working_server(victim)
        for k, d in placement.items():
            if d == victim:
                continue
            assert lb.get_destination(k) == d

    def test_flow_end_accounting(self):
        lb = make(0.25)
        d = lb.get_destination(KEYS[0], new_connection=True)
        lb.note_flow_start(d)
        assert lb._active == 1
        lb.note_flow_end(d)
        assert lb._active == 0
        lb.note_flow_end(d)
        assert lb._active == 0
