"""Scenario spec schema: strict parsing, actionable errors, round-trips.

The parsing contract is "a scenario file that parses is a scenario that
runs": unknown fields, wrong types, and cross-field inconsistencies are
all rejected at parse time with a :class:`ScenarioError` naming the
exact field path.  The hypothesis suite then universally quantifies the
round-trip law -- ``parse(spec.to_dict()) == spec`` -- over generated
specs, which is what makes ``to_dict`` a safe persistence format for
seed/mode/duration overrides.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    EnvelopeSpec,
    FleetSpec,
    ScenarioError,
    ScenarioSpec,
    TimelineEvent,
    load_file,
    loads,
)

MINIMAL = {
    "name": "t",
    "duration_s": 10,
    "fleet": {"servers": 8, "horizon": 2},
    "workload": {"connection_rate": 50},
}


def spec_dict(**overrides):
    data = {k: (dict(v) if isinstance(v, dict) else v) for k, v in MINIMAL.items()}
    data.update(overrides)
    return data


def expect_error(data, fragment):
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec.parse(data)
    assert fragment in str(err.value), str(err.value)
    return err.value


class TestStrictParsing:
    def test_minimal_parses(self):
        spec = ScenarioSpec.parse(spec_dict())
        assert spec.name == "t"
        assert spec.fleet.servers == 8
        assert spec.mode == "jet"
        assert spec.shards == 2  # pinned partition default

    def test_unknown_top_level_field_named(self):
        err = expect_error(spec_dict(flet={"servers": 1}), "'flet'")
        assert "subset of" in str(err)

    def test_unknown_fleet_field_named_with_path(self):
        data = spec_dict()
        data["fleet"]["horizons"] = 3
        expect_error(data, "fleet: unknown field(s) ['horizons']")

    def test_missing_required_field_has_path(self):
        data = spec_dict()
        del data["fleet"]["horizon"]
        expect_error(data, "fleet.horizon: required field is missing")

    def test_bool_rejected_where_number_expected(self):
        data = spec_dict()
        data["workload"]["connection_rate"] = True
        expect_error(data, "connection_rate: expected a number, got a boolean")

    def test_bad_mode_lists_choices(self):
        err = expect_error(spec_dict(mode="magic"), ".mode")
        assert "jet" in str(err) and "concury" in str(err)

    def test_zone_total_contradiction(self):
        data = spec_dict()
        data["fleet"] = {
            "servers": 10,
            "horizon": 2,
            "zones": [{"name": "a", "servers": 4}, {"name": "b", "servers": 4}],
        }
        expect_error(data, "contradicts the zone total 8")

    def test_duplicate_zone_names(self):
        data = spec_dict()
        data["fleet"] = {
            "horizon": 2,
            "zones": [{"name": "a", "servers": 4}, {"name": "a", "servers": 4}],
        }
        expect_error(data, "duplicate zone names")

    def test_zone_probe_loss_range(self):
        data = spec_dict()
        data["fleet"] = {
            "horizon": 2,
            "zones": [{"name": "a", "servers": 4, "probe_loss": 1.0}],
        }
        expect_error(data, "probe_loss: must be in [0, 1)")

    def test_bad_distribution_kind(self):
        data = spec_dict()
        data["workload"]["flow_duration"] = {"kind": "weibull", "k": 2}
        expect_error(data, "flow_duration.kind")

    def test_bad_rate_profile_kind(self):
        data = spec_dict()
        data["workload"]["rate_profile"] = {"kind": "sawtooth"}
        expect_error(data, "rate_profile.kind")


class TestEnvelopeValidation:
    def test_negative_tolerance(self):
        expect_error(
            spec_dict(envelope={"tracked_fraction_tolerance": -0.1}),
            "tracked_fraction_tolerance: must be positive",
        )

    def test_breakage_over_one(self):
        expect_error(
            spec_dict(envelope={"max_breakage": 1.5}),
            "max_breakage: is a fraction of flows",
        )

    def test_precision_out_of_range(self):
        expect_error(
            spec_dict(envelope={"min_horizon_precision": 2.0}),
            "min_horizon_precision: must be in [0, 1]",
        )

    def test_unknown_envelope_field(self):
        expect_error(spec_dict(envelope={"max_latency": 1}), "envelope: unknown")

    def test_horizon_floors_need_churn(self):
        # A static fleet with no control/churn/timeline has no horizon
        # announcements to judge fidelity against.
        expect_error(
            spec_dict(envelope={"min_horizon_recall": 0.9}),
            "horizon fidelity floors need membership churn",
        )
        spec = ScenarioSpec.parse(
            spec_dict(
                envelope={"min_horizon_recall": 0.9}, update_rate_per_min=6.0
            )
        )
        assert spec.envelope.min_horizon_recall == 0.9

    def test_bounds_only_set_keys(self):
        env = EnvelopeSpec.parse({"max_breakage": 0.05})
        assert env.bounds() == {"max_breakage": 0.05}


class TestTimelineValidation:
    def test_at_and_at_frac_exclusive(self):
        event = {"kind": "zone_failure", "zone": "a", "at": 1, "at_frac": 0.5}
        data = spec_dict(timeline=[event])
        data["fleet"] = {"horizon": 2, "zones": [{"name": "a", "servers": 8}]}
        expect_error(data, "exactly one of 'at' or 'at_frac'")

    def test_neither_time_rejected(self):
        event = {"kind": "flap_storm", "victims": 2, "interval_s": 1.0}
        expect_error(spec_dict(timeline=[event]), "exactly one of")

    def test_chaos_takes_no_time(self):
        event = {"kind": "chaos", "crash_rate_per_min": 2.0, "at": 3}
        expect_error(spec_dict(timeline=[event]), "whole-run background process")

    def test_chaos_needs_a_rate(self):
        event = {"kind": "chaos", "group_size": 3}
        expect_error(spec_dict(timeline=[event]), "at least one positive *_rate_per_min")

    def test_unknown_zone_reference(self):
        event = {"kind": "zone_failure", "zone": "nowhere", "at": 2}
        err = expect_error(spec_dict(timeline=[event]), "unknown zone 'nowhere'")
        assert "timeline[0]" in str(err)

    def test_event_past_duration(self):
        event = {"kind": "flap_storm", "victims": 1, "interval_s": 1.0, "at": 99}
        expect_error(spec_dict(timeline=[event]), "past the scenario duration")

    def test_probe_blackout_needs_control(self):
        event = {"kind": "probe_blackout", "duration_s": 2, "loss": 0.5, "at": 1}
        expect_error(spec_dict(timeline=[event]), "needs a [control] block")
        data = spec_dict(timeline=[event], control={})
        assert ScenarioSpec.parse(data).control is not None

    def test_per_kind_unknown_field(self):
        event = {"kind": "zone_failure", "zone": "a", "at": 1, "blast_radius": 9}
        data = spec_dict(timeline=[event])
        data["fleet"] = {"horizon": 2, "zones": [{"name": "a", "servers": 8}]}
        expect_error(data, "unknown field(s) ['blast_radius']")

    def test_resolve_time_fraction(self):
        event = TimelineEvent.parse(
            {"kind": "zone_failure", "zone": "a", "at_frac": 0.25}, "t"
        )
        assert event.resolve_time(40.0) == 10.0

    def test_zone_ranges_contiguous_in_declaration_order(self):
        fleet = FleetSpec.parse(
            {
                "horizon": 2,
                "zones": [
                    {"name": "b", "servers": 3},
                    {"name": "a", "servers": 5},
                ],
            }
        )
        assert fleet.zone_ranges() == {"b": (0, 3), "a": (3, 8)}
        assert fleet.servers == 8


class TestFiles:
    def test_loads_rejects_bad_json(self):
        with pytest.raises(ScenarioError) as err:
            loads("{not json", source="stdin")
        assert "invalid JSON" in str(err.value)

    def test_load_file_json(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(spec_dict()))
        assert load_file(str(path)).name == "t"

    def test_load_file_toml(self, tmp_path):
        path = tmp_path / "t.toml"
        path.write_text(
            'name = "t"\nduration_s = 10\n'
            "[fleet]\nservers = 8\nhorizon = 2\n"
            "[workload]\nconnection_rate = 50\n"
        )
        try:
            import tomllib  # noqa: F401
        except ImportError:
            with pytest.raises(ScenarioError) as err:
                load_file(str(path))
            assert "Python 3.11+" in str(err.value)
        else:
            assert load_file(str(path)).name == "t"


# ----------------------------------------------------------- hypothesis
zone_names = st.sampled_from(["east", "west", "core", "edge"])

zones = st.lists(
    st.builds(
        lambda name, servers, weight: {
            "name": name,
            "servers": servers,
            "weight": weight,
        },
        zone_names,
        st.integers(min_value=1, max_value=20),
        st.sampled_from([0.5, 1.0, 2.0]),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda z: z["name"],
)

fleets = st.one_of(
    st.builds(
        lambda servers, horizon: {"servers": servers, "horizon": horizon},
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=8),
    ),
    st.builds(
        lambda zs, horizon: {"zones": zs, "horizon": horizon},
        zones,
        st.integers(min_value=1, max_value=8),
    ),
)

dists = st.one_of(
    st.just("hadoop"),
    st.builds(
        lambda mean: {"kind": "exponential", "mean": mean},
        st.floats(min_value=0.5, max_value=10, allow_nan=False),
    ),
)

profiles = st.one_of(
    st.none(),
    st.builds(
        lambda period, amp: {"kind": "diurnal", "period_s": period, "amplitude": amp},
        st.floats(min_value=5, max_value=50, allow_nan=False),
        st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
    ),
)

workloads = st.builds(
    lambda rate, dur, prof: {
        "connection_rate": rate,
        "flow_duration": dur,
        **({"rate_profile": prof} if prof else {}),
    },
    st.floats(min_value=1, max_value=500, allow_nan=False),
    dists,
    profiles,
)

envelopes = st.fixed_dictionaries(
    {},
    optional={
        "tracked_fraction_tolerance": st.floats(
            min_value=0.01, max_value=2, allow_nan=False
        ),
        "max_breakage": st.floats(min_value=0, max_value=1, allow_nan=False),
        "max_balance_cv": st.floats(min_value=0, max_value=5, allow_nan=False),
        "max_gossip_staleness": st.floats(min_value=0, max_value=10, allow_nan=False),
    },
)

chaos_events = st.builds(
    lambda rate: {"kind": "chaos", "crash_rate_per_min": rate},
    st.floats(min_value=0.1, max_value=10, allow_nan=False),
)


@st.composite
def scenario_dicts(draw):
    fleet = draw(fleets)
    duration = draw(st.floats(min_value=5, max_value=120, allow_nan=False))
    data = {
        "name": draw(st.sampled_from(["alpha", "beta-2", "gamma_x"])),
        "duration_s": duration,
        "seed": draw(st.integers(min_value=0, max_value=10_000)),
        "mode": draw(st.sampled_from(["jet", "full", "concury", "jet-p2c"])),
        "shards": draw(st.integers(min_value=1, max_value=4)),
        "fleet": fleet,
        "workload": draw(workloads),
    }
    envelope = draw(envelopes)
    if envelope:
        data["envelope"] = envelope
    timeline = []
    if draw(st.booleans()):
        timeline.append(draw(chaos_events))
    if "zones" in fleet and draw(st.booleans()):
        timeline.append(
            {
                "kind": "zone_failure",
                "zone": fleet["zones"][0]["name"],
                "at_frac": draw(st.floats(min_value=0, max_value=1, allow_nan=False)),
            }
        )
    if timeline:
        data["timeline"] = timeline
    return data


class TestRoundTrip:
    @given(scenario_dicts())
    @settings(max_examples=60, deadline=None)
    def test_to_dict_parse_is_identity(self, data):
        spec = ScenarioSpec.parse(data)
        again = ScenarioSpec.parse(spec.to_dict())
        assert again == spec
        # And the dict form itself is a fixpoint (stable persistence).
        assert again.to_dict() == spec.to_dict()

    @given(scenario_dicts())
    @settings(max_examples=30, deadline=None)
    def test_json_round_trip(self, data):
        spec = ScenarioSpec.parse(data)
        again = loads(json.dumps(spec.to_dict()))
        assert again == spec
