"""Analysis helpers: aggregation, histograms, balance math."""

import math

import pytest

from repro.analysis import (
    MeanStd,
    aggregate,
    expected_balls_in_bins_max,
    expected_oversubscription,
    geometric_mean,
    jains_fairness,
    loglog_histogram,
    max_oversubscription,
)


class TestAggregate:
    def test_mean_and_std(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.mean == pytest.approx(2.0)
        assert agg.std == pytest.approx(math.sqrt(2 / 3))
        assert agg.n == 3

    def test_single_value(self):
        agg = aggregate([5.0])
        assert agg.mean == 5.0
        assert agg.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_formatting(self):
        agg = MeanStd(1.23456, 0.0345, 10)
        assert f"{agg:.2f}" == "1.23 ±0.03"
        assert "±" in str(agg)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestLogLogHistogram:
    def test_size_one_gets_own_bin(self):
        series = loglog_histogram({1: 100, 2: 10})
        assert series[0] == (1.0, 100)

    def test_binning_aggregates_decades(self):
        series = loglog_histogram({100: 5, 101: 7}, bins_per_decade=1)
        centers = [c for c, _ in series]
        counts = [n for _, n in series]
        assert len(series) == 1
        assert counts[0] == 12
        assert 100 <= centers[0] <= 1000

    def test_empty(self):
        assert loglog_histogram({}) == []

    def test_total_flows_preserved(self):
        histogram = {1: 10, 3: 4, 50: 2, 5000: 1}
        series = loglog_histogram(histogram)
        assert sum(n for _, n in series) == 17


class TestBalanceMath:
    def test_max_oversubscription(self):
        assert max_oversubscription({"a": 4, "b": 2}) == pytest.approx(4 / 3)

    def test_with_explicit_server_count(self):
        # Two flows on one server, but four servers active: mean is 0.5.
        assert max_oversubscription({"a": 2}, active_servers=4) == pytest.approx(4.0)

    def test_empty(self):
        assert max_oversubscription({}) == 0.0

    def test_jains_fairness_perfect(self):
        assert jains_fairness({"a": 5, "b": 5, "c": 5}) == pytest.approx(1.0)

    def test_jains_fairness_worst(self):
        assert jains_fairness({"a": 9, "b": 0, "c": 0}) == pytest.approx(1 / 3)

    def test_balls_in_bins_envelope(self):
        # 25K balls in 468 bins (the paper's footnote-7 reference point):
        # theoretical max oversubscription should land in Fig. 5's band.
        ratio = expected_oversubscription(25_000, 468)
        assert 1.2 < ratio < 1.7

    def test_expected_max_monotone_in_balls(self):
        assert expected_balls_in_bins_max(10_000, 100) < expected_balls_in_bins_max(
            20_000, 100
        )
