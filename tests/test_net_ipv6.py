"""IPv6 flow identifier and parser tests."""

import pytest

from repro.core import make_jet
from repro.net.flow import PROTO_TCP, PROTO_UDP, FiveTuple
from repro.net.flow6 import FiveTuple6
from repro.net.parse import ParseError
from repro.net.parse6 import build_ipv6, parse_ipv6

FT6 = FiveTuple6.make("2001:db8::1", "2001:db8::2", 50000, 443, PROTO_TCP)
FT6_UDP = FiveTuple6.make("fe80::1", "2001:db8::53", 5353, 53, PROTO_UDP)


class TestFiveTuple6:
    def test_make_from_strings(self):
        assert FT6.src_port == 50000
        assert FT6.protocol == PROTO_TCP

    def test_validation(self):
        with pytest.raises(ValueError):
            FiveTuple6(2**128, 0, 1, 2)
        with pytest.raises(ValueError):
            FiveTuple6(1, 2, 70000, 2)

    def test_encoding_is_37_bytes(self):
        assert len(FT6.encode()) == 37

    def test_key_distinct_from_v4(self):
        # A v4 tuple with "the same" numeric fields must not collide.
        v4 = FiveTuple(1, 2, 50000, 443, PROTO_TCP)
        v6 = FiveTuple6(1, 2, 50000, 443, PROTO_TCP)
        assert v4.key64 != v6.key64

    def test_distinct_addresses_distinct_keys(self):
        keys = {
            FiveTuple6.make(f"2001:db8::{i:x}", "2001:db8::ffff", 1000 + i, 443).key64
            for i in range(1, 500)
        }
        assert len(keys) == 499

    def test_str_rendering(self):
        assert "[2001:db8::1]:50000" in str(FT6)

    def test_dispatches_through_jet(self):
        lb = make_jet("hrw", ["a", "b", "c"], ["d"])
        destination = lb.get_destination(FT6.key64)
        assert destination in lb.working
        assert lb.get_destination(FT6.key64) == destination


class TestParseIPv6:
    @pytest.mark.parametrize("ft", [FT6, FT6_UDP])
    def test_roundtrip(self, ft):
        assert parse_ipv6(build_ipv6(ft)) == ft

    def test_payload_ignored(self):
        assert parse_ipv6(build_ipv6(FT6, b"data" * 50)) == FT6

    def test_extension_header_chain(self):
        # Insert a destination-options header before TCP.
        packet = bytearray(build_ipv6(FT6))
        l4 = bytes(packet[40:])
        ext = bytes([packet[6], 0]) + b"\x00" * 6  # next=TCP, len 8 bytes
        packet[6] = 60  # destination options first
        rebuilt = bytes(packet[:40]) + ext + l4
        assert parse_ipv6(rebuilt) == FT6

    def test_first_fragment_parses(self):
        packet = bytearray(build_ipv6(FT6))
        l4 = bytes(packet[40:])
        frag = bytes([packet[6], 0, 0, 0, 0, 0, 0, 1])  # offset 0
        packet[6] = 44
        assert parse_ipv6(bytes(packet[:40]) + frag + l4) == FT6

    def test_later_fragment_rejected(self):
        packet = bytearray(build_ipv6(FT6))
        l4 = bytes(packet[40:])
        frag = bytes([packet[6], 0]) + (8 << 3).to_bytes(2, "big") + b"\x00" * 4
        packet[6] = 44
        with pytest.raises(ParseError):
            parse_ipv6(bytes(packet[:40]) + frag + l4)

    def test_version_mismatch(self):
        packet = bytearray(build_ipv6(FT6))
        packet[0] = 0x45
        with pytest.raises(ParseError):
            parse_ipv6(bytes(packet))

    def test_short_packet(self):
        with pytest.raises(ParseError):
            parse_ipv6(b"\x60" + b"\x00" * 10)

    def test_unsupported_next_header(self):
        packet = bytearray(build_ipv6(FT6))
        packet[6] = 58  # ICMPv6
        with pytest.raises(ParseError):
            parse_ipv6(bytes(packet))
