"""Full-CT, stateless, and load-aware baseline LB tests."""

import pytest

from repro.ch import AnchorHash, HRWHash, MaglevHash
from repro.ch.properties import sample_keys
from repro.core import (
    FullCTLoadBalancer,
    PowerOfTwoJET,
    StatelessLoadBalancer,
    make_full_ct,
)
from repro.ct import LRUCT

W = [f"w{i}" for i in range(10)]
H = ["h0", "h1"]
KEYS = sample_keys(2000, seed=42)


class TestFullCT:
    def test_tracks_every_connection(self):
        lb = FullCTLoadBalancer(HRWHash(W, H))
        for k in KEYS:
            lb.get_destination(k)
        assert lb.tracked_connections == len(KEYS)

    def test_pcc_via_table_even_for_unsafe_keys(self):
        lb = FullCTLoadBalancer(HRWHash(W, H))
        first = {k: lb.get_destination(k) for k in KEYS}
        for h in list(H):
            lb.add_working_server(h)
        assert all(lb.get_destination(k) == first[k] for k in KEYS)

    def test_eviction_breaks_connections_after_changes(self):
        lb = FullCTLoadBalancer(HRWHash(W, H), ct=LRUCT(16))
        first = {k: lb.get_destination(k) for k in KEYS}
        lb.add_working_server("h0")
        broken = sum(lb.get_destination(k) != first[k] for k in KEYS)
        assert broken > 0

    def test_works_with_plain_maglev(self):
        lb = FullCTLoadBalancer(MaglevHash(W, table_size=1031))
        first = {k: lb.get_destination(k) for k in KEYS[:500]}
        lb.remove_working_server(W[3])
        # Tracked connections survive even Maglev's flips.
        for k, d in first.items():
            if d == W[3]:
                continue
            assert lb.get_destination(k) == d

    def test_horizon_calls_are_noops_for_plain_ch(self):
        lb = FullCTLoadBalancer(MaglevHash(W, table_size=101))
        lb.add_horizon_server("x")  # must not raise
        lb.remove_horizon_server("x")

    def test_factory_with_maglev(self):
        lb = make_full_ct("maglev", W, table_size=101)
        assert lb.get_destination(7) in lb.working

    def test_factory_rejects_maglev_horizon(self):
        with pytest.raises(ValueError):
            make_full_ct("maglev", W, horizon=H, table_size=101)


class TestStateless:
    def test_no_tracking(self):
        lb = StatelessLoadBalancer(HRWHash(W, H))
        for k in KEYS[:200]:
            lb.get_destination(k)
        assert lb.tracked_connections == 0

    def test_every_unsafe_connection_breaks_on_addition(self):
        ch = HRWHash(W, H)
        lb = StatelessLoadBalancer(ch)
        unsafe = {k for k in KEYS if ch.lookup_with_safety(k)[1]}
        first = {k: lb.get_destination(k) for k in KEYS}
        for h in list(H):
            lb.add_working_server(h)
        broken = {k for k in KEYS if lb.get_destination(k) != first[k]}
        assert broken == unsafe  # exactly the Section 2.1 unsafe set

    def test_backend_management(self):
        lb = StatelessLoadBalancer(HRWHash(W, H))
        lb.remove_working_server(W[0])
        assert W[0] not in lb.working
        lb.add_working_server(W[0])
        assert W[0] in lb.working


class TestPowerOfTwoJET:
    def make(self):
        return PowerOfTwoJET(AnchorHash(W, H, capacity=48))

    def test_destination_always_working(self):
        lb = self.make()
        for k in KEYS[:500]:
            d = lb.get_destination(k, new_connection=True)
            assert d in lb.working
            lb.note_flow_start(d)

    def test_tracks_more_than_jet_less_than_full(self):
        lb = self.make()
        for k in KEYS:
            lb.note_flow_start(lb.get_destination(k, new_connection=True))
        fraction = lb.tracked_connections / len(KEYS)
        assert 0.2 < fraction < 0.8  # ~50% per Section 6.3

    def test_improves_max_load(self):
        from repro.core import JETLoadBalancer

        plain = JETLoadBalancer(AnchorHash(W, H, capacity=48))
        p2c = self.make()
        plain_load = {}
        for k in KEYS:
            d = plain.get_destination(k)
            plain_load[d] = plain_load.get(d, 0) + 1
            p2c.note_flow_start(p2c.get_destination(k, new_connection=True))
        assert p2c.max_load() <= max(plain_load.values())

    def test_pcc_through_horizon_addition(self):
        lb = self.make()
        first = {}
        for k in KEYS:
            first[k] = lb.get_destination(k, new_connection=True)
            lb.note_flow_start(first[k])
        lb.add_working_server("h0")
        # Later packets carry no SYN: the plain JET path must agree.
        assert all(lb.get_destination(k) == first[k] for k in KEYS)

    def test_non_syn_packets_never_rerouted_by_load(self):
        lb = self.make()
        first = {k: lb.get_destination(k, new_connection=True) for k in KEYS[:500]}
        for k in KEYS[:500]:
            lb.note_flow_start(first[k])
        # Skew the load wildly; untracked mid-connection packets must still
        # follow the CH result, not chase the emptier servers.
        for _ in range(400):
            lb.note_flow_end(first[KEYS[0]])
        assert all(lb.get_destination(k) == first[k] for k in KEYS[:500])

    def test_flow_end_decrements(self):
        lb = self.make()
        d = lb.get_destination(KEYS[0])
        lb.note_flow_start(d)
        assert lb.load[d] == 1
        lb.note_flow_end(d)
        assert lb.load[d] == 0
        lb.note_flow_end(d)  # never below zero
        assert lb.load[d] == 0

    def test_backend_churn_keeps_load_table_consistent(self):
        lb = self.make()
        lb.remove_working_server(W[0])
        assert W[0] not in lb.load
        lb.add_working_server("h0")
        assert lb.load["h0"] == 0
