"""Fault-injection subsystem tests: schedules, probation, sync channel,
and chaos runs through the event-driven engine."""

import pytest

from repro.ct import make_ct
from repro.experiments import scales
from repro.faults import (
    CRASH,
    FLAP,
    GROUP,
    UNANNOUNCED_ADD,
    FaultEvent,
    FaultSchedule,
    HealthMonitor,
    SyncChannel,
    chaos_mix,
)
from repro.sim.scenario import run_simulation

CHAOS_BASE = scales.base_config("smoke").with_(
    duration_s=12.0,
    connection_rate=150.0,
    n_servers=30,
    horizon_size=3,
    update_rate_per_min=0.0,
)


class TestFaultSchedule:
    def test_generate_is_deterministic(self):
        kwargs = dict(
            seed=9, crash_rate_per_min=20, flap_rate_per_min=10,
            group_rate_per_min=5, unannounced_rate_per_min=5,
        )
        a = FaultSchedule.generate(120.0, **kwargs)
        b = FaultSchedule.generate(120.0, **kwargs)
        assert a.events == b.events
        assert len(a) > 0

    def test_different_seeds_differ(self):
        a = FaultSchedule.generate(300.0, seed=1, crash_rate_per_min=10)
        b = FaultSchedule.generate(300.0, seed=2, crash_rate_per_min=10)
        assert a.events != b.events

    def test_events_sorted_by_time(self):
        schedule = chaos_mix(300.0, 20.0, seed=4)
        times = [e.time for e in schedule]
        assert times == sorted(times)

    def test_until_and_merged_and_count(self):
        schedule = FaultSchedule.at(
            FaultEvent(1.0, CRASH), FaultEvent(5.0, GROUP, group_size=2)
        )
        assert len(schedule.until(2.0)) == 1
        merged = schedule.merged(FaultSchedule.at(FaultEvent(3.0, CRASH)))
        assert [e.time for e in merged] == [1.0, 3.0, 5.0]
        assert merged.count(CRASH) == 2

    def test_invalid_events_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "meteor")
        with pytest.raises(ValueError):
            FaultEvent(-1.0, CRASH)

    def test_chaos_mix_covers_all_kinds(self):
        schedule = chaos_mix(600.0, 40.0, seed=0)
        for kind in (CRASH, FLAP, GROUP, UNANNOUNCED_ADD):
            assert schedule.count(kind) > 0
        # Crashes dominate the mix by construction (1/2 of the rate).
        assert schedule.count(CRASH) > schedule.count(GROUP)

    def test_zero_rate_is_empty(self):
        assert not chaos_mix(100.0, 0.0)


class TestHealthMonitor:
    def test_backoff_schedule(self):
        monitor = HealthMonitor(base_s=2.0, multiplier=2.0, cap_s=16.0)
        assert monitor.delay_for(1) == 0.0
        assert monitor.delay_for(2) == 2.0
        assert monitor.delay_for(3) == 4.0
        assert monitor.delay_for(10) == 16.0  # capped

    def test_escalation_and_probation_flag(self):
        monitor = HealthMonitor(base_s=1.0, decay_s=30.0)
        assert monitor.record_failure("s1", now=0.0) == 0.0
        assert monitor.record_failure("s1", now=5.0) == 1.0
        assert monitor.record_failure("s1", now=10.0) == 2.0
        assert monitor.in_probation("s1")
        monitor.note_recovered("s1", now=12.0)
        assert not monitor.in_probation("s1")
        assert monitor.failures("s1") == 3

    def test_stable_period_forgives_history(self):
        monitor = HealthMonitor(base_s=1.0, decay_s=30.0)
        monitor.record_failure("s1", now=0.0)
        monitor.record_failure("s1", now=1.0)
        # A failure long after the last one restarts the schedule.
        assert monitor.record_failure("s1", now=100.0) == 0.0

    def test_flap_exactly_at_decay_boundary_still_escalates(self):
        # The forgiveness test is strictly `now - last > decay_s`: a
        # server that flaps *exactly* every decay_s seconds never earns
        # the reset, so its backoff keeps climbing.
        monitor = HealthMonitor(base_s=1.0, multiplier=2.0, decay_s=30.0)
        assert monitor.record_failure("s1", now=0.0) == 0.0
        assert monitor.record_failure("s1", now=30.0) == 1.0
        assert monitor.record_failure("s1", now=60.0) == 2.0
        # One tick past the boundary and history is forgiven.
        assert monitor.record_failure("s1", now=90.0 + 1e-9) == 0.0

    def test_probation_histories_are_per_server(self):
        # Two servers failing in the same tick escalate independently;
        # one recovering does not clear the other's probation.
        monitor = HealthMonitor(base_s=1.0, decay_s=30.0)
        assert monitor.record_failure("s1", now=0.0) == 0.0
        assert monitor.record_failure("s2", now=0.0) == 0.0
        assert monitor.record_failure("s1", now=5.0) == 1.0
        assert monitor.failures("s2") == 1
        monitor.note_recovered("s2", now=6.0)
        assert not monitor.in_probation("s2")
        assert monitor.in_probation("s1")
        assert monitor.total_probation_s == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HealthMonitor(base_s=5.0, cap_s=1.0)
        with pytest.raises(ValueError):
            HealthMonitor(multiplier=0.5)


class _Peer:
    def __init__(self):
        self.ct = make_ct(None, "lru")


class TestSyncChannel:
    def test_perfect_channel_is_instantaneous(self):
        channel = SyncChannel()
        peer = _Peer()
        channel.replicate(1, "s1", (peer,))
        assert peer.ct.peek(1) == "s1"
        assert channel.stats.delivered == 1
        assert channel.pending == 0
        assert not channel.degraded

    def test_lag_delays_delivery_by_lookups(self):
        channel = SyncChannel(lag_lookups=3)
        peer = _Peer()
        channel.replicate(1, "s1", (peer,))
        for _ in range(2):
            channel.on_lookup()
            assert peer.ct.peek(1) is None
        channel.on_lookup()
        assert peer.ct.peek(1) == "s1"

    def test_loss_retries_then_abandons(self):
        # loss_probability ~1: every attempt fails; the entry burns its
        # retries and is counted unreplicated -> degraded channel.
        channel = SyncChannel(
            loss_probability=0.999999, lag_lookups=1, max_retries=2,
            backoff_lookups=2, seed=3,
        )
        peer = _Peer()
        channel.replicate(1, "s1", (peer,))
        channel.drain()
        assert peer.ct.peek(1) is None
        assert channel.stats.attempted == 3  # first try + 2 retries
        assert channel.stats.retries == 2
        assert channel.stats.unreplicated == 1
        assert channel.degraded

    def test_seeded_loss_is_deterministic(self):
        def run():
            channel = SyncChannel(loss_probability=0.5, lag_lookups=1, seed=11)
            peer = _Peer()
            for key in range(200):
                channel.replicate(key, f"s{key % 5}", (peer,))
                channel.on_lookup()
            channel.drain()
            return (
                channel.stats.delivered, channel.stats.lost_attempts,
                channel.stats.unreplicated, sorted(peer.ct.items()),
            )

        assert run() == run()

    def test_drain_settles_everything(self):
        channel = SyncChannel(loss_probability=0.5, lag_lookups=10, seed=7)
        peer = _Peer()
        for key in range(50):
            channel.replicate(key, "s1", (peer,))
        channel.drain()
        assert channel.pending == 0
        stats = channel.stats
        assert stats.delivered + stats.unreplicated == stats.offered

    def test_forget_target_voids_pending(self):
        channel = SyncChannel(lag_lookups=100)
        gone, kept = _Peer(), _Peer()
        channel.replicate(1, "s1", (gone, kept))
        assert channel.forget_target(gone) == 1
        channel.drain()
        assert gone.ct.peek(1) is None
        assert kept.ct.peek(1) == "s1"
        assert channel.stats.dropped_targets == 1

    def test_retry_backoff_carries_bounded_seeded_jitter(self):
        # A lost attempt re-enqueues at base*2^(attempt-1) plus jitter
        # drawn from the channel RNG: due in [backoff, 2*backoff).
        def first_retry_due(seed):
            channel = SyncChannel(
                loss_probability=0.999999, lag_lookups=1, max_retries=3,
                backoff_lookups=4, seed=seed,
            )
            peer = _Peer()
            channel.replicate(1, "s1", (peer,))
            channel.on_lookup()  # first attempt at lookup 1: lost
            assert channel.pending == 1
            return channel._pending[0][0]

        for seed in range(8):
            due = first_retry_due(seed)
            assert 1 + 4 <= due < 1 + 8
        # The jitter decorrelates differently-seeded channels (a shared
        # schedule would re-synchronize retry storms after a heal)...
        assert len({first_retry_due(seed) for seed in range(8)}) > 1
        # ...while the same seed reproduces the same draw.
        assert first_retry_due(3) == first_retry_due(3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyncChannel(loss_probability=1.0)
        with pytest.raises(ValueError):
            SyncChannel(backoff_lookups=0)


class TestChaosRuns:
    def test_chaos_run_is_deterministic(self):
        cfg = CHAOS_BASE.with_(
            fault_schedule=chaos_mix(CHAOS_BASE.duration_s, 30.0, seed=5), seed=5
        )
        a, b = run_simulation(cfg), run_simulation(cfg)
        for field in (
            "flows_started", "pcc_violations", "fault_events", "crashes",
            "flaps", "correlated_failures", "unannounced_additions",
            "probation_readmissions", "violations_under_fault",
        ):
            assert getattr(a, field) == getattr(b, field), field
        assert a.fault_events > 0

    def test_scripted_crashes_are_counted(self):
        schedule = FaultSchedule.at(
            FaultEvent(2.0, CRASH), FaultEvent(4.0, CRASH),
            FaultEvent(6.0, GROUP, group_size=3),
        )
        result = run_simulation(CHAOS_BASE.with_(fault_schedule=schedule))
        # crashes counts servers lost: 2 singles + 3 group members.
        assert result.crashes == 5
        assert result.correlated_failures == 1
        assert result.fault_events == 3
        assert result.removals >= 5

    def test_unannounced_add_records_prediction(self):
        schedule = FaultSchedule.at(FaultEvent(8.0, UNANNOUNCED_ADD))
        result = run_simulation(CHAOS_BASE.with_(fault_schedule=schedule))
        assert result.unannounced_additions == 1
        assert result.additions >= 1
        # §2.3: each active flow re-steers with prob 1/(|W|+1).
        assert result.predicted_unannounced_breakage > 0

    def test_flaps_trigger_probation(self):
        schedule = FaultSchedule.at(
            FaultEvent(2.0, FLAP, flap_count=4, flap_interval=0.5)
        )
        result = run_simulation(
            CHAOS_BASE.with_(fault_schedule=schedule, probation_base_s=0.5)
        )
        assert result.flaps >= 1
        # Repeat failures inside the decay window must pass through
        # probation before readmission.
        assert result.probation_readmissions >= 1

    def test_empty_schedule_matches_no_injector(self):
        plain = run_simulation(CHAOS_BASE)
        empty = run_simulation(CHAOS_BASE.with_(fault_schedule=FaultSchedule()))
        assert plain.flows_started == empty.flows_started
        assert plain.pcc_violations == empty.pcc_violations
        assert plain.packets_processed == empty.packets_processed
        assert empty.fault_events == 0
