"""Replay-harness tests: metrics, PCC accounting, event injection."""

import pytest

from repro.ch import AnchorHash
from repro.core import JETLoadBalancer, PowerOfTwoJET, make_full_ct, make_jet
from repro.traces import replay, zipf_trace

W = [f"w{i}" for i in range(20)]
H = ["h0", "h1"]
TRACE = zipf_trace(0.9, n_packets=40_000, population=15_000, seed=9)


class TestStaticReplay:
    def test_no_violations_on_static_backend(self):
        outcome = replay(TRACE, make_jet("hrw", W, H))
        assert outcome.pcc_violations == 0
        assert outcome.inevitably_broken == 0

    def test_counts_match_trace(self):
        outcome = replay(TRACE, make_jet("hrw", W, H))
        assert outcome.n_flows == TRACE.n_flows
        assert outcome.n_packets == TRACE.n_packets

    def test_jet_tracks_about_horizon_fraction(self):
        outcome = replay(TRACE, make_jet("hrw", W, H))
        assert outcome.tracked_connections / outcome.n_flows == pytest.approx(
            len(H) / (len(W) + len(H)), rel=0.35
        )

    def test_full_ct_tracks_everything(self):
        outcome = replay(TRACE, make_full_ct("hrw", W, H))
        assert outcome.tracked_connections == TRACE.n_flows

    def test_server_loads_sum_to_flows(self):
        outcome = replay(TRACE, make_jet("hrw", W, H))
        assert sum(outcome.server_loads.values()) == TRACE.n_flows

    def test_rate_and_wall_positive(self):
        outcome = replay(TRACE, make_jet("table", W, H, rows=4099))
        assert outcome.rate_pps > 0
        assert outcome.wall_seconds > 0

    def test_oversubscription_sane(self):
        outcome = replay(TRACE, make_jet("hrw", W, H))
        assert 1.0 <= outcome.max_oversubscription < 3.0

    def test_row_rendering(self):
        outcome = replay(TRACE, make_jet("hrw", W, H))
        assert "oversub" in outcome.row()


class TestEventInjection:
    def test_horizon_addition_mid_trace_keeps_pcc(self):
        lb = make_jet("anchor", W, H, capacity=64)
        events = [(TRACE.n_packets // 2, lambda b: b.add_working_server("h0"))]
        outcome = replay(TRACE, lb, events=events)
        assert outcome.pcc_violations == 0

    def test_removal_mid_trace_counts_inevitable_only(self):
        lb = make_jet("anchor", W, H, capacity=64)
        events = [(TRACE.n_packets // 2, lambda b: b.remove_working_server(W[0]))]
        outcome = replay(TRACE, lb, events=events)
        assert outcome.pcc_violations == 0
        assert outcome.inevitably_broken > 0

    def test_force_add_can_violate_pcc(self):
        # HRW: an unanticipated server captures ~1/(|W|+1) of the keys and
        # none of them were tracked -- JET gives no guarantee here.
        # (AnchorHash is a curious exception: its force-add reuses the
        # top-of-stack bucket, whose keys JET was already tracking; the
        # exposure there shifts to the *displaced* horizon server instead.)
        lb = make_jet("hrw", W, H)
        events = [
            (TRACE.n_packets // 2, lambda b: b.force_add_working_server("intruder"))
        ]
        outcome = replay(TRACE, lb, events=events)
        assert outcome.pcc_violations > 0

    def test_events_applied_in_order(self):
        applied = []
        lb = make_jet("hrw", W, H)
        events = [
            (100, lambda b: applied.append("first")),
            (50, lambda b: applied.append("zeroth")),
        ]
        replay(TRACE, lb, events=events)
        assert applied == ["zeroth", "first"]


class TestP2CReplay:
    def test_p2c_replay_is_pcc_clean_and_balanced(self):
        plain = replay(TRACE, JETLoadBalancer(AnchorHash(W, H, capacity=64)))
        p2c = replay(TRACE, PowerOfTwoJET(AnchorHash(W, H, capacity=64)))
        assert p2c.pcc_violations == 0
        assert p2c.max_oversubscription <= plain.max_oversubscription
        # Tracks more than plain JET (the ~50% cost of load awareness).
        assert p2c.tracked_connections > plain.tracked_connections
