"""AnchorHash-specific tests: bucket-layer invariants, the LIFO stack /
horizon-region discipline, and the Algorithm 5 safety test."""

import random

import pytest

from repro.ch.anchor import AnchorBuckets, AnchorHash
from repro.ch.base import BackendError
from repro.ch.properties import sample_keys


class TestAnchorBuckets:
    def test_init_working_count(self):
        b = AnchorBuckets(16, 10)
        assert b.N == 10
        assert sum(b.is_working(i) for i in range(16)) == 10

    def test_initial_removed_are_high_buckets(self):
        b = AnchorBuckets(8, 5)
        assert set(b.R) == {5, 6, 7}

    def test_get_returns_working_bucket(self):
        b = AnchorBuckets(32, 20)
        for k in sample_keys(500, seed=1):
            assert b.is_working(b.get(k))

    def test_stack_holds_consecutive_a_values(self):
        b = AnchorBuckets(32, 32)
        rng = random.Random(3)
        for _ in range(200):
            if rng.random() < 0.5 and b.N > 1:
                working = [i for i in range(32) if b.is_working(i)]
                b.remove(rng.choice(working))
            elif b.R:
                b.add()
            # Invariant: from the top down, A values are N, N+1, N+2, ...
            for depth, bucket in enumerate(reversed(b.R)):
                assert b.A[bucket] == b.N + depth

    def test_add_restores_most_recent_removal(self):
        b = AnchorBuckets(8, 8)
        b.remove(2)
        b.remove(5)
        assert b.add() == 5
        assert b.add() == 2

    def test_remove_nonworking_raises(self):
        b = AnchorBuckets(8, 4)
        with pytest.raises(BackendError):
            b.remove(7)  # already removed at init

    def test_add_beyond_capacity_raises(self):
        b = AnchorBuckets(4, 4)
        with pytest.raises(BackendError):
            b.add()

    def test_lookup_with_no_working_raises(self):
        b = AnchorBuckets(4, 4)
        for i in range(4):
            b.remove(i)
        with pytest.raises(BackendError):
            b.get(123)

    def test_minimal_disruption_at_bucket_level(self):
        b = AnchorBuckets(64, 40)
        keys = sample_keys(2000, seed=9)
        before = {k: b.get(k) for k in keys}
        b.remove(7)
        for k in keys:
            after = b.get(k)
            if before[k] != 7:
                assert after == before[k]
            else:
                assert after != 7
        b.add()  # restores bucket 7
        assert all(b.get(k) == before[k] for k in keys)


class TestAnchorHashSpecifics:
    def make(self, n=12, h=3, capacity=None):
        return AnchorHash(
            [f"w{i}" for i in range(n)],
            [f"h{i}" for i in range(h)],
            capacity=capacity or 4 * (n + h),
        )

    def test_requires_initial_working_set(self):
        with pytest.raises(BackendError):
            AnchorHash([], ["h0"])

    def test_capacity_too_small_raises(self):
        with pytest.raises(BackendError):
            AnchorHash(["a", "b"], ["c"], capacity=2)

    def test_capacity_exhaustion_on_horizon_growth(self):
        ch = AnchorHash(["a"], [], capacity=2)
        ch.add_horizon("b")
        with pytest.raises(BackendError):
            ch.add_horizon("c")

    def test_horizon_region_is_stack_top(self):
        ch = self.make()
        # The |H| most recently usable stack buckets must belong to horizon
        # servers (the invariant the O(1) safety check relies on).
        stack = ch._buckets.R
        region = stack[-len(ch.horizon):]
        owners = {ch._name_of.get(b) for b in region}
        assert owners == set(ch.horizon)

    def test_region_invariant_survives_churn(self):
        ch = self.make()
        rng = random.Random(5)
        for step in range(120):
            horizon = sorted(ch.horizon)
            working = sorted(ch.working)
            op = rng.random()
            if op < 0.3 and horizon:
                ch.add_working(rng.choice(horizon))
            elif op < 0.55 and len(working) > 2:
                ch.remove_working(rng.choice(working))
            elif op < 0.7:
                try:
                    ch.add_horizon(f"n{step}")
                except BackendError:
                    pass  # capacity-bounded
            elif op < 0.85 and horizon:
                ch.remove_horizon(rng.choice(horizon))
            else:
                try:
                    ch.force_add_working(f"f{step}")
                except BackendError:
                    pass
            if ch.horizon:
                stack = ch._buckets.R
                region = stack[-len(ch.horizon):]
                assert {ch._name_of.get(b) for b in region} == set(ch.horizon)

    def test_expected_lookup_path_is_short(self):
        # [23] proves O(1) expected jumps when the anchor is mostly full;
        # with |W| = capacity/2 the path should average well under 3.
        ch = self.make(n=40, h=4, capacity=88)
        total = 0
        keys = sample_keys(2000, seed=13)
        for k in keys:
            bucket, penultimate = ch._buckets.get_path(k)
            # count jumps by walking again
            jumps = 0
            b = k % ch._buckets.capacity
            while ch._buckets.A[b] > 0:
                jumps += 1
                h = ch._buckets._jump(b, k)
                while ch._buckets.A[h] >= ch._buckets.A[b]:
                    h = ch._buckets.K[h]
                b = h
            total += jumps
        assert total / len(keys) < 3.0

    def test_force_add_displaces_horizon_owner_consistently(self):
        ch = self.make(n=6, h=2, capacity=32)
        horizon_before = set(ch.horizon)
        ch.force_add_working("intruder")
        assert "intruder" in ch.working
        assert set(ch.horizon) == horizon_before  # displaced owner re-seated
        keys = sample_keys(300, seed=21)
        for k in keys:
            assert ch.lookup(k) in ch.working
            destination, unsafe = ch.lookup_with_safety(k)
            assert unsafe == (destination != ch.lookup_union(k))

    def test_algorithm5_unsafe_means_union_goes_to_horizon(self):
        ch = self.make()
        for k in sample_keys(2000, seed=33):
            destination, unsafe = ch.lookup_with_safety(k)
            union = ch.lookup_union(k)
            if unsafe:
                assert union in ch.horizon
            else:
                assert union == destination
