"""Connection-tracking table tests: all four policies plus stats."""

import pytest

from repro.ct import FIFOCT, LRUCT, RandomEvictCT, UnboundedCT, make_ct

ALL_BOUNDED = [
    lambda cap: LRUCT(cap),
    lambda cap: FIFOCT(cap),
    lambda cap: RandomEvictCT(cap, seed=1),
]
ALL_TABLES = [lambda cap: UnboundedCT()] + ALL_BOUNDED


@pytest.fixture(params=ALL_TABLES, ids=["unbounded", "lru", "fifo", "random"])
def any_ct(request):
    return request.param(8)


@pytest.fixture(params=ALL_BOUNDED, ids=["lru", "fifo", "random"])
def bounded_ct(request):
    return request.param(8)


class TestCommonBehaviour:
    def test_get_missing_returns_none(self, any_ct):
        assert any_ct.get(1) is None

    def test_put_then_get(self, any_ct):
        any_ct.put(1, "a")
        assert any_ct.get(1) == "a"

    def test_overwrite(self, any_ct):
        any_ct.put(1, "a")
        any_ct.put(1, "b")
        assert any_ct.get(1) == "b"
        assert len(any_ct) == 1

    def test_delete(self, any_ct):
        any_ct.put(1, "a")
        assert any_ct.delete(1) is True
        assert any_ct.delete(1) is False
        assert any_ct.get(1) is None

    def test_len_and_iter(self, any_ct):
        for i in range(5):
            any_ct.put(i, f"s{i}")
        assert len(any_ct) == 5
        assert set(any_ct) == set(range(5))

    def test_peek_does_not_touch_stats(self, any_ct):
        any_ct.put(1, "a")
        lookups = any_ct.stats.lookups
        assert any_ct.peek(1) == "a"
        assert any_ct.peek(2) is None
        assert any_ct.stats.lookups == lookups

    def test_invalidate_destination(self, any_ct):
        for i in range(6):
            any_ct.put(i, "dead" if i % 2 else "alive")
        dropped = any_ct.invalidate_destination("dead")
        assert dropped == 3
        assert all(any_ct.peek(i) != "dead" for i in range(6))
        assert any_ct.stats.invalidations == 3

    def test_stats_counters(self, any_ct):
        any_ct.put(1, "a")
        any_ct.get(1)
        any_ct.get(2)
        stats = any_ct.stats
        assert stats.lookups == 2
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.inserts == 1
        assert stats.peak_size == 1


class TestBoundedBehaviour:
    def test_capacity_enforced(self, bounded_ct):
        for i in range(50):
            bounded_ct.put(i, "s")
        assert len(bounded_ct) == 8
        assert bounded_ct.stats.evictions == 42

    def test_capacity_validation(self):
        for factory in ALL_BOUNDED:
            with pytest.raises(ValueError):
                factory(0)

    def test_overwrite_does_not_evict(self, bounded_ct):
        for i in range(8):
            bounded_ct.put(i, "s")
        bounded_ct.put(3, "t")
        assert len(bounded_ct) == 8
        assert bounded_ct.stats.evictions == 0


class TestLRUSemantics:
    def test_evicts_least_recently_used(self):
        ct = LRUCT(3)
        ct.put(1, "a")
        ct.put(2, "b")
        ct.put(3, "c")
        ct.get(1)          # refresh 1
        ct.put(4, "d")     # evicts 2
        assert ct.peek(2) is None
        assert ct.peek(1) == "a"

    def test_put_refreshes_recency(self):
        ct = LRUCT(2)
        ct.put(1, "a")
        ct.put(2, "b")
        ct.put(1, "a2")    # 1 becomes most recent
        ct.put(3, "c")     # evicts 2
        assert ct.peek(2) is None
        assert ct.peek(1) == "a2"


class TestFIFOSemantics:
    def test_evicts_oldest_insert_even_if_hot(self):
        ct = FIFOCT(3)
        ct.put(1, "a")
        ct.put(2, "b")
        ct.put(3, "c")
        ct.get(1)          # hits do NOT refresh FIFO order
        ct.put(4, "d")     # evicts 1 regardless
        assert ct.peek(1) is None


class TestRandomEvictSemantics:
    def test_seeded_determinism(self):
        def fill(seed):
            ct = RandomEvictCT(4, seed=seed)
            for i in range(20):
                ct.put(i, "s")
            return set(ct)

        assert fill(7) == fill(7)
        assert fill(7) != fill(8)  # overwhelmingly likely

    def test_survivors_are_valid(self):
        ct = RandomEvictCT(4, seed=3)
        for i in range(100):
            ct.put(i, f"d{i}")
        assert len(ct) == 4
        for key in ct:
            assert ct.peek(key) == f"d{key}"

    def test_delete_keeps_structures_consistent(self):
        ct = RandomEvictCT(8, seed=5)
        for i in range(8):
            ct.put(i, "x")
        assert ct.delete(3)
        ct.put(99, "y")
        assert set(ct) == {0, 1, 2, 4, 5, 6, 7, 99}


class TestFactory:
    def test_unbounded_when_no_capacity(self):
        assert isinstance(make_ct(None), UnboundedCT)

    def test_policy_selection(self):
        assert isinstance(make_ct(10, "lru"), LRUCT)
        assert isinstance(make_ct(10, "fifo"), FIFOCT)
        assert isinstance(make_ct(10, "random"), RandomEvictCT)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_ct(10, "mru")
