"""Section 6 benchmark: batch backend changes and load-aware JET."""

import pytest

from benchmarks.reporting import record
from repro.experiments.extensions import load_aware_comparison, simultaneous_changes
from repro.experiments.report import format_table


def test_section61_simultaneous_changes(once):
    outcome = once(simultaneous_changes)
    record(
        "Section 6.1 -- simultaneous backend changes",
        f"violations={outcome['pcc_violations']} "
        f"inevitable={outcome['inevitably_broken']} tracked={outcome['tracked']}",
    )
    # JET must survive batch removals + batch horizon additions unscathed.
    assert outcome["pcc_violations"] == 0


def test_section63_load_aware_jet(once):
    rows = once(load_aware_comparison)
    record(
        "Section 6.3 -- power-of-2-choices JET",
        format_table(
            ["mode", "tracked fraction", "max oversubscription"],
            [
                [r.mode, f"{r.tracked_fraction:.3f}", f"{r.max_oversubscription:.3f}"]
                for r in rows
            ],
        ),
    )
    by = {r.mode: r for r in rows}
    # The paper's expectation: P2C saves >= ~50% of full CT's table...
    assert by["jet-p2c"].tracked_fraction <= 0.65
    # ... still costs more than plain JET ...
    assert by["jet-p2c"].tracked_fraction > by["jet"].tracked_fraction
    # ... and buys strictly better balance.
    assert by["jet-p2c"].max_oversubscription <= by["jet"].max_oversubscription
    # Bounded loads (Mirrokni et al., the other §6.3 direction): the
    # epsilon=0.1 cap is enforced at a fraction of P2C's tracking bill.
    assert by["jet-chbl"].max_oversubscription <= 1.1 + 0.02
    assert by["jet-chbl"].tracked_fraction < by["jet-p2c"].tracked_fraction
