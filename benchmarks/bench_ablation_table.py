"""Ablation: table-based HRW row budget (copies per server).

Section 5: table CH needs "a large memory footprint" (more rows) for
good balance -- the design tension JET exploits, since a smaller CT
leaves more cache for the CH table.  Measures balance and the unsafe-row
fraction across row budgets.
"""

import pytest

from benchmarks.reporting import record
from repro.analysis import max_oversubscription
from repro.ch import TableHRWHash, rows_for
from repro.ch.properties import balance_counts, sample_keys
from repro.experiments.report import format_table

N, H_SIZE = 50, 5
WORKING = [f"s{i}" for i in range(N)]
HORIZON = [f"t{i}" for i in range(H_SIZE)]
KEYS = sample_keys(40_000, seed=77)
COPIES = (1, 10, 100, 300)


def run_row_sweep():
    rows = []
    oversub_by_copies = {}
    tr_by_copies = {}
    for copies in COPIES:
        ch = TableHRWHash(WORKING, HORIZON, rows=rows_for(N, copies=copies))
        oversub = max_oversubscription(balance_counts(ch, KEYS))
        tr = ch.tracked_row_fraction()
        oversub_by_copies[copies] = oversub
        tr_by_copies[copies] = tr
        rows.append([copies, ch.rows, f"{oversub:.3f}", f"{tr:.3f}"])
    return rows, oversub_by_copies, tr_by_copies


def test_table_rows_ablation(once):
    rows, oversub, tr = once(run_row_sweep)
    record(
        "Ablation -- table-HRW copies per server",
        format_table(["copies", "rows", "max oversub", "unsafe-row fraction"], rows),
    )
    # More rows => better balance (monotone within noise).
    assert oversub[300] < oversub[10]
    assert oversub[300] < oversub[1]
    # The unsafe-row fraction stays ~|H|/(|W|+|H|) regardless of sizing --
    # the one-Boolean-per-row overhead buys the same tracking economy.
    for copies in COPIES[1:]:
        assert tr[copies] == pytest.approx(H_SIZE / (N + H_SIZE), rel=0.35)
