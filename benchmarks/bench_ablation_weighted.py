"""Ablation: weighted consistent hashing (heterogeneous backends).

Extension beyond the paper's uniform-server evaluation: JET over
weight-proportional rendezvous hashing.  Verifies that (a) dispatch
shares follow the weights, and (b) the tracking probability generalizes
from Theorem 4.2's |H|/(|W|+|H|) to weight(H)/weight(W ∪ H).
"""

import pytest

from benchmarks.reporting import record
from repro.ch.properties import sample_keys
from repro.ch.weighted import WeightedHRWHash
from repro.experiments.report import format_table

KEYS = sample_keys(40_000, seed=202)


def run_weighted_sweep():
    rows = []
    results = {}
    for horizon_weight in (0.5, 1.0, 2.0, 4.0):
        working = {f"s{i}": 1.0 + (i % 3) for i in range(12)}  # weights 1..3
        ch = WeightedHRWHash(working, {"h0": horizon_weight})
        tracked = sum(ch.lookup_with_safety(k)[1] for k in KEYS) / len(KEYS)
        predicted = horizon_weight / (sum(working.values()) + horizon_weight)
        heaviest = max(working, key=working.get)
        share = sum(ch.lookup(k) == heaviest for k in KEYS) / len(KEYS)
        share_predicted = working[heaviest] / sum(working.values())
        results[horizon_weight] = (tracked, predicted, share, share_predicted)
        rows.append(
            [horizon_weight, f"{tracked:.4f}", f"{predicted:.4f}",
             f"{share:.4f}", f"{share_predicted:.4f}"]
        )
    return rows, results


def test_weighted_jet_tracking(once):
    rows, results = once(run_weighted_sweep)
    record(
        "Ablation -- weighted HRW under JET",
        format_table(
            ["horizon weight", "tracked", "predicted w(H)/w(W∪H)",
             "heaviest share", "predicted share"],
            rows,
        ),
    )
    for tracked, predicted, share, share_predicted in results.values():
        assert tracked == pytest.approx(predicted, rel=0.2)
        assert share == pytest.approx(share_predicted, rel=0.1)
