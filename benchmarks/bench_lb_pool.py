"""Section 6.2 benchmark: LB pool changes.

Asserts the paper's three claims: pool changes break PCC without state
synchronization (for JET and full CT alike), synchronization eliminates
the breakage, and JET's synchronized state is ~|H|/(|W|+|H|) of full CT's.
"""

from benchmarks.reporting import record
from repro.experiments.lb_pool import run_pool_experiment
from repro.experiments.report import format_table


def test_section62_lb_pool_changes(once):
    rows = once(run_pool_experiment)
    record(
        "Section 6.2 -- LB pool changes",
        format_table(
            ["mode", "sync", "PCC violations", "synced entries", "tracked total"],
            [r.cells() for r in rows],
        ),
    )
    by = {(r.mode, r.sync): r for r in rows}
    # Unsynced pool changes break connections -- JET and full CT alike.
    assert by[("jet", False)].pcc_violations > 0
    assert by[("jet", False)].pcc_violations == by[("full", False)].pcc_violations
    # Synchronization restores PCC.
    assert by[("jet", True)].pcc_violations == 0
    assert by[("full", True)].pcc_violations == 0
    # JET's sync bill is an order of magnitude smaller.
    ratio = by[("jet", True)].synced_entries / by[("full", True)].synced_entries
    assert ratio < 0.2
