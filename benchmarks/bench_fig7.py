"""Figure 7 benchmark: JET vs full CT across Zipf skews -- oversubscription,
tracked connections, and rate for table-based HRW, AnchorHash, and Maglev.

Shape assertions follow Section 5.3: identical balance for JET/full CT,
~10% tracking for JET at every skew, tracked counts falling as skew rises.
Rate orderings are *not* asserted (Python measures interpreter costs, not
the paper's cache effects -- see EXPERIMENTS.md).
"""

import pytest

from benchmarks.reporting import record
from repro.experiments.fig7 import run_fig7
from repro.experiments.report import format_table
from repro.experiments.scales import scale_name


def test_fig7_zipf_sweep(once):
    results = once(run_fig7)
    headers = ["skew", "n", "hash", "mode", "max oversub", "tracked", "rate [Mpps]"]
    rows = [
        [skew] + cell.row()
        for (skew, n) in sorted(results)
        for cell in results[(skew, n)]
    ]
    record(
        f"Figure 7 -- Zipf sweep [scale={scale_name()}]",
        format_table(headers, rows),
    )

    by = {
        (skew, n, c.family, c.mode): c
        for (skew, n), cells in results.items()
        for c in cells
    }
    skews = sorted({skew for skew, _ in results})
    sizes = sorted({n for _, n in results})
    for skew in skews:
        for n in sizes:
            for family in ("table", "anchor"):
                full = by[(skew, n, family, "full")]
                jet = by[(skew, n, family, "jet")]
                # Balance identical (Prop 4.1), tracking ~10% of full CT.
                assert jet.oversubscription.mean == pytest.approx(
                    full.oversubscription.mean, rel=1e-9
                )
                ratio = jet.tracked.mean / full.tracked.mean
                assert 0.04 < ratio < 0.2
    # Tracked connections drop with skew (fewer distinct flows).
    for n in sizes:
        tracked = [by[(skew, n, "anchor", "jet")].tracked.mean for skew in skews]
        assert tracked[-1] < tracked[0]
