"""Ablation: Ring virtual-node count (the Section 5 memory/balance knob).

The paper notes "a typical choice for the number of virtual copies is
100-300" and that more copies improve balance at the cost of memory and
search complexity.  This ablation measures max oversubscription and
lookup throughput across vnode counts.
"""

import time

from benchmarks.reporting import record
from repro.analysis import max_oversubscription
from repro.ch import RingHash
from repro.ch.properties import balance_counts, sample_keys
from repro.experiments.report import format_table

N = 50
WORKING = [f"s{i}" for i in range(N)]
KEYS = sample_keys(40_000, seed=55)
VNODE_COUNTS = (1, 10, 50, 100, 300)


def run_vnode_sweep():
    rows = []
    oversub_by_vnodes = {}
    for vnodes in VNODE_COUNTS:
        ch = RingHash(WORKING, virtual_nodes=vnodes)
        counts = balance_counts(ch, KEYS)
        oversub = max_oversubscription(counts)
        started = time.perf_counter()
        for k in KEYS:
            ch.lookup(k)
        rate = len(KEYS) / (time.perf_counter() - started)
        oversub_by_vnodes[vnodes] = oversub
        rows.append([vnodes, f"{oversub:.3f}", f"{rate:,.0f}"])
    return rows, oversub_by_vnodes


def test_ring_vnode_ablation(once):
    rows, oversub = once(run_vnode_sweep)
    record(
        "Ablation -- Ring virtual nodes (balance vs lookup rate)",
        format_table(["vnodes", "max oversub", "lookups/s"], rows),
    )
    # The paper's rationale: more copies => materially better balance.
    assert oversub[300] < oversub[10] < oversub[1]
    # The paper's 100-300 sweet spot is close to random-quality balance.
    assert oversub[300] < 1.5
