"""Benchmark-output plumbing.

pytest captures stdout of passing tests, so each benchmark records its
result tables here; ``benchmarks/conftest.py`` flushes them into the
terminal summary, making ``pytest benchmarks/ --benchmark-only`` output
self-contained (the tables land in bench_output.txt alongside the timing
table).
"""

from typing import List, Tuple

_SUMMARIES: List[Tuple[str, str]] = []


def record(title: str, body: str) -> None:
    """Queue an experiment's formatted output for the terminal summary."""
    _SUMMARIES.append((title, body))


def drain() -> List[Tuple[str, str]]:
    items = list(_SUMMARIES)
    _SUMMARIES.clear()
    return items
