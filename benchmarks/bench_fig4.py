"""Figure 4 benchmark: PCC violations vs CT size for different horizons
(fixed update rate 10/min).

Checks the published conclusions: (a) any sufficiently large horizon
matches or beats full CT, and smaller horizons need *less* CT to reach
zero violations (Fig. 4b); (b) fine-tuning is unnecessary -- every
adequately sized horizon ends violation-free at large tables.
"""

from benchmarks.reporting import record
from repro.experiments.fig4 import run_fig4
from repro.experiments.report import format_table
from repro.experiments.scales import scale_name


def test_fig4_pcc_violations_vs_horizon(once):
    result = once(run_fig4)
    headers = ["series"] + [f"CT={s}" for s in result.ct_sizes]
    record(
        f"Figure 4 -- PCC violations per horizon size [scale={scale_name()}]",
        format_table(headers, result.to_rows()),
    )

    adequate = [h for h in result.horizons if h >= max(result.horizons) // 2]
    for horizon in adequate:
        series = result.jet[horizon]
        # Adequate horizons: zero violations once the table is large.
        assert series[-1] == 0
        # ... and never worse than full CT at the same table size.
        assert all(j <= max(f, 1) for j, f in zip(series, result.full_ct))
