"""Table 1 benchmark: the UNI1-like trace evaluation.

Regenerates the paper's table rows (max oversubscription / tracked
connections / rate for table-HRW, AnchorHash, Maglev x full CT / JET at
n in {50, 500}) and asserts the published relations:

- JET tracks ~10% of full CT, insensitive to hash family and to n;
- JET and full CT balance identically per family;
- AnchorHash/Maglev balance better than table-based HRW;
- balance is better at n=50 than at n=500.
"""

import pytest

from benchmarks.reporting import record
from repro.experiments.report import format_table
from repro.experiments.scales import scale_name
from repro.experiments.table12 import run_table

HEADERS = ["n", "hash", "mode", "max oversub", "tracked", "rate [Mpps]"]


def check_paper_relations(results, trace):
    for n, cells in results.items():
        by = {(c.family, c.mode): c for c in cells}
        for family in ("table", "anchor"):
            full, jet = by[(family, "full")], by[(family, "jet")]
            assert full.tracked.mean == trace.n_flows
            assert 0.05 < jet.tracked.mean / full.tracked.mean < 0.2
            assert jet.oversubscription.mean == pytest.approx(
                full.oversubscription.mean, rel=1e-9
            )
        # Random-quality hashes balance no worse than the row-granular
        # table.  Only meaningful when there are enough flows per server
        # for the table's granularity (not sampling noise) to dominate.
        if trace.n_flows / n >= 100:
            assert (
                by[("anchor", "full")].oversubscription.mean
                <= by[("table", "full")].oversubscription.mean * 1.1
            )
            assert (
                by[("maglev", "full")].oversubscription.mean
                <= by[("table", "full")].oversubscription.mean * 1.1
            )
    if len(results) > 1:
        small, large = min(results), max(results)
        assert (
            results[small][2].oversubscription.mean
            < results[large][2].oversubscription.mean
        )


def test_table1_uni1_like(once):
    results, trace = once(run_table, "uni1")
    rows = [cell.row() for n in sorted(results) for cell in results[n]]
    record(
        f"Table 1 -- UNI1-like ({trace.describe()}) [scale={scale_name()}]",
        format_table(HEADERS, rows),
    )
    check_paper_relations(results, trace)
