"""Table 2 benchmark: the NY18-like trace evaluation.

Same metrics and relations as Table 1 over the less-skewed, larger-flow-
count CAIDA-like trace; additionally checks the cross-table relation the
paper highlights -- NY18 tracks more absolute connections than UNI1
because it has more (and smaller) flows.
"""

from benchmarks.bench_table1 import HEADERS, check_paper_relations
from benchmarks.reporting import record
from repro.experiments.report import format_table
from repro.experiments.scales import scale_name
from repro.experiments.table12 import run_table


def test_table2_ny18_like(once):
    results, trace = once(run_table, "ny18")
    rows = [cell.row() for n in sorted(results) for cell in results[n]]
    record(
        f"Table 2 -- NY18-like ({trace.describe()}) [scale={scale_name()}]",
        format_table(HEADERS, rows),
    )
    check_paper_relations(results, trace)
    # Cross-table relation: NY18 has ~5x the flows of UNI1, so JET's
    # absolute tracked count is larger (the 1:10 ratio is per-trace).
    any_n = min(results)
    jet_anchor = next(
        c for c in results[any_n] if c.family == "anchor" and c.mode == "jet"
    )
    assert jet_anchor.tracked.mean > 0.05 * trace.n_flows
