"""Ablation: CT eviction policy (LRU vs FIFO vs random).

The paper fixes LRU ("the effective least-recently-used policy"); this
ablation quantifies that design choice by running the Fig. 3 scenario
with each policy at an undersized table and comparing PCC violations.
LRU should be the safest policy for full CT (it keeps live connections);
for JET the policy matters much less because the table holds only the
unsafe minority.
"""

from benchmarks.reporting import record
from repro.ct import make_ct
from repro.experiments.report import format_table
from repro.experiments.scales import base_config, scale_name
from repro.sim.scenario import run_simulation

POLICIES = ("lru", "fifo", "random")


def run_policy_sweep():
    cfg = base_config().with_(update_rate_per_min=20.0, seed=4)
    ct_size = max(64, int(cfg.connection_rate * 0.25))
    rows = []
    outcome = {}
    for policy in POLICIES:
        common = cfg.with_(ct_capacity=ct_size, ct_policy=policy)
        full = run_simulation(common.with_(mode="full"))
        jet = run_simulation(common.with_(mode="jet"))
        outcome[policy] = (full.pcc_violations, jet.pcc_violations)
        rows.append(
            [policy, ct_size, full.pcc_violations, jet.pcc_violations,
             full.ct_evictions, jet.ct_evictions]
        )
    return rows, outcome


def run_ttl_sweep():
    """TTL (idle-timeout) vs unbounded: the 'ideal eviction' of Section 5
    approximated -- peak CT size should track *active* flows, not total."""
    cfg = base_config().with_(update_rate_per_min=10.0, seed=6)
    rows = []
    outcome = {}
    for mode in ("full", "jet"):
        unbounded = run_simulation(cfg.with_(mode=mode, ct_capacity=None))
        ttl = run_simulation(
            cfg.with_(mode=mode, ct_capacity=None, ct_policy="ttl", ct_ttl=30.0)
        )
        outcome[mode] = (unbounded, ttl)
        rows.append(
            [mode, unbounded.peak_tracked, ttl.peak_tracked,
             unbounded.pcc_violations, ttl.pcc_violations]
        )
    return rows, outcome


def test_ct_ttl_ablation(once):
    rows, outcome = once(run_ttl_sweep)
    record(
        f"Ablation -- TTL (idle timeout 30s) vs unbounded CT [scale={scale_name()}]",
        format_table(
            ["mode", "peak (unbounded)", "peak (ttl)",
             "violations (unbounded)", "violations (ttl)"],
            rows,
        ),
    )
    for mode, (unbounded, ttl) in outcome.items():
        # Idle-timeout reclamation keeps the table near the active set.
        assert ttl.peak_tracked < unbounded.peak_tracked, mode
        # A TCP-timeout-scale TTL must not break live connections.
        assert ttl.pcc_violations <= unbounded.pcc_violations + 2, mode


def test_ct_items_fast_path():
    """Every CT's items() must agree with the peek() loop it replaces
    (invalidate_destination correctness), and the dict-backed tables must
    serve it without per-key peek() calls."""
    tables = {
        "unbounded": make_ct(None, "lru"),
        "lru": make_ct(64, "lru"),
        "fifo": make_ct(64, "fifo"),
        "random": make_ct(64, "random", seed=1),
        "ttl": make_ct(None, "ttl", ttl=1e9),
    }
    for name, ct in tables.items():
        for key in range(40):
            ct.put(key, f"s{key % 7}")
        via_items = sorted(ct.items())
        via_peek = sorted((key, ct.peek(key)) for key in ct)
        assert via_items == via_peek, name
        calls = []
        original_peek = ct.peek
        ct.peek = lambda key: (calls.append(key), original_peek(key))[1]
        list(ct.items())
        ct.peek = original_peek
        assert not calls, f"{name}: items() fell back to peek()"
        ct.invalidate_destination("s3")
        assert all(dest != "s3" for _, dest in ct.items()), name


def test_ct_eviction_policy_ablation(once):
    rows, outcome = once(run_policy_sweep)
    record(
        f"Ablation -- CT eviction policy at 25% table [scale={scale_name()}]",
        format_table(
            ["policy", "CT size", "full CT violations", "JET violations",
             "full evictions", "JET evictions"],
            rows,
        ),
    )
    # JET is at least as robust as full CT under every policy.
    for policy, (full_v, jet_v) in outcome.items():
        assert jet_v <= max(full_v, 1), policy
    # LRU for full CT is no worse than the non-recency policies.
    assert outcome["lru"][0] <= max(outcome["fifo"][0], outcome["random"][0], 1)
