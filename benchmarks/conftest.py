"""Benchmark-suite configuration.

Scale is selected by ``REPRO_SCALE`` (smoke / default / paper); see
``repro.experiments.scales``.  Experiment tables recorded by the benches
are printed in the terminal summary so the benchmark log carries the
reproduced figures/tables, not just timings.
"""

import pytest

from benchmarks import reporting


def pytest_addoption(parser):
    parser.addoption(
        "--batch-sizes",
        action="store",
        default=None,
        help="comma-separated batch sizes for the dataplane speedup sweep "
        "(one BENCH_dataplane.json row per family per size)",
    )


@pytest.fixture
def batch_sizes(request):
    """Batch sizes for the dataplane sweep (None = experiment default)."""
    spec = request.config.getoption("--batch-sizes")
    if spec is None:
        return None
    return sorted({int(s) for s in spec.split(",") if s.strip()})


def pytest_terminal_summary(terminalreporter):
    items = reporting.drain()
    if not items:
        return
    terminalreporter.write_sep("=", "reproduced paper artifacts")
    for title, body in items:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in body.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer.

    The experiment harnesses are full sweeps (minutes, deterministic), so
    repeated benchmark rounds would only multiply runtime.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
