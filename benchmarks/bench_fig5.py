"""Figure 5 benchmark: maximum oversubscription vs connection rate per
backend update rate.

Checks the published shape -- balance improves (oversubscription falls)
with the connection rate; JET and full CT balance identically
(Proposition 4.1, single line per update rate).
"""

from benchmarks.reporting import record
from repro.experiments.fig5 import run_fig5
from repro.experiments.report import format_table
from repro.experiments.scales import scale_name


def test_fig5_oversubscription(once):
    result = once(run_fig5)
    headers = ["series"] + [f"rate={r:g}" for r in result.connection_rates]
    record(
        f"Figure 5 -- max oversubscription vs connection rate [scale={scale_name()}]",
        format_table(headers, result.to_rows())
        + f"\nJET == full CT balance (Prop 4.1): {result.jet_equals_full}",
    )

    assert result.jet_equals_full
    for series in result.oversubscription.values():
        assert all(v >= 1.0 for v in series)
        # Balance improves with the connection rate (paper's main trend).
        assert series[-1] < series[0]
