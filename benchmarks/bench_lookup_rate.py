"""Lookup-rate micro-benchmarks (the "rate" axis of Tables 1-2 / Fig. 7).

Times the per-packet dispatch path of each LB configuration over a hot
key stream.  These are the Python analogue of the paper's pkt/sec
columns; absolute numbers are interpreter-bound (see EXPERIMENTS.md),
the *relative* JET-vs-full-CT effects of table size still show.

These use real pytest-benchmark rounds (they are microseconds-scale).
"""

from pathlib import Path

import numpy as np
import pytest

from benchmarks import reporting
from repro.ch import rows_for
from repro.ch.properties import sample_keys
from repro.core import make_ch, make_full_ct, make_jet

N, H_SIZE = 50, 5
WORKING = [f"s{i}" for i in range(N)]
HORIZON = [f"t{i}" for i in range(H_SIZE)]
KEYS = sample_keys(20_000, seed=101)
KEYS_ARR = np.array(KEYS, dtype=np.uint64)


def _drive(lb):
    get = lb.get_destination
    for k in KEYS:
        get(k)
    return lb


@pytest.mark.parametrize("family", ["hrw", "ring", "table", "anchor"])
def test_jet_lookup_rate(benchmark, family):
    kwargs = {}
    if family == "table":
        kwargs["rows"] = rows_for(N)
    if family == "anchor":
        kwargs["capacity"] = 2 * (N + H_SIZE)
    lb = make_jet(family, WORKING, HORIZON, **kwargs)
    _drive(lb)  # warm the CT with the unsafe keys
    benchmark(_drive, lb)


@pytest.mark.parametrize("family", ["table", "anchor", "maglev"])
def test_full_ct_lookup_rate(benchmark, family):
    kwargs = {}
    if family == "table":
        kwargs["rows"] = rows_for(N)
    if family == "anchor":
        kwargs["capacity"] = 2 * (N + H_SIZE)
    if family == "maglev":
        lb = make_full_ct(family, WORKING, table_size=65537)
    else:
        lb = make_full_ct(family, WORKING, HORIZON, **kwargs)
    _drive(lb)  # warm: every key tracked
    benchmark(_drive, lb)


def test_ct_miss_path_rate(benchmark):
    """JET's common case: CT miss followed by a CH computation."""
    lb = make_jet("table", WORKING, HORIZON, rows=rows_for(N))

    def misses():
        get = lb.get_destination
        for k in KEYS:
            get(k + 1)  # perturbed keys: never tracked (safe rows dominate)

    benchmark(misses)


def _make_ch(family):
    kwargs = {}
    if family == "table":
        kwargs["rows"] = rows_for(N)
    if family == "anchor":
        kwargs["capacity"] = 2 * (N + H_SIZE)
    if family == "maglev":
        return make_ch(family, WORKING, table_size=65537)
    return make_ch(family, WORKING, HORIZON, **kwargs)


@pytest.mark.parametrize("family", ["hrw", "ring", "table", "anchor", "jump", "modulo"])
def test_ch_scalar_safety_rate(benchmark, family):
    """Scalar reference: one lookup_with_safety call per key."""
    ch = _make_ch(family)

    def scalar():
        lookup = ch.lookup_with_safety
        for k in KEYS:
            lookup(k)

    benchmark(scalar)


@pytest.mark.parametrize("family", ["hrw", "ring", "table", "anchor", "jump", "modulo"])
def test_ch_batch_safety_rate(benchmark, family):
    """Batched dataplane: the same keys in one lookup_with_safety_batch
    call -- every family now carries a real numpy kernel (searchsorted
    gathers for ring, active-mask wandering for anchor, argmax weights
    for hrw, table gathers for table-HRW); the pairing with the scalar
    case above is what makes the speedup visible in the timing table."""
    ch = _make_ch(family)
    benchmark(ch.lookup_with_safety_batch, KEYS_ARR)


def test_ch_scalar_maglev_rate(benchmark):
    """Scalar Maglev reference (no safety variant, Section 3.6)."""
    ch = _make_ch("maglev")

    def scalar():
        lookup = ch.lookup
        for k in KEYS:
            lookup(k)

    benchmark(scalar)


def test_ch_batch_maglev_rate(benchmark):
    """Maglev's batch kernel: two fancy-indexed gathers per batch."""
    ch = _make_ch("maglev")
    benchmark(ch.lookup_batch, KEYS_ARR)


@pytest.mark.parametrize("family", ["hrw", "ring", "table", "anchor"])
def test_jet_batch_dispatch_rate(benchmark, family):
    """Full LB batch path: CT mask + vectorized CH + batch insert."""
    kwargs = {}
    if family == "table":
        kwargs["rows"] = rows_for(N)
    if family == "anchor":
        kwargs["capacity"] = 2 * (N + H_SIZE)
    lb = make_jet(family, WORKING, HORIZON, **kwargs)
    lb.get_destinations_batch(KEYS_ARR)  # warm the CT with the unsafe keys
    benchmark(lb.get_destinations_batch, KEYS_ARR)


def test_full_ct_maglev_batch_dispatch_rate(benchmark):
    """The PR 2 regression case: full-CT over Maglev now rides the int32
    table kernel instead of paying batch bookkeeping for a scalar loop."""
    lb = make_full_ct("maglev", WORKING, table_size=65537)
    lb.get_destinations_batch(KEYS_ARR)  # warm: every key tracked
    benchmark(lb.get_destinations_batch, KEYS_ARR)


def test_dataplane_speedup_report(once, batch_sizes):
    """Run the throughput experiment's CH sweep and publish the
    machine-readable speedup artifact (BENCH_dataplane.json).  Pass
    ``--batch-sizes 256,10000`` to sweep batch sizes (one JSON row per
    family per size)."""
    from repro.experiments import throughput

    sizes = batch_sizes or [throughput.BATCH_SIZE]
    payload = once(throughput.run_throughput, "smoke", 1, sizes)
    path = Path(__file__).resolve().parents[1] / "BENCH_dataplane.json"
    throughput.write_json(payload, str(path))
    reporting.record("batched dataplane speedups", throughput.format_report(payload))
