"""Lookup-rate micro-benchmarks (the "rate" axis of Tables 1-2 / Fig. 7).

Times the per-packet dispatch path of each LB configuration over a hot
key stream.  These are the Python analogue of the paper's pkt/sec
columns; absolute numbers are interpreter-bound (see EXPERIMENTS.md),
the *relative* JET-vs-full-CT effects of table size still show.

These use real pytest-benchmark rounds (they are microseconds-scale).
"""

import pytest

from repro.ch import rows_for
from repro.ch.properties import sample_keys
from repro.core import make_full_ct, make_jet

N, H_SIZE = 50, 5
WORKING = [f"s{i}" for i in range(N)]
HORIZON = [f"t{i}" for i in range(H_SIZE)]
KEYS = sample_keys(20_000, seed=101)


def _drive(lb):
    get = lb.get_destination
    for k in KEYS:
        get(k)
    return lb


@pytest.mark.parametrize("family", ["hrw", "ring", "table", "anchor"])
def test_jet_lookup_rate(benchmark, family):
    kwargs = {}
    if family == "table":
        kwargs["rows"] = rows_for(N)
    if family == "anchor":
        kwargs["capacity"] = 2 * (N + H_SIZE)
    lb = make_jet(family, WORKING, HORIZON, **kwargs)
    _drive(lb)  # warm the CT with the unsafe keys
    benchmark(_drive, lb)


@pytest.mark.parametrize("family", ["table", "anchor", "maglev"])
def test_full_ct_lookup_rate(benchmark, family):
    kwargs = {}
    if family == "table":
        kwargs["rows"] = rows_for(N)
    if family == "anchor":
        kwargs["capacity"] = 2 * (N + H_SIZE)
    if family == "maglev":
        lb = make_full_ct(family, WORKING, table_size=65537)
    else:
        lb = make_full_ct(family, WORKING, HORIZON, **kwargs)
    _drive(lb)  # warm: every key tracked
    benchmark(_drive, lb)


def test_ct_miss_path_rate(benchmark):
    """JET's common case: CT miss followed by a CH computation."""
    lb = make_jet("table", WORKING, HORIZON, rows=rows_for(N))

    def misses():
        get = lb.get_destination
        for k in KEYS:
            get(k + 1)  # perturbed keys: never tracked (safe rows dominate)

    benchmark(misses)
