"""Figure 6 benchmark: flow-size histograms of the trace generators.

(a) UNI1-like vs NY18-like: UNI1 has fewer flows but larger heavy
hitters; (b) Zipf skews 0.6-1.4: higher skew concentrates packets.
"""

from benchmarks.reporting import record
from repro.experiments.fig6 import run_fig6a, run_fig6b
from repro.experiments.report import format_table
from repro.experiments.scales import scale_name


def test_fig6a_datacenter_histograms(once):
    series = once(run_fig6a)
    uni1, ny18 = series["UNI1"], series["NY18"]
    rows = [
        [name, sum(c for _, c in s), f"{max(center for center, _ in s):,.0f}"]
        for name, s in series.items()
    ]
    record(
        f"Figure 6a -- trace stand-in histograms [scale={scale_name()}]",
        format_table(["trace", "flows", "largest size bin"], rows),
    )
    # UNI1 is the more skewed trace: fewer flows, larger heavy hitters.
    assert sum(c for _, c in uni1) < sum(c for _, c in ny18)
    assert max(center for center, _ in uni1) > max(center for center, _ in ny18)


def test_fig6b_zipf_histograms(once):
    series = once(run_fig6b)
    rows = []
    flows_by_skew = {}
    for skew in sorted(series):
        flows = sum(c for _, c in series[skew])
        largest = max(center for center, _ in series[skew])
        flows_by_skew[skew] = flows
        rows.append([skew, flows, f"{largest:,.0f}"])
    record(
        f"Figure 6b -- Zipf histograms by skew [scale={scale_name()}]",
        format_table(["skew", "distinct flows", "largest size bin"], rows),
    )
    skews = sorted(flows_by_skew)
    # Monotone: more skew => fewer distinct flows.
    for a, b in zip(skews, skews[1:]):
        assert flows_by_skew[b] <= flows_by_skew[a]
