"""Figure 3 benchmark: PCC violations vs CT table size per update rate.

Regenerates the paper's bar matrix (full CT at update rates 1-40/min vs
JET with a 10% horizon) at the active scale and checks the published
shape: violations fall with CT size, rise with update rate, and JET sits
(near) zero -- an order of magnitude under full CT wherever full CT
breaks connections.
"""

from benchmarks.reporting import record
from repro.experiments.fig3 import run_fig3
from repro.experiments.report import format_table
from repro.experiments.scales import scale_name


def test_fig3_pcc_violations_vs_ct_size(once):
    result = once(run_fig3)
    headers = ["series"] + [f"CT={s}" for s in result.ct_sizes]
    record(
        f"Figure 3 -- PCC violations vs CT table size [scale={scale_name()}]",
        format_table(headers, result.to_rows()),
    )

    total_full = sum(sum(v) for v in result.full_ct.values())
    total_jet = sum(sum(v) for v in result.jet.values())
    # Paper shape: JET violates PCC far less than full CT overall.
    assert total_jet <= total_full
    if total_full >= 20:
        assert total_jet <= total_full / 4
    # Full CT: the largest tables see no more violations than the smallest.
    for rate, series in result.full_ct.items():
        assert series[-1] <= max(series[0], 1), (rate, series)
    # JET is violation-free at every CT size >= 50% of the connection rate.
    for series in result.jet.values():
        assert all(v == 0 for v in series[2:])
