"""Backend-change cost per CH family (Section 5's CH-choice tradeoffs).

Times a full remove-then-readd cycle: the control-plane cost that the
paper's implementation notes discuss (ring repopulation vs table row
updates vs anchor O(1) stack operations).
"""

import pytest

from repro.ch import (
    AnchorHash,
    HRWHash,
    IncrementalRingHash,
    RingHash,
    TableHRWHash,
    rows_for,
)
from repro.ch.properties import sample_keys

N, H_SIZE = 100, 10
WORKING = [f"s{i}" for i in range(N)]
HORIZON = [f"t{i}" for i in range(H_SIZE)]
KEYS = sample_keys(200, seed=7)


def build(family):
    if family == "hrw":
        return HRWHash(WORKING, HORIZON)
    if family == "ring":
        return RingHash(WORKING, HORIZON, virtual_nodes=100)
    if family == "ring-inc":
        return IncrementalRingHash(WORKING, HORIZON, virtual_nodes=100)
    if family == "table":
        return TableHRWHash(WORKING, HORIZON, rows=rows_for(N, copies=100))
    return AnchorHash(WORKING, HORIZON, capacity=2 * (N + H_SIZE))


@pytest.mark.parametrize("family", ["hrw", "ring", "ring-inc", "table", "anchor"])
def test_remove_readd_cycle(benchmark, family):
    ch = build(family)

    def cycle():
        ch.remove_working(WORKING[0])
        ch.add_working(WORKING[0])
        # Include one lookup so lazily-rebuilt structures (Ring) pay their
        # repopulation inside the timed region.
        ch.lookup(KEYS[0])

    benchmark(cycle)


@pytest.mark.parametrize("family", ["hrw", "ring", "ring-inc", "table", "anchor"])
def test_horizon_change_cycle(benchmark, family):
    ch = build(family)

    def cycle():
        ch.add_horizon("extra")
        ch.remove_horizon("extra")
        ch.lookup(KEYS[0])

    benchmark(cycle)
