"""Section 4 benchmark: the theoretical guarantees, measured.

Theorem 4.2 (tracking probability), Theorem 4.3 (concentration),
Theorem 4.4 / Property 1 (order invariance), Proposition 4.1 (identical
dispatching), and the Section 2.4 mod-N motivation.
"""

import pytest

from benchmarks.reporting import record
from repro.experiments.report import format_table
from repro.experiments.theory import (
    concentration,
    modn_unsafe_fraction,
    order_invariance,
    paired_dispatching,
    tracking_probability,
)


def test_theorem42_tracking_probability(once):
    rows = once(tracking_probability)
    record(
        "Theorem 4.2 -- tracking probability alpha/(alpha+1)",
        format_table(
            ["family", "alpha", "measured", "predicted"],
            [[f, f"{a:.3f}", f"{m:.4f}", f"{p:.4f}"] for f, a, m, p in rows],
        ),
    )
    for _, _, measured, predicted in rows:
        assert measured == pytest.approx(predicted, rel=0.3)


def test_theorem43_concentration(once):
    result = once(concentration)
    record(
        "Theorem 4.3 -- tracked-count concentration",
        format_table(
            ["t", "empirical P(X > mean+t)", "Hoeffding bound"],
            [[t, f"{e:.4f}", f"{h:.4f}"] for t, e, h in result.exceed_by_t],
        ),
    )
    # The empirical tail must decay and stay within noise of the bound.
    tail = [e for _, e, _ in result.exceed_by_t]
    assert tail == sorted(tail, reverse=True)
    assert tail[-1] <= 0.02


def test_theorem44_order_invariance(once):
    outcome = once(order_invariance)
    record(
        "Theorem 4.4 / Property 1 -- order invariance",
        format_table(
            ["family", "property 1", "prefix safety"],
            [[f, str(a), str(b)] for f, (a, b) in outcome.items()],
        ),
    )
    assert all(a and b for a, b in outcome.values())


def test_proposition41_identical_dispatching(once):
    compared, disagreements = once(paired_dispatching)
    record(
        "Proposition 4.1 -- JET vs full CT dispatching",
        f"compared={compared} disagreements={disagreements}",
    )
    assert disagreements == 0


def test_section24_modn_strawman(once):
    measured, predicted = once(modn_unsafe_fraction)
    record(
        "Section 2.4 -- mod-N unsafe fraction",
        f"measured={measured:.4f} predicted={predicted:.4f}",
    )
    assert measured == pytest.approx(predicted, abs=0.05)


def _model_vs_simulation():
    """Little's-law + Theorem 4.2 occupancy model vs a measured run."""
    from repro.analysis.model import CTOccupancyModel
    from repro.sim import Exponential, SimulationConfig, run_simulation

    duration_dist = Exponential(8.0)
    cfg = SimulationConfig(
        duration_s=80.0,
        connection_rate=1_000.0,
        n_servers=90,
        horizon_size=10,
        update_rate_per_min=0.0,
        duration_dist=duration_dist,
        ct_policy="ttl",
        ct_ttl=12.0,
        mode="jet",
        seed=13,
    )
    result = run_simulation(cfg)
    model = CTOccupancyModel(
        arrival_rate=cfg.connection_rate / duration_dist.mean(),
        mean_duration=duration_dist.mean(),
        n_working=cfg.n_servers,
        n_horizon=cfg.horizon_size,
        retention=cfg.ct_ttl,
    )
    steady = result.tracked_series[len(result.tracked_series) // 2 :]
    measured = sum(steady) / len(steady)
    return measured, model.expected_tracked, model.table_size_for(1e-3)


def test_analytical_occupancy_model(once):
    measured, predicted, sizing = once(_model_vs_simulation)
    record(
        "Analytical CT-occupancy model vs simulation",
        f"measured steady-state tracked={measured:.0f}  "
        f"model={predicted:.0f}  suggested table (p_overflow=1e-3)={sizing}",
    )
    assert measured == pytest.approx(predicted, rel=0.30)
