"""The event-driven simulator of Section 5.1.

Four event kinds drive the system, exactly as in the paper: (1) new
connection; (2) connection termination; (3) server removal; (4) server
addition (recovery).  We add per-packet events in between -- every packet
traverses the load balancer so that connection-tracking state (LRU
recency, safety re-checks on horizon changes) evolves faithfully -- plus
periodic metric sampling.

PCC accounting follows Section 2.1: a connection's *true destination* is
the destination of its first packet; a later packet dispatched elsewhere is
a PCC violation (counted once per connection, after which the client is
assumed to reset the connection); connections whose destination is removed
are *inevitably broken* and excluded from the violation count.

Adversarial churn is layered on top via :mod:`repro.faults`: a
:class:`~repro.faults.injector.ChaosInjector` schedules crash / flap /
correlated-group / unannounced-addition events as a seventh event kind,
and a :class:`~repro.faults.health.HealthMonitor` adds probation delay to
readmissions.  With no injector the event sequence and RNG stream are
byte-identical to the seed engine.
"""

from __future__ import annotations

import heapq
import random
from itertools import count
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.interfaces import LoadBalancer, Name
from repro.hashing.mix import splitmix64
from repro.obs import metrics as obs_metrics
from repro.obs.collectors import instrument_balancer
from repro.obs.registry import coalesce
from repro.obs.timers import Stopwatch
from repro.sim.backend import HorizonManager
from repro.sim.distributions import Distribution
from repro.sim.metrics import LoadTracker, SimResult
from repro.sim.workload import Flow, WorkloadGenerator

# Event kinds (heap entries are (time, tiebreak, kind, payload)).
_ARRIVAL = 0
_PACKET = 1
_FLOW_END = 2
_REMOVAL = 3
_RECOVERY = 4
_SAMPLE = 5
_FAULT = 6
# Closed-loop kinds (repro.control runs only).
_CONTROL = 7      # periodic control-plane tick (probe + autoscale)
_RESPONSIVE = 8   # a silently-dead server starts answering probes again
_JOIN = 9         # an autoscaler launch finishes its lead time
_EXPIRE = 10      # a phantom horizon announcement times out


class EventDrivenSimulation:
    """One simulation run binding a workload, a backend, and one LB."""

    def __init__(
        self,
        balancer: LoadBalancer,
        workload: WorkloadGenerator,
        working_servers: List[Name],
        standby_servers: List[Name],
        duration_s: float,
        update_rate_per_min: float,
        downtime_dist: Distribution,
        seed: int = 0,
        sample_interval: float = 1.0,
        warmup_s: Optional[float] = None,
        injector=None,
        coalesce_packets: bool = False,
        registry=None,
        controller=None,
        horizon_cap: int = 16,
    ):
        self.lb = balancer
        self.injector = injector
        self.controller = controller
        self.coalesce_packets = coalesce_packets
        # Observability: a NullRegistry by default.  Per-packet handlers
        # stay uninstrumented; obs work happens only at sample events and
        # finalization (plus one guarded delta-read per *first* packet),
        # so a disabled run pays nothing and a live run pays O(samples).
        self.obs = coalesce(registry)
        self._obs_on = self.obs.enabled
        if self._obs_on:
            instrument_balancer(self.obs, balancer)
        self._first_dispatches = 0
        self._first_tracked = 0
        self._batched_packets = 0
        # Resolve the per-packet LB capability probes once: these getattr
        # probes used to run on every packet of the hot loop.
        self._note_flow_start = getattr(balancer, "note_flow_start", None)
        self._note_flow_end = getattr(balancer, "note_flow_end", None)
        self._syn_aware = bool(getattr(balancer, "dispatches_new_connections", False))
        # Never-slower guarantee: coalescing only pays when the LB's batch
        # path actually vectorizes; otherwise stay on the scalar loop.
        self._batch_effective = bool(getattr(balancer, "batch_effective", False))
        # Columnar upgrade of the same path: dispatch as int32 backend ids
        # and decode names through one table gather per batch.
        self._columnar_effective = bool(getattr(balancer, "columnar_effective", False))
        self.workload = workload
        self.duration_s = duration_s
        self.sample_interval = sample_interval
        # Balance metrics ignore the ramp-up transient (few flows over many
        # servers trivially yields huge oversubscription ratios).
        self.warmup_s = 0.2 * duration_s if warmup_s is None else warmup_s
        if controller is not None:
            # Closed loop: H is the control plane's pending changes, not
            # an exogenous standby FIFO.  Membership leaves W on probe
            # evidence; crashes become *silent* until detected.
            self.manager = controller.membership([balancer], horizon_cap)
        else:
            self.manager = HorizonManager([balancer], standby_servers)
        self.downtime_dist = downtime_dist
        self._removal_rate = update_rate_per_min / 60.0
        self._rng = random.Random(splitmix64(seed ^ 0xBEEF_CAFE))

        # Up-server list with O(1) random choice and removal.
        self._up: List[Name] = list(working_servers)
        self._up_index: Dict[Name, int] = {s: i for i, s in enumerate(self._up)}

        self._heap: list = []
        self._seq = count()
        self._load = LoadTracker()
        self._flows_by_server: Dict[Name, Set[Flow]] = {}
        self.result = SimResult()

        # Fault attribution: violations within the injector's window after
        # any chaos event count as violations-under-fault.
        self._now = 0.0
        self._last_fault_time = float("-inf")
        self._fault_window = injector.fault_window_s if injector is not None else 0.0
        self._probated: Set[Name] = set()

        # Closed-loop state: silently-dead servers (still in W until the
        # prober evicts them), a generation counter guarding stale
        # _RESPONSIVE events across re-silencing, and the LIFO stack of
        # autoscaled servers (scale-in retires the newest first).
        self._silenced: Set[Name] = set()
        self._silence_gen: Dict[Name, int] = {}
        self._auto_servers: List[Name] = []
        # Flow-weighted Theorem 4.2 expectation: with a dynamic H the
        # final-instant |H|/(|W|+|H|) misrepresents the run, so accumulate
        # it per first dispatch.  Only JET-style balancers publish it.
        from repro.core.jet import JETLoadBalancer

        self._track_expected = isinstance(balancer, JETLoadBalancer)
        self._expected_sum = 0.0
        self._expected_count = 0
        # Weighted CH families generalize Theorem 4.2's expectation to
        # weight(H)/(weight(W)+weight(H)); detect once so unweighted runs
        # keep the count-based O(1) path byte-identical.
        ch_weight_of = getattr(getattr(balancer, "ch", None), "weight_of", None)
        self._weight_of = ch_weight_of if callable(ch_weight_of) else None
        # Occupancy-consuming balancers (jet-p2c) get the per-backend
        # active-flow view refreshed at every sample event -- always, not
        # just when a registry is attached, so observability can never
        # change a dispatch decision (the obs-differential invariant).
        self._observe_occupancy = getattr(balancer, "observe_occupancy", None)

        # TTL-based CT tables carry a simulated clock we must advance.
        from repro.ct.ttl import Clock as _SimClock

        ct = getattr(balancer, "ct", None)
        clock = getattr(ct, "clock", None)
        self._sim_clock = clock if isinstance(clock, _SimClock) else None
        self._ct_stats = ct.stats if ct is not None else None

    # ----------------------------------------------------------- events
    def _push(self, when: float, kind: int, payload=None) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), kind, payload))

    def _pick_up_server(self) -> Optional[Name]:
        if len(self._up) <= 1:
            return None  # never remove the last working server
        if not self._silenced:
            return self._up[self._rng.randrange(len(self._up))]
        # Closed loop: a silently-dead server is still in W; crashing it
        # again is meaningless, and at least one responsive server must
        # survive (the no-last-server rule, under evidence-based W).
        candidates = [s for s in self._up if s not in self._silenced]
        if len(candidates) <= 1:
            return None
        return candidates[self._rng.randrange(len(candidates))]

    def _mark_down(self, name: Name) -> None:
        position = self._up_index.pop(name)
        last = self._up.pop()
        if last != name:
            self._up[position] = last
            self._up_index[last] = position

    def _mark_up(self, name: Name) -> None:
        self._up_index[name] = len(self._up)
        self._up.append(name)

    # ------------------------------------------------- injector interface
    @property
    def up_index(self) -> Dict[Name, int]:
        """Live-server membership view (read-only use by the injector)."""
        return self._up_index

    def pick_up_server(self) -> Optional[Name]:
        return self._pick_up_server()

    def push_fault(self, when: float, event) -> None:
        self._push(when, _FAULT, event)

    def note_fault(self, now: float) -> None:
        self._last_fault_time = now

    def crash_server(self, name: Name, now: float, downtime: Optional[float] = None) -> float:
        """Take ``name`` down immediately; returns the scheduled recovery
        time (downtime, or the given override, plus any probation delay)."""
        if self.controller is not None:
            # Evidence-based membership: the crash is *silent*.  The
            # server stops answering but stays in W until the prober's
            # consecutive-failure threshold evicts it.
            return self.silence_server(name, now, downtime)
        self._mark_down(name)
        self.result.removals += 1
        # Churn exposure: this event can break at most the flows active
        # right now (the invariant-monitor bound on PCC accounting).
        self.result.churn_exposed_flows += self._load.active_flows
        # Connections to the victim are inevitably broken (Section 2.1).
        doomed = self._flows_by_server.pop(name, set())
        for flow in doomed:
            flow.broken = True
            flow.inevitable = True
            self._load.flow_ended(name)
        self.result.inevitably_broken += len(doomed)
        self.manager.remove_server(name)
        if downtime is None:
            downtime = self.downtime_dist.sample(self._rng)
        delay = 0.0
        health = self.injector.health if self.injector is not None else None
        if health is not None:
            delay = health.record_failure(name, now)
            if delay > 0:
                self._probated.add(name)
        recovery_at = now + downtime + delay
        self._push(recovery_at, _RECOVERY, name)
        return recovery_at

    def admit_unannounced(self, name: Name, now: float) -> None:
        """A never-announced server joins ``W`` (§2.3 contract violation).

        Records the paper's breakage prediction at this instant: under a
        consistent hash, each active connection re-steers onto the new
        server with probability ``1/(|W|+1)``, and none of the re-steered
        ones was tracked (the server was never in ``H``)."""
        self.result.predicted_unannounced_breakage += self._load.active_flows / (
            len(self._up) + 1
        )
        self.result.churn_exposed_flows += self._load.active_flows
        self.lb.force_add_working_server(name)
        self._mark_up(name)
        self.result.unannounced_additions += 1
        self.result.additions += 1

    # ---------------------------------------------- control-loop interface
    @property
    def active_flows(self) -> int:
        return self._load.active_flows

    @property
    def responsive_count(self) -> int:
        """Working servers that would answer a probe right now."""
        if not self._silenced:
            return len(self._up)
        return sum(1 for s in self._up if s not in self._silenced)

    def server_responsive(self, name: Name) -> bool:
        """The prober's ground-truth oracle: does a probe get answered?"""
        return name not in self._silenced

    def silence_server(self, name: Name, now: float, downtime: Optional[float] = None) -> float:
        """A server dies *silently*: it stays in W (the control plane has
        no evidence yet) but stops answering probes and blackholes flows.
        Returns the time it becomes responsive again."""
        generation = self._silence_gen.get(name, 0) + 1
        self._silence_gen[name] = generation
        already_silent = name in self._silenced
        self._silenced.add(name)
        if not already_silent:
            # Its active connections break now, whatever the control
            # plane believes; count the exposure at the same instant.
            self.result.churn_exposed_flows += self._load.active_flows
            doomed = self._flows_by_server.pop(name, set())
            for flow in doomed:
                flow.broken = True
                flow.inevitable = True
                self._load.flow_ended(name)
            self.result.inevitably_broken += len(doomed)
        if downtime is None:
            downtime = self.downtime_dist.sample(self._rng)
        responsive_at = now + downtime
        self._push(responsive_at, _RESPONSIVE, (name, generation))
        return responsive_at

    def _on_responsive(self, name: Name, generation: int) -> None:
        if self._silence_gen.get(name) != generation:
            return  # stale: the server was re-silenced meanwhile
        self._silenced.discard(name)
        if name in self._up_index and not self.controller.prober.is_evicted(name):
            # The outage ended before the prober accumulated enough
            # failures: membership never changed (graceful degradation
            # under lossy evidence, at the cost of the blackhole window).
            self.result.undetected_blips += 1

    def evict_server(self, name: Name, now: float) -> None:
        """Prober verdict: remove ``name`` from W (it enters H awaiting
        readmission).  Safe against races with recovery/retirement."""
        if name not in self._up_index:
            return
        self._mark_down(name)
        self.result.removals += 1
        self.result.churn_exposed_flows += self._load.active_flows
        # A false eviction (server actually up) re-steers its flows away;
        # they are inevitably broken exactly like a real removal's.
        doomed = self._flows_by_server.pop(name, set())
        for flow in doomed:
            flow.broken = True
            flow.inevitable = True
            self._load.flow_ended(name)
        self.result.inevitably_broken += len(doomed)
        self.manager.remove_server(name)

    def readmit_server(self, name: Name, now: float) -> None:
        """Prober verdict: recovery confirmed and probation served."""
        if name in self._up_index:
            return
        self._mark_up(name)
        self.result.additions += 1
        self.result.churn_exposed_flows += self._load.active_flows
        self.manager.recover_server(name)

    def schedule_join(self, name: Name, when: float) -> None:
        self._push(when, _JOIN, name)

    def schedule_phantom_expiry(self, name: Name, when: float) -> None:
        self._push(when, _EXPIRE, name)

    def _on_join(self, name: Name) -> None:
        """An autoscaler launch finishes warming up and joins W."""
        self._mark_up(name)
        self.result.additions += 1
        self.result.scale_outs += 1
        self.result.churn_exposed_flows += self._load.active_flows
        self.manager.realize(name)
        self._auto_servers.append(name)
        self.controller.prober.watch(name)

    def retire_autoscaled(self, count: int, now: float) -> int:
        """Scale-in: retire up to ``count`` autoscaled servers, newest
        first.  Returns how many actually left."""
        retired = 0
        while self._auto_servers and retired < count:
            name = self._auto_servers.pop()
            if name not in self._up_index or len(self._up) <= 1:
                continue
            if name in self._silenced:
                continue  # dead; the prober's eviction path owns it
            self._mark_down(name)
            self.result.removals += 1
            self.result.scale_ins += 1
            self.result.churn_exposed_flows += self._load.active_flows
            doomed = self._flows_by_server.pop(name, set())
            for flow in doomed:
                flow.broken = True
                flow.inevitable = True
                self._load.flow_ended(name)
            self.result.inevitably_broken += len(doomed)
            self.manager.retire(name)
            self.controller.prober.forget(name)
            retired += 1
        return retired

    # ------------------------------------------------------------- run
    def run(self) -> SimResult:
        watch = Stopwatch()
        self._push(self.workload.next_arrival_gap(), _ARRIVAL)
        if self._removal_rate > 0:
            self._push(self._rng.expovariate(self._removal_rate), _REMOVAL)
        self._push(self.sample_interval, _SAMPLE)
        if self.injector is not None:
            self.injector.prime(self)
        if self.controller is not None:
            self.controller.attach(self, list(self._up))
            self._push(self.controller.interval_s, _CONTROL)

        heap = self._heap
        sim_clock = self._sim_clock
        coalesce = self.coalesce_packets and self._batch_effective
        while heap:
            when, _, kind, payload = heapq.heappop(heap)
            if when > self.duration_s:
                break
            self._now = when
            if sim_clock is not None:
                sim_clock.now = when
            if kind == _PACKET:
                if coalesce and heap and heap[0][0] == when and heap[0][2] == _PACKET:
                    batch = [payload]
                    while heap and heap[0][0] == when and heap[0][2] == _PACKET:
                        batch.append(heapq.heappop(heap)[3])
                    self._on_packet_batch(batch)
                else:
                    self._on_packet(payload)
            elif kind == _ARRIVAL:
                self._on_arrival(when)
            elif kind == _FLOW_END:
                self._on_flow_end(payload)
            elif kind == _REMOVAL:
                self._on_removal(when)
            elif kind == _RECOVERY:
                self._on_recovery(payload)
            elif kind == _FAULT:
                self.injector.apply(self, payload, when)
            elif kind == _CONTROL:
                self._on_control(when)
            elif kind == _RESPONSIVE:
                self._on_responsive(*payload)
            elif kind == _JOIN:
                self._on_join(payload)
            elif kind == _EXPIRE:
                self.manager.expire(payload)
            else:
                self._on_sample(when)

        self._finalize()
        self.result.wall_seconds = watch.stop()
        if self._obs_on:
            self.obs.histogram(
                obs_metrics.WALL_SECONDS, "Wall time by phase", phase="simulate"
            ).observe(self.result.wall_seconds)
        return self.result

    # --------------------------------------------------------- handlers
    def _on_arrival(self, now: float) -> None:
        flow = self.workload.make_flow(now)
        self.result.flows_started += 1
        self._push(now, _PACKET, flow)
        self._push(flow.end, _FLOW_END, flow)
        self._push(now + self.workload.next_arrival_gap(), _ARRIVAL)

    def _on_packet(self, flow: Flow) -> None:
        if flow.broken:
            return
        self.result.packets_processed += 1
        if flow.true_destination is None:
            self._dispatch_first_packet(flow)
        else:
            destination = self.lb.get_destination(flow.key)
            if destination != flow.true_destination:
                self._break_flow(flow)
                return
        self._advance_flow(flow)

    def _on_packet_batch(self, flows: List[Flow]) -> None:
        """Drain a run of same-timestamp packet events through the LB's
        batch path.

        First packets keep the scalar path (they may involve load-aware
        placement and flow-start notifications); packets of established
        flows are dispatched in one ``get_destinations_batch`` call.
        Same-timestamp flows have distinct keys (the workload generator
        guarantees key uniqueness), so regrouping them cannot change any
        destination the scalar order would have produced.
        """
        established: List[Flow] = []
        for flow in flows:
            if flow.broken:
                continue
            self.result.packets_processed += 1
            if flow.true_destination is None:
                self._dispatch_first_packet(flow)
                self._advance_flow(flow)
            else:
                established.append(flow)
        if not established:
            return
        self._batched_packets += len(established)
        keys = np.fromiter(
            (flow.key for flow in established), dtype=np.uint64, count=len(established)
        )
        if self._columnar_effective:
            ids = self.lb.get_destinations_batch_idx(keys)
            names = self.lb.dispatch_names()
            destinations = [names[i] for i in ids.tolist()]
        else:
            destinations = self.lb.get_destinations_batch(keys)
        for flow, destination in zip(established, destinations):
            if flow.broken:
                # Defensive: each flow has at most one packet event in the
                # heap (the next is pushed only while processing the current
                # one), so nothing in this batch can have broken it already.
                continue
            if destination != flow.true_destination:
                self._break_flow(flow)
            else:
                self._advance_flow(flow)

    def _dispatch_first_packet(self, flow: Flow) -> None:
        # First packet (TCP SYN): load-aware LBs may run their
        # new-connection placement here (Section 6.3).
        # Per-connection tracked-fraction telemetry: a CT insert during
        # the first dispatch means this flow was classified unsafe.
        # Unconditional -- SimResult must not depend on whether a
        # registry is attached (the obs-differential invariant).
        stats = self._ct_stats
        inserts_before = stats.inserts if stats is not None else 0
        self._first_dispatches += 1
        if self._syn_aware:
            destination = self.lb.get_destination(flow.key, True)
        else:
            destination = self.lb.get_destination(flow.key)
        if stats is not None and stats.inserts > inserts_before:
            self._first_tracked += 1
        if self._track_expected:
            if self._weight_of is not None:
                horizon = self._weight_sum(self.manager.members)
                working = self._weight_sum(self._up)
            else:
                horizon = self.manager.horizon_occupancy
                working = len(self._up)
            if working:
                self._expected_sum += horizon / (working + horizon)
                self._expected_count += 1
        flow.true_destination = destination
        if destination in self._silenced:
            # Dispatched into the detection-lag blackhole: the server is
            # silently dead but still in W, so the flow dies on arrival.
            flow.broken = True
            flow.inevitable = True
            self.result.blackholed_flows += 1
            self.result.inevitably_broken += 1
            self.result.churn_exposed_flows += 1
            return
        self._load.flow_started(destination)
        if self._note_flow_start is not None:
            self._note_flow_start(destination)
        self._flows_by_server.setdefault(destination, set()).add(flow)

    def _safe_weight(self, name: Name) -> float:
        """Capacity weight of ``name``; 1.0 for servers the CH does not
        carry (chaos-born identities, autoscaled launches)."""
        try:
            return self._weight_of(name)
        except Exception:
            return 1.0

    def _weight_sum(self, names) -> float:
        weight_of = self._safe_weight
        return sum(weight_of(name) for name in names)

    def _break_flow(self, flow: Flow) -> None:
        # PCC violation: the connection is reset by the new backend.
        flow.broken = True
        self.result.pcc_violations += 1
        if self._now - self._last_fault_time <= self._fault_window:
            self.result.violations_under_fault += 1
        self._retire(flow)

    def _advance_flow(self, flow: Flow) -> None:
        flow.next_packet += 1
        if flow.next_packet < len(flow.packet_times):
            self._push(flow.packet_times[flow.next_packet], _PACKET, flow)

    def _retire(self, flow: Flow) -> None:
        """Remove a finished/broken flow from load accounting."""
        if flow.true_destination is not None:
            self._load.flow_ended(flow.true_destination)
            if self._note_flow_end is not None:
                self._note_flow_end(flow.true_destination)
            bucket = self._flows_by_server.get(flow.true_destination)
            if bucket is not None:
                bucket.discard(flow)

    def _on_flow_end(self, flow: Flow) -> None:
        if flow.broken:
            return
        flow.broken = True  # terminated; ignore any same-time stragglers
        self.result.flows_completed += 1
        self._retire(flow)

    def _on_removal(self, now: float) -> None:
        victim = self._pick_up_server()
        if victim is not None:
            self.crash_server(victim, now)
        self._push(now + self._rng.expovariate(self._removal_rate), _REMOVAL)

    def _on_recovery(self, server: Name) -> None:
        self._mark_up(server)
        self.result.additions += 1
        self.result.churn_exposed_flows += self._load.active_flows
        self.manager.recover_server(server)
        if server in self._probated:
            self._probated.discard(server)
            self.result.probation_readmissions += 1
        if self.injector is not None and self.injector.health is not None:
            self.injector.health.note_recovered(server, self._now)

    def _on_control(self, now: float) -> None:
        self.result.control_ticks += 1
        self.controller.tick(self, now)
        if now + self.controller.interval_s <= self.duration_s:
            self._push(now + self.controller.interval_s, _CONTROL)

    def _on_sample(self, now: float) -> None:
        if self._observe_occupancy is not None:
            # Refresh the balancer's live occupancy view (jet-p2c); runs
            # unconditionally so dispatch never depends on the registry.
            self._observe_occupancy(self._load.per_server())
        oversub = self._load.oversubscription(len(self._up))
        if oversub is not None and now >= self.warmup_s:
            self.result.oversubscription_series.append(oversub)
            if oversub > self.result.max_oversubscription:
                self.result.max_oversubscription = oversub
            cv = self._load.cv_over(
                self._up, self._safe_weight if self._weight_of is not None else None
            )
            if cv is not None:
                self.result.balance_cv_series.append(cv)
                if cv > self.result.max_balance_cv:
                    self.result.max_balance_cv = cv
        tracked = self.lb.tracked_connections
        self.result.tracked_series.append(tracked)
        self.result.sample_times.append(now)
        if tracked > self.result.peak_tracked:
            self.result.peak_tracked = tracked
        if self._obs_on:
            self._publish_telemetry()
            self.obs.export_snapshot(t=now)
        # Re-arm only while the next sample still lands inside the run:
        # an unconditional re-push leaks one past-the-end event per run
        # and, worse, kept the sample chain alive in the heap on long
        # simulations.  Samples processed are identical either way (the
        # loop drops events past duration_s).
        if now + self.sample_interval <= self.duration_s:
            self._push(now + self.sample_interval, _SAMPLE)

    def _publish_telemetry(self) -> None:
        """Flush the engine's own tallies into the registry (the CT/CH
        series come from collectors at snapshot time)."""
        obs = self.obs
        result = self.result
        obs.counter(obs_metrics.FLOWS, "Flows dispatched").set_total(
            self._first_dispatches
        )
        obs.counter(
            obs_metrics.TRACKED_FLOWS, "Flows tracked at first dispatch"
        ).set_total(self._first_tracked)
        if self._first_dispatches:
            obs.gauge(
                obs_metrics.OBSERVED_TRACKED_FRACTION, "Observed tracked fraction"
            ).set(self._first_tracked / self._first_dispatches)
        obs.counter(obs_metrics.PCC_VIOLATIONS, "PCC violations").set_total(
            result.pcc_violations
        )
        obs.counter(
            obs_metrics.INEVITABLY_BROKEN, "Inevitably broken flows"
        ).set_total(result.inevitably_broken)
        obs.counter(
            obs_metrics.CHURN_EXPOSED, "Flows exposed to backend churn (upper bound)"
        ).set_total(result.churn_exposed_flows)
        obs.counter(
            obs_metrics.BACKEND_EVENTS, "Backend change events", kind="removal"
        ).set_total(result.removals)
        obs.counter(
            obs_metrics.BACKEND_EVENTS, "Backend change events", kind="addition"
        ).set_total(result.additions)
        obs.counter(
            obs_metrics.BACKEND_EVENTS, "Backend change events", kind="unannounced"
        ).set_total(result.unannounced_additions)
        obs.counter(
            obs_metrics.DISPATCH_PACKETS, "Packets by dispatch path", path="batch"
        ).set_total(self._batched_packets)
        obs.counter(
            obs_metrics.DISPATCH_PACKETS, "Packets by dispatch path", path="scalar"
        ).set_total(result.packets_processed - self._batched_packets)
        if self._track_expected and self._expected_count:
            obs.gauge(
                obs_metrics.EXPECTED_TRACKED_FRACTION_MEAN,
                "Flow-weighted mean expected tracked fraction",
            ).set(self._expected_sum / self._expected_count)
        if result.balance_cv_series:
            obs.gauge(
                obs_metrics.BALANCE_CV_MAX,
                "Post-warmup max CV of per-server active connections",
            ).set(result.max_balance_cv)
        if self._observe_occupancy is not None:
            for name, load in self._load.per_server().items():
                obs.gauge(
                    obs_metrics.BACKEND_ACTIVE_FLOWS,
                    "Active connections per backend",
                    server=str(name),
                ).set(load)
        if self.controller is not None:
            obs.counter(
                obs_metrics.BLACKHOLED_FLOWS,
                "Flows dispatched at silently-dead servers",
            ).set_total(result.blackholed_flows)
            obs.counter(
                obs_metrics.PHANTOM_ANNOUNCEMENTS,
                "Horizon announcements that expired unrealized",
            ).set_total(result.phantom_announcements)
            obs.gauge(
                obs_metrics.HORIZON_OCCUPANCY, "Servers currently announced in H"
            ).set(self.manager.horizon_occupancy)

    def _finalize(self) -> None:
        result = self.result
        result.surprise_additions = self.manager.surprise_additions
        result.final_tracked = self.lb.tracked_connections
        ct = getattr(self.lb, "ct", None)
        if ct is not None:
            result.ct_evictions = ct.stats.evictions
            result.ct_hit_rate = ct.stats.hit_rate
            result.ct_peak_size = ct.stats.peak_size
            if ct.stats.peak_size > result.peak_tracked:
                result.peak_tracked = ct.stats.peak_size
        # LB-pool balancers expose their sync channel's degradation stats.
        channel = getattr(self.lb, "channel", None)
        if channel is not None:
            result.sync_failures = channel.stats.lost_attempts
            result.unreplicated_entries = channel.stats.unreplicated
            staleness = getattr(channel, "staleness", None)
            if callable(staleness):
                result.sync_staleness = staleness()
        if self._expected_count:
            result.mean_expected_tracked_fraction = (
                self._expected_sum / self._expected_count
            )
        if self._first_dispatches:
            result.observed_tracked_fraction = (
                self._first_tracked / self._first_dispatches
            )
        self._finalize_horizon_fidelity()
        if self.controller is not None:
            prober_stats = self.controller.prober.stats
            result.probes_sent = prober_stats.sent
            result.probe_evictions = prober_stats.evictions
            result.probe_false_evictions = prober_stats.false_evictions
            result.probe_readmissions = prober_stats.readmissions
        if self._obs_on:
            self._publish_telemetry()
            if result.horizon_precision is not None:
                self.obs.gauge(
                    obs_metrics.HORIZON_PRECISION,
                    "Horizon announcement precision vs realized additions",
                ).set(result.horizon_precision)
            if result.horizon_recall is not None:
                self.obs.gauge(
                    obs_metrics.HORIZON_RECALL,
                    "Horizon announcement recall vs realized additions",
                ).set(result.horizon_recall)

    def _finalize_horizon_fidelity(self) -> None:
        """Horizon precision/recall from whichever manager drove the run.

        Closed-loop runs carry a full scorecard; exogenous-H runs derive
        the same report from the FIFO's counters (proper vs surprise
        additions, announcements revoked while the server was down), so
        late-announced chaos exposure gets attribution either way."""
        result = self.result
        scorecard = getattr(self.manager, "scorecard", None)
        if scorecard is not None:
            result.horizon_precision = scorecard.precision
            result.horizon_recall = scorecard.recall
            result.phantom_announcements = self.manager.phantom_announcements
            return
        proper = self.manager.proper_additions
        surprise = self.manager.surprise_additions
        revoked = getattr(self.manager, "revoked_announcements", 0)
        realized = proper + surprise
        if realized:
            result.horizon_recall = proper / realized
        judged = proper + revoked
        if judged:
            result.horizon_precision = proper / judged
