"""The event-driven simulator of Section 5.1.

Four event kinds drive the system, exactly as in the paper: (1) new
connection; (2) connection termination; (3) server removal; (4) server
addition (recovery).  We add per-packet events in between -- every packet
traverses the load balancer so that connection-tracking state (LRU
recency, safety re-checks on horizon changes) evolves faithfully -- plus
periodic metric sampling.

PCC accounting follows Section 2.1: a connection's *true destination* is
the destination of its first packet; a later packet dispatched elsewhere is
a PCC violation (counted once per connection, after which the client is
assumed to reset the connection); connections whose destination is removed
are *inevitably broken* and excluded from the violation count.

Adversarial churn is layered on top via :mod:`repro.faults`: a
:class:`~repro.faults.injector.ChaosInjector` schedules crash / flap /
correlated-group / unannounced-addition events as a seventh event kind,
and a :class:`~repro.faults.health.HealthMonitor` adds probation delay to
readmissions.  With no injector the event sequence and RNG stream are
byte-identical to the seed engine.
"""

from __future__ import annotations

import heapq
import random
from itertools import count
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.interfaces import LoadBalancer, Name
from repro.hashing.mix import splitmix64
from repro.obs import metrics as obs_metrics
from repro.obs.collectors import instrument_balancer
from repro.obs.registry import coalesce
from repro.obs.timers import Stopwatch
from repro.sim.backend import HorizonManager
from repro.sim.distributions import Distribution
from repro.sim.metrics import LoadTracker, SimResult
from repro.sim.workload import Flow, WorkloadGenerator

# Event kinds (heap entries are (time, tiebreak, kind, payload)).
_ARRIVAL = 0
_PACKET = 1
_FLOW_END = 2
_REMOVAL = 3
_RECOVERY = 4
_SAMPLE = 5
_FAULT = 6


class EventDrivenSimulation:
    """One simulation run binding a workload, a backend, and one LB."""

    def __init__(
        self,
        balancer: LoadBalancer,
        workload: WorkloadGenerator,
        working_servers: List[Name],
        standby_servers: List[Name],
        duration_s: float,
        update_rate_per_min: float,
        downtime_dist: Distribution,
        seed: int = 0,
        sample_interval: float = 1.0,
        warmup_s: Optional[float] = None,
        injector=None,
        coalesce_packets: bool = False,
        registry=None,
    ):
        self.lb = balancer
        self.injector = injector
        self.coalesce_packets = coalesce_packets
        # Observability: a NullRegistry by default.  Per-packet handlers
        # stay uninstrumented; obs work happens only at sample events and
        # finalization (plus one guarded delta-read per *first* packet),
        # so a disabled run pays nothing and a live run pays O(samples).
        self.obs = coalesce(registry)
        self._obs_on = self.obs.enabled
        if self._obs_on:
            instrument_balancer(self.obs, balancer)
        self._first_dispatches = 0
        self._first_tracked = 0
        self._batched_packets = 0
        # Resolve the per-packet LB capability probes once: these getattr
        # probes used to run on every packet of the hot loop.
        self._note_flow_start = getattr(balancer, "note_flow_start", None)
        self._note_flow_end = getattr(balancer, "note_flow_end", None)
        self._syn_aware = bool(getattr(balancer, "dispatches_new_connections", False))
        # Never-slower guarantee: coalescing only pays when the LB's batch
        # path actually vectorizes; otherwise stay on the scalar loop.
        self._batch_effective = bool(getattr(balancer, "batch_effective", False))
        self.workload = workload
        self.duration_s = duration_s
        self.sample_interval = sample_interval
        # Balance metrics ignore the ramp-up transient (few flows over many
        # servers trivially yields huge oversubscription ratios).
        self.warmup_s = 0.2 * duration_s if warmup_s is None else warmup_s
        self.manager = HorizonManager([balancer], standby_servers)
        self.downtime_dist = downtime_dist
        self._removal_rate = update_rate_per_min / 60.0
        self._rng = random.Random(splitmix64(seed ^ 0xBEEF_CAFE))

        # Up-server list with O(1) random choice and removal.
        self._up: List[Name] = list(working_servers)
        self._up_index: Dict[Name, int] = {s: i for i, s in enumerate(self._up)}

        self._heap: list = []
        self._seq = count()
        self._load = LoadTracker()
        self._flows_by_server: Dict[Name, Set[Flow]] = {}
        self.result = SimResult()

        # Fault attribution: violations within the injector's window after
        # any chaos event count as violations-under-fault.
        self._now = 0.0
        self._last_fault_time = float("-inf")
        self._fault_window = injector.fault_window_s if injector is not None else 0.0
        self._probated: Set[Name] = set()

        # TTL-based CT tables carry a simulated clock we must advance.
        from repro.ct.ttl import Clock as _SimClock

        ct = getattr(balancer, "ct", None)
        clock = getattr(ct, "clock", None)
        self._sim_clock = clock if isinstance(clock, _SimClock) else None
        self._ct_stats = ct.stats if ct is not None else None

    # ----------------------------------------------------------- events
    def _push(self, when: float, kind: int, payload=None) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), kind, payload))

    def _pick_up_server(self) -> Optional[Name]:
        if len(self._up) <= 1:
            return None  # never remove the last working server
        return self._up[self._rng.randrange(len(self._up))]

    def _mark_down(self, name: Name) -> None:
        position = self._up_index.pop(name)
        last = self._up.pop()
        if last != name:
            self._up[position] = last
            self._up_index[last] = position

    def _mark_up(self, name: Name) -> None:
        self._up_index[name] = len(self._up)
        self._up.append(name)

    # ------------------------------------------------- injector interface
    @property
    def up_index(self) -> Dict[Name, int]:
        """Live-server membership view (read-only use by the injector)."""
        return self._up_index

    def pick_up_server(self) -> Optional[Name]:
        return self._pick_up_server()

    def push_fault(self, when: float, event) -> None:
        self._push(when, _FAULT, event)

    def note_fault(self, now: float) -> None:
        self._last_fault_time = now

    def crash_server(self, name: Name, now: float, downtime: Optional[float] = None) -> float:
        """Take ``name`` down immediately; returns the scheduled recovery
        time (downtime, or the given override, plus any probation delay)."""
        self._mark_down(name)
        self.result.removals += 1
        # Churn exposure: this event can break at most the flows active
        # right now (the invariant-monitor bound on PCC accounting).
        self.result.churn_exposed_flows += self._load.active_flows
        # Connections to the victim are inevitably broken (Section 2.1).
        doomed = self._flows_by_server.pop(name, set())
        for flow in doomed:
            flow.broken = True
            flow.inevitable = True
            self._load.flow_ended(name)
        self.result.inevitably_broken += len(doomed)
        self.manager.remove_server(name)
        if downtime is None:
            downtime = self.downtime_dist.sample(self._rng)
        delay = 0.0
        health = self.injector.health if self.injector is not None else None
        if health is not None:
            delay = health.record_failure(name, now)
            if delay > 0:
                self._probated.add(name)
        recovery_at = now + downtime + delay
        self._push(recovery_at, _RECOVERY, name)
        return recovery_at

    def admit_unannounced(self, name: Name, now: float) -> None:
        """A never-announced server joins ``W`` (§2.3 contract violation).

        Records the paper's breakage prediction at this instant: under a
        consistent hash, each active connection re-steers onto the new
        server with probability ``1/(|W|+1)``, and none of the re-steered
        ones was tracked (the server was never in ``H``)."""
        self.result.predicted_unannounced_breakage += self._load.active_flows / (
            len(self._up) + 1
        )
        self.result.churn_exposed_flows += self._load.active_flows
        self.lb.force_add_working_server(name)
        self._mark_up(name)
        self.result.unannounced_additions += 1
        self.result.additions += 1

    # ------------------------------------------------------------- run
    def run(self) -> SimResult:
        watch = Stopwatch()
        self._push(self.workload.next_arrival_gap(), _ARRIVAL)
        if self._removal_rate > 0:
            self._push(self._rng.expovariate(self._removal_rate), _REMOVAL)
        self._push(self.sample_interval, _SAMPLE)
        if self.injector is not None:
            self.injector.prime(self)

        heap = self._heap
        sim_clock = self._sim_clock
        coalesce = self.coalesce_packets and self._batch_effective
        while heap:
            when, _, kind, payload = heapq.heappop(heap)
            if when > self.duration_s:
                break
            self._now = when
            if sim_clock is not None:
                sim_clock.now = when
            if kind == _PACKET:
                if coalesce and heap and heap[0][0] == when and heap[0][2] == _PACKET:
                    batch = [payload]
                    while heap and heap[0][0] == when and heap[0][2] == _PACKET:
                        batch.append(heapq.heappop(heap)[3])
                    self._on_packet_batch(batch)
                else:
                    self._on_packet(payload)
            elif kind == _ARRIVAL:
                self._on_arrival(when)
            elif kind == _FLOW_END:
                self._on_flow_end(payload)
            elif kind == _REMOVAL:
                self._on_removal(when)
            elif kind == _RECOVERY:
                self._on_recovery(payload)
            elif kind == _FAULT:
                self.injector.apply(self, payload, when)
            else:
                self._on_sample(when)

        self._finalize()
        self.result.wall_seconds = watch.stop()
        if self._obs_on:
            self.obs.histogram(
                obs_metrics.WALL_SECONDS, "Wall time by phase", phase="simulate"
            ).observe(self.result.wall_seconds)
        return self.result

    # --------------------------------------------------------- handlers
    def _on_arrival(self, now: float) -> None:
        flow = self.workload.make_flow(now)
        self.result.flows_started += 1
        self._push(now, _PACKET, flow)
        self._push(flow.end, _FLOW_END, flow)
        self._push(now + self.workload.next_arrival_gap(), _ARRIVAL)

    def _on_packet(self, flow: Flow) -> None:
        if flow.broken:
            return
        self.result.packets_processed += 1
        if flow.true_destination is None:
            self._dispatch_first_packet(flow)
        else:
            destination = self.lb.get_destination(flow.key)
            if destination != flow.true_destination:
                self._break_flow(flow)
                return
        self._advance_flow(flow)

    def _on_packet_batch(self, flows: List[Flow]) -> None:
        """Drain a run of same-timestamp packet events through the LB's
        batch path.

        First packets keep the scalar path (they may involve load-aware
        placement and flow-start notifications); packets of established
        flows are dispatched in one ``get_destinations_batch`` call.
        Same-timestamp flows have distinct keys (the workload generator
        guarantees key uniqueness), so regrouping them cannot change any
        destination the scalar order would have produced.
        """
        established: List[Flow] = []
        for flow in flows:
            if flow.broken:
                continue
            self.result.packets_processed += 1
            if flow.true_destination is None:
                self._dispatch_first_packet(flow)
                self._advance_flow(flow)
            else:
                established.append(flow)
        if not established:
            return
        self._batched_packets += len(established)
        keys = np.fromiter(
            (flow.key for flow in established), dtype=np.uint64, count=len(established)
        )
        destinations = self.lb.get_destinations_batch(keys)
        for flow, destination in zip(established, destinations):
            if flow.broken:
                # Defensive: each flow has at most one packet event in the
                # heap (the next is pushed only while processing the current
                # one), so nothing in this batch can have broken it already.
                continue
            if destination != flow.true_destination:
                self._break_flow(flow)
            else:
                self._advance_flow(flow)

    def _dispatch_first_packet(self, flow: Flow) -> None:
        # First packet (TCP SYN): load-aware LBs may run their
        # new-connection placement here (Section 6.3).
        if self._obs_on:
            # Per-connection tracked-fraction telemetry: a CT insert
            # during the first dispatch means this flow was classified
            # unsafe.  Gated so disabled runs skip even the delta read.
            stats = self._ct_stats
            inserts_before = stats.inserts if stats is not None else 0
            self._first_dispatches += 1
        if self._syn_aware:
            destination = self.lb.get_destination(flow.key, True)
        else:
            destination = self.lb.get_destination(flow.key)
        if self._obs_on and stats is not None and stats.inserts > inserts_before:
            self._first_tracked += 1
        flow.true_destination = destination
        self._load.flow_started(destination)
        if self._note_flow_start is not None:
            self._note_flow_start(destination)
        self._flows_by_server.setdefault(destination, set()).add(flow)

    def _break_flow(self, flow: Flow) -> None:
        # PCC violation: the connection is reset by the new backend.
        flow.broken = True
        self.result.pcc_violations += 1
        if self._now - self._last_fault_time <= self._fault_window:
            self.result.violations_under_fault += 1
        self._retire(flow)

    def _advance_flow(self, flow: Flow) -> None:
        flow.next_packet += 1
        if flow.next_packet < len(flow.packet_times):
            self._push(flow.packet_times[flow.next_packet], _PACKET, flow)

    def _retire(self, flow: Flow) -> None:
        """Remove a finished/broken flow from load accounting."""
        if flow.true_destination is not None:
            self._load.flow_ended(flow.true_destination)
            if self._note_flow_end is not None:
                self._note_flow_end(flow.true_destination)
            bucket = self._flows_by_server.get(flow.true_destination)
            if bucket is not None:
                bucket.discard(flow)

    def _on_flow_end(self, flow: Flow) -> None:
        if flow.broken:
            return
        flow.broken = True  # terminated; ignore any same-time stragglers
        self.result.flows_completed += 1
        self._retire(flow)

    def _on_removal(self, now: float) -> None:
        victim = self._pick_up_server()
        if victim is not None:
            self.crash_server(victim, now)
        self._push(now + self._rng.expovariate(self._removal_rate), _REMOVAL)

    def _on_recovery(self, server: Name) -> None:
        self._mark_up(server)
        self.result.additions += 1
        self.result.churn_exposed_flows += self._load.active_flows
        self.manager.recover_server(server)
        if server in self._probated:
            self._probated.discard(server)
            self.result.probation_readmissions += 1
        if self.injector is not None and self.injector.health is not None:
            self.injector.health.note_recovered(server, self._now)

    def _on_sample(self, now: float) -> None:
        oversub = self._load.oversubscription(len(self._up))
        if oversub is not None and now >= self.warmup_s:
            self.result.oversubscription_series.append(oversub)
            if oversub > self.result.max_oversubscription:
                self.result.max_oversubscription = oversub
        tracked = self.lb.tracked_connections
        self.result.tracked_series.append(tracked)
        self.result.sample_times.append(now)
        if tracked > self.result.peak_tracked:
            self.result.peak_tracked = tracked
        if self._obs_on:
            self._publish_telemetry()
            self.obs.export_snapshot(t=now)
        # Re-arm only while the next sample still lands inside the run:
        # an unconditional re-push leaks one past-the-end event per run
        # and, worse, kept the sample chain alive in the heap on long
        # simulations.  Samples processed are identical either way (the
        # loop drops events past duration_s).
        if now + self.sample_interval <= self.duration_s:
            self._push(now + self.sample_interval, _SAMPLE)

    def _publish_telemetry(self) -> None:
        """Flush the engine's own tallies into the registry (the CT/CH
        series come from collectors at snapshot time)."""
        obs = self.obs
        result = self.result
        obs.counter(obs_metrics.FLOWS, "Flows dispatched").set_total(
            self._first_dispatches
        )
        obs.counter(
            obs_metrics.TRACKED_FLOWS, "Flows tracked at first dispatch"
        ).set_total(self._first_tracked)
        if self._first_dispatches:
            obs.gauge(
                obs_metrics.OBSERVED_TRACKED_FRACTION, "Observed tracked fraction"
            ).set(self._first_tracked / self._first_dispatches)
        obs.counter(obs_metrics.PCC_VIOLATIONS, "PCC violations").set_total(
            result.pcc_violations
        )
        obs.counter(
            obs_metrics.INEVITABLY_BROKEN, "Inevitably broken flows"
        ).set_total(result.inevitably_broken)
        obs.counter(
            obs_metrics.CHURN_EXPOSED, "Flows exposed to backend churn (upper bound)"
        ).set_total(result.churn_exposed_flows)
        obs.counter(
            obs_metrics.BACKEND_EVENTS, "Backend change events", kind="removal"
        ).set_total(result.removals)
        obs.counter(
            obs_metrics.BACKEND_EVENTS, "Backend change events", kind="addition"
        ).set_total(result.additions)
        obs.counter(
            obs_metrics.BACKEND_EVENTS, "Backend change events", kind="unannounced"
        ).set_total(result.unannounced_additions)
        obs.counter(
            obs_metrics.DISPATCH_PACKETS, "Packets by dispatch path", path="batch"
        ).set_total(self._batched_packets)
        obs.counter(
            obs_metrics.DISPATCH_PACKETS, "Packets by dispatch path", path="scalar"
        ).set_total(result.packets_processed - self._batched_packets)

    def _finalize(self) -> None:
        result = self.result
        result.surprise_additions = self.manager.surprise_additions
        result.final_tracked = self.lb.tracked_connections
        ct = getattr(self.lb, "ct", None)
        if ct is not None:
            result.ct_evictions = ct.stats.evictions
            result.ct_hit_rate = ct.stats.hit_rate
            result.ct_peak_size = ct.stats.peak_size
            if ct.stats.peak_size > result.peak_tracked:
                result.peak_tracked = ct.stats.peak_size
        # LB-pool balancers expose their sync channel's degradation stats.
        channel = getattr(self.lb, "channel", None)
        if channel is not None:
            result.sync_failures = channel.stats.lost_attempts
            result.unreplicated_entries = channel.stats.unreplicated
        if self._obs_on:
            self._publish_telemetry()
