"""Connection workload generation for the event-driven simulator.

Connections arrive as a Poisson process; each new connection draws a size
(packet count) and a duration, and its remaining packets are spread over
the duration as uniform order statistics -- the continuous limit of the
paper's "flow packets in a time interval follow a binomial distribution,
with a probability that reflects the proportion of the interval size to
the remaining flow duration".

Connection keys are unique 64-bit integers from a splitmix64 stream (the
5-tuple hash a real LB would compute; uniqueness avoids accidental flow
collisions in statistics).

Closed-loop experiments need *time-varying* arrival rates (flash crowds,
diurnal cycles) so the autoscaler has something to forecast.  A
:class:`RateProfile` turns the homogeneous Poisson process into a
non-homogeneous one via Lewis-Shedler thinning, entirely inside the
generator -- ``next_arrival_gap()`` keeps its zero-argument signature, so
every existing driver (and subclass) is untouched, and with no profile
the RNG stream is bit-identical to the seed generator.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional

from repro.hashing.mix import splitmix64
from repro.sim.distributions import Distribution


class RateProfile:
    """A time-varying arrival-rate multiplier ``factor(t) in (0, peak]``.

    ``peak`` must upper-bound ``factor`` over the run: thinning draws
    candidate arrivals at ``base_rate * peak`` and accepts each with
    probability ``factor(t) / peak``.
    """

    def __init__(self, factor: Callable[[float], float], peak: float):
        if peak <= 0:
            raise ValueError("peak must be positive")
        self.factor = factor
        self.peak = peak
        #: Declarative recipe for profiles built via the classmethods
        #: (``{"kind": ..., **params}``); lets ``repro.sim.persist``
        #: round-trip a config.  None for hand-rolled callables.
        self.spec: Optional[dict] = None

    @classmethod
    def flat(cls) -> "RateProfile":
        profile = cls(lambda t: 1.0, 1.0)
        profile.spec = {"kind": "flat"}
        return profile

    @classmethod
    def flash_crowd(
        cls, start: float, ramp_s: float, magnitude: float, hold_s: float = 0.0
    ) -> "RateProfile":
        """Baseline load that ramps to ``magnitude``x at ``start`` over
        ``ramp_s`` seconds, holds, then ramps back down symmetrically."""
        if magnitude < 1.0:
            raise ValueError("magnitude must be >= 1")
        if ramp_s <= 0:
            raise ValueError("ramp_s must be positive")

        def factor(t: float) -> float:
            if t < start:
                return 1.0
            if t < start + ramp_s:  # ramp up
                return 1.0 + (magnitude - 1.0) * (t - start) / ramp_s
            if t < start + ramp_s + hold_s:  # plateau
                return magnitude
            down = t - (start + ramp_s + hold_s)
            if down < ramp_s:  # ramp down
                return magnitude - (magnitude - 1.0) * down / ramp_s
            return 1.0

        profile = cls(factor, magnitude)
        profile.spec = {
            "kind": "flash_crowd",
            "start": start,
            "ramp_s": ramp_s,
            "magnitude": magnitude,
            "hold_s": hold_s,
        }
        return profile

    @classmethod
    def diurnal(cls, period_s: float, amplitude: float = 0.5) -> "RateProfile":
        """A day/night sinusoid: ``1 + amplitude * sin(2 pi t / period)``."""
        if not 0.0 < amplitude < 1.0:
            raise ValueError("amplitude must be in (0, 1)")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        two_pi = 2.0 * math.pi

        def factor(t: float) -> float:
            return 1.0 + amplitude * math.sin(two_pi * t / period_s)

        profile = cls(factor, 1.0 + amplitude)
        profile.spec = {"kind": "diurnal", "period_s": period_s, "amplitude": amplitude}
        return profile


class Flow:
    """One simulated connection."""

    __slots__ = (
        "flow_id",
        "key",
        "start",
        "duration",
        "size",
        "packet_times",
        "next_packet",
        "true_destination",
        "broken",
        "inevitable",
    )

    def __init__(self, flow_id: int, key: int, start: float, duration: float, size: int):
        self.flow_id = flow_id
        self.key = key
        self.start = start
        self.duration = duration
        self.size = size
        self.packet_times: List[float] = []
        self.next_packet = 0
        self.true_destination = None
        self.broken = False       # PCC violated (or inevitably broken)
        self.inevitable = False   # destination server was removed

    @property
    def end(self) -> float:
        return self.start + self.duration


class WorkloadGenerator:
    """Poisson connection arrivals with drawn sizes and durations."""

    def __init__(
        self,
        arrival_rate: float,
        size_dist: Distribution,
        duration_dist: Distribution,
        seed: int = 0,
        rate_profile: Optional[RateProfile] = None,
    ):
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        self.arrival_rate = arrival_rate
        self.size_dist = size_dist
        self.duration_dist = duration_dist
        self.rate_profile = rate_profile
        self._rng = random.Random(splitmix64(seed ^ 0x7157_9A7C))
        self._key_state = splitmix64(seed ^ 0x5DEE_CE66)
        self._next_id = 0
        # Arrival-clock position for thinning: gaps are relative, so the
        # generator keeps its own cumulative arrival time (the engine's
        # usage sums gaps the same way, so the clocks agree).
        self._arrival_clock = 0.0

    def next_arrival_gap(self) -> float:
        """Inter-arrival time to the next connection."""
        if self.rate_profile is None:
            return self._rng.expovariate(self.arrival_rate)
        # Lewis-Shedler thinning: propose at the envelope rate
        # base * peak, accept with factor(t)/peak.  Signature stays
        # zero-argument; the internal clock tracks absolute time.
        profile = self.rate_profile
        envelope = self.arrival_rate * profile.peak
        rng = self._rng
        start = self._arrival_clock
        t = start
        while True:
            t += rng.expovariate(envelope)
            if rng.random() * profile.peak <= profile.factor(t):
                self._arrival_clock = t
                return t - start

    def make_flow(self, now: float) -> Flow:
        """Materialize the connection arriving at time ``now``.

        ``packet_times`` holds the whole per-flow packet schedule: the
        first packet at ``now``, the rest uniform in ``(now, now + d)``.
        """
        self._key_state = splitmix64(self._key_state)
        size = max(1, int(self.size_dist.sample(self._rng)))
        duration = max(1e-6, self.duration_dist.sample(self._rng))
        flow = Flow(self._next_id, self._key_state, now, duration, size)
        self._next_id += 1
        rng = self._rng
        if size == 1:
            flow.packet_times = [now]
        else:
            rest = [now + rng.random() * duration for _ in range(size - 1)]
            rest.sort()
            flow.packet_times = [now] + rest
        return flow

    @property
    def flows_created(self) -> int:
        return self._next_id
