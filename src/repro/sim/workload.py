"""Connection workload generation for the event-driven simulator.

Connections arrive as a Poisson process; each new connection draws a size
(packet count) and a duration, and its remaining packets are spread over
the duration as uniform order statistics -- the continuous limit of the
paper's "flow packets in a time interval follow a binomial distribution,
with a probability that reflects the proportion of the interval size to
the remaining flow duration".

Connection keys are unique 64-bit integers from a splitmix64 stream (the
5-tuple hash a real LB would compute; uniqueness avoids accidental flow
collisions in statistics).
"""

from __future__ import annotations

import random
from typing import List

from repro.hashing.mix import splitmix64
from repro.sim.distributions import Distribution


class Flow:
    """One simulated connection."""

    __slots__ = (
        "flow_id",
        "key",
        "start",
        "duration",
        "size",
        "packet_times",
        "next_packet",
        "true_destination",
        "broken",
        "inevitable",
    )

    def __init__(self, flow_id: int, key: int, start: float, duration: float, size: int):
        self.flow_id = flow_id
        self.key = key
        self.start = start
        self.duration = duration
        self.size = size
        self.packet_times: List[float] = []
        self.next_packet = 0
        self.true_destination = None
        self.broken = False       # PCC violated (or inevitably broken)
        self.inevitable = False   # destination server was removed

    @property
    def end(self) -> float:
        return self.start + self.duration


class WorkloadGenerator:
    """Poisson connection arrivals with drawn sizes and durations."""

    def __init__(
        self,
        arrival_rate: float,
        size_dist: Distribution,
        duration_dist: Distribution,
        seed: int = 0,
    ):
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        self.arrival_rate = arrival_rate
        self.size_dist = size_dist
        self.duration_dist = duration_dist
        self._rng = random.Random(splitmix64(seed ^ 0x7157_9A7C))
        self._key_state = splitmix64(seed ^ 0x5DEE_CE66)
        self._next_id = 0

    def next_arrival_gap(self) -> float:
        """Inter-arrival time to the next connection."""
        return self._rng.expovariate(self.arrival_rate)

    def make_flow(self, now: float) -> Flow:
        """Materialize the connection arriving at time ``now``.

        ``packet_times`` holds the whole per-flow packet schedule: the
        first packet at ``now``, the rest uniform in ``(now, now + d)``.
        """
        self._key_state = splitmix64(self._key_state)
        size = max(1, int(self.size_dist.sample(self._rng)))
        duration = max(1e-6, self.duration_dist.sample(self._rng))
        flow = Flow(self._next_id, self._key_state, now, duration, size)
        self._next_id += 1
        rng = self._rng
        if size == 1:
            flow.packet_times = [now]
        else:
            rest = [now + rng.random() * duration for _ in range(size - 1)]
            rest.sort()
            flow.packet_times = [now] + rest
        return flow

    @property
    def flows_created(self) -> int:
        return self._next_id
