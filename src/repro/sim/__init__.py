"""Event-driven simulation of hash-based stateful load balancing (Sec. 5.1)."""

from repro.sim.distributions import (
    BoundedPareto,
    Constant,
    Distribution,
    Exponential,
    LogNormal,
    Mixture,
    hadoop_flow_duration,
    hadoop_flow_size,
    server_downtime,
)
from repro.sim.engine import EventDrivenSimulation
from repro.sim.backend import HorizonManager
from repro.sim.metrics import LoadTracker, SimResult, merge_sim_results
from repro.sim.scenario import (
    PAPER_HORIZON,
    PAPER_N_SERVERS,
    SimulationConfig,
    build_balancer,
    run_paired,
    run_simulation,
)
from repro.sim.workload import Flow, WorkloadGenerator

__all__ = [
    "Distribution",
    "Constant",
    "Exponential",
    "LogNormal",
    "BoundedPareto",
    "Mixture",
    "hadoop_flow_size",
    "hadoop_flow_duration",
    "server_downtime",
    "EventDrivenSimulation",
    "HorizonManager",
    "LoadTracker",
    "SimResult",
    "merge_sim_results",
    "SimulationConfig",
    "run_simulation",
    "run_paired",
    "build_balancer",
    "WorkloadGenerator",
    "Flow",
    "PAPER_N_SERVERS",
    "PAPER_HORIZON",
]
