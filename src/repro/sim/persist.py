"""Persist the *effective* configuration of a simulation run.

``repro simulate`` (and ``repro scenario run``) assemble a
:class:`~repro.sim.scenario.SimulationConfig` from CLI flags, scenario
compilation, seeded fault-schedule generation, and scale presets -- and
until now none of that was recoverable from a run's artifacts.  This
module serializes the full effective config (seed, family, mode, chaos
schedule, rate profile, distributions, weights) to JSON and loads it
back, so any run is reproducible from its ``--config-out`` file alone::

    repro simulate --scenario flash-crowd --config-out run.json
    repro simulate --config run.json          # byte-identical re-run

Runtime-only objects are excluded by design: the ``registry`` field is
an attached live object (re-attach one at load time; the
obs-differential invariant guarantees it cannot change results).

Rate profiles serialize via their declarative ``spec`` (recorded by the
classmethod constructors); a hand-rolled ``RateProfile`` with no spec is
rejected with an actionable error rather than silently dropped.
"""

from __future__ import annotations

import json
from dataclasses import fields
from typing import Any, Dict, List, Optional

from repro.faults.events import FaultEvent, FaultSchedule
from repro.sim.distributions import (
    BoundedPareto,
    Constant,
    Distribution,
    Exponential,
    LogNormal,
    Mixture,
)
from repro.sim.scenario import SimulationConfig
from repro.sim.workload import RateProfile

#: Format tag so future layout changes stay loadable.
FORMAT = "repro-simulation-config/1"


class PersistError(ValueError):
    """A config (or one of its parts) cannot be serialized/loaded."""


# ----------------------------------------------------------- distributions
def dist_to_dict(dist: Distribution) -> Dict[str, Any]:
    if isinstance(dist, Constant):
        return {"kind": "constant", "value": dist.value}
    if isinstance(dist, Exponential):
        return {"kind": "exponential", "mean": dist.mean()}
    if isinstance(dist, LogNormal):
        import math

        return {
            "kind": "lognormal",
            "median": math.exp(dist.mu),
            "sigma": dist.sigma,
        }
    if isinstance(dist, BoundedPareto):
        return {
            "kind": "bounded_pareto",
            "alpha": dist.alpha,
            "minimum": dist.minimum,
            "maximum": dist.maximum,
        }
    if isinstance(dist, Mixture):
        components: List[List[Any]] = []
        previous = 0.0
        for threshold, part in zip(dist._weights, dist._dists):
            components.append([threshold - previous, dist_to_dict(part)])
            previous = threshold
        return {"kind": "mixture", "components": components}
    raise PersistError(
        f"cannot serialize distribution {type(dist).__name__}; "
        "supported: Constant, Exponential, LogNormal, BoundedPareto, Mixture"
    )


def dist_from_dict(payload: Dict[str, Any]) -> Distribution:
    kind = payload.get("kind")
    if kind == "constant":
        return Constant(payload["value"])
    if kind == "exponential":
        return Exponential(payload["mean"])
    if kind == "lognormal":
        return LogNormal(median=payload["median"], sigma=payload["sigma"])
    if kind == "bounded_pareto":
        return BoundedPareto(payload["alpha"], payload["minimum"], payload["maximum"])
    if kind == "mixture":
        return Mixture(
            [(weight, dist_from_dict(part)) for weight, part in payload["components"]]
        )
    raise PersistError(f"unknown distribution kind {kind!r}")


# ---------------------------------------------------------- fault schedule
_EVENT_DEFAULTS = {f.name: f.default for f in fields(FaultEvent)}


def _event_to_dict(event: FaultEvent) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"time": event.time, "kind": event.kind}
    for name, default in _EVENT_DEFAULTS.items():
        if name in ("time", "kind"):
            continue
        value = getattr(event, name)
        if name == "targets":
            if value:
                payload[name] = list(value)
            continue
        if value != default:
            payload[name] = value
    return payload


def schedule_to_list(schedule: FaultSchedule) -> List[Dict[str, Any]]:
    return [_event_to_dict(event) for event in schedule]


def schedule_from_list(events: List[Dict[str, Any]]) -> FaultSchedule:
    parsed = []
    for payload in events:
        kwargs = dict(payload)
        if "targets" in kwargs:
            kwargs["targets"] = tuple(kwargs["targets"])
        parsed.append(FaultEvent(**kwargs))
    return FaultSchedule(tuple(parsed))


# ------------------------------------------------------------ rate profile
def profile_to_dict(profile: RateProfile) -> Dict[str, Any]:
    if profile.spec is None:
        raise PersistError(
            "rate profile has no declarative spec (built from a raw callable); "
            "construct it via RateProfile.flat/flash_crowd/diurnal to persist it"
        )
    return dict(profile.spec)


def profile_from_dict(payload: Dict[str, Any]) -> RateProfile:
    kind = payload.get("kind")
    params = {k: v for k, v in payload.items() if k != "kind"}
    factory = {
        "flat": RateProfile.flat,
        "flash_crowd": RateProfile.flash_crowd,
        "diurnal": RateProfile.diurnal,
    }.get(kind)
    if factory is None:
        raise PersistError(f"unknown rate-profile kind {kind!r}")
    return factory(**params)


# ----------------------------------------------------- name-keyed mappings
def _pairs(mapping: Optional[Dict[Any, Any]]) -> Optional[List[List[Any]]]:
    """Encode a name-keyed dict as [name, value] pairs: JSON object keys
    are always strings, which would silently corrupt integer server names."""
    if mapping is None:
        return None
    return [[name, value] for name, value in mapping.items()]


def _unpairs(pairs: Optional[List[List[Any]]]) -> Optional[Dict[Any, Any]]:
    if pairs is None:
        return None
    return {name: value for name, value in pairs}


# ------------------------------------------------------------- the config
#: Fields that carry live runtime objects and are never persisted.
_RUNTIME_FIELDS = ("registry",)
#: Fields with dedicated encoders.
_SPECIAL_FIELDS = (
    "fault_schedule",
    "rate_profile",
    "size_dist",
    "duration_dist",
    "downtime_dist",
    "server_weights",
    "probe_loss_by_server",
) + _RUNTIME_FIELDS


def config_to_dict(config: SimulationConfig) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"format": FORMAT}
    for f in fields(SimulationConfig):
        if f.name in _SPECIAL_FIELDS:
            continue
        payload[f.name] = getattr(config, f.name)
    schedule = config.fault_schedule
    payload["fault_schedule"] = (
        schedule_to_list(schedule) if schedule is not None else None
    )
    payload["rate_profile"] = (
        profile_to_dict(config.rate_profile)
        if config.rate_profile is not None
        else None
    )
    for name in ("size_dist", "duration_dist", "downtime_dist"):
        dist = getattr(config, name)
        payload[name] = dist_to_dict(dist) if dist is not None else None
    payload["server_weights"] = _pairs(config.server_weights)
    payload["probe_loss_by_server"] = _pairs(config.probe_loss_by_server)
    return payload


def config_from_dict(payload: Dict[str, Any]) -> SimulationConfig:
    if payload.get("format") != FORMAT:
        raise PersistError(
            f"unrecognized config format {payload.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    known = {f.name for f in fields(SimulationConfig)}
    kwargs: Dict[str, Any] = {}
    for name, value in payload.items():
        if name == "format" or name in _RUNTIME_FIELDS:
            continue
        if name not in known:
            raise PersistError(f"unknown config field {name!r}")
        kwargs[name] = value
    if kwargs.get("fault_schedule") is not None:
        kwargs["fault_schedule"] = schedule_from_list(kwargs["fault_schedule"])
    if kwargs.get("rate_profile") is not None:
        kwargs["rate_profile"] = profile_from_dict(kwargs["rate_profile"])
    for name in ("size_dist", "duration_dist", "downtime_dist"):
        if kwargs.get(name) is not None:
            kwargs[name] = dist_from_dict(kwargs[name])
    kwargs["server_weights"] = _unpairs(kwargs.get("server_weights"))
    kwargs["probe_loss_by_server"] = _unpairs(kwargs.get("probe_loss_by_server"))
    if kwargs.get("ch_kwargs") is None:
        kwargs["ch_kwargs"] = {}
    return SimulationConfig(**kwargs)


def save_config(config: SimulationConfig, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(config_to_dict(config), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_config(path: str) -> SimulationConfig:
    with open(path) as handle:
        return config_from_dict(json.load(handle))
