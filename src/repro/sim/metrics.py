"""Metrics collection for the event-driven simulation.

Tracks exactly what Section 5.1 reports:

- **PCC violations**: unsafe connections that broke (each counted once;
  inevitably-broken connections are excluded per the paper);
- **maximum oversubscription**: max over sampling instants of
  ``most-loaded server's active connections / (active connections /
  active servers)``;
- **tracked connections**: CT table occupancy over time;
- bookkeeping: flows started/completed, surprise additions, CT stats;
- **resilience counters** (chaos runs, :mod:`repro.faults`): fault events
  by kind, violations attributed to faults, probation re-admissions, CT
  sync failures, and the paper's §2.3 predicted breakage for unannounced
  additions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.interfaces import Name


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    pcc_violations: int = 0
    inevitably_broken: int = 0
    flows_started: int = 0
    flows_completed: int = 0
    packets_processed: int = 0
    removals: int = 0
    additions: int = 0
    surprise_additions: int = 0
    max_oversubscription: float = 0.0
    oversubscription_series: List[float] = field(default_factory=list)
    #: Post-warmup max coefficient of variation of per-server active
    #: connections (capacity-normalized on weighted fleets); the balance
    #: figure scenario envelopes bound.
    max_balance_cv: float = 0.0
    balance_cv_series: List[float] = field(default_factory=list)
    tracked_series: List[int] = field(default_factory=list)
    sample_times: List[float] = field(default_factory=list)
    peak_tracked: int = 0
    final_tracked: int = 0
    ct_evictions: int = 0
    ct_hit_rate: float = 0.0
    #: CT occupancy high-water mark straight from ``CTStats.peak_size``
    #: (``peak_tracked`` folds in the sampled series; this is the exact
    #: per-insert mark, surfaced for the resilience report and obs layer).
    ct_peak_size: int = 0
    #: Upper bound on flows that churn could have broken: the sum of
    #: active flows at each backend-change instant.  The PCC-accounting
    #: invariant monitor checks violations + inevitable against it.
    churn_exposed_flows: int = 0
    wall_seconds: float = 0.0
    # Resilience counters (zero unless a ChaosInjector drove the run).
    fault_events: int = 0
    crashes: int = 0
    flaps: int = 0
    correlated_failures: int = 0
    unannounced_additions: int = 0
    predicted_unannounced_breakage: float = 0.0
    violations_under_fault: int = 0
    probation_readmissions: int = 0
    sync_failures: int = 0
    unreplicated_entries: int = 0
    # Closed-loop counters (zero unless a ControlLoop drove the run).
    #: Flows dispatched at a server that had silently died but was not
    #: yet evicted by the prober (the detection-lag blackhole window).
    blackholed_flows: int = 0
    #: Silent outages that recovered before the prober ever evicted them.
    undetected_blips: int = 0
    scale_outs: int = 0
    scale_ins: int = 0
    control_ticks: int = 0
    probes_sent: int = 0
    probe_evictions: int = 0
    probe_false_evictions: int = 0
    probe_readmissions: int = 0
    phantom_announcements: int = 0
    #: Horizon announcement fidelity vs realized membership changes
    #: (None when no additions/announcements were judged).
    horizon_precision: Optional[float] = None
    horizon_recall: Optional[float] = None
    #: Flow-weighted mean of |H|/(|W|+|H|) over first dispatches -- the
    #: Theorem 4.2 expectation when H and W vary mid-run.
    mean_expected_tracked_fraction: Optional[float] = None
    #: Fraction of flows CT-tracked at first dispatch (None only when no
    #: flow was dispatched; ~1 under full CT, 0 under stateless).
    observed_tracked_fraction: Optional[float] = None
    #: Gossip convergence debt left at finalization (0 = converged).
    sync_staleness: int = 0

    def summary(self) -> str:
        text = (
            f"flows={self.flows_started} packets={self.packets_processed} "
            f"removals={self.removals} additions={self.additions} "
            f"(surprise={self.surprise_additions}) "
            f"PCC violations={self.pcc_violations} "
            f"inevitable={self.inevitably_broken} "
            f"max oversub={self.max_oversubscription:.3f} "
            f"peak tracked={self.peak_tracked}"
        )
        if self.fault_events:
            text += (
                f" | faults={self.fault_events} "
                f"(crash={self.crashes} flap={self.flaps} "
                f"group={self.correlated_failures} "
                f"unannounced={self.unannounced_additions}) "
                f"violations-under-fault={self.violations_under_fault} "
                f"probation readmissions={self.probation_readmissions}"
            )
        if self.control_ticks:
            precision = (
                f"{self.horizon_precision:.2f}"
                if self.horizon_precision is not None
                else "n/a"
            )
            recall = (
                f"{self.horizon_recall:.2f}"
                if self.horizon_recall is not None
                else "n/a"
            )
            text += (
                f" | control ticks={self.control_ticks} "
                f"scale-out={self.scale_outs} scale-in={self.scale_ins} "
                f"evictions={self.probe_evictions} "
                f"(false={self.probe_false_evictions}) "
                f"blackholed={self.blackholed_flows} "
                f"horizon P/R={precision}/{recall}"
            )
        return text


#: Flow- and event-level tallies that sum across keyspace shards.
_SUM_FIELDS = (
    "pcc_violations",
    "inevitably_broken",
    "flows_started",
    "flows_completed",
    "packets_processed",
    "surprise_additions",
    "peak_tracked",
    "final_tracked",
    "ct_evictions",
    "ct_peak_size",
    "churn_exposed_flows",
    "fault_events",
    "crashes",
    "flaps",
    "correlated_failures",
    "unannounced_additions",
    "predicted_unannounced_breakage",
    "violations_under_fault",
    "probation_readmissions",
    "sync_failures",
    "unreplicated_entries",
    "blackholed_flows",
    "undetected_blips",
    "scale_outs",
    "scale_ins",
    "control_ticks",
    "probes_sent",
    "probe_evictions",
    "probe_false_evictions",
    "probe_readmissions",
    "phantom_announcements",
    "sync_staleness",
)

#: Fields where shards replicate one shared schedule (membership churn
#: fans out identically to every shard) or that compose as a worst case.
_MAX_FIELDS = (
    "removals",
    "additions",
    "max_oversubscription",
    "max_balance_cv",
    "wall_seconds",
)


def _weighted_mean(
    pairs: Sequence[Tuple[Optional[float], float]]
) -> Optional[float]:
    """Weight-averaged value over non-None entries (None if all None)."""
    known = [(value, weight) for value, weight in pairs if value is not None]
    if not known:
        return None
    total_weight = sum(weight for _, weight in known)
    if total_weight <= 0:
        return sum(value for value, _ in known) / len(known)
    return sum(value * weight for value, weight in known) / total_weight


def merge_sim_results(results: Sequence[SimResult]) -> SimResult:
    """Fold per-shard simulation results into one fleet-level result.

    Shards partition the *flows* of one simulated deployment while each
    replicates the full membership state machine, so flow-level tallies
    sum, membership-event counts take the per-shard maximum (the same
    schedule fans out to every shard -- summing would multiply-count it),
    and oversubscription reports the worst shard (each shard's sampler
    sees only its own 1/N of the load; the fleet-level figure over the
    union of flows is not recoverable from per-shard maxima, so the merge
    keeps the conservative bound).  Ratio metrics are weighted means:
    CT hit rate by packets, tracked fractions by flows started.

    Associative and commutative in every field, so partial merges compose.
    """
    if not results:
        raise ValueError("nothing to merge")
    merged = SimResult()
    for name in _SUM_FIELDS:
        setattr(merged, name, sum(getattr(result, name) for result in results))
    for name in _MAX_FIELDS:
        setattr(merged, name, max(getattr(result, name) for result in results))
    merged.ct_hit_rate = (
        _weighted_mean(
            [(r.ct_hit_rate, float(r.packets_processed)) for r in results]
        )
        or 0.0
    )
    merged.horizon_precision = _weighted_mean(
        [(r.horizon_precision, float(max(r.additions, 1))) for r in results]
    )
    merged.horizon_recall = _weighted_mean(
        [(r.horizon_recall, float(max(r.additions, 1))) for r in results]
    )
    merged.mean_expected_tracked_fraction = _weighted_mean(
        [(r.mean_expected_tracked_fraction, float(r.flows_started)) for r in results]
    )
    merged.observed_tracked_fraction = _weighted_mean(
        [(r.observed_tracked_fraction, float(r.flows_started)) for r in results]
    )
    # Sampled series: shards sample on one shared clock, so tracked
    # occupancy sums element-wise and oversubscription takes the
    # element-wise worst shard; lengths may differ by a tail sample.
    longest = max(results, key=lambda result: len(result.sample_times))
    merged.sample_times = list(longest.sample_times)
    length = len(merged.sample_times)
    merged.tracked_series = [
        sum(r.tracked_series[i] for r in results if i < len(r.tracked_series))
        for i in range(length)
    ]
    merged.oversubscription_series = [
        max(
            (
                r.oversubscription_series[i]
                for r in results
                if i < len(r.oversubscription_series)
            ),
            default=0.0,
        )
        for i in range(length)
    ]
    merged.balance_cv_series = [
        max(
            (
                r.balance_cv_series[i]
                for r in results
                if i < len(r.balance_cv_series)
            ),
            default=0.0,
        )
        for i in range(length)
    ]
    return merged


class LoadTracker:
    """Active-connection counts per server, for oversubscription sampling."""

    def __init__(self):
        self._load: Dict[Name, int] = {}
        self.active_flows = 0

    def flow_started(self, server: Name) -> None:
        self._load[server] = self._load.get(server, 0) + 1
        self.active_flows += 1

    def flow_ended(self, server: Name) -> None:
        count = self._load.get(server, 0)
        if count > 0:
            self._load[server] = count - 1
            self.active_flows -= 1

    def server_load(self, server: Name) -> int:
        return self._load.get(server, 0)

    def oversubscription(self, active_servers: int) -> Optional[float]:
        """Max load divided by the per-server average (None when idle)."""
        if self.active_flows == 0 or active_servers == 0:
            return None
        average = self.active_flows / active_servers
        heaviest = max(self._load.values(), default=0)
        return heaviest / average if average > 0 else None

    def per_server(self) -> Dict[Name, int]:
        """The live per-server count map (read-only; do not mutate)."""
        return self._load

    def cv_over(self, servers, weight_fn=None) -> Optional[float]:
        """Coefficient of variation (std/mean) of per-server load over
        the given population; servers with no recorded flows count as 0.
        ``weight_fn`` normalizes each load by capacity, so on a weighted
        fleet a perfectly proportional split scores CV 0."""
        if self.active_flows == 0 or not servers:
            return None
        values = []
        for server in servers:
            load = self._load.get(server, 0)
            if weight_fn is not None:
                load = load / weight_fn(server)
            values.append(load)
        mean = sum(values) / len(values)
        if mean <= 0:
            return None
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        return variance**0.5 / mean
