"""Backend-change orchestration: the bounded FIFO horizon.

Implements the Section 2.2/2.3 operational model the simulator exercises:

- the horizon starts with ``horizon_size`` *standby* identities;
- a removed working server immediately joins the horizon ("transient
  failures" strategy) -- if that overflows the horizon, the **oldest**
  member is evicted (FIFO), standbys first;
- a recovering server found in the horizon is a *proper* JET addition;
  one found evicted is an **unanticipated** addition (``force_add``) whose
  unsafe connections were never tracked -- the Fig. 4 horizon-too-small
  failure mode;
- after a proper addition, a spare standby identity tops the horizon back
  up so ``|H|`` stays constant, as in the paper's fixed "horizon 10%"
  configurations.

The manager drives one *or more* load balancers in lockstep so a JET LB
and a full-CT LB can consume an identical event sequence (Proposition 4.1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Sequence, Set

from repro.core.interfaces import LoadBalancer, Name


class HorizonManager:
    """Keeps ``|H|`` constant while servers churn through it."""

    def __init__(
        self,
        balancers: Sequence[LoadBalancer],
        standby_names: Iterable[Name],
    ):
        self.balancers: List[LoadBalancer] = list(balancers)
        self._fifo: Deque[Name] = deque()
        self._members: Set[Name] = set()
        self._spares: Deque[Name] = deque()
        self._down: Set[Name] = set()
        self.surprise_additions = 0
        self.proper_additions = 0
        #: Horizon slots revoked while their server was still down: the
        #: announcement is withdrawn, so the eventual recovery will land
        #: as a surprise.  Resilience reports use this to attribute
        #: unannounced exposure instead of counting it silently.
        self.revoked_announcements = 0
        for name in standby_names:
            self._fifo.append(name)
            self._members.add(name)
        self.horizon_size = len(self._fifo)

    # ------------------------------------------------------------ state
    @property
    def members(self) -> frozenset:
        return frozenset(self._members)

    @property
    def down_servers(self) -> frozenset:
        return frozenset(self._down)

    @property
    def horizon_occupancy(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------ churn
    def _evict_oldest(self) -> None:
        victim = self._fifo.popleft()
        self._members.discard(victim)
        for lb in self.balancers:
            lb.remove_horizon_server(victim)
        if victim in self._down:
            # A still-down server lost its horizon slot; its eventual
            # recovery will be unanticipated.
            self.revoked_announcements += 1
        else:
            self._spares.append(victim)

    def remove_server(self, name: Name) -> None:
        """A working server goes down: it enters the horizon (Algorithm 1
        REMOVEWORKINGSERVER), evicting the oldest member on overflow."""
        self._down.add(name)
        for lb in self.balancers:
            lb.remove_working_server(name)
        self._fifo.append(name)
        self._members.add(name)
        if len(self._fifo) > self.horizon_size:
            self._evict_oldest()

    def recover_server(self, name: Name) -> bool:
        """A down server rejoins ``W``.  Returns True for a proper (horizon)
        addition, False for an unanticipated one."""
        self._down.discard(name)
        if name in self._members:
            self._fifo.remove(name)
            self._members.discard(name)
            for lb in self.balancers:
                lb.add_working_server(name)
            self.proper_additions += 1
            self._top_up()
            return True
        for lb in self.balancers:
            lb.force_add_working_server(name)
        self.surprise_additions += 1
        return False

    def _top_up(self) -> None:
        """Restore ``|H|`` with a spare standby identity, if one exists."""
        if self._spares and len(self._fifo) < self.horizon_size:
            spare = self._spares.popleft()
            self._fifo.append(spare)
            self._members.add(spare)
            for lb in self.balancers:
                lb.add_horizon_server(spare)
