"""Simulation configuration and entry points.

:class:`SimulationConfig` exposes the six knobs the paper's Section 5.1
lists -- connection rate, size distribution, duration distribution,
backend update rate, down-time distribution, CT table size -- plus the
reproduction's scaling and plumbing parameters (LB mode, CH family, seed).

The paper's "connection rate" is the nominal number of *concurrent*
connections (their 100K-rate / 1000 s runs produce ~5M connections, i.e.
a Poisson arrival rate of connection_rate / mean-duration).  We keep that
convention so CT-table sizes stated as fractions of the connection rate
line up with Figs. 3-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.core.factories import make_ch
from repro.core.full_ct import FullCTLoadBalancer
from repro.core.jet import JETLoadBalancer
from repro.core.load_aware import PowerOfTwoJET
from repro.core.stateless import StatelessLoadBalancer
from repro.ct import Clock, make_ct
from repro.sim.distributions import (
    Distribution,
    hadoop_flow_duration,
    hadoop_flow_size,
    server_downtime,
)
from repro.sim.engine import EventDrivenSimulation
from repro.sim.metrics import SimResult
from repro.sim.workload import RateProfile, WorkloadGenerator

#: Backend size used throughout the paper's event-driven simulations.
PAPER_N_SERVERS = 468
#: The paper's "horizon 10%" for 468 servers.
PAPER_HORIZON = 47


@dataclass
class SimulationConfig:
    """All knobs for one event-driven run (paper defaults, scaled down)."""

    duration_s: float = 100.0
    connection_rate: float = 2_000.0  # nominal concurrent connections
    n_servers: int = PAPER_N_SERVERS
    horizon_size: int = PAPER_HORIZON
    update_rate_per_min: float = 10.0
    ct_capacity: Optional[int] = None  # None = unbounded
    ct_policy: str = "lru"  # lru | fifo | random | ttl
    ct_ttl: Optional[float] = None  # idle timeout for ct_policy="ttl"
    mode: str = "jet"  # jet | full | stateless | p2c | jet-p2c | concury
    ch_family: str = "anchor"
    ch_kwargs: Dict = field(default_factory=dict)
    #: Per-server capacity weights (heterogeneous fleets); None = uniform.
    #: Weighted CH families ("weighted-hrw"/"weighted-ring") consume them
    #: as server specs, "jet-p2c" as occupancy normalizers, and the
    #: engine's expected-tracked-fraction accounting generalizes to
    #: weight(H)/(weight(W)+weight(H)) whenever the CH carries weights.
    server_weights: Optional[Dict] = None
    #: Extra per-server health-probe loss probability (asymmetric-latency
    #: zones in repro.scenarios); composes with the global probability.
    probe_loss_by_server: Optional[Dict] = None
    seed: int = 0
    #: Separate seed for the workload stream only (None = use ``seed``).
    #: The sharded simulator sets this per shard so shards draw disjoint
    #: flow populations while the engine seed -- and with it the whole
    #: membership/churn schedule -- stays identical in every shard.
    workload_seed: Optional[int] = None
    sample_interval: float = 1.0
    warmup_s: Optional[float] = None  # balance-metric warmup; default 20%
    # Drain same-timestamp packet events through the LB's batch path.
    coalesce_packets: bool = False
    arrival_rate: Optional[float] = None  # derived if None
    size_dist: Optional[Distribution] = None
    duration_dist: Optional[Distribution] = None
    downtime_dist: Optional[Distribution] = None
    # Adversarial churn (repro.faults); None keeps the polite §5 model.
    fault_schedule: Optional[object] = None  # FaultSchedule
    fault_window_s: float = 10.0
    probation_base_s: float = 1.0
    probation_cap_s: float = 60.0
    # Observability (repro.obs); None keeps the zero-cost NullRegistry path.
    registry: Optional[object] = None  # repro.obs.Registry
    # Closed-loop control plane (repro.control); False keeps exogenous H.
    control: bool = False
    control_interval_s: float = 0.5
    scale_lead_time_s: float = 5.0
    #: Active flows per server the autoscaler targets; None derives it
    #: from the nominal concurrency (connection_rate / n_servers).
    target_load_per_server: Optional[float] = None
    forecast_precision: float = 1.0
    forecast_recall: float = 1.0
    autoscale_max: int = 8
    probe_fail_threshold: int = 3
    probe_recover_threshold: int = 2
    probe_loss_probability: float = 0.0
    #: Time-varying arrival rate (flash crowd / diurnal); None keeps the
    #: homogeneous Poisson workload bit-identical to the seed generator.
    rate_profile: Optional[object] = None  # RateProfile

    def with_(self, **changes) -> "SimulationConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)


def build_balancer(config: SimulationConfig):
    """Construct the LB (CH + CT + wrapper) a config describes."""
    working = list(range(config.n_servers))
    if config.control:
        # Closed loop: H starts empty -- the control plane announces
        # pending changes into it; no exogenous standby identities.
        standby = []
    else:
        standby = list(range(config.n_servers, config.n_servers + config.horizon_size))
    weights = config.server_weights
    ch_working, ch_standby = working, standby
    if weights and config.ch_family in ("weighted-hrw", "weighted-ring"):
        # Weighted families take {name: weight} server specs directly.
        ch_working = {name: weights.get(name, 1.0) for name in working}
        ch_standby = {name: weights.get(name, 1.0) for name in standby}
    ch_kwargs = dict(config.ch_kwargs)
    if config.ch_family == "anchor" and "capacity" not in ch_kwargs:
        # Leave headroom for forced additions and horizon churn; chaos
        # schedules can force-add brand-new identities, each needing a slot.
        extra = 0
        if config.fault_schedule is not None:
            extra = 2 * sum(
                1 for e in config.fault_schedule if e.kind == "unannounced_add"
            )
        if config.control:
            # Autoscaled servers and phantom announcements are brand-new
            # identities too; reserve room for a full run's worth.
            extra += 4 * config.autoscale_max + 64
        ch_kwargs["capacity"] = 2 * (config.n_servers + config.horizon_size) + 16 + extra
    if config.mode == "concury":
        # ch_family names the *inner* control-plane CH; the dataplane is
        # the Othello flowset map, so there is no CT to configure.
        from repro.core.concury import ConcuryLoadBalancer

        ch = make_ch(
            "concury",
            working,
            standby,
            inner=config.ch_family,
            seed=config.seed,
            **ch_kwargs,
        )
        return ConcuryLoadBalancer(ch), working, standby
    ch = make_ch(config.ch_family, ch_working, ch_standby, **ch_kwargs)
    clock = Clock() if config.ct_policy == "ttl" else None
    ct = make_ct(
        config.ct_capacity,
        config.ct_policy,
        seed=config.seed,
        ttl=config.ct_ttl,
        clock=clock,
    )
    if config.mode == "jet":
        return JETLoadBalancer(ch, ct), working, standby
    if config.mode == "full":
        return FullCTLoadBalancer(ch, ct), working, standby
    if config.mode == "stateless":
        return StatelessLoadBalancer(ch), working, standby
    if config.mode in ("p2c", "jet-p2c"):
        # "p2c" is the legacy alias; "jet-p2c" is the registry name.
        return PowerOfTwoJET(ch, ct, weights=weights), working, standby
    raise ValueError(f"unknown mode {config.mode!r}")


def run_simulation(config: SimulationConfig) -> SimResult:
    """Run one event-driven simulation and return its metrics."""
    duration_dist = config.duration_dist or hadoop_flow_duration()
    size_dist = config.size_dist or hadoop_flow_size()
    downtime_dist = config.downtime_dist or server_downtime()
    arrival_rate = config.arrival_rate
    if arrival_rate is None:
        arrival_rate = config.connection_rate / duration_dist.mean()

    balancer, working, standby = build_balancer(config)
    rate_profile = config.rate_profile
    if rate_profile is not None and not isinstance(rate_profile, RateProfile):
        raise TypeError("rate_profile must be a repro.sim.workload.RateProfile")
    workload = WorkloadGenerator(
        arrival_rate=arrival_rate,
        size_dist=size_dist,
        duration_dist=duration_dist,
        seed=config.seed if config.workload_seed is None else config.workload_seed,
        rate_profile=rate_profile,
    )
    injector = None
    if config.fault_schedule is not None and len(config.fault_schedule):
        from repro.faults import ChaosInjector, HealthMonitor

        injector = ChaosInjector(
            config.fault_schedule,
            health=HealthMonitor(
                base_s=config.probation_base_s, cap_s=config.probation_cap_s
            ),
            fault_window_s=config.fault_window_s,
            registry=config.registry,
        )
    controller = build_controller(config, arrival_rate, duration_dist)
    sim = EventDrivenSimulation(
        balancer=balancer,
        workload=workload,
        working_servers=working,
        standby_servers=standby,
        duration_s=config.duration_s,
        update_rate_per_min=config.update_rate_per_min,
        downtime_dist=downtime_dist,
        seed=config.seed,
        sample_interval=config.sample_interval,
        warmup_s=config.warmup_s,
        injector=injector,
        coalesce_packets=config.coalesce_packets,
        registry=config.registry,
        controller=controller,
        horizon_cap=max(config.horizon_size, 1),
    )
    return sim.run()


def build_controller(config: SimulationConfig, arrival_rate: float, duration_dist):
    """Construct the closed-loop controller a config asks for (or None)."""
    if not config.control:
        return None
    from repro.control import Autoscaler, ControlLoop, HealthProber
    from repro.faults import HealthMonitor

    target = config.target_load_per_server
    if target is None:
        # Steady-state concurrency is arrival_rate * mean duration
        # (Little's law); spread over the baseline fleet.
        target = arrival_rate * duration_dist.mean() / config.n_servers
    autoscaler = Autoscaler(
        target_load=max(target, 1e-9),
        lead_time_s=config.scale_lead_time_s,
        cooldown_s=4 * config.control_interval_s,
        forecast_precision=config.forecast_precision,
        forecast_recall=config.forecast_recall,
        seed=config.seed,
    )
    prober = HealthProber(
        is_up=lambda name: True,  # rebound to the engine oracle at attach
        fail_threshold=config.probe_fail_threshold,
        recover_threshold=config.probe_recover_threshold,
        loss_probability=config.probe_loss_probability,
        loss_by_target=config.probe_loss_by_server,
        monitor=HealthMonitor(
            base_s=config.probation_base_s, cap_s=config.probation_cap_s
        ),
        seed=config.seed,
    )
    controller = ControlLoop(
        autoscaler,
        prober,
        interval_s=config.control_interval_s,
        max_extra=config.autoscale_max,
    )
    if config.registry is not None:
        from repro.obs.collectors import instrument_controller

        instrument_controller(config.registry, controller)
    return controller


def run_paired(config: SimulationConfig) -> Dict[str, SimResult]:
    """Run JET and full CT on the *same seed* (identical event sequences);
    the Proposition 4.1 comparison setup."""
    return {
        "jet": run_simulation(config.with_(mode="jet")),
        "full": run_simulation(config.with_(mode="full")),
    }
