"""Workload distributions for the event-driven simulation (Section 5.1).

The paper takes its connection-size, connection-duration, and server
down-time distributions from the Cheetah artifact, which models "a large
web service provider running over a Hadoop cluster" (also used by
SilkRoad).  Those exact empirical tables are not redistributable, so we
provide explicit mixtures with the same qualitative shape and moments:

- **flow sizes**: mostly mice (a few packets) with a heavy elephant tail --
  matching the skewed log-log histograms of Fig. 6a;
- **flow durations**: short-dominated with a long tail, mean ~20 s (which
  makes "connection rate 100K" correspond to ~5M connections over a
  1000 s run, as the paper reports);
- **server down-times**: transient-failure scale -- tens of seconds to a
  few minutes (reboots, temporary disconnects; Section 2.2).

All distributions draw from a caller-supplied ``random.Random`` so that
simulations are reproducible and JET / full-CT runs can share seeds
(Proposition 4.1 evaluation requires identical event sequences).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple


class Distribution(ABC):
    """A positive-valued sampling distribution."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one value."""

    @abstractmethod
    def mean(self) -> float:
        """Analytic (or configured) expectation, used to size workloads."""


class Constant(Distribution):
    """Degenerate distribution (useful in tests)."""

    def __init__(self, value: float):
        if value <= 0:
            raise ValueError("value must be positive")
        self.value = value

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


class Exponential(Distribution):
    """Exponential with the given mean."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self._mean


class LogNormal(Distribution):
    """Log-normal parameterized by its median and shape sigma."""

    def __init__(self, median: float, sigma: float):
        if median <= 0 or sigma <= 0:
            raise ValueError("median and sigma must be positive")
        self.mu = math.log(median)
        self.sigma = sigma

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2)


class BoundedPareto(Distribution):
    """Pareto tail truncated to ``[minimum, maximum]`` (elephant flows)."""

    def __init__(self, alpha: float, minimum: float, maximum: float):
        if not (alpha > 0 and 0 < minimum < maximum):
            raise ValueError("need alpha > 0 and 0 < minimum < maximum")
        self.alpha = alpha
        self.minimum = minimum
        self.maximum = maximum

    def sample(self, rng: random.Random) -> float:
        # Inverse-CDF sampling of the bounded Pareto.
        a, lo, hi = self.alpha, self.minimum, self.maximum
        u = rng.random()
        x = (lo**a) / (1 - u * (1 - (lo / hi) ** a))
        return x ** (1 / a)

    def mean(self) -> float:
        a, lo, hi = self.alpha, self.minimum, self.maximum
        if a == 1:
            return math.log(hi / lo) * lo / (1 - lo / hi)
        num = (lo**a) * a / (a - 1) * (lo ** (1 - a) - hi ** (1 - a))
        return num / (1 - (lo / hi) ** a)


class Mixture(Distribution):
    """Weighted mixture of component distributions."""

    def __init__(self, components: Sequence[Tuple[float, Distribution]]):
        if not components:
            raise ValueError("mixture needs at least one component")
        total = sum(weight for weight, _ in components)
        self._weights: List[float] = []
        self._dists: List[Distribution] = []
        cumulative = 0.0
        for weight, dist in components:
            cumulative += weight / total
            self._weights.append(cumulative)
            self._dists.append(dist)

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        for threshold, dist in zip(self._weights, self._dists):
            if u <= threshold:
                return dist.sample(rng)
        return self._dists[-1].sample(rng)

    def mean(self) -> float:
        previous = 0.0
        total = 0.0
        for threshold, dist in zip(self._weights, self._dists):
            total += (threshold - previous) * dist.mean()
            previous = threshold
        return total


# --------------------------------------------------------------------------
# Paper-calibrated factories
# --------------------------------------------------------------------------

def hadoop_flow_size() -> Distribution:
    """Packets per flow: mice-dominated with an elephant tail.

    Mean ~20 packets; the tail reaches 10^4, reproducing the skewed
    log-log shape the trace histograms (Fig. 6a) show.
    """
    return Mixture(
        [
            (0.50, BoundedPareto(1.5, 1, 10)),        # mice: handshake-scale
            (0.35, BoundedPareto(1.2, 5, 200)),       # medium transfers
            (0.13, BoundedPareto(1.1, 50, 2_000)),    # large transfers
            (0.02, BoundedPareto(1.05, 500, 20_000)), # elephants
        ]
    )


def hadoop_flow_duration() -> Distribution:
    """Flow duration in seconds, mean ~20 s.

    Short-request dominated, with a minutes-long tail (long-lived
    connections are what makes undersized full-CT tables break flows).
    """
    return Mixture(
        [
            (0.60, Exponential(5.0)),
            (0.30, Exponential(30.0)),
            (0.10, Exponential(80.0)),
        ]
    )


def server_downtime() -> Distribution:
    """Transient-failure down-time in seconds (median ~1 min)."""
    return LogNormal(median=60.0, sigma=0.8)
