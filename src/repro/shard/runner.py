"""Partition/merge drivers: sharded replay and sharded simulation.

``replay_sharded`` is the multi-worker twin of
:func:`repro.traces.replay.replay_batch`: an RSS front stage partitions
the flow keyspace into ``n_shards`` (:mod:`repro.shard.partition`), each
shard replays its packet subsequence through its own balancer built from
a :class:`~repro.shard.spec.BalancerSpec`, membership events fan out to
every shard, and the per-shard results/registries merge at the edge
(:func:`repro.traces.replay.merge_replay_results`,
:mod:`repro.obs.merge`).

Process model: ``fork`` (the plan, trace columns, and factory are
inherited by workers as copy-on-write pages -- a memmapped trace costs
nothing per worker; only the picklable :class:`ShardOutcome` crosses
back).  Shard ``s`` runs on worker ``s % n_workers``; because every
shard's seeds and inputs are pure functions of the shard id, the merged
result is byte-identical for any worker count (timing fields aside) --
``n_workers=1`` runs the same shards serially in-process, which is also
the fallback where ``fork`` does not exist.

``simulate_sharded`` applies the same partition/merge shape to the
event-driven simulator: shard workloads are independent splitmix64
streams over ``1/N`` of the arrival rate, while the membership schedule
(engine seed) is replicated identically in every shard -- the
deterministic fan-out of control-plane events.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.core.interfaces import LoadBalancer
from repro.obs.registry import coalesce
from repro.obs.timers import Stopwatch
from repro.shard.partition import shard_seed
from repro.shard.plan import ShardPlan
from repro.shard.spec import BalancerSpec
from repro.shard.worker import ShardOutcome, run_shard
from repro.traces.base import Trace
from repro.traces.replay import DEFAULT_CHUNK, ReplayResult, merge_replay_results

#: A spec or any picklable/fork-inheritable ``shard_id -> balancer``.
Factory = Union[BalancerSpec, Callable[[int], LoadBalancer]]


@dataclass
class ShardedReplay:
    """A merged replay result plus the per-shard evidence behind it."""

    #: Merged as-if-unsharded result; ``rate_pps``/``wall_seconds`` follow
    #: the parallel critical path (slowest shard's kernel wall).
    result: ReplayResult
    outcomes: List[ShardOutcome]
    n_shards: int
    n_workers: int
    #: Wall clock of the whole driver: partition + replay + merge.
    end_to_end_seconds: float

    def row(self) -> str:
        return (
            f"{self.result.row()} "
            f"[shards={self.n_shards} workers={self.n_workers} "
            f"wall={self.end_to_end_seconds:.3f}s]"
        )


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def replay_sharded(
    trace: Trace,
    spec: Factory,
    n_workers: int = 1,
    n_shards: Optional[int] = None,
    events: Sequence = (),
    chunk_size: int = DEFAULT_CHUNK,
    metrics=None,
    collect_tracked: bool = False,
) -> ShardedReplay:
    """Replay ``trace`` partitioned over shards, merging at the edge.

    ``n_shards`` defaults to ``n_workers``; fixing it higher decouples the
    partition from the process count (RSS indirection style), in which
    case the merged result is invariant to ``n_workers`` entirely.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    n_shards = n_workers if n_shards is None else n_shards
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    factory = spec.build if isinstance(spec, BalancerSpec) else spec
    registry = coalesce(metrics)
    want_metrics = registry.enabled

    watch = Stopwatch()
    plan = ShardPlan.partition(trace, n_shards)
    if n_workers == 1 or n_shards == 1 or not _fork_available():
        outcomes = [
            run_shard(
                plan, factory, shard,
                events=events, chunk_size=chunk_size,
                want_metrics=want_metrics, collect_tracked=collect_tracked,
            )
            for shard in range(n_shards)
        ]
    else:
        outcomes = _run_forked(
            plan, factory, n_shards, min(n_workers, n_shards),
            events=events, chunk_size=chunk_size,
            want_metrics=want_metrics, collect_tracked=collect_tracked,
        )
    merged = merge_replay_results([outcome.result for outcome in outcomes])
    if want_metrics:
        from repro.obs.merge import merge_into

        merge_into(registry, [outcome.obs_series for outcome in outcomes])
    end_to_end = watch.stop()
    return ShardedReplay(
        result=merged,
        outcomes=outcomes,
        n_shards=n_shards,
        n_workers=n_workers,
        end_to_end_seconds=end_to_end,
    )


def _run_forked(
    plan: ShardPlan,
    factory: Callable[[int], LoadBalancer],
    n_shards: int,
    n_workers: int,
    events: Sequence,
    chunk_size: int,
    want_metrics: bool,
    collect_tracked: bool,
) -> List[ShardOutcome]:
    """Fan shards out over forked workers; shard ``s`` -> worker ``s % N``."""
    context = multiprocessing.get_context("fork")
    queue = context.SimpleQueue()

    def work(worker_id: int) -> None:
        try:
            for shard in range(worker_id, n_shards, n_workers):
                outcome = run_shard(
                    plan, factory, shard,
                    events=events, chunk_size=chunk_size,
                    want_metrics=want_metrics, collect_tracked=collect_tracked,
                )
                queue.put((shard, outcome, None))
        except BaseException:
            queue.put((-1, None, traceback.format_exc()))

    processes = [
        context.Process(target=work, args=(worker_id,), daemon=True)
        for worker_id in range(n_workers)
    ]
    for process in processes:
        process.start()
    outcomes: List[Optional[ShardOutcome]] = [None] * n_shards
    received = 0
    failure: Optional[str] = None
    while received < n_shards:
        shard, outcome, error = queue.get()
        if error is not None:
            failure = error
            break
        outcomes[shard] = outcome
        received += 1
    for process in processes:
        if failure is not None:
            process.terminate()
        process.join()
    if failure is not None:
        raise RuntimeError(f"shard worker failed:\n{failure}")
    return outcomes  # type: ignore[return-value]


# --------------------------------------------------------------- simulate
def simulate_sharded(config, n_workers: int = 1, n_shards: Optional[int] = None):
    """Run the event-driven simulation partitioned over flow shards.

    Each shard simulates ``1/n_shards`` of the arrival rate with its own
    splitmix64-derived workload seed, against a full replica of the
    membership state machine: the engine's seed (removals, downtimes,
    control-plane randomness) stays the *master* seed in every shard, so
    backend events fan out deterministically and identically -- shards
    differ only in the flows they carry, mirroring the replay partition.

    Returns the merged :class:`~repro.sim.metrics.SimResult`; per-shard
    registries merge into ``config.registry`` when one is set.
    """
    from repro.sim.metrics import merge_sim_results

    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    n_shards = n_workers if n_shards is None else n_shards
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    registry = coalesce(config.registry)
    want_metrics = registry.enabled

    base_arrival = config.arrival_rate
    shard_configs = []
    for shard in range(n_shards):
        changes = {
            "registry": None,
            "workload_seed": shard_seed(config.seed, shard),
            "connection_rate": config.connection_rate / n_shards,
        }
        if base_arrival is not None:
            changes["arrival_rate"] = base_arrival / n_shards
        shard_configs.append(config.with_(**changes))

    if n_workers == 1 or n_shards == 1 or not _fork_available():
        payloads = [
            _run_sim_shard(shard_configs[shard], want_metrics)
            for shard in range(n_shards)
        ]
    else:
        payloads = _run_sim_forked(shard_configs, min(n_workers, n_shards), want_metrics)
    results = [result for result, _ in payloads]
    if want_metrics:
        from repro.obs.merge import merge_into

        merge_into(registry, [dump for _, dump in payloads])
    return merge_sim_results(results)


def _run_sim_shard(shard_config, want_metrics: bool):
    from repro.sim.scenario import run_simulation

    if want_metrics:
        from repro.obs.registry import Registry

        shard_registry = Registry()
        result = run_simulation(shard_config.with_(registry=shard_registry))
        return result, shard_registry.dump_series()
    return run_simulation(shard_config), []


def _run_sim_forked(shard_configs, n_workers: int, want_metrics: bool):
    context = multiprocessing.get_context("fork")
    queue = context.SimpleQueue()
    n_shards = len(shard_configs)

    def work(worker_id: int) -> None:
        try:
            for shard in range(worker_id, n_shards, n_workers):
                queue.put(
                    (shard, _run_sim_shard(shard_configs[shard], want_metrics), None)
                )
        except BaseException:
            queue.put((-1, None, traceback.format_exc()))

    processes = [
        context.Process(target=work, args=(worker_id,), daemon=True)
        for worker_id in range(n_workers)
    ]
    for process in processes:
        process.start()
    payloads = [None] * n_shards
    received = 0
    failure: Optional[str] = None
    while received < n_shards:
        shard, payload, error = queue.get()
        if error is not None:
            failure = error
            break
        payloads[shard] = payload
        received += 1
    for process in processes:
        if failure is not None:
            process.terminate()
        process.join()
    if failure is not None:
        raise RuntimeError(f"simulation shard worker failed:\n{failure}")
    return payloads
