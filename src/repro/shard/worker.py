"""The pure per-shard kernel: build, replay, account, report.

``run_shard`` is the function a worker process executes per shard.  It
is deliberately side-effect free beyond its return value: it builds the
shard's balancer from the spec (seeds derived from the shard id), runs
the shard's packet subsequence through the ordinary ``replay_batch``
(columnar whenever the stack supports it), applies trailing membership
events, and returns a picklable :class:`ShardOutcome` -- the shard's
:class:`~repro.traces.replay.ReplayResult`, an optional structured dump
of its private metrics registry, optional CT contents, and a CT memory
estimate for the sharding-cost experiment.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.interfaces import LoadBalancer, Name
from repro.shard.plan import ShardPlan
from repro.traces.replay import DEFAULT_CHUNK, ReplayResult, _oversubscription, replay_batch


@dataclass
class ShardOutcome:
    """Everything one shard sends back across the process boundary."""

    shard_id: int
    result: ReplayResult
    #: ``Registry.dump_series()`` of the shard's private registry, or None.
    obs_series: Optional[List[dict]] = None
    #: CT contents ``{key: destination}`` (None when not collected or no CT).
    tracked_items: Optional[Dict[int, Name]] = None
    #: Approximate heap bytes held by the shard's CT table.
    ct_bytes: int = 0


def _ct_approx_bytes(balancer: LoadBalancer) -> int:
    """Rough CT heap footprint: container plus per-entry key/value objects."""
    ct = getattr(balancer, "ct", None)
    items = getattr(balancer, "tracked_items", None)
    if ct is None or items is None:
        return 0
    table = items()
    total = sys.getsizeof(table)
    for key, value in table.items():
        total += sys.getsizeof(key) + sys.getsizeof(value)
    return total


def run_shard(
    plan: ShardPlan,
    factory: Callable[[int], LoadBalancer],
    shard_id: int,
    events: Sequence = (),
    chunk_size: int = DEFAULT_CHUNK,
    want_metrics: bool = False,
    collect_tracked: bool = False,
) -> ShardOutcome:
    """Replay one shard and package its results for the merge edge."""
    balancer = factory(shard_id)
    shard_trace = plan.shard_trace(shard_id)
    local_events, trailing = plan.shard_events(shard_id, events)

    registry = None
    if want_metrics:
        from repro.obs.registry import Registry

        registry = Registry()
    result = replay_batch(
        shard_trace, balancer, local_events, chunk_size=chunk_size, metrics=registry
    )
    if trailing:
        # Events past this shard's last packet still mutate membership and
        # CT state (a removal invalidates tracked flows of *this* shard);
        # re-derive the state-dependent result fields afterwards so the
        # merged result matches a single-process replay, which applies
        # every event before it finalizes.
        for apply in trailing:
            apply(balancer)
        result.tracked_connections = balancer.tracked_connections
        result.active_servers = len(balancer.working)
        result.max_oversubscription = _oversubscription(
            result.server_loads, result.active_servers
        )

    tracked: Optional[Dict[int, Name]] = None
    if collect_tracked:
        items = getattr(balancer, "tracked_items", None)
        tracked = items() if items is not None else None

    return ShardOutcome(
        shard_id=shard_id,
        result=result,
        obs_series=registry.dump_series() if registry is not None else None,
        tracked_items=tracked,
        ct_bytes=_ct_approx_bytes(balancer),
    )
