"""RSS-style keyspace partitioning and per-shard seed derivation.

The front stage of the sharded dataplane: a flow's shard is a pure
function of its 64-bit connection key and the shard count -- nothing
else.  That is the receive-side-scaling contract: adding or removing
*worker processes* never moves a flow between shards (workers are
assigned whole shards), so per-shard CT state stays consistent without
any cross-shard coordination, exactly the property JET's per-connection
consistency argument needs.

Two deliberate choices:

- ``splitmix64`` over the raw key, salted.  Every CH family already
  mixes the same key (HRW via ``mix2``, table via ``fmix64``...); the
  salt decorrelates the shard selector from all of them, so the flows
  landing in one shard are an unbiased sample of the keyspace and each
  shard sees the same Zipf shape as the whole trace.
- Per-shard RNG seeds come from the splitmix64 *stream* seeded at the
  master seed (:func:`shard_seed`): shard ``i`` gets the ``i``-th output.
  Seeds depend on ``(master seed, shard id)`` only -- never on worker
  count or scheduling order -- which is what makes merged results
  byte-stable however the shards are spread over processes.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.mix import MASK64, splitmix64
from repro.hashing.vector import v_splitmix64

#: Salt XORed into keys before the shard mix, so the shard selector is
#: independent of every CH family's own use of the same key bits.
SHARD_SALT = 0x5245505F53484152  # "REP_SHAR"

#: The splitmix64 golden-gamma stream increment (Steele, Lea, Flood 2014);
#: restated here because :mod:`repro.hashing.mix` keeps its copy private.
_GAMMA = 0x9E3779B97F4A7C15


def shard_of_key(key: int, n_shards: int) -> int:
    """Shard id of one flow key -- the scalar spec of :func:`shard_of_keys`."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_shards == 1:
        return 0
    return splitmix64((key ^ SHARD_SALT) & MASK64) % n_shards


def shard_of_keys(keys: np.ndarray, n_shards: int) -> np.ndarray:
    """Shard id per flow key (int32 array), vectorized.

    Bit-identical to :func:`shard_of_key` element by element: both run one
    salted splitmix64 round and reduce modulo ``n_shards``.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    if n_shards == 1:
        return np.zeros(len(keys), dtype=np.int32)
    mixed = v_splitmix64(keys ^ np.uint64(SHARD_SALT))
    return (mixed % np.uint64(n_shards)).astype(np.int32)


def shard_seed(master_seed: int, shard_id: int) -> int:
    """The ``shard_id``-th output of the splitmix64 stream at ``master_seed``.

    A pure function of ``(master seed, shard id)``: every RNG a shard owns
    (bounded-CT random eviction, a shard's workload stream in the sharded
    simulator) is seeded from this, so results cannot depend on how many
    worker processes ran the shards or in what order.
    """
    if shard_id < 0:
        raise ValueError("shard_id must be >= 0")
    return splitmix64((master_seed + shard_id * _GAMMA) & MASK64)
