"""Declarative, picklable descriptions of balancers and membership events.

A worker process cannot receive a live balancer (CTs, CH tables and
their caches don't pickle, and sharing one across processes would defeat
the whole point); it receives a :class:`BalancerSpec` and builds its own.
``build(shard_id)`` derives every RNG seed through
:func:`~repro.shard.partition.shard_seed`, so a shard's balancer is a
pure function of (spec, shard id) -- identical whichever worker process
builds it.

:class:`MembershipEvent` is the picklable form of a control-plane
backend change keyed by packet index; the sharded runner fans every
event out to every shard's balancer (each shard owns a full replica of
the membership state machine, only the flows are partitioned).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.interfaces import LoadBalancer, Name
from repro.shard.partition import shard_seed

#: op name -> LoadBalancer method applied to the named server.
_OPS = (
    "add_working",
    "remove_working",
    "force_add_working",
    "add_horizon",
    "remove_horizon",
)


@dataclass(frozen=True)
class MembershipEvent:
    """One backend change at a packet index, replicated to every shard."""

    packet_index: int
    op: str
    name: Name

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown membership op {self.op!r}; one of {_OPS}")

    def apply(self, balancer: LoadBalancer) -> None:
        getattr(balancer, f"{self.op}_server")(self.name)


@dataclass(frozen=True)
class BalancerSpec:
    """Everything needed to rebuild one balancer stack in any process."""

    mode: str = "jet"  # jet | full | stateless | concury
    family: str = "table"
    working: Tuple[Name, ...] = ()
    horizon: Tuple[Name, ...] = ()
    ct_capacity: Optional[int] = None
    ct_policy: str = "lru"
    #: Master seed; per-shard CT seeds derive from it via shard_seed.
    seed: int = 0
    #: CH constructor kwargs as sorted items (kept hashable/picklable).
    ch_kwargs: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    @classmethod
    def fleet(
        cls,
        mode: str = "jet",
        family: str = "table",
        n_servers: int = 50,
        horizon_size: int = 5,
        ct_capacity: Optional[int] = None,
        ct_policy: str = "lru",
        seed: int = 0,
        **ch_kwargs,
    ) -> "BalancerSpec":
        """The CLI's conventional fleet: servers ``s0..``, horizon ``h0..``.

        Fills in the per-family constructor kwargs the CLI would (table
        rows, anchor capacity); Maglev takes no horizon (paper Section 3.6).
        """
        if mode == "jet" and family == "maglev":
            raise ValueError("maglev has no horizon; use mode='full' or 'stateless'")
        if mode == "concury" and family == "maglev":
            raise ValueError("concury needs a horizon-aware inner family, not maglev")
        working = tuple(f"s{i}" for i in range(n_servers))
        horizon = (
            () if family == "maglev" else tuple(f"h{i}" for i in range(horizon_size))
        )
        if family == "table" and "rows" not in ch_kwargs:
            from repro.ch import rows_for

            ch_kwargs["rows"] = rows_for(n_servers)
        if family == "anchor" and "capacity" not in ch_kwargs:
            ch_kwargs["capacity"] = 2 * (n_servers + horizon_size)
        return cls(
            mode=mode,
            family=family,
            working=working,
            horizon=horizon,
            ct_capacity=ct_capacity,
            ct_policy=ct_policy,
            seed=seed,
            ch_kwargs=tuple(sorted(ch_kwargs.items())),
        )

    def build(self, shard_id: int = 0) -> LoadBalancer:
        """Construct this balancer for one shard, seeds shard-derived."""
        from repro.core.factories import make_ch, make_full_ct, make_jet
        from repro.ct import make_ct

        kwargs = dict(self.ch_kwargs)
        if self.mode == "stateless":
            from repro.core.stateless import StatelessLoadBalancer

            return StatelessLoadBalancer(
                make_ch(self.family, list(self.working), list(self.horizon), **kwargs)
            )
        if self.mode == "concury":
            # No CT, so no shard-local randomness: every shard builds the
            # exact same Othello map (seeded by the master seed alone),
            # which the merged-equals-single-process contract requires.
            from repro.core.factories import make_concury

            return make_concury(
                self.family,
                list(self.working),
                list(self.horizon),
                seed=self.seed,
                **kwargs,
            )
        ct = make_ct(
            self.ct_capacity, self.ct_policy, seed=shard_seed(self.seed, shard_id)
        )
        if self.mode == "jet":
            return make_jet(
                self.family, list(self.working), list(self.horizon), ct=ct, **kwargs
            )
        if self.mode == "full":
            return make_full_ct(
                self.family, list(self.working), list(self.horizon), ct=ct, **kwargs
            )
        raise ValueError(f"unknown mode {self.mode!r}")
