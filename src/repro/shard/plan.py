"""Shard plan: a trace partitioned into per-shard packet subsequences.

The plan is built once in the parent process, *before* any fork, so its
arrays ride into worker processes as copy-on-write pages -- nothing is
pickled.  A shard's view of the trace shares the full ``flow_keys``
column (zero-copy, memmap-friendly: a memmapped key column stays one
shared file mapping across every worker) and materializes only its own
slice of the packet column.

Event translation preserves the single-process interleaving exactly: an
event fires in a shard just before the first *shard-local* packet whose
global index is at or past the event's index.  Events scheduled after a
shard's last packet still have to reach that shard's balancer (a server
removal invalidates CT entries whose flows live in every shard), so they
are returned separately as ``trailing`` callables to apply once the
shard's replay loop has drained.  Events at or past the end of the trace
never fire in a single-process replay and are dropped here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.core.interfaces import LoadBalancer
from repro.shard.partition import shard_of_keys
from repro.traces.base import Trace

#: (packet_index, apply) -- same shape as :data:`repro.traces.replay.TraceEvent`.
Event = Tuple[int, Callable[[LoadBalancer], None]]


def _normalize(event) -> Event:
    """Accept a ``(index, fn)`` pair or anything with packet_index/apply."""
    if isinstance(event, tuple):
        index, apply = event
        return int(index), apply
    return int(event.packet_index), event.apply


@dataclass
class ShardPlan:
    """The partition of one trace's packets into ``n_shards`` shards."""

    trace: Trace
    n_shards: int
    #: int32 shard id per flow (length ``trace.n_flows``).
    flow_shards: np.ndarray
    #: Per shard: sorted global packet positions owned by that shard.
    positions: List[np.ndarray]

    @classmethod
    def partition(cls, trace: Trace, n_shards: int) -> "ShardPlan":
        flow_shards = shard_of_keys(trace.flow_keys, n_shards)
        packet_shards = flow_shards[trace.packets]
        positions = [
            np.flatnonzero(packet_shards == shard) for shard in range(n_shards)
        ]
        return cls(
            trace=trace, n_shards=n_shards, flow_shards=flow_shards,
            positions=positions,
        )

    def shard_trace(self, shard: int) -> Trace:
        """Shard-local trace: shared key column, own packet subsequence.

        Flow indices are unchanged, so per-flow accounting inside a shard
        addresses the same flow ids as the single-process replay -- merges
        never need an index translation.
        """
        return Trace(
            name=self.trace.name,
            flow_keys=self.trace.flow_keys,
            packets=self.trace.packets[self.positions[shard]],
            validate=False,
        )

    def shard_events(
        self, shard: int, events: Sequence
    ) -> Tuple[List[Event], List[Callable[[LoadBalancer], None]]]:
        """Translate a global event schedule into shard-local form.

        Returns ``(local, trailing)``: ``local`` carries shard-local packet
        indices for the replay loop; ``trailing`` are events past the
        shard's last packet (but still inside the trace) to apply after it.
        """
        pos = self.positions[shard]
        ordered = sorted((_normalize(event) for event in events), key=lambda e: e[0])
        local: List[Event] = []
        trailing: List[Callable[[LoadBalancer], None]] = []
        for index, apply in ordered:
            if index >= self.trace.n_packets:
                continue  # would never fire in a single-process replay
            local_index = int(np.searchsorted(pos, index, side="left"))
            if local_index < len(pos):
                local.append((local_index, apply))
            else:
                trailing.append(apply)
        return local, trailing

    def packets_per_shard(self) -> List[int]:
        return [len(pos) for pos in self.positions]
