"""``repro.shard`` -- the sharded multi-worker dataplane.

RSS-style keyspace partitioning across worker processes: a front stage
hashes every flow key into one of N shards (salted splitmix64,
worker-count-invariant), each shard owns its own CT + LB + int32
dispatch over the shared read-only trace columns, and per-shard results
and metrics registries merge into one snapshot at the result edge.

Layering:

- :mod:`repro.shard.partition` -- the pure shard function + seed stream;
- :mod:`repro.shard.plan` -- a trace partitioned into per-shard packet
  subsequences, with event-schedule translation;
- :mod:`repro.shard.spec` -- picklable balancer/membership descriptions;
- :mod:`repro.shard.worker` -- the pure per-shard replay kernel;
- :mod:`repro.shard.runner` -- partition/merge drivers (serial or forked)
  for replay and the event-driven simulator.

Why sharding is cheap for JET specifically: each shard replicates the
membership state machine (W, H, the CH table) but tracks only its own
*unsafe* flows, so per-shard CT state is ``|H|/(|W|+|H|)`` of the
shard's flows (Theorem 4.2).  A full-CT dataplane sharded the same way
pays ``(|W|+|H|)/|H|`` times more per-shard memory and cross-LB sync
traffic -- measured by ``experiments/sharding.py``.
"""

from repro.shard.partition import SHARD_SALT, shard_of_key, shard_of_keys, shard_seed
from repro.shard.plan import ShardPlan
from repro.shard.runner import ShardedReplay, replay_sharded, simulate_sharded
from repro.shard.spec import BalancerSpec, MembershipEvent
from repro.shard.worker import ShardOutcome, run_shard

__all__ = [
    "SHARD_SALT",
    "BalancerSpec",
    "MembershipEvent",
    "ShardOutcome",
    "ShardPlan",
    "ShardedReplay",
    "replay_sharded",
    "run_shard",
    "shard_of_key",
    "shard_of_keys",
    "shard_seed",
    "simulate_sharded",
]
