"""Keyed hashing: per-(server, key) rendezvous weights.

HRW-style consistent hashing ranks servers by ``hash(server, key)``.  The
hot path computes one such weight per server per lookup, so this module is
written for minimal per-call overhead: each server gets a precomputed
64-bit *seed* (derived from its name once), and the per-key weight is a
single multiply-xor mix of ``(seed, key_hash)``.
"""

from __future__ import annotations

from typing import Union

from repro.hashing.fnv import fnv1a64
from repro.hashing.mix import MASK64, fmix64, mix2
from repro.hashing.xxh import xxhash64

Key = Union[int, str, bytes, tuple]


def hash_str(s: str, seed: int = 0) -> int:
    """Hash a string to 64 bits via xxHash64 of its UTF-8 encoding."""
    return xxhash64(s.encode("utf-8"), seed)


def hash_int(x: int, seed: int = 0) -> int:
    """Hash an integer to 64 bits (one finalizer round over seed-mixed input)."""
    return fmix64((x ^ (seed * 0x9E3779B97F4A7C15)) & MASK64)


def hash_key(key: Key, seed: int = 0) -> int:
    """Hash an arbitrary connection identifier to 64 bits.

    Accepts the identifier forms used across the library: raw 64-bit ints
    (the fast path, used by simulators and traces), strings, bytes, and
    tuples such as TCP 5-tuples.
    """
    if isinstance(key, int):
        return hash_int(key, seed)
    if isinstance(key, str):
        return hash_str(key, seed)
    if isinstance(key, bytes):
        return xxhash64(key, seed)
    if isinstance(key, tuple):
        h = seed ^ 0x27D4EB2F165667C5
        for part in key:
            h = mix2(h, hash_key(part))
        return h
    raise TypeError(f"unhashable connection identifier type: {type(key)!r}")


def server_seed(name: Key) -> int:
    """Derive a server's 64-bit seed from its name (computed once per server)."""
    if isinstance(name, str):
        return fmix64(fnv1a64(name.encode("utf-8")))
    return hash_key(name)


class KeyedHasher:
    """Rendezvous-weight calculator for one server.

    Instances precompute the server seed so the per-key weight is one
    :func:`mix2` call.  Two servers with different names produce
    independent weight streams; the same server name always produces the
    same stream (deterministic across processes).
    """

    __slots__ = ("name", "seed")

    def __init__(self, name: Key):
        self.name = name
        self.seed = server_seed(name)

    def weight(self, key_hash: int) -> int:
        """Weight of this server for a pre-hashed key (64-bit int)."""
        return mix2(self.seed, key_hash)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyedHasher({self.name!r})"
