"""FNV-1a 64-bit hash.

A tiny, fast non-cryptographic hash used for short, low-entropy inputs such
as server names, where its simplicity beats xxHash's setup cost.  Its output
is always post-mixed (see :mod:`repro.hashing.keyed`) before being used as a
weight, so FNV's known avalanche weaknesses do not leak into decisions.
"""

from repro.hashing.mix import MASK64

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a64(data: bytes, seed: int = _FNV_OFFSET) -> int:
    """Compute the 64-bit FNV-1a hash of ``data``.

    ``seed`` replaces the standard offset basis, which makes keyed variants
    trivial (seed with a mixed server id to get an independent stream).
    """
    h = seed & MASK64
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & MASK64
    return h
