"""Vectorized (numpy) counterparts of the scalar mixers.

Bit-identical to :mod:`repro.hashing.mix` over uint64 arrays -- the
differential tests assert it -- so table-based CH structures can be built
and updated with array operations instead of per-row Python loops.
numpy's uint64 arithmetic wraps modulo 2^64, matching the masked scalar
code.
"""

from __future__ import annotations

import numpy as np

_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MM_M1 = np.uint64(0xFF51AFD7ED558CCD)
_MM_M2 = np.uint64(0xC4CEB9FE1A85EC53)
_S33 = np.uint64(33)


def v_fmix64(x: np.ndarray) -> np.ndarray:
    """MurmurHash3 finalizer over a uint64 array (new array returned)."""
    x = x.astype(np.uint64, copy=True)
    x ^= x >> _S33
    x *= _MM_M1
    x ^= x >> _S33
    x *= _MM_M2
    x ^= x >> _S33
    return x


def v_mix2(a: int, b: np.ndarray) -> np.ndarray:
    """``mix2(a, b_i)`` for scalar ``a`` against an array ``b``."""
    # Pre-wrap the scalar product in Python ints; numpy warns on scalar
    # uint64 overflow even though the wraparound is exactly what we want.
    seed_term = np.uint64((a * 0x9E3779B97F4A7C15) & 0xFFFF_FFFF_FFFF_FFFF)
    return v_fmix64(seed_term + b.astype(np.uint64, copy=False))


def v_mix2_outer(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``mix2(a_i, b_j)`` as an (len(a), len(b)) matrix."""
    a = a.astype(np.uint64, copy=False)
    b = b.astype(np.uint64, copy=False)
    return v_fmix64(a[:, None] * _SM_GAMMA + b[None, :])


def v_splitmix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 over a uint64 array."""
    x = x.astype(np.uint64, copy=True)
    x += _SM_GAMMA
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))
