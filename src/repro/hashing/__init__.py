"""Deterministic 64-bit hashing primitives used throughout the reproduction.

Every randomized decision in the library (rendezvous weights, ring positions,
Maglev permutations, AnchorHash jumps, workload generation seeds) is derived
from the mixers in this package, so that simulations are fully reproducible
across processes and platforms -- unlike Python's builtin ``hash`` which is
salted per process.

The public surface:

- :func:`splitmix64` -- fast single-round mixer (Steele et al.).
- :func:`fmix64` -- MurmurHash3 finalizer; high-quality avalanche.
- :func:`mix2` / :func:`mix3` -- combine multiple 64-bit values.
- :func:`xxhash64` -- full xxHash64 over bytes (reference-compatible).
- :func:`fnv1a64` -- FNV-1a over bytes (simple, good for short names).
- :func:`hash_str` / :func:`hash_int` -- convenience entry points.
- :func:`to_unit` -- map a 64-bit hash onto the unit interval [0, 1).
- :class:`KeyedHasher` -- per-(server, key) rendezvous weights with a
  precomputed server seed, the hot path of HRW-style lookups.
"""

from repro.hashing.mix import (
    MASK64,
    fmix64,
    mix2,
    mix3,
    splitmix64,
    to_unit,
)
from repro.hashing.xxh import xxhash64
from repro.hashing.fnv import fnv1a64
from repro.hashing.keyed import KeyedHasher, hash_int, hash_str, server_seed

__all__ = [
    "MASK64",
    "splitmix64",
    "fmix64",
    "mix2",
    "mix3",
    "to_unit",
    "xxhash64",
    "fnv1a64",
    "KeyedHasher",
    "hash_str",
    "hash_int",
    "server_seed",
]
