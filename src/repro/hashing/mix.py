"""Core 64-bit integer mixers.

All functions operate on and return Python ints constrained to 64 bits via
:data:`MASK64`.  They are deliberately dependency-free and allocation-light:
these run on the per-packet hot path of every load balancer in the library.
"""

MASK64 = (1 << 64) - 1

# Constants from splitmix64 (Steele, Lea, Flood 2014).
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_M1 = 0xBF58476D1CE4E5B9
_SM_M2 = 0x94D049BB133111EB

# Constants from the MurmurHash3 64-bit finalizer.
_MM_M1 = 0xFF51AFD7ED558CCD
_MM_M2 = 0xC4CEB9FE1A85EC53


def splitmix64(x: int) -> int:
    """Mix a 64-bit integer with one splitmix64 round.

    Advances ``x`` by the golden-gamma increment and applies the splitmix64
    output function.  Passes BigCrush when iterated; ideal for deriving
    per-server seeds and workload RNG streams.
    """
    x = (x + _SM_GAMMA) & MASK64
    x = ((x ^ (x >> 30)) * _SM_M1) & MASK64
    x = ((x ^ (x >> 27)) * _SM_M2) & MASK64
    return x ^ (x >> 31)


def fmix64(x: int) -> int:
    """MurmurHash3 64-bit finalizer: full-avalanche bijection on 64 bits."""
    x &= MASK64
    x = ((x ^ (x >> 33)) * _MM_M1) & MASK64
    x = ((x ^ (x >> 33)) * _MM_M2) & MASK64
    return x ^ (x >> 33)


def mix2(a: int, b: int) -> int:
    """Combine two 64-bit values into one well-mixed 64-bit value.

    The combination is *not* symmetric (``mix2(a, b) != mix2(b, a)`` in
    general), which is what rendezvous hashing needs: the weight of
    (server, key) must be independent from (key, server).
    """
    return fmix64((a * _SM_GAMMA + b) & MASK64)


def mix3(a: int, b: int, c: int) -> int:
    """Combine three 64-bit values into one well-mixed 64-bit value."""
    return fmix64((mix2(a, b) * _SM_GAMMA + c) & MASK64)


def to_unit(h: int) -> float:
    """Map a 64-bit hash onto the unit interval ``[0, 1)``.

    Used by Ring hashing, whose positions live on the unit circle
    (footnote 4 of the paper).  Only the top 53 bits are used so the
    result is exactly representable and strictly below 1.0 (a plain
    ``h / 2**64`` rounds the all-ones input up to 1.0).
    """
    return ((h & MASK64) >> 11) * (1.0 / (1 << 53))
