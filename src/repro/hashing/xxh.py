"""Pure-Python implementation of xxHash64.

xxHash64 is the hash the paper's C++ artifact uses for connection
identifiers.  This is a faithful reimplementation of the reference
algorithm (https://github.com/Cyan4973/xxHash, XXH64) producing
bit-identical digests, so traces hashed here dispatch identically to
traces hashed by the original C implementation.
"""

from repro.hashing.mix import MASK64

_PRIME1 = 0x9E3779B185EBCA87
_PRIME2 = 0xC2B2AE3D27D4EB4F
_PRIME3 = 0x165667B19E3779F9
_PRIME4 = 0x85EBCA77C2B2AE63
_PRIME5 = 0x27D4EB2F165667C5


def _rotl(x: int, r: int) -> int:
    x &= MASK64
    return ((x << r) | (x >> (64 - r))) & MASK64


def _round(acc: int, lane: int) -> int:
    acc = (acc + lane * _PRIME2) & MASK64
    acc = _rotl(acc, 31)
    return (acc * _PRIME1) & MASK64


def _merge_round(acc: int, val: int) -> int:
    acc ^= _round(0, val)
    return (acc * _PRIME1 + _PRIME4) & MASK64


def xxhash64(data: bytes, seed: int = 0) -> int:
    """Compute the 64-bit xxHash of ``data`` with the given ``seed``.

    Matches the reference XXH64 implementation bit-for-bit.
    """
    seed &= MASK64
    length = len(data)
    pos = 0

    if length >= 32:
        v1 = (seed + _PRIME1 + _PRIME2) & MASK64
        v2 = (seed + _PRIME2) & MASK64
        v3 = seed
        v4 = (seed - _PRIME1) & MASK64
        limit = length - 32
        while pos <= limit:
            v1 = _round(v1, int.from_bytes(data[pos : pos + 8], "little"))
            v2 = _round(v2, int.from_bytes(data[pos + 8 : pos + 16], "little"))
            v3 = _round(v3, int.from_bytes(data[pos + 16 : pos + 24], "little"))
            v4 = _round(v4, int.from_bytes(data[pos + 24 : pos + 32], "little"))
            pos += 32
        h = (_rotl(v1, 1) + _rotl(v2, 7) + _rotl(v3, 12) + _rotl(v4, 18)) & MASK64
        h = _merge_round(h, v1)
        h = _merge_round(h, v2)
        h = _merge_round(h, v3)
        h = _merge_round(h, v4)
    else:
        h = (seed + _PRIME5) & MASK64

    h = (h + length) & MASK64

    while pos + 8 <= length:
        k1 = _round(0, int.from_bytes(data[pos : pos + 8], "little"))
        h ^= k1
        h = (_rotl(h, 27) * _PRIME1 + _PRIME4) & MASK64
        pos += 8

    if pos + 4 <= length:
        h ^= (int.from_bytes(data[pos : pos + 4], "little") * _PRIME1) & MASK64
        h = (_rotl(h, 23) * _PRIME2 + _PRIME3) & MASK64
        pos += 4

    while pos < length:
        h ^= (data[pos] * _PRIME5) & MASK64
        h = (_rotl(h, 11) * _PRIME1) & MASK64
        pos += 1

    h ^= h >> 33
    h = (h * _PRIME2) & MASK64
    h ^= h >> 29
    h = (h * _PRIME3) & MASK64
    h ^= h >> 32
    return h
