"""Othello hashing: a minimal perfect mapping for the Concury dataplane.

The structure (Yu et al., "Othello Hashing"; used by Concury,
arXiv 1908.01889) encodes a static map ``key -> l-bit value`` into two
integer arrays ``A`` (size ``ma``) and ``B`` (size ``mb``) such that

    lookup(k) = A[h_a(k)] ^ B[h_b(k)]

-- two seeded hash probes and one XOR, branch-free and O(1) regardless of
how many keys are stored.  Construction views each key as an edge of a
bipartite graph between A-nodes and B-nodes; when that graph is acyclic
(which holds with high probability for ``ma >= 1.33 n``, ``mb >= n``) the
array cells can be assigned by walking each tree once so every edge's
endpoint XOR equals its value.  A cyclic draw is retried with the next
seed pair derived deterministically from the master seed, so two builds
from the same ``(keys, values, seed)`` are identical arrays -- including
how many attempts they burned.

The *control plane* owns all mutation:

- :meth:`update` changes one key's value in place by XOR-ing the value
  delta along the affected tree component (the key's edge is the only
  edge leaving that component, so every other key's lookup is preserved);
- :meth:`clone` is a cheap copy-on-write snapshot (arrays copied, the
  immutable edge structure shared) used to patch a new version aside and
  flip it atomically into the dataplane.

Lookups of keys *outside* the built key set return well-defined garbage
(whatever the two probed cells XOR to); callers that need membership must
keep it elsewhere.  Concury never does: its key universe (flowset ids) is
exactly the built key set.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.hashing.mix import MASK64, fmix64
from repro.hashing.vector import v_fmix64

__all__ = ["Othello", "OthelloBuildError"]


class OthelloBuildError(RuntimeError):
    """Raised when no acyclic seed pair is found within ``max_attempts``."""


def _pow2_at_least(n: int) -> int:
    size = 1
    while size < n:
        size <<= 1
    return size


def _probe_seeds(seed: int, attempt: int) -> Tuple[int, int]:
    """The deterministic seed pair for one build attempt.

    Derived purely from ``(seed, attempt)`` through the finalizer, so a
    rebuild-on-cycle sequence is reproducible across processes.
    """
    base = fmix64((seed * 0x9E3779B97F4A7C15 + attempt) & MASK64)
    return base, fmix64(base ^ 0xC4CEB9FE1A85EC53)


class Othello:
    """Static perfect mapping ``uint64 key -> value`` with XOR lookup."""

    __slots__ = (
        "a", "b", "ma", "mb", "seed", "attempts", "value_bits",
        "_seed_a", "_seed_b", "_keys", "_values", "_key_index",
        "_edge_a", "_edge_b", "_adjacency",
    )

    #: Sizing from the Othello paper: |A| >= 1.33 n keeps the bipartite
    #: edge draw subcritical so the graph is acyclic w.h.p.
    A_LOAD = 1.33

    def __init__(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        seed: int = 0,
        value_bits: int = 16,
        max_attempts: int = 64,
        ma: int = None,
        mb: int = None,
    ):
        keys = [int(k) & MASK64 for k in keys]
        values = [int(v) for v in values]
        if len(keys) != len(values):
            raise ValueError("keys and values must pair up")
        if len(set(keys)) != len(keys):
            raise ValueError("Othello keys must be distinct")
        if value_bits < 1 or value_bits > 32:
            raise ValueError("value_bits must be in [1, 32]")
        limit = 1 << value_bits
        if any(v < 0 or v >= limit for v in values):
            raise ValueError(f"values must fit in {value_bits} bits")
        n = max(1, len(keys))
        self.ma = ma if ma is not None else _pow2_at_least(int(self.A_LOAD * n) + 1)
        self.mb = mb if mb is not None else _pow2_at_least(n)
        self.seed = seed
        self.value_bits = value_bits
        dtype = np.uint8 if value_bits <= 8 else (np.uint16 if value_bits <= 16 else np.uint32)
        self._keys = np.array(keys, dtype=np.uint64)
        self._values = np.array(values, dtype=dtype)
        self._key_index: Dict[int, int] = {k: i for i, k in enumerate(keys)}
        self._build(max_attempts, dtype)

    # ------------------------------------------------------ construction
    def _probe(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized (h_a, h_b) node positions for a uint64 key array."""
        sa = np.uint64(self._seed_a)
        sb = np.uint64(self._seed_b)
        ha = (v_fmix64(keys ^ sa) & np.uint64(self.ma - 1)).astype(np.int64)
        hb = (v_fmix64(keys ^ sb) & np.uint64(self.mb - 1)).astype(np.int64)
        return ha, hb

    def _build(self, max_attempts: int, dtype) -> None:
        """Find an acyclic seed pair, then 2-color the forest.

        Each failed attempt advances the deterministic seed chain --
        ``attempts`` records how many were burned, and the hypothesis
        suite bounds it.
        """
        n = len(self._keys)
        for attempt in range(max_attempts):
            self._seed_a, self._seed_b = _probe_seeds(self.seed, attempt)
            ha, hb = self._probe(self._keys)
            adjacency = self._acyclic_adjacency(ha, hb, n)
            if adjacency is not None:
                self.attempts = attempt + 1
                self._edge_a = ha
                self._edge_b = hb
                self._adjacency = adjacency
                self._assign(dtype)
                return
        raise OthelloBuildError(
            f"no acyclic Othello draw for {n} keys in {max_attempts} attempts "
            f"(ma={self.ma}, mb={self.mb})"
        )

    def _acyclic_adjacency(self, ha, hb, n):
        """Adjacency lists if the edge draw is a forest, else None.

        Nodes are numbered A-side ``0..ma-1`` and B-side ``ma..ma+mb-1``;
        each adjacency entry is ``(neighbor, edge)``.  Acyclicity is
        checked with one union-find pass (duplicate (h_a, h_b) pairs form
        a 2-cycle and fail it like any other cycle).
        """
        total = self.ma + self.mb
        parent = list(range(total))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(total)]
        ma = self.ma
        for edge in range(n):
            u = int(ha[edge])
            v = ma + int(hb[edge])
            ru, rv = find(u), find(v)
            if ru == rv:
                return None
            parent[ru] = rv
            adjacency[u].append((v, edge))
            adjacency[v].append((u, edge))
        return adjacency

    def _assign(self, dtype) -> None:
        """Walk each tree once, fixing cells so every edge XORs right."""
        a = np.zeros(self.ma, dtype=dtype)
        b = np.zeros(self.mb, dtype=dtype)
        ma = self.ma
        values = self._values
        adjacency = self._adjacency
        seen = bytearray(ma + self.mb)
        cell = [0] * (ma + self.mb)
        for root in range(ma + self.mb):
            if seen[root] or not adjacency[root]:
                continue
            seen[root] = 1
            stack = [root]
            while stack:
                node = stack.pop()
                here = cell[node]
                for neighbor, edge in adjacency[node]:
                    if seen[neighbor]:
                        continue
                    seen[neighbor] = 1
                    cell[neighbor] = here ^ int(values[edge])
                    stack.append(neighbor)
        if ma + self.mb:
            flat = np.asarray(cell, dtype=dtype)
            a[:] = flat[:ma]
            b[:] = flat[ma:]
        self.a = a
        self.b = b

    # ------------------------------------------------------------ lookup
    def lookup(self, key: int) -> int:
        """``A[h_a(k)] ^ B[h_b(k)]`` -- the whole dataplane operation."""
        key &= MASK64
        ha = fmix64(key ^ self._seed_a) & (self.ma - 1)
        hb = fmix64(key ^ self._seed_b) & (self.mb - 1)
        return int(self.a[ha]) ^ int(self.b[hb])

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`lookup` over a uint64 array (branch-free)."""
        keys = np.asarray(keys, dtype=np.uint64)
        ha, hb = self._probe(keys)
        return self.a[ha] ^ self.b[hb]

    def value_of(self, key: int) -> int:
        """The stored value of a *member* key (control-plane accessor)."""
        return int(self._values[self._key_index[int(key) & MASK64]])

    # ---------------------------------------------------------- mutation
    def update(self, key: int, value: int) -> int:
        """Change one key's value in place; returns cells touched.

        XORs ``old ^ new`` into every cell of the tree component on the
        A-side of the key's edge, *excluding* travel across the edge
        itself: edges internal to that component see the delta twice
        (a no-op) and the key's edge sees it once, so exactly one lookup
        changes.  Cost is the component size -- O(log n) expected at the
        subcritical load the builder enforces.
        """
        edge = self._key_index[int(key) & MASK64]
        old = int(self._values[edge])
        value = int(value)
        if value < 0 or value >= (1 << self.value_bits):
            raise ValueError(f"value must fit in {self.value_bits} bits")
        delta = old ^ value
        if not delta:
            return 0
        ma = self.ma
        start = int(self._edge_a[edge])
        seen = {start}
        stack = [start]
        touched = 0
        a, b = self.a, self.b
        adjacency = self._adjacency
        while stack:
            node = stack.pop()
            if node < ma:
                a[node] ^= delta
            else:
                b[node - ma] ^= delta
            touched += 1
            for neighbor, via in adjacency[node]:
                if via == edge or neighbor in seen:
                    continue
                seen.add(neighbor)
                stack.append(neighbor)
        self._values[edge] = value
        return touched

    def clone(self) -> "Othello":
        """Copy-on-write snapshot: arrays copied, edge structure shared.

        The control plane patches the clone with :meth:`update` calls and
        flips it into the dataplane in one reference assignment, so
        readers only ever see a fully consistent version.
        """
        twin = object.__new__(Othello)
        twin.ma, twin.mb = self.ma, self.mb
        twin.seed, twin.attempts = self.seed, self.attempts
        twin.value_bits = self.value_bits
        twin._seed_a, twin._seed_b = self._seed_a, self._seed_b
        twin.a = self.a.copy()
        twin.b = self.b.copy()
        twin._keys = self._keys
        twin._values = self._values.copy()
        twin._key_index = self._key_index
        twin._edge_a, twin._edge_b = self._edge_a, self._edge_b
        twin._adjacency = self._adjacency
        return twin

    # ------------------------------------------------------------- state
    @property
    def memory_bytes(self) -> int:
        """Dataplane footprint: the two probe arrays only.

        Independent of how many *connections* ever hash into the map --
        the whole point of the Concury comparison.
        """
        return self.a.nbytes + self.b.nbytes

    def __len__(self) -> int:
        return len(self._keys)

    def items(self):
        """Control-plane view of the stored mapping."""
        return zip(self._keys.tolist(), self._values.tolist())
