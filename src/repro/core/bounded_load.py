"""JET with consistent hashing and bounded loads (CH-BL).

Section 6.3 points at load-aware dispatching and cites Mirrokni et al.'s
*Consistent Hashing with Bounded Loads*: cap every server at
``ceil((1 + epsilon) * connections / servers)`` and cascade overflowing
keys to the next candidate in ring order.  This module integrates CH-BL
with JET the same way :mod:`repro.core.load_aware` integrates
power-of-2-choices:

- the cascade runs only for packets flagged ``new_connection`` (TCP SYN);
  mid-connection packets of untracked flows take the plain CH result,
  which Theorem 4.4 keeps stable -- the PCC-soundness condition;
- a connection is tracked iff it is CH-unsafe **or** its placement
  deviated from the plain CH result (an overflowed, cascaded key), since
  a deviated placement cannot be recomputed from the hash alone.

Tracking cost: at most the overflow fraction (bounded by epsilon's tail
bound, typically a few percent for epsilon = 0.25) on top of JET's
|H|/(|W|+|H|) -- far below the ~50 % of power-of-2-choices, at the price
of a weaker balance target (a hard cap rather than near-perfect spread).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Optional, Set

from repro.ch.ring import RingHash
from repro.core.interfaces import LoadBalancer, Name
from repro.ct.base import ConnectionTracker
from repro.ct.unbounded import UnboundedCT


class BoundedLoadJET(LoadBalancer):
    """JET over Ring CH-BL: hard per-server connection caps."""

    dispatches_new_connections = True

    def __init__(
        self,
        ch: RingHash,
        ct: Optional[ConnectionTracker] = None,
        epsilon: float = 0.25,
        active_cleanup: bool = True,
    ):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.ch = ch
        self.ct = ct if ct is not None else UnboundedCT()
        self.epsilon = epsilon
        self.active_cleanup = active_cleanup
        self._working: Set[Name] = set(ch.working)
        self.load: Dict[Name, int] = {name: 0 for name in self._working}
        self._active = 0
        self.cascaded = 0  # connections placed off their CH choice

    # ---------------------------------------------------------- capacity
    def capacity(self) -> int:
        """Current per-server cap: ceil((1+eps) * (active+1) / n)."""
        n = max(len(self._working), 1)
        return math.ceil((1 + self.epsilon) * (self._active + 1) / n)

    # ------------------------------------------------------------ packet
    def get_destination(self, key_hash: int, new_connection: bool = False) -> Name:
        destination = self.ct.get(key_hash)
        if destination is not None:
            if destination in self._working:
                return destination
            self.ct.delete(key_hash)
        ch_choice, unsafe = self.ch.lookup_with_safety(key_hash)
        if not new_connection:
            if unsafe:
                self.ct.put(key_hash, ch_choice)
            return ch_choice
        cap = self.capacity()
        chosen = ch_choice
        if self.load.get(ch_choice, 0) >= cap:
            for candidate in self.ch.iter_successors(key_hash):
                if self.load.get(candidate, 0) < cap:
                    chosen = candidate
                    break
            # (all full can't happen: cap * n > active by construction)
        if chosen != ch_choice:
            self.cascaded += 1
        if unsafe or chosen != ch_choice:
            self.ct.put(key_hash, chosen)
        return chosen

    # -------------------------------------------------- load accounting
    def note_flow_start(self, destination: Name) -> None:
        self.load[destination] = self.load.get(destination, 0) + 1
        self._active += 1

    def note_flow_end(self, destination: Name) -> None:
        current = self.load.get(destination, 0)
        if current > 0:
            self.load[destination] = current - 1
            self._active -= 1

    def max_load(self) -> int:
        return max(self.load.values()) if self.load else 0

    # -------------------------------------------------- backend changes
    def add_working_server(self, name: Name) -> None:
        self.ch.add_working(name)
        self._working.add(name)
        self.load.setdefault(name, 0)

    def remove_working_server(self, name: Name) -> None:
        self.ch.remove_working(name)
        self._working.discard(name)
        orphaned = self.load.pop(name, 0)
        self._active -= orphaned  # those connections are inevitably broken
        if self.active_cleanup:
            self.ct.invalidate_destination(name)

    def add_horizon_server(self, name: Name) -> None:
        self.ch.add_horizon(name)

    def remove_horizon_server(self, name: Name) -> None:
        self.ch.remove_horizon(name)

    def force_add_working_server(self, name: Name) -> None:
        self.ch.force_add_working(name)
        self._working.add(name)
        self.load.setdefault(name, 0)

    # ------------------------------------------------------------- state
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working)

    @property
    def tracked_connections(self) -> int:
        return len(self.ct)
