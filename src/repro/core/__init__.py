"""The paper's primary contribution: the JET framework and its baselines."""

from repro.core.interfaces import LoadBalancer, Name
from repro.core.jet import JETLoadBalancer
from repro.core.full_ct import FullCTLoadBalancer
from repro.core.stateless import StatelessLoadBalancer
from repro.core.load_aware import PowerOfTwoJET
from repro.core.bounded_load import BoundedLoadJET
from repro.core.lb_pool import LBPool
from repro.core.safety import SafetyClass, SafetyReport, classify_event, classify_for_horizon
from repro.core.factories import make_ch, make_full_ct, make_jet

__all__ = [
    "LoadBalancer",
    "Name",
    "JETLoadBalancer",
    "FullCTLoadBalancer",
    "StatelessLoadBalancer",
    "PowerOfTwoJET",
    "BoundedLoadJET",
    "LBPool",
    "SafetyClass",
    "SafetyReport",
    "classify_event",
    "classify_for_horizon",
    "make_ch",
    "make_jet",
    "make_full_ct",
]
