"""The connection-safety model of Section 2.1.

For a backend change event, active connections fall into exactly one of
three categories:

- **inevitably broken** -- the event removes their true destination;
- **safe** -- the decision rule still agrees with their true destination
  after the event;
- **unsafe** -- the decision rule disagrees after the event; they break
  unless tracked.

This module classifies a population of connections for a concrete event,
against any LB decision rule expressed as a lookup callable.  It is the
ground truth the theory experiments and the simulator's accounting are
validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Hashable, Set

Name = Hashable


class SafetyClass(Enum):
    """Section 2.1 connection categories."""

    SAFE = "safe"
    UNSAFE = "unsafe"
    INEVITABLY_BROKEN = "inevitably_broken"


@dataclass
class SafetyReport:
    """Classification of a key population around one backend change."""

    safe: Set[int] = field(default_factory=set)
    unsafe: Set[int] = field(default_factory=set)
    inevitably_broken: Set[int] = field(default_factory=set)

    @property
    def total(self) -> int:
        return len(self.safe) + len(self.unsafe) + len(self.inevitably_broken)

    @property
    def unsafe_fraction(self) -> float:
        """Unsafe share among connections the event could possibly affect
        (inevitably broken ones are excluded per Section 2.1)."""
        considered = len(self.safe) + len(self.unsafe)
        return len(self.unsafe) / considered if considered else 0.0

    def classify(self, key: int) -> SafetyClass:
        if key in self.inevitably_broken:
            return SafetyClass.INEVITABLY_BROKEN
        if key in self.unsafe:
            return SafetyClass.UNSAFE
        if key in self.safe:
            return SafetyClass.SAFE
        raise KeyError(f"key {key} was not classified")


def classify_event(
    true_destinations: Dict[int, Name],
    rule_after: Callable[[int], Name],
    removed: Name = None,
) -> SafetyReport:
    """Classify connections for one backend change.

    ``true_destinations`` maps each active connection key to the
    destination its *first packet* received (its true destination);
    ``rule_after`` is the LB decision rule evaluated in the post-event
    state; ``removed`` names the removed server for removal events (None
    for additions, which never inevitably break anything).
    """
    report = SafetyReport()
    for key, true_destination in true_destinations.items():
        if removed is not None and true_destination == removed:
            report.inevitably_broken.add(key)
        elif rule_after(key) == true_destination:
            report.safe.add(key)
        else:
            report.unsafe.add(key)
    return report


def classify_for_horizon(
    true_destinations: Dict[int, Name],
    lookup_union: Callable[[int], Name],
) -> SafetyReport:
    """Classify connections against the *whole-horizon* addition event.

    This is the event class JET tracks for: by Theorem 4.4, a connection is
    safe for every admission order/subset iff ``CH(W ∪ H, k)`` matches its
    true destination.  No connection is inevitably broken by additions.
    """
    return classify_event(true_destinations, lookup_union, removed=None)
