"""Stateless hash LB -- no connection tracking at all.

The Section 2 "static setting" baseline: apply the hash on every packet.
PCC holds only while the backend is static; every unsafe connection breaks
on the first backend change.  Useful as the lower envelope in PCC plots and
to sanity-check the simulator (its violation count should match the
number of unsafe connections the safety model predicts).
"""

from __future__ import annotations

from typing import FrozenSet, Set

import numpy as np

from repro.ch.base import (
    ConsistentHash,
    HorizonConsistentHash,
    has_batch_kernel,
    has_index_kernel,
)
from repro.core.indexing import BackendIndexer
from repro.core.interfaces import LoadBalancer, Name


class StatelessLoadBalancer(LoadBalancer):
    """Pure hash dispatching; remembers nothing about connections."""

    def __init__(self, ch: ConsistentHash):
        self.ch = ch
        self._horizon_aware = isinstance(ch, HorizonConsistentHash)
        self._working: Set[Name] = set(ch.working)
        self._ch_batch_kernel = has_batch_kernel(ch)
        self._ch_index_kernel = has_index_kernel(ch)
        # Stable id space for the columnar path: CH table positions
        # renumber under churn, dispatch ids must not.
        self._indexer = BackendIndexer()

    @property
    def batch_effective(self) -> bool:
        return self._ch_batch_kernel

    @property
    def columnar_effective(self) -> bool:
        return self._ch_index_kernel

    def get_destination(self, key_hash: int) -> Name:
        return self.ch.lookup(key_hash)

    def get_destinations_batch(self, keys: np.ndarray) -> np.ndarray:
        return self.ch.lookup_batch(np.asarray(keys, dtype=np.uint64))

    # ------------------------------------------------- columnar dispatch
    def get_destinations_batch_idx(self, keys: np.ndarray) -> np.ndarray:
        """Integer CH kernel plus the table-position -> stable-id gather."""
        ch_idx = self.ch.lookup_batch_idx(np.asarray(keys, dtype=np.uint64))
        return self._indexer.translate(self.ch.backend_table())[ch_idx]

    def dispatch_names(self) -> np.ndarray:
        return self._indexer.name_array()

    def dispatch_working_mask(self) -> np.ndarray:
        return self._indexer.working_mask(self._working)

    def add_working_server(self, name: Name) -> None:
        if self._horizon_aware:
            self.ch.add_working(name)
        else:
            self.ch.add(name)
        self._working.add(name)

    def remove_working_server(self, name: Name) -> None:
        if self._horizon_aware:
            self.ch.remove_working(name)
        else:
            self.ch.remove(name)
        self._working.discard(name)

    def add_horizon_server(self, name: Name) -> None:
        if self._horizon_aware:
            self.ch.add_horizon(name)

    def remove_horizon_server(self, name: Name) -> None:
        if self._horizon_aware:
            self.ch.remove_horizon(name)

    def force_add_working_server(self, name: Name) -> None:
        if self._horizon_aware:
            self.ch.force_add_working(name)
        else:
            self.ch.add(name)
        self._working.add(name)

    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working)
