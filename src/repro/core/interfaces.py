"""Load-balancer interface shared by JET and the baselines.

A load balancer in this library is the *decision* component of an L4 LB:
it maps the (pre-hashed) connection identifier of each arriving packet to a
backend server, and it is told about backend change events.  The interface
mirrors Algorithm 1's five entry points plus ``force_add_working_server``
(an addition that bypasses the horizon -- see
:meth:`repro.ch.base.HorizonConsistentHash.force_add_working`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Hashable

Name = Hashable


class LoadBalancer(ABC):
    """Per-packet destination chooser with backend-change notifications."""

    @abstractmethod
    def get_destination(self, key_hash: int) -> Name:
        """Destination server for a packet of connection ``key_hash``."""

    @abstractmethod
    def add_working_server(self, name: Name) -> None:
        """ADDWORKINGSERVER: admit ``name`` (from the horizon if one exists)."""

    @abstractmethod
    def remove_working_server(self, name: Name) -> None:
        """REMOVEWORKINGSERVER: remove ``name`` from the working set."""

    def add_horizon_server(self, name: Name) -> None:
        """ADDHORIZONSERVER (no-op for horizon-less balancers)."""

    def remove_horizon_server(self, name: Name) -> None:
        """REMOVEHORIZONSERVER (no-op for horizon-less balancers)."""

    def force_add_working_server(self, name: Name) -> None:
        """Add a server that was never announced via the horizon."""
        self.add_working_server(name)

    @property
    @abstractmethod
    def working(self) -> FrozenSet[Name]:
        """Current working set."""

    @property
    def tracked_connections(self) -> int:
        """Number of connections currently tracked (0 for stateless LBs)."""
        return 0
