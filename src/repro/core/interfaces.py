"""Load-balancer interface shared by JET and the baselines.

A load balancer in this library is the *decision* component of an L4 LB:
it maps the (pre-hashed) connection identifier of each arriving packet to a
backend server, and it is told about backend change events.  The interface
mirrors Algorithm 1's five entry points plus ``force_add_working_server``
(an addition that bypasses the horizon -- see
:meth:`repro.ch.base.HorizonConsistentHash.force_add_working`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Hashable

import numpy as np

Name = Hashable


class LoadBalancer(ABC):
    """Per-packet destination chooser with backend-change notifications."""

    @abstractmethod
    def get_destination(self, key_hash: int) -> Name:
        """Destination server for a packet of connection ``key_hash``."""

    def get_destinations_batch(self, keys: np.ndarray) -> np.ndarray:
        """Destinations for a uint64 array of packet keys.

        The batch contract: same destinations and same post-batch CT
        key->destination mapping as dispatching the keys one by one
        through :meth:`get_destination` (no backend change may occur
        mid-batch).  This default *is* that scalar loop, so every LB --
        including load-aware ones that never override it -- honours the
        contract; JET/full-CT/stateless override it with a composed
        CT-mask + vectorized-CH fast path.
        """
        found = [
            self.get_destination(k)
            for k in np.asarray(keys, dtype=np.uint64).tolist()
        ]
        out = np.empty(len(found), dtype=object)
        out[:] = found
        return out

    @property
    def batch_effective(self) -> bool:
        """True iff :meth:`get_destinations_batch` actually vectorizes.

        The never-slower probe for batch drivers (replay, the sim
        engine's packet coalescing): when False, the batch path is the
        scalar loop plus array packing, so drivers should skip batch
        assembly entirely and dispatch scalar.  The default answers
        "does this LB override the batch method at all?"; composed LBs
        refine it with their runtime gates (CH kernel present, CT
        reorder-safe, active cleanup).
        """
        return type(self).get_destinations_batch is not LoadBalancer.get_destinations_batch

    # ------------------------------------------------- columnar dispatch
    # The integer-index dataplane: destinations flow as int32 *backend
    # ids* (stable, LB-local, append-only -- see repro.core.indexing) and
    # names are materialized only at the metrics/result edge through
    # :meth:`dispatch_names`.  Drivers must probe
    # :attr:`columnar_effective` first; balancers that answer False keep
    # these methods unimplemented and are served by the name/scalar paths.

    @property
    def columnar_effective(self) -> bool:
        """True iff :meth:`get_destinations_batch_idx` is wired and fast.

        Same never-slower philosophy as :attr:`batch_effective`, one
        level up: the columnar path additionally needs an integer CH
        kernel and an int-valued CT, so composed LBs gate on
        ``has_index_kernel`` plus their CT/cleanup invariants.
        """
        return False

    def get_destinations_batch_idx(self, keys: np.ndarray) -> np.ndarray:
        """Destination ids (int32, indices into :meth:`dispatch_names`)
        for a uint64 key array.

        Contract: ``dispatch_names()[ids]`` equals
        :meth:`get_destinations_batch` on the same keys, and ids are
        stable across backend changes (an id keeps naming the same
        server for the balancer's lifetime).  Only defined when
        :attr:`columnar_effective` is True.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no columnar dispatch path"
        )

    def dispatch_names(self) -> np.ndarray:
        """Object array mapping dispatch ids -> server names (edge use)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no columnar dispatch path"
        )

    def dispatch_working_mask(self) -> np.ndarray:
        """Bool array over dispatch ids: True where the server is working.

        Rebuilt on every call; drivers cache it between backend events.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no columnar dispatch path"
        )

    @abstractmethod
    def add_working_server(self, name: Name) -> None:
        """ADDWORKINGSERVER: admit ``name`` (from the horizon if one exists)."""

    @abstractmethod
    def remove_working_server(self, name: Name) -> None:
        """REMOVEWORKINGSERVER: remove ``name`` from the working set."""

    def add_horizon_server(self, name: Name) -> None:
        """ADDHORIZONSERVER (no-op for horizon-less balancers)."""

    def remove_horizon_server(self, name: Name) -> None:
        """REMOVEHORIZONSERVER (no-op for horizon-less balancers)."""

    def force_add_working_server(self, name: Name) -> None:
        """Add a server that was never announced via the horizon."""
        self.add_working_server(name)

    @property
    @abstractmethod
    def working(self) -> FrozenSet[Name]:
        """Current working set."""

    @property
    def tracked_connections(self) -> int:
        """Number of connections currently tracked (0 for stateless LBs)."""
        return 0
