"""Convenience constructors for the paper's LB configurations.

The fused pseudo-codes of the paper map onto (CH family, LB wrapper) pairs:

=============  =======================================  ==================
Paper          Factory call                             Composition
=============  =======================================  ==================
Algorithm 2    ``make_jet("hrw", ...)``                 JET + HRWHash
Algorithm 3    ``make_jet("ring", ...)``                JET + RingHash
Algorithm 4    ``make_jet("table", ...)``               JET + TableHRWHash
Algorithm 5    ``make_jet("anchor", ...)``              JET + AnchorHash
Section 3.6    ``make_full_ct("maglev", ...)``          FullCT + MaglevHash
=============  =======================================  ==================
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.ch import (
    AnchorHash,
    EXTENSION_FAMILIES,
    HRWHash,
    JET_FAMILIES,
    MaglevHash,
    RingHash,
    TableHRWHash,
)
from repro.ch.concury import ConcuryHash
from repro.core.concury import ConcuryLoadBalancer
from repro.core.full_ct import FullCTLoadBalancer
from repro.core.interfaces import LoadBalancer, Name
from repro.core.jet import JETLoadBalancer
from repro.core.stateless import StatelessLoadBalancer
from repro.ct import make_ct
from repro.ct.base import ConnectionTracker


def make_ch(family: str, working: Iterable[Name], horizon: Iterable[Name] = (), **kwargs):
    """Build a CH module by family name ("hrw", "ring", "table", "anchor",
    "maglev", plus the "jump"/"modulo" extensions and the heterogeneous
    "weighted-hrw"/"weighted-ring" variants, which accept ``{name:
    weight}`` mappings for ``working``/``horizon``).  Extra kwargs reach
    the CH constructor (e.g. ``rows=...``, ``virtual_nodes=...``,
    ``capacity=...``, ``table_size=...``)."""
    if family == "maglev":
        if horizon:
            raise ValueError("MaglevHash cannot take a horizon (paper Section 3.6)")
        return MaglevHash(working, **kwargs)
    if family in ("weighted-hrw", "weighted-ring"):
        # Special-cased like maglev rather than registered: the weighted
        # variants take server-spec mappings and have no batch kernels,
        # so they stay out of the family-sweep registries.
        from repro.ch.weighted import WeightedHRWHash, WeightedRingHash

        cls = WeightedHRWHash if family == "weighted-hrw" else WeightedRingHash
        return cls(working=working, horizon=horizon, **kwargs)
    cls = JET_FAMILIES.get(family) or EXTENSION_FAMILIES.get(family)
    if cls is None:
        raise ValueError(
            f"unknown CH family {family!r}; choose from "
            f"{sorted(JET_FAMILIES) + sorted(EXTENSION_FAMILIES) + ['maglev']}"
        )
    return cls(working=working, horizon=horizon, **kwargs)


def make_jet(
    family: str,
    working: Iterable[Name],
    horizon: Iterable[Name],
    ct: Optional[ConnectionTracker] = None,
    ct_capacity: Optional[int] = None,
    ct_policy: str = "lru",
    **ch_kwargs,
) -> JETLoadBalancer:
    """Build a JET load balancer (Algorithms 1-5) for a CH family."""
    ch = make_ch(family, working, horizon, **ch_kwargs)
    if ct is None:
        ct = make_ct(ct_capacity, ct_policy)
    return JETLoadBalancer(ch, ct)


def make_full_ct(
    family: str,
    working: Iterable[Name],
    horizon: Iterable[Name] = (),
    ct: Optional[ConnectionTracker] = None,
    ct_capacity: Optional[int] = None,
    ct_policy: str = "lru",
    **ch_kwargs,
) -> FullCTLoadBalancer:
    """Build a full-CT baseline LB.

    Passing a ``horizon`` (ignored by the tracking logic) keeps the CH state
    machine identical to a paired JET run, which Proposition 4.1 requires.
    """
    ch = make_ch(family, working, horizon, **ch_kwargs)
    if ct is None:
        ct = make_ct(ct_capacity, ct_policy)
    return FullCTLoadBalancer(ch, ct)


def make_stateless(
    family: str,
    working: Iterable[Name],
    horizon: Iterable[Name] = (),
    **ch_kwargs,
) -> StatelessLoadBalancer:
    """Build the Section 2 static-setting baseline (no CT at all)."""
    return StatelessLoadBalancer(make_ch(family, working, horizon, **ch_kwargs))


def make_concury(
    family: str,
    working: Iterable[Name],
    horizon: Iterable[Name] = (),
    seed: int = 0,
    flowsets: Optional[int] = None,
    **ch_kwargs,
) -> ConcuryLoadBalancer:
    """Build a Concury LB: Othello flowset dataplane, ``family`` as the
    *inner* control-plane CH deciding flowset placement."""
    ch = ConcuryHash(
        working=working,
        horizon=horizon,
        inner=family,
        flowsets=flowsets,
        seed=seed,
        **ch_kwargs,
    )
    return ConcuryLoadBalancer(ch)


def make_jet_p2c(
    family: str,
    working: Iterable[Name],
    horizon: Iterable[Name] = (),
    ct: Optional[ConnectionTracker] = None,
    ct_capacity: Optional[int] = None,
    ct_policy: str = "lru",
    weights=None,
    **ch_kwargs,
):
    """Build the Section 6.3 power-of-2-choices JET with Charon-style
    occupancy weighting: new-connection candidates compared by live
    backend occupancy (driver-refreshed gauges) normalized by capacity
    ``weights``.  SYN-gated, so PCC stays sound."""
    from repro.core.load_aware import PowerOfTwoJET

    ch = make_ch(family, working, horizon, **ch_kwargs)
    if ct is None:
        ct = make_ct(ct_capacity, ct_policy)
    return PowerOfTwoJET(ch, ct, weights=weights)


#: LB wrapper modes by CLI name -- the companion registry to
#: ``JET_FAMILIES``/``EXTENSION_FAMILIES``: CLI ``--mode`` choices are
#: generated from here so a new wrapper shows up everywhere at once.
LB_MODES = {
    "jet": make_jet,
    "full": make_full_ct,
    "stateless": make_stateless,
    "concury": make_concury,
    "jet-p2c": make_jet_p2c,
}


def lb_mode_choices():
    """Sorted LB mode names for CLI ``choices=`` lists."""
    return sorted(LB_MODES)


def make_lb(
    mode: str,
    family: str,
    working: Iterable[Name],
    horizon: Iterable[Name] = (),
    **kwargs,
) -> LoadBalancer:
    """Build any registered (mode, family) LB composition."""
    factory = LB_MODES.get(mode)
    if factory is None:
        raise ValueError(f"unknown LB mode {mode!r}; choose from {lb_mode_choices()}")
    return factory(family, working, horizon, **kwargs)
