"""Concury load balancer: stateless dispatch over the Othello dataplane.

Structurally this is :class:`~repro.core.stateless.StatelessLoadBalancer`
-- no connection tracker, every packet resolved by pure hashing -- but
with :class:`~repro.ch.concury.ConcuryHash` underneath the "hash" is an
O(1) Othello probe whose *contents* the control plane keeps CH-consistent
across membership changes.  The distinction matters for the showdown:

- a plain stateless LB re-evaluates ``CH(W, k)`` per packet, so lookup
  cost scales with the CH family and PCC breaks for every moved key;
- Concury's dataplane cost is flat (two gathers + XOR) regardless of
  family or backend count, and PCC breaks only at flowset granularity --
  strictly fewer broken connections than per-key rehashing, strictly more
  than JET's zero.

The wrapper adds the control-plane accounting the showdown experiment
reads (map memory, patch/rebuild counters); dispatch itself is inherited
unchanged, which is the point -- the columnar replay loop and sharded
fork drivers run this family without knowing it exists.
"""

from __future__ import annotations

from repro.ch.concury import ConcuryHash
from repro.core.stateless import StatelessLoadBalancer


class ConcuryLoadBalancer(StatelessLoadBalancer):
    """Stateless LB over a :class:`ConcuryHash` (tracked connections: 0)."""

    def __init__(self, ch: ConcuryHash):
        if not isinstance(ch, ConcuryHash):
            raise TypeError("ConcuryLoadBalancer requires a ConcuryHash")
        super().__init__(ch)

    # ----------------------------------------------- showdown accounting
    @property
    def map_memory_bytes(self) -> int:
        """Dataplane bytes: Othello arrays + flowset safety bits."""
        return self.ch.memory_bytes

    @property
    def update_stats(self) -> dict:
        """Cumulative control-plane cost of membership changes."""
        ch = self.ch
        return {
            "rebuilds": ch.rebuilds,
            "patches": ch.patches,
            "flowsets_changed": ch.total_changed,
            "cells_touched": ch.total_touched,
            "last_changed": ch.last_refresh_changed,
            "last_touched": ch.last_refresh_touched,
        }
