"""Backend id space for the columnar (integer-index) dispatch path.

The columnar dataplane keeps backend *indices* flowing end to end: the CH
batch kernels return indices into their own family-specific backend table
(ring entry owners, anchor buckets, Maglev population order, ...), the CT
stores destinations as integers, and the replay loop does all accounting
on int32 arrays.  Those per-family tables disagree with each other and
change shape under churn, so the load balancer needs one stable, LB-local
id space to store in the CT and account against across backend changes.

:class:`BackendIndexer` provides it:

- ids are **append-only**: a name keeps its id for the balancer's
  lifetime, so CT entries written before a backend change stay valid
  after it (exactly like the name strings they replace);
- a CH-table -> id translation array is cached on the *identity* of the
  CH's ``backend_table()`` (families replace -- never mutate -- their
  table on change, so ``is`` is a sound and O(1) cache key);
- names are materialized only at the metrics/result edge, via
  :attr:`names` or :meth:`decode`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.interfaces import Name


class BackendIndexer:
    """Append-only name <-> int32 id registry with translation caching."""

    __slots__ = ("names", "_ids", "_translation", "_names_arr")

    def __init__(self) -> None:
        #: id -> name; index into this list IS the id.
        self.names: List[Name] = []
        self._ids: Dict[Name, int] = {}
        # (source table object, int32 translation) -- identity-keyed.
        self._translation: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._names_arr: Optional[np.ndarray] = None

    def get_id(self, name: Name) -> int:
        """Stable id of ``name``, registering it on first sight."""
        ident = self._ids.get(name)
        if ident is None:
            ident = len(self.names)
            self.names.append(name)
            self._ids[name] = ident
            self._names_arr = None
        return ident

    def translate(self, table: np.ndarray) -> np.ndarray:
        """CH-table-position -> LB-id int32 array for a backend table.

        Cached on the table's identity: while the CH keeps returning the
        same array object (no backend change), the cached translation is
        returned with zero per-call work.  ``None`` table entries (retired
        slots no lookup can resolve to) map to -1.
        """
        cached = self._translation
        if cached is not None and cached[0] is table:
            return cached[1]
        get_id = self.get_id
        translation = np.fromiter(
            (-1 if name is None else get_id(name) for name in table.tolist()),
            dtype=np.int32,
            count=len(table),
        )
        self._translation = (table, translation)
        return translation

    def name_array(self) -> np.ndarray:
        """Object-array twin of :attr:`names` (for edge-only name gathers)."""
        if self._names_arr is None or len(self._names_arr) != len(self.names):
            arr = np.empty(len(self.names), dtype=object)
            arr[:] = self.names
            self._names_arr = arr
        return self._names_arr

    def decode(self, indices: np.ndarray) -> List[Name]:
        """Names for an int32 id array (edge use only -- never hot path)."""
        names = self.names
        return [names[i] for i in np.asarray(indices).tolist()]

    def working_mask(self, working: Iterable[Name]) -> np.ndarray:
        """Bool array over ids: True where the id's name is in ``working``.

        Rebuilt per call -- callers cache it between backend changes (the
        replay loop recomputes only after applying an event).
        """
        mask = np.zeros(len(self.names), dtype=bool)
        members = set(working)
        for ident, name in enumerate(self.names):
            if name in members:
                mask[ident] = True
        return mask

    def __len__(self) -> int:
        return len(self.names)
