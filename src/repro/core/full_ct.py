"""Full connection tracking -- the stateful-LB baseline (Ananta, Maglev,
Katran style).

Every connection's destination is recorded on its first packet, and every
subsequent packet is served from the CT table.  With an unbounded table and
a consistent hash this preserves PCC perfectly; with a bounded table,
evicted-but-alive connections break when the backend has changed since
their arrival -- the full-CT bars of Fig. 3.

The baseline accepts either a plain :class:`~repro.ch.base.ConsistentHash`
(e.g. MaglevHash) or a :class:`~repro.ch.base.HorizonConsistentHash`.  In
the latter case backend events are applied through the *same* horizon
protocol JET uses, so a paired JET/full-CT run drives byte-identical CH
state -- the setup Proposition 4.1 compares.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

import numpy as np

from repro.ch.base import (
    ConsistentHash,
    HorizonConsistentHash,
    has_batch_kernel,
    has_index_kernel,
)
from repro.core.indexing import BackendIndexer
from repro.core.interfaces import LoadBalancer, Name
from repro.ct.base import ConnectionTracker, credit_repeat_hits as _credit_within_chunk_hits
from repro.ct.unbounded import UnboundedCT


class FullCTLoadBalancer(LoadBalancer):
    """Hash-based stateful LB that tracks every connection."""

    def __init__(
        self,
        ch: ConsistentHash,
        ct: Optional[ConnectionTracker] = None,
        active_cleanup: bool = True,
    ):
        self.ch = ch
        self.ct = ct if ct is not None else UnboundedCT()
        self.active_cleanup = active_cleanup
        self._horizon_aware = isinstance(ch, HorizonConsistentHash)
        self._working: Set[Name] = set(ch.working)
        self._ch_batch_kernel = has_batch_kernel(ch)
        self._ch_index_kernel = has_index_kernel(ch)
        self._indexer = BackendIndexer()
        self._ct_idx = False

    @property
    def batch_effective(self) -> bool:
        return bool(
            self._ch_batch_kernel
            and self.ct.batch_reorder_safe
            and self.active_cleanup
        )

    @property
    def columnar_effective(self) -> bool:
        return bool(
            self._ch_index_kernel
            and self.ct.batch_reorder_safe
            and self.active_cleanup
        )

    # ----------------------------------------------------------- packet
    def get_destination(self, key_hash: int) -> Name:
        if self._ct_idx:
            return self._get_destination_idx(key_hash)
        destination = self.ct.get(key_hash)
        if destination is not None:
            if destination in self._working:
                return destination
            self.ct.delete(key_hash)
        destination = self.ch.lookup(key_hash)
        self.ct.put(key_hash, destination)  # track unconditionally
        return destination

    def _get_destination_idx(self, key_hash: int) -> Name:
        """Scalar full-CT against an index-mode table (values are ids)."""
        ident = self.ct.get(key_hash)
        if ident is not None:
            destination = self._indexer.names[ident]
            if destination in self._working:
                return destination
            self.ct.delete(key_hash)
        destination = self.ch.lookup(key_hash)
        self.ct.put(key_hash, self._indexer.get_id(destination))
        return destination

    def get_destinations_batch(self, keys: np.ndarray) -> np.ndarray:
        """Batched full CT: CT-hit mask -> CH batch -> insert every miss.

        Same soundness gate as JET's batch path (reorder-safe table plus
        the active-cleanup invariant -- lazy validation needs per-key
        interleaving) and the same payoff gate (the CH must actually have
        a batch kernel); ``batch_effective`` folds all three in.
        Otherwise the scalar loop runs so eviction and recency order are
        preserved exactly and batch never runs slower than scalar.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=object)
        if self._ct_idx:
            return self._indexer.name_array()[self.get_destinations_batch_idx(keys)]
        if not self.batch_effective:
            return LoadBalancer.get_destinations_batch(self, keys)
        destinations = self.ct.get_batch(keys)
        # np.equal runs the None comparison in a C loop -- ~3x faster
        # than a Python list comprehension over the object array.
        miss = np.equal(destinations, None)
        if miss.any():
            miss_keys = keys[miss]
            found = self.ch.lookup_batch(miss_keys)
            destinations[miss] = found
            self.ct.put_batch(miss_keys, found)
            _credit_within_chunk_hits(self.ct, miss_keys)
        return destinations

    # ------------------------------------------------- columnar dispatch
    def _engage_idx_mode(self) -> None:
        if not self._ct_idx:
            self.ct.remap_values(self._indexer.get_id)
            self._ct_idx = True

    def get_destinations_batch_idx(self, keys: np.ndarray) -> np.ndarray:
        """Batched full CT, all-integer: id probe -> integer CH kernel ->
        stable-id translation -> insert *every* miss (track-all policy)."""
        keys = np.asarray(keys, dtype=np.uint64)
        self._engage_idx_mode()
        ids = self.ct.get_batch_idx(keys)
        miss = ids < 0
        if miss.any():
            miss_keys = keys[miss]
            ch_idx = self.ch.lookup_batch_idx(miss_keys)
            found = self._indexer.translate(self.ch.backend_table())[ch_idx]
            ids[miss] = found
            self.ct.put_batch_idx(miss_keys, found)
            _credit_within_chunk_hits(self.ct, miss_keys)
        return ids

    def dispatch_names(self) -> np.ndarray:
        return self._indexer.name_array()

    def dispatch_working_mask(self) -> np.ndarray:
        return self._indexer.working_mask(self._working)

    def tracked_items(self) -> dict:
        """CT contents as ``{key: destination-name}``, decoding index mode."""
        if self._ct_idx:
            names = self._indexer.names
            return {key: names[ident] for key, ident in self.ct.items()}
        return dict(self.ct.items())

    # -------------------------------------------------- backend changes
    def add_working_server(self, name: Name) -> None:
        if self._horizon_aware:
            self.ch.add_working(name)
        else:
            self.ch.add(name)
        self._working.add(name)

    def remove_working_server(self, name: Name) -> None:
        if self._horizon_aware:
            self.ch.remove_working(name)
        else:
            self.ch.remove(name)
        self._working.discard(name)
        if self.active_cleanup:
            self.ct.invalidate_destination(
                self._indexer.get_id(name) if self._ct_idx else name
            )

    def add_horizon_server(self, name: Name) -> None:
        if self._horizon_aware:
            self.ch.add_horizon(name)

    def remove_horizon_server(self, name: Name) -> None:
        if self._horizon_aware:
            self.ch.remove_horizon(name)

    def force_add_working_server(self, name: Name) -> None:
        if self._horizon_aware:
            self.ch.force_add_working(name)
        else:
            self.ch.add(name)
        self._working.add(name)

    # ------------------------------------------------------------ state
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working)

    @property
    def tracked_connections(self) -> int:
        return len(self.ct)
