"""Load-aware JET -- the Section 6.3 power-of-2-choices extension.

The paper sketches ("naive integration") how JET can coexist with
power-of-choice dispatching: for a new connection, the CH result serves as
one of the two candidate servers; the second candidate is an independent
hash.  The less-loaded candidate wins, and the connection is tracked if it
is CH-unsafe *or* the winner disagrees with the plain CH result (because
then the decision is no longer reproducible from the hash alone).

Expected tracking: ~1/2 of connections pick the non-CH candidate, so JET
still saves "up to 50 % of CT table sizes" versus full CT -- the claim
``benchmarks/bench_extensions.py`` measures.

The load-aware choice runs only for packets flagged as *new connections*
(``new_connection=True``) -- an L4 LB identifies these by the TCP SYN bit.
This is what keeps the scheme PCC-consistent: a load-dependent decision is
not reproducible from the hash alone, so re-running it on later packets of
an untracked connection could silently reroute it.  Non-SYN packets of
untracked connections always follow the plain CH result, which Theorem 4.4
guarantees to be stable for safe connections.

Load is the number of active connections per server.  Two signals feed
the comparison, Charon-style (arXiv 2110.14389):

- a periodically-refreshed **occupancy view** -- the per-backend active-
  connection gauges the driver publishes into :mod:`repro.obs`
  (``repro_backend_active_flows``) and mirrors into the balancer via
  :meth:`PowerOfTwoJET.observe_occupancy`.  In a pool deployment this is
  the fleet-wide truth no single LB can self-count;
- the balancer's own ``note_flow_start`` / ``note_flow_end`` counters,
  used as an in-flight *delta* on top of the last observed view (and as
  the sole signal when no view was ever observed).

Heterogeneous fleets normalize both by per-server capacity ``weights``,
so a weight-2 machine looks half as loaded at equal occupancy.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Set

from repro.ch.base import HorizonConsistentHash
from repro.core.interfaces import LoadBalancer, Name
from repro.ct.base import ConnectionTracker
from repro.ct.unbounded import UnboundedCT
from repro.hashing.mix import fmix64


class PowerOfTwoJET(LoadBalancer):
    """JET with power-of-2-choices placement for new connections."""

    #: Capability flag: replayers/simulators should pass
    #: ``new_connection=True`` for a flow's first packet (TCP SYN).
    dispatches_new_connections = True

    def __init__(
        self,
        ch: HorizonConsistentHash,
        ct: Optional[ConnectionTracker] = None,
        active_cleanup: bool = True,
        weights: Optional[Mapping[Name, float]] = None,
    ):
        self.ch = ch
        self.ct = ct if ct is not None else UnboundedCT()
        self.active_cleanup = active_cleanup
        self._working: Set[Name] = set(ch.working)
        self._order: List[Name] = sorted(self._working, key=repr)
        self.load: Dict[Name, int] = {name: 0 for name in self._working}
        #: Per-server capacity weights; absent servers count as 1.0.
        self.weights: Dict[Name, float] = dict(weights or {})
        # Last observed occupancy gauges and the self-counted loads at
        # observation time (so in-flight placements since the refresh
        # still steer the comparison).
        self._occupancy: Optional[Dict[Name, int]] = None
        self._load_at_observe: Dict[Name, int] = {}

    # ----------------------------------------------------------- packet
    def get_destination(self, key_hash: int, new_connection: bool = False) -> Name:
        destination = self.ct.get(key_hash)
        if destination is not None:
            if destination in self._working:
                return destination
            self.ct.delete(key_hash)
        ch_choice, unsafe = self.ch.lookup_with_safety(key_hash)
        if not new_connection:
            # Mid-connection packet of an untracked flow: plain JET path.
            if unsafe:
                self.ct.put(key_hash, ch_choice)
            return ch_choice
        alternative = self._second_choice(key_hash)
        chosen = ch_choice
        if alternative != ch_choice and self._pressure(alternative) < self._pressure(
            ch_choice
        ):
            chosen = alternative
        if unsafe or chosen != ch_choice:
            # Track when the decision is not reproducible from the hash
            # alone (load-dependent pick) or not stable under the horizon.
            self.ct.put(key_hash, chosen)
        return chosen

    def _second_choice(self, key_hash: int) -> Name:
        """Independent uniform candidate among working servers."""
        return self._order[fmix64(key_hash ^ 0xD6E8_FEB8_6659_FD93) % len(self._order)]

    def _pressure(self, name: Name) -> float:
        """Capacity-normalized load: observed occupancy gauge plus the
        self-counted in-flight delta since the last refresh, divided by
        the server's weight.  With no view ever observed and unit
        weights this is exactly the self-counted comparison."""
        local = self.load.get(name, 0)
        if self._occupancy is None:
            occupancy = local
        else:
            occupancy = self._occupancy.get(name, 0) + (
                local - self._load_at_observe.get(name, 0)
            )
        return occupancy / self.weights.get(name, 1.0)

    def observe_occupancy(self, occupancy: Mapping[Name, int]) -> None:
        """Refresh the live occupancy view (the driver mirrors the
        ``repro_backend_active_flows`` gauges here at sample boundaries;
        called identically whether or not a registry is attached, so
        observability cannot change dispatch decisions)."""
        self._occupancy = dict(occupancy)
        self._load_at_observe = dict(self.load)

    # -------------------------------------------------- load accounting
    def note_flow_start(self, destination: Name) -> None:
        self.load[destination] = self.load.get(destination, 0) + 1

    def note_flow_end(self, destination: Name) -> None:
        current = self.load.get(destination, 0)
        if current > 0:
            self.load[destination] = current - 1

    def max_load(self) -> int:
        return max(self.load.values()) if self.load else 0

    # -------------------------------------------------- backend changes
    def _sync_order(self) -> None:
        self._order = sorted(self._working, key=repr)

    def add_working_server(self, name: Name) -> None:
        self.ch.add_working(name)
        self._working.add(name)
        self.load.setdefault(name, 0)
        self._sync_order()

    def remove_working_server(self, name: Name) -> None:
        self.ch.remove_working(name)
        self._working.discard(name)
        self.load.pop(name, None)
        self._sync_order()
        if self.active_cleanup:
            self.ct.invalidate_destination(name)

    def add_horizon_server(self, name: Name) -> None:
        self.ch.add_horizon(name)

    def remove_horizon_server(self, name: Name) -> None:
        self.ch.remove_horizon(name)

    def force_add_working_server(self, name: Name) -> None:
        self.ch.force_add_working(name)
        self._working.add(name)
        self.load.setdefault(name, 0)
        self._sync_order()

    # ------------------------------------------------------------ state
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working)

    @property
    def tracked_connections(self) -> int:
        return len(self.ct)
