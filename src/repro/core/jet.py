"""JET -- Algorithm 1 of the paper.

``JETLoadBalancer`` composes the two pluggable modules:

- **CH**: any :class:`~repro.ch.base.HorizonConsistentHash`.  Its
  ``lookup_with_safety`` fuses lines 4-5 of Algorithm 1 the way each of
  Algorithms 2-5 does for its hash family (HRW weight comparison, ring
  track-flags, TR table, anchor-path inspection) -- so this single class
  *is* JET-HRW / JET-Ring / JET-Table / JET-AnchorHash depending on the CH
  plugged in (see :mod:`repro.core.factories`).

- **CT**: any :class:`~repro.ct.base.ConnectionTracker`.  Only *unsafe*
  connections enter it (line 6).

Removed-destination hygiene follows footnote 3: on ``remove_working_server``
the table is cleaned either actively (drop all entries pointing at the dead
server) or lazily (validate on hit); both prevent a stale CT entry from
pinning a connection to a removed backend.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

import numpy as np

from repro.ch.base import HorizonConsistentHash, has_batch_kernel, has_index_kernel
from repro.core.indexing import BackendIndexer
from repro.core.interfaces import LoadBalancer, Name
from repro.ct.base import ConnectionTracker, credit_repeat_hits as _credit_within_chunk_hits
from repro.ct.unbounded import UnboundedCT


class JETLoadBalancer(LoadBalancer):
    """Just Enough Tracking over a horizon-aware consistent hash."""

    def __init__(
        self,
        ch: HorizonConsistentHash,
        ct: Optional[ConnectionTracker] = None,
        active_cleanup: bool = True,
    ):
        self.ch = ch
        self.ct = ct if ct is not None else UnboundedCT()
        self.active_cleanup = active_cleanup
        # Mirror of ch.working with O(1) membership, for lazy CT validation.
        self._working: Set[Name] = set(ch.working)
        # Capability probes, resolved once: the composed batch path only
        # pays off when the CH actually vectorizes; the columnar path
        # additionally needs the integer-index kernel.
        self._ch_batch_kernel = has_batch_kernel(ch)
        self._ch_index_kernel = has_index_kernel(ch)
        # Stable backend-id space for the columnar path; the CT switches
        # to storing ids (index mode) lazily, on the first columnar call.
        self._indexer = BackendIndexer()
        self._ct_idx = False

    @property
    def batch_effective(self) -> bool:
        return bool(
            self._ch_batch_kernel
            and self.ct.batch_reorder_safe
            and self.active_cleanup
        )

    @property
    def columnar_effective(self) -> bool:
        return bool(
            self._ch_index_kernel
            and self.ct.batch_reorder_safe
            and self.active_cleanup
        )

    # ------------------------------------------------------ Algorithm 1
    def get_destination(self, key_hash: int) -> Name:
        """GETDESTINATION (Algorithm 1 lines 1-7)."""
        if self._ct_idx:
            return self._get_destination_idx(key_hash)
        destination = self.ct.get(key_hash)
        if destination is not None:
            if destination in self._working:
                return destination
            # Lazy cleanup: tracked destination has been removed.
            self.ct.delete(key_hash)
        destination, unsafe = self.ch.lookup_with_safety(key_hash)
        if unsafe:
            self.ct.put(key_hash, destination)
        return destination

    def _get_destination_idx(self, key_hash: int) -> Name:
        """Scalar Algorithm 1 against an index-mode CT (values are ids)."""
        ident = self.ct.get(key_hash)
        if ident is not None:
            destination = self._indexer.names[ident]
            if destination in self._working:
                return destination
            self.ct.delete(key_hash)
        destination, unsafe = self.ch.lookup_with_safety(key_hash)
        if unsafe:
            self.ct.put(key_hash, self._indexer.get_id(destination))
        return destination

    def get_destinations_batch(self, keys: np.ndarray) -> np.ndarray:
        """Batched Algorithm 1: CT-hit mask -> CH batch on the misses ->
        batch-insert the unsafe misses.

        The composed fast path regroups CT operations (all gets, then all
        puts), which is only sound when the table has no recency/eviction
        state (``batch_reorder_safe``) and when active cleanup keeps the
        stale-destination invariant (lazy validation needs per-key
        interleaving) -- and it only pays off when the CH has a real
        batch kernel (``batch_effective`` folds all three in).  Otherwise
        this falls back to the scalar loop, so the batch contract holds
        and never runs slower than scalar for any configuration.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=object)
        if self._ct_idx:
            # Index mode engaged: the CT holds ids, so the name path is
            # the columnar path plus one edge gather.
            return self._indexer.name_array()[self.get_destinations_batch_idx(keys)]
        if not self.batch_effective:
            return LoadBalancer.get_destinations_batch(self, keys)
        destinations = self.ct.get_batch(keys)
        # np.equal runs the None comparison in a C loop -- ~3x faster
        # than a Python list comprehension over the object array.
        miss = np.equal(destinations, None)
        if miss.any():
            miss_keys = keys[miss]
            found, unsafe = self.ch.lookup_with_safety_batch(miss_keys)
            destinations[miss] = found
            if unsafe.any():
                unsafe_keys = miss_keys[unsafe]
                self.ct.put_batch(unsafe_keys, found[unsafe])
                _credit_within_chunk_hits(self.ct, unsafe_keys)
        return destinations

    # ------------------------------------------------- columnar dispatch
    def _engage_idx_mode(self) -> None:
        """Switch the CT to storing backend ids (once, on first use)."""
        if not self._ct_idx:
            self.ct.remap_values(self._indexer.get_id)
            self._ct_idx = True

    def get_destinations_batch_idx(self, keys: np.ndarray) -> np.ndarray:
        """Batched Algorithm 1, all-integer: CT id probe (-1 miss) ->
        integer CH kernel on the misses -> translate CH table positions
        to stable backend ids -> batch-insert the unsafe misses.

        No Python string is materialized anywhere on this path; names
        exist only behind :meth:`dispatch_names`.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        self._engage_idx_mode()
        ids = self.ct.get_batch_idx(keys)
        miss = ids < 0
        if miss.any():
            miss_keys = keys[miss]
            ch_idx, unsafe = self.ch.lookup_with_safety_batch_idx(miss_keys)
            found = self._indexer.translate(self.ch.backend_table())[ch_idx]
            ids[miss] = found
            if unsafe.any():
                unsafe_keys = miss_keys[unsafe]
                self.ct.put_batch_idx(unsafe_keys, found[unsafe])
                _credit_within_chunk_hits(self.ct, unsafe_keys)
        return ids

    def dispatch_names(self) -> np.ndarray:
        return self._indexer.name_array()

    def dispatch_working_mask(self) -> np.ndarray:
        return self._indexer.working_mask(self._working)

    def tracked_items(self) -> dict:
        """CT contents as ``{key: destination-name}``, decoding index mode.

        The differential suites compare CT state across scalar/name/index
        paths through this accessor so they need not know which encoding
        the table currently holds.
        """
        if self._ct_idx:
            names = self._indexer.names
            return {key: names[ident] for key, ident in self.ct.items()}
        return dict(self.ct.items())

    # -------------------------------------------------- backend changes
    def add_working_server(self, name: Name) -> None:
        """ADDWORKINGSERVER (lines 8-10): ``name`` must be in the horizon."""
        self.ch.add_working(name)
        self._working.add(name)

    def remove_working_server(self, name: Name) -> None:
        """REMOVEWORKINGSERVER (lines 11-13): ``name`` joins the horizon."""
        self.ch.remove_working(name)
        self._working.discard(name)
        if self.active_cleanup:
            # In index mode the CT stores ids, so invalidate the id.
            self.ct.invalidate_destination(
                self._indexer.get_id(name) if self._ct_idx else name
            )

    def add_horizon_server(self, name: Name) -> None:
        """ADDHORIZONSERVER (line 14)."""
        self.ch.add_horizon(name)

    def remove_horizon_server(self, name: Name) -> None:
        """REMOVEHORIZONSERVER (line 15)."""
        self.ch.remove_horizon(name)

    def force_add_working_server(self, name: Name) -> None:
        """Unanticipated addition (violates the Section 2.3 contract; JET's
        PCC guarantee does not cover connections unsafe w.r.t. this server)."""
        self.ch.force_add_working(name)
        self._working.add(name)

    # ------------------------------------------------------------ state
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working)

    @property
    def horizon(self) -> FrozenSet[Name]:
        return self.ch.horizon

    @property
    def tracked_connections(self) -> int:
        return len(self.ct)
