"""JET -- Algorithm 1 of the paper.

``JETLoadBalancer`` composes the two pluggable modules:

- **CH**: any :class:`~repro.ch.base.HorizonConsistentHash`.  Its
  ``lookup_with_safety`` fuses lines 4-5 of Algorithm 1 the way each of
  Algorithms 2-5 does for its hash family (HRW weight comparison, ring
  track-flags, TR table, anchor-path inspection) -- so this single class
  *is* JET-HRW / JET-Ring / JET-Table / JET-AnchorHash depending on the CH
  plugged in (see :mod:`repro.core.factories`).

- **CT**: any :class:`~repro.ct.base.ConnectionTracker`.  Only *unsafe*
  connections enter it (line 6).

Removed-destination hygiene follows footnote 3: on ``remove_working_server``
the table is cleaned either actively (drop all entries pointing at the dead
server) or lazily (validate on hit); both prevent a stale CT entry from
pinning a connection to a removed backend.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

import numpy as np

from repro.ch.base import HorizonConsistentHash, has_batch_kernel
from repro.core.interfaces import LoadBalancer, Name
from repro.ct.base import ConnectionTracker
from repro.ct.unbounded import UnboundedCT


class JETLoadBalancer(LoadBalancer):
    """Just Enough Tracking over a horizon-aware consistent hash."""

    def __init__(
        self,
        ch: HorizonConsistentHash,
        ct: Optional[ConnectionTracker] = None,
        active_cleanup: bool = True,
    ):
        self.ch = ch
        self.ct = ct if ct is not None else UnboundedCT()
        self.active_cleanup = active_cleanup
        # Mirror of ch.working with O(1) membership, for lazy CT validation.
        self._working: Set[Name] = set(ch.working)
        # Capability probe, resolved once: the composed batch path only
        # pays off when the CH actually vectorizes.
        self._ch_batch_kernel = has_batch_kernel(ch)

    @property
    def batch_effective(self) -> bool:
        return bool(
            self._ch_batch_kernel
            and self.ct.batch_reorder_safe
            and self.active_cleanup
        )

    # ------------------------------------------------------ Algorithm 1
    def get_destination(self, key_hash: int) -> Name:
        """GETDESTINATION (Algorithm 1 lines 1-7)."""
        destination = self.ct.get(key_hash)
        if destination is not None:
            if destination in self._working:
                return destination
            # Lazy cleanup: tracked destination has been removed.
            self.ct.delete(key_hash)
        destination, unsafe = self.ch.lookup_with_safety(key_hash)
        if unsafe:
            self.ct.put(key_hash, destination)
        return destination

    def get_destinations_batch(self, keys: np.ndarray) -> np.ndarray:
        """Batched Algorithm 1: CT-hit mask -> CH batch on the misses ->
        batch-insert the unsafe misses.

        The composed fast path regroups CT operations (all gets, then all
        puts), which is only sound when the table has no recency/eviction
        state (``batch_reorder_safe``) and when active cleanup keeps the
        stale-destination invariant (lazy validation needs per-key
        interleaving) -- and it only pays off when the CH has a real
        batch kernel (``batch_effective`` folds all three in).  Otherwise
        this falls back to the scalar loop, so the batch contract holds
        and never runs slower than scalar for any configuration.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=object)
        if not self.batch_effective:
            return LoadBalancer.get_destinations_batch(self, keys)
        destinations = self.ct.get_batch(keys)
        # np.equal runs the None comparison in a C loop -- ~3x faster
        # than a Python list comprehension over the object array.
        miss = np.equal(destinations, None)
        if miss.any():
            miss_keys = keys[miss]
            found, unsafe = self.ch.lookup_with_safety_batch(miss_keys)
            destinations[miss] = found
            if unsafe.any():
                self.ct.put_batch(miss_keys[unsafe], found[unsafe])
        return destinations

    # -------------------------------------------------- backend changes
    def add_working_server(self, name: Name) -> None:
        """ADDWORKINGSERVER (lines 8-10): ``name`` must be in the horizon."""
        self.ch.add_working(name)
        self._working.add(name)

    def remove_working_server(self, name: Name) -> None:
        """REMOVEWORKINGSERVER (lines 11-13): ``name`` joins the horizon."""
        self.ch.remove_working(name)
        self._working.discard(name)
        if self.active_cleanup:
            self.ct.invalidate_destination(name)

    def add_horizon_server(self, name: Name) -> None:
        """ADDHORIZONSERVER (line 14)."""
        self.ch.add_horizon(name)

    def remove_horizon_server(self, name: Name) -> None:
        """REMOVEHORIZONSERVER (line 15)."""
        self.ch.remove_horizon(name)

    def force_add_working_server(self, name: Name) -> None:
        """Unanticipated addition (violates the Section 2.3 contract; JET's
        PCC guarantee does not cover connections unsafe w.r.t. this server)."""
        self.ch.force_add_working(name)
        self._working.add(name)

    # ------------------------------------------------------------ state
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working)

    @property
    def horizon(self) -> FrozenSet[Name]:
        return self.ch.horizon

    @property
    def tracked_connections(self) -> int:
        return len(self.ct)
