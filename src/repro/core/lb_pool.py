"""LB pools -- the Section 6.2 multi-balancer deployment model, hardened.

Datacenters run many LB instances behind ECMP: the router hashes each
packet's flow onto one of the live LBs.  Connection-tracking state is
*per-LB*, so when the LB pool itself changes, ECMP re-steers a slice of
the traffic onto LBs that have never seen those flows.  A re-steered
connection breaks iff the current ``CH(W, k)`` disagrees with its true
destination and the new LB has no CT entry for it -- Section 6.2's
observation, true for full CT and JET alike.

Synchronization is a pluggable **channel** rather than a boolean:

- ``sync=False`` -- independent CTs (the §6.2 failure mode);
- ``sync=True``  -- a perfect :class:`~repro.faults.channel.SyncChannel`
  (lossless, instantaneous), the paper's idealised replication.  "If
  synchronization is employed, JET's smaller CT size means that a smaller
  state needs to be synchronized": the channel counts replicated entries
  so experiments can quantify exactly that;
- ``sync=SyncChannel(loss_probability=..., lag_lookups=...)`` -- a lossy,
  lagging channel with bounded retry + backoff.  Entries that exhaust
  their retries are counted (``channel.stats.unreplicated``) and the pool
  reports itself **degraded**.

Beyond graceful scale-in (:meth:`remove_lb`), members can **crash**
(:meth:`crash_lb`: abrupt, ECMP re-steers, the member's CT entries are
lost and counted) or **partition** (:meth:`partition_lb`: the member
keeps serving its ECMP slice but misses backend broadcasts and sync
traffic).  A healed member replays the suffix of the backend event log
it missed (:meth:`heal_lb`), so pool members converge on (W, H) again --
late joiners via :meth:`add_lb` replay the whole log.

ECMP steering is hash-mod-n over the live LB list (the common router
behaviour, deliberately *not* consistent: that is what makes pool changes
disruptive).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional, Union

from repro.core.interfaces import LoadBalancer, Name
from repro.faults.channel import SyncChannel
from repro.hashing.mix import fmix64
from repro.obs import metrics as obs_metrics
from repro.obs.registry import coalesce

BalancerFactory = Callable[[], LoadBalancer]

#: Attribute stamped on members to record how much of the pool's backend
#: event log they have applied (partitioned members fall behind).
_LOG_ATTR = "_pool_log_index"


class LBPool(LoadBalancer):
    """A pool of LB replicas behind hash-mod-n ECMP steering."""

    def __init__(
        self,
        factory: BalancerFactory,
        size: int,
        sync: Union[bool, SyncChannel] = False,
        registry=None,
    ):
        if size < 1:
            raise ValueError("pool needs at least one LB instance")
        self._factory = factory
        # Membership *events* are incremented here as they happen; pool
        # *state* (members, lost entries, occupancy, sync totals) is
        # scraped by the obs collector at snapshot boundaries.
        self.obs = coalesce(registry)
        if sync is True:
            self.channel: Optional[SyncChannel] = SyncChannel()  # perfect
        elif sync is False or sync is None:
            self.channel = None
        else:
            # Any channel object: SyncChannel, GossipSync, or compatible.
            self.channel = sync
        # Origin-based channels (gossip) want to know *which member*
        # inserted an entry rather than a target list to push to.
        self._origin_based = bool(getattr(self.channel, "origin_based", False))
        self.members: List[LoadBalancer] = [factory() for _ in range(size)]
        if self._origin_based:
            for member in self.members:
                self.channel.register_member(member)
        #: CT entries lost with crashed/removed members.
        self.lost_entries = 0
        #: Abrupt member failures observed (vs. graceful scale-in).
        self.crashes = 0
        # Backend changes applied so far; members that missed a suffix
        # (late joiners, healed partitions) replay from their own offset so
        # every member converges on the same (W, H) -- the paper's standing
        # assumption that all LBs see the same backend state.
        self._event_log: List[tuple] = []
        self._partitioned: List[LoadBalancer] = []
        for member in self.members:
            setattr(member, _LOG_ATTR, 0)

    # ------------------------------------------------------------ steer
    def _steer(self, key_hash: int) -> LoadBalancer:
        """ECMP: pick the serving LB for this flow (mod over live LBs)."""
        return self.members[fmix64(key_hash ^ 0x9E6C_63D0_876A_3F6B) % len(self.members)]

    # ----------------------------------------------------------- packet
    def get_destination(self, key_hash: int) -> Name:
        member = self._steer(key_hash)
        if self.channel is not None:
            self.channel.on_lookup()
        ct = getattr(member, "ct", None)
        if self.channel is None or ct is None:
            return member.get_destination(key_hash)
        # Detect a fresh insert by the inserts counter, not the table size:
        # in a bounded CT an insert can coincide with an eviction, leaving
        # the size unchanged and (previously) the entry never replicated.
        inserts_before = ct.stats.inserts
        destination = member.get_destination(key_hash)
        if ct.stats.inserts > inserts_before:
            if self._origin_based:
                self.channel.offer(member, key_hash, destination)
            else:
                self.channel.replicate(
                    key_hash, destination, self._sync_targets(member)
                )
        return destination

    def _sync_targets(self, origin: LoadBalancer) -> List[LoadBalancer]:
        return [
            m
            for m in self.members
            if m is not origin and m not in self._partitioned and hasattr(m, "ct")
        ]

    # ----------------------------------------------------- pool changes
    def add_lb(self) -> LoadBalancer:
        """Grow the pool.  ECMP re-steers ~all flows (mod-n!); without
        sync, flows landing on the new LB lose their CT protection."""
        member = self._factory()
        self._replay_log(member, 0)
        if self._origin_based:
            # Gossip: registration alone suffices -- the new member's
            # watermarks start at zero, so anti-entropy streams it the
            # full pool state over the next rounds.
            self.channel.register_member(member)
        elif self.channel is not None and self.members:
            donor = self.members[0]
            donor_ct = getattr(donor, "ct", None)
            member_ct = getattr(member, "ct", None)
            if donor_ct is not None and member_ct is not None:
                for key, destination in donor_ct.items():
                    self.channel.replicate(key, destination, (member,))
        self.members.append(member)
        self._note_event("add")
        return member

    def _note_event(self, kind: str) -> None:
        self.obs.counter(
            obs_metrics.POOL_EVENTS, "Pool membership events by kind", kind=kind
        ).inc()

    def _validate_index(self, index: int) -> int:
        if not isinstance(index, int) or isinstance(index, bool):
            raise ValueError(f"member index must be an int, got {index!r}")
        size = len(self.members)
        if not -size <= index < size:
            raise ValueError(f"member index {index} out of range for pool of {size}")
        return index % size

    def remove_lb(self, index: int = -1) -> int:
        """Shrink the pool (scale-in).  Returns the number of CT entries
        that left with the member (its un-replicated tracking state)."""
        if len(self.members) <= 1:
            raise ValueError("cannot remove the last LB instance")
        position = self._validate_index(index)
        member = self.members.pop(position)
        if member in self._partitioned:
            self._partitioned.remove(member)
        if self.channel is not None:
            self.channel.forget_target(member)
        lost = member.tracked_connections
        self.lost_entries += lost
        self._note_event("remove")
        return lost

    def crash_lb(self, index: int = -1) -> int:
        """Abrupt member failure: like :meth:`remove_lb` (ECMP re-steers
        the slice immediately) but counted as a crash."""
        lost = self.remove_lb(index)
        self.crashes += 1
        self._note_event("crash")
        return lost

    # ------------------------------------------------------- partitions
    def partition_lb(self, index: int) -> LoadBalancer:
        """Partition a member from the control plane: it keeps serving its
        ECMP slice with a stale view, but misses broadcasts and sync."""
        member = self.members[self._validate_index(index)]
        if member not in self._partitioned:
            self._partitioned.append(member)
            if self.channel is not None:
                if self._origin_based:
                    # Gossip keeps the member's watermarks: the missed
                    # suffix flows back automatically after the heal.
                    self.channel.partition_member(member)
                else:
                    self.channel.forget_target(member)
            self._note_event("partition")
        return member

    def heal_lb(self, index: int) -> int:
        """Heal a partitioned member: replay the backend events it missed
        so it converges on the pool's (W, H), then repair its CT.

        A rejoiner must never silently resume with a stale CT: gossip
        channels resume anti-entropy from the member's watermarks, and
        point-to-point channels get an explicit donor-diff repair
        (counted in ``channel.stats.anti_entropy``).  Returns the backend
        event replay length."""
        member = self.members[self._validate_index(index)]
        if member not in self._partitioned:
            return 0
        self._partitioned.remove(member)
        self._note_event("heal")
        replayed = self._replay_log(member, getattr(member, _LOG_ATTR, 0))
        if self.channel is not None:
            if self._origin_based:
                self.channel.heal_member(member)
            else:
                self._anti_entropy(member)
        return replayed

    def _anti_entropy(self, member: LoadBalancer) -> int:
        """Re-offer a rejoined member every CT entry it is missing,
        diffed against a live donor.  Returns the entries repaired."""
        member_ct = getattr(member, "ct", None)
        if member_ct is None:
            return 0
        donor_ct = None
        for donor in self.members:
            if donor is member or donor in self._partitioned:
                continue
            donor_ct = getattr(donor, "ct", None)
            if donor_ct is not None:
                break
        if donor_ct is None:
            return 0
        repaired = 0
        for key, destination in donor_ct.items():
            if member_ct.peek(key) != destination:
                self.channel.repair(key, destination, member)
                repaired += 1
        return repaired

    def _replay_log(self, member: LoadBalancer, start: int) -> int:
        for method, name in self._event_log[start:]:
            getattr(member, method)(name)
        setattr(member, _LOG_ATTR, len(self._event_log))
        return len(self._event_log) - start

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def partitioned(self) -> int:
        return len(self._partitioned)

    @property
    def degraded(self) -> bool:
        """True when pool state is known-incomplete: partitioned members
        are serving stale views, or the sync channel abandoned entries."""
        if self._partitioned:
            return True
        return self.channel is not None and self.channel.degraded

    # ------------------------------------------------- backend changes
    def _broadcast(self, method: str, name: Name) -> None:
        self._event_log.append((method, name))
        for member in self.members:
            if member in self._partitioned:
                continue
            getattr(member, method)(name)
            setattr(member, _LOG_ATTR, len(self._event_log))

    def add_working_server(self, name: Name) -> None:
        self._broadcast("add_working_server", name)

    def remove_working_server(self, name: Name) -> None:
        self._broadcast("remove_working_server", name)

    def add_horizon_server(self, name: Name) -> None:
        self._broadcast("add_horizon_server", name)

    def remove_horizon_server(self, name: Name) -> None:
        self._broadcast("remove_horizon_server", name)

    def force_add_working_server(self, name: Name) -> None:
        self._broadcast("force_add_working_server", name)

    # ------------------------------------------------------------ state
    @property
    def sync(self) -> bool:
        """Whether CT synchronization is enabled (any channel)."""
        return self.channel is not None

    @property
    def synced_entries(self) -> int:
        """CT entries replicated between members (the §6.2 sync cost)."""
        return self.channel.stats.delivered if self.channel is not None else 0

    @property
    def working(self) -> FrozenSet[Name]:
        # A partitioned member's view may be stale; report a live one's.
        for member in self.members:
            if member not in self._partitioned:
                return member.working
        return self.members[0].working

    @property
    def tracked_connections(self) -> int:
        """Total CT entries across the pool (the aggregate memory bill)."""
        return sum(member.tracked_connections for member in self.members)
