"""LB pools -- the Section 6.2 multi-balancer deployment model.

Datacenters run many LB instances behind ECMP: the router hashes each
packet's flow onto one of the live LBs.  Connection-tracking state is
*per-LB*, so when the LB pool itself changes, ECMP re-steers a slice of
the traffic onto LBs that have never seen those flows.  A re-steered
connection breaks iff the current ``CH(W, k)`` disagrees with its true
destination and the new LB has no CT entry for it -- Section 6.2's
observation, true for full CT and JET alike.

Two mitigations are modeled:

- **none** -- independent CTs (the default, and the §6.2 failure mode);
- **sync** -- every CT insert is replicated to all pool members.  "If
  synchronization is employed, JET's smaller CT size means that a smaller
  state needs to be synchronized": the pool counts replicated entries so
  experiments can quantify exactly that.

ECMP steering is hash-mod-n over the live LB list (the common router
behaviour, deliberately *not* consistent: that is what makes pool changes
disruptive).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List

from repro.core.interfaces import LoadBalancer, Name
from repro.hashing.mix import fmix64

BalancerFactory = Callable[[], LoadBalancer]


class LBPool(LoadBalancer):
    """A pool of LB replicas behind hash-mod-n ECMP steering."""

    def __init__(
        self,
        factory: BalancerFactory,
        size: int,
        sync: bool = False,
    ):
        if size < 1:
            raise ValueError("pool needs at least one LB instance")
        self._factory = factory
        self.sync = sync
        self.members: List[LoadBalancer] = [factory() for _ in range(size)]
        #: CT entries replicated between members (the §6.2 sync cost).
        self.synced_entries = 0
        # Backend changes applied so far; replayed onto late-joining LBs so
        # every member agrees on (W, H) -- the paper's standing assumption
        # that all LBs see the same backend state.
        self._event_log: List[tuple] = []

    # ------------------------------------------------------------ steer
    def _steer(self, key_hash: int) -> LoadBalancer:
        """ECMP: pick the serving LB for this flow (mod over live LBs)."""
        return self.members[fmix64(key_hash ^ 0x9E6C_63D0_876A_3F6B) % len(self.members)]

    # ----------------------------------------------------------- packet
    def get_destination(self, key_hash: int) -> Name:
        member = self._steer(key_hash)
        before = member.tracked_connections
        destination = member.get_destination(key_hash)
        if self.sync and member.tracked_connections > before:
            # The member just started tracking this connection; replicate.
            for other in self.members:
                if other is not member:
                    other.ct.put(key_hash, destination)
                    self.synced_entries += 1
        return destination

    # ----------------------------------------------------- pool changes
    def add_lb(self) -> LoadBalancer:
        """Grow the pool.  ECMP re-steers ~all flows (mod-n!); without
        sync, flows landing on the new LB lose their CT protection."""
        member = self._factory()
        for method, name in self._event_log:
            getattr(member, method)(name)
        if self.sync and self.members:
            donor = self.members[0]
            for key in donor.ct:
                member.ct.put(key, donor.ct.peek(key))
                self.synced_entries += 1
        self.members.append(member)
        return member

    def remove_lb(self, index: int = -1) -> None:
        """Shrink the pool (LB failure or scale-in)."""
        if len(self.members) <= 1:
            raise ValueError("cannot remove the last LB instance")
        self.members.pop(index)

    @property
    def size(self) -> int:
        return len(self.members)

    # ------------------------------------------------- backend changes
    def _broadcast(self, method: str, name: Name) -> None:
        for member in self.members:
            getattr(member, method)(name)
        self._event_log.append((method, name))

    def add_working_server(self, name: Name) -> None:
        self._broadcast("add_working_server", name)

    def remove_working_server(self, name: Name) -> None:
        self._broadcast("remove_working_server", name)

    def add_horizon_server(self, name: Name) -> None:
        self._broadcast("add_horizon_server", name)

    def remove_horizon_server(self, name: Name) -> None:
        self._broadcast("remove_horizon_server", name)

    def force_add_working_server(self, name: Name) -> None:
        self._broadcast("force_add_working_server", name)

    # ------------------------------------------------------------ state
    @property
    def working(self) -> FrozenSet[Name]:
        return self.members[0].working

    @property
    def tracked_connections(self) -> int:
        """Total CT entries across the pool (the aggregate memory bill)."""
        return sum(member.tracked_connections for member in self.members)
