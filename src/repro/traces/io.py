"""Trace persistence: save/load traces as compressed ``.npz`` archives.

Generating a paper-scale trace takes longer than replaying it, so the
benchmark harness caches traces on disk.  The format is two numpy arrays
plus the trace name -- portable and mmap-friendly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.traces.base import Trace


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (.npz, compressed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        name=np.array(trace.name),
        flow_keys=trace.flow_keys,
        packets=trace.packets,
    )


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(Path(path).with_suffix(".npz") if not str(path).endswith(".npz") else path) as data:
        return Trace(
            name=str(data["name"]),
            flow_keys=data["flow_keys"],
            packets=data["packets"],
        )


def cached_trace(factory, cache_dir: Union[str, Path], tag: str) -> Trace:
    """Return a cached trace, generating and caching it on first use."""
    cache_dir = Path(cache_dir)
    path = cache_dir / f"{tag}.npz"
    if path.exists():
        return load_trace(path)
    trace = factory()
    try:
        save_trace(trace, path)
    except OSError:
        pass  # caching is best-effort (read-only filesystems)
    return trace
