"""Trace persistence: save/load traces as ``.npz`` archives.

Generating a paper-scale trace takes longer than replaying it, so the
benchmark harness caches traces on disk.  One file layout, two modes:

- ``save_trace(..., compressed=True)`` (the default) writes a standard
  ``np.savez_compressed`` archive -- smallest on disk, must be fully
  decompressed on load;
- ``compressed=False`` stores the members uncompressed (``ZIP_STORED``),
  which makes them **memmap-able**: ``load_trace(path, mmap=True)`` maps
  each array in place, so a trace larger than RAM opens in milliseconds
  and the replay loop faults pages in as it streams through the packets.

:class:`TraceWriter` produces the exact uncompressed layout chunk by
chunk, for traces too large to ever hold in memory.  All writers are
crash-safe: they write a temp file next to the destination and
``os.replace`` it into place, so a torn write never leaves a half-trace
under the cache key.
"""

from __future__ import annotations

import os
import tempfile
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.traces.base import Trace

#: Errors that mean "the cached file is unusable, regenerate it".
_CACHE_ERRORS = (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile)


def _with_npz_suffix(path: Union[str, Path]) -> Path:
    """Append ``.npz`` when missing.

    Append -- never substitute: ``Path.with_suffix`` would treat the last
    dotted segment of a tag as an extension and corrupt it
    (``zipf.1.2`` -> ``zipf.1.npz``).
    """
    path = Path(path)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    return path


def save_trace(
    trace: Trace, path: Union[str, Path], compressed: bool = True
) -> None:
    """Write ``trace`` to ``path`` (.npz), atomically.

    ``compressed=False`` stores raw array bytes so the file can later be
    opened with ``load_trace(path, mmap=True)``.
    """
    path = _with_npz_suffix(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "name": np.asarray(trace.name),
        "flow_keys": trace.flow_keys,
        "packets": trace.packets,
    }
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        # Write through the open handle: numpy appends ".npz" to bare
        # *filenames*, which would detach the output from our temp path.
        with os.fdopen(fd, "wb") as handle:
            if compressed:
                np.savez_compressed(handle, **payload)
            else:
                np.savez(handle, **payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _member_memmap(path: Path, archive: zipfile.ZipFile, member: str) -> np.ndarray:
    """Memory-map one stored ``.npy`` member of an npz archive in place.

    The npz container is a zip file; a ``ZIP_STORED`` member's payload is
    a verbatim ``.npy`` file at a fixed offset, so after parsing the local
    zip header (the central directory's ``header_offset`` points at it;
    its name/extra fields may differ in length from the central copy) and
    the npy header behind it, the array data can be mapped directly.
    """
    info = archive.getinfo(member)
    if info.compress_type != zipfile.ZIP_STORED:
        raise ValueError(
            f"member {member!r} is compressed; memmap loading needs a trace "
            "written with save_trace(..., compressed=False) or TraceWriter"
        )
    with open(path, "rb") as raw:
        raw.seek(info.header_offset)
        local = raw.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            raise ValueError(f"corrupt local header for member {member!r}")
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        raw.seek(info.header_offset + 30 + name_len + extra_len)
        version = np.lib.format.read_magic(raw)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
        else:
            raise ValueError(f"unsupported npy version {version} in {member!r}")
        offset = raw.tell()
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def load_trace(path: Union[str, Path], mmap: bool = False) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    With ``mmap=True`` the arrays are memory-mapped read-only instead of
    loaded -- constant memory regardless of trace size.  Requires an
    uncompressed archive; validation is skipped (the writers validated).
    The mapping holds the file open: call :meth:`Trace.close` (or use the
    trace as a context manager) to release it deterministically.
    """
    path = _with_npz_suffix(path)
    if not mmap:
        # Own the handle: np.load(path) opens one internally and leaks it
        # when header parsing raises before the NpzFile exists (the
        # truncated-file path) -- ours closes on any exit.
        with open(path, "rb") as handle:
            with np.load(handle) as data:
                return Trace(
                    name=str(data["name"]),
                    flow_keys=data["flow_keys"],
                    packets=data["packets"],
                )
    with zipfile.ZipFile(path) as archive:
        with archive.open("name.npy") as handle:
            name = str(np.lib.format.read_array(handle))
        flow_keys = _member_memmap(path, archive, "flow_keys.npy")
        packets = _member_memmap(path, archive, "packets.npy")
    return Trace(name=name, flow_keys=flow_keys, packets=packets, validate=False)


class TraceWriter:
    """Stream a trace to an uncompressed npz, chunk by chunk.

    For traces that never fit in memory: declare the array lengths up
    front (npy headers precede their data), then feed ``flow_keys`` and
    ``packets`` in chunks -- zip members are written sequentially, so all
    flow keys must be written before the first packet chunk.  The output
    is the same member layout as ``save_trace(..., compressed=False)``
    (members carry zip64 headers so a single array may exceed 4 GiB) and
    therefore ``load_trace(mmap=True)``-able.  Packet chunks are range-
    checked on the way in, which is what lets the mmap loader skip the
    full-trace scan.  The file appears atomically on :meth:`close`.
    """

    def __init__(
        self, path: Union[str, Path], name: str, n_flows: int, n_packets: int
    ) -> None:
        if n_flows < 1:
            raise ValueError("trace must contain at least one flow")
        if n_packets < 0:
            raise ValueError("n_packets must be non-negative")
        self._final = _with_npz_suffix(path)
        self._final.parent.mkdir(parents=True, exist_ok=True)
        self.n_flows = n_flows
        self.n_packets = n_packets
        self._keys_written = 0
        self._packets_written = 0
        self._member: Optional[object] = None  # currently open zip member
        self._member_name = ""
        fd, self._tmp = tempfile.mkstemp(
            dir=self._final.parent, prefix=self._final.name + ".", suffix=".tmp"
        )
        self._file = os.fdopen(fd, "wb")
        self._zip = zipfile.ZipFile(self._file, "w", zipfile.ZIP_STORED)
        with self._zip.open("name.npy", "w") as handle:
            np.lib.format.write_array(handle, np.asarray(name))

    def _open_member(self, member: str, dtype: np.dtype, length: int) -> None:
        handle = self._zip.open(member, "w", force_zip64=True)
        np.lib.format.write_array_header_1_0(
            handle,
            {
                "descr": np.lib.format.dtype_to_descr(dtype),
                "fortran_order": False,
                "shape": (length,),
            },
        )
        self._member = handle
        self._member_name = member

    def _close_member(self) -> None:
        if self._member is not None:
            self._member.close()
            self._member = None

    def write_flow_keys(self, chunk: np.ndarray) -> None:
        """Append a chunk of uint64 flow keys (call until ``n_flows``)."""
        chunk = np.ascontiguousarray(chunk, dtype=np.uint64)
        if self._member_name not in ("", "flow_keys.npy"):
            raise ValueError("flow keys must be written before packets")
        if self._keys_written + len(chunk) > self.n_flows:
            raise ValueError("more flow keys than declared")
        if self._member is None:
            self._open_member("flow_keys.npy", np.dtype(np.uint64), self.n_flows)
        self._member.write(chunk.tobytes())
        self._keys_written += len(chunk)

    def write_packets(self, chunk: np.ndarray) -> None:
        """Append a chunk of int64 flow indices (after all flow keys)."""
        chunk = np.ascontiguousarray(chunk, dtype=np.int64)
        if len(chunk) and (chunk.min() < 0 or chunk.max() >= self.n_flows):
            raise ValueError("packet flow indices out of range")
        if self._member_name == "flow_keys.npy":
            if self._keys_written != self.n_flows:
                raise ValueError("fewer flow keys than declared")
            self._close_member()
            self._member_name = "packets.npy"
        if self._member_name != "packets.npy":
            raise ValueError("write flow keys before packets")
        if self._packets_written + len(chunk) > self.n_packets:
            raise ValueError("more packets than declared")
        if self._member is None:
            self._open_member("packets.npy", np.dtype(np.int64), self.n_packets)
        self._member.write(chunk.tobytes())
        self._packets_written += len(chunk)

    def close(self) -> None:
        """Finish the archive and move it into place atomically."""
        if self._tmp is None:
            return
        try:
            if self._keys_written != self.n_flows:
                raise ValueError("fewer flow keys than declared")
            if self._packets_written != self.n_packets:
                raise ValueError("fewer packets than declared")
            if self._member_name == "flow_keys.npy" and self.n_packets == 0:
                self._close_member()
                self._open_member("packets.npy", np.dtype(np.int64), 0)
            self._close_member()
            self._zip.close()
            self._file.close()
            os.replace(self._tmp, self._final)
            self._tmp = None
        except BaseException:
            self.abort()
            raise

    def abort(self) -> None:
        """Discard the partial file (no effect after :meth:`close`)."""
        if self._tmp is None:
            return
        self._close_member()
        try:
            self._zip.close()
        except BaseException:
            pass
        try:
            self._file.close()
        except BaseException:
            pass
        try:
            os.unlink(self._tmp)
        except OSError:
            pass
        self._tmp = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def cached_trace(
    factory,
    cache_dir: Union[str, Path],
    tag: str,
    mmap: bool = False,
) -> Trace:
    """Return a cached trace, generating and caching it on first use.

    An unreadable cache entry (truncated write from a killed process,
    foreign file under our key) is regenerated, not fatal.  Saves are
    atomic, so concurrent writers race benignly: every ``os.replace``
    publishes a complete file and the last one wins.
    """
    cache_dir = Path(cache_dir)
    path = _with_npz_suffix(cache_dir / tag)
    if path.exists():
        try:
            return load_trace(path, mmap=mmap)
        except _CACHE_ERRORS:
            pass  # fall through and regenerate
    trace = factory()
    try:
        save_trace(trace, path, compressed=not mmap)
    except OSError:
        pass  # caching is best-effort (read-only filesystems)
    else:
        if mmap:
            return load_trace(path, mmap=True)
    return trace
