"""Trace replay harness -- the Section 5.2/5.3 measurement loop.

Feeds every packet of a trace through a load balancer and reports the
three metrics of Tables 1-2 and Fig. 7:

- **maximum oversubscription**: connections at the most loaded server
  divided by the average per active server;
- **tracked connections**: CT table occupancy after the replay (the run
  configuration matches the paper: CT unbounded, "no flows are evicted");
- **rate**: dispatched packets per second of wall time.

Rate caveat (documented in EXPERIMENTS.md): the paper measures a C++
implementation where the effect at play is L1/L2 cache residency of CT
tables vs. CH computations.  A pure-Python replay measures interpreter
dict/loop costs instead, so absolute rates are ~3 orders of magnitude
lower and orderings between CH families can differ from Tables 1-2.

Backend-change events can be injected mid-trace to exercise PCC under
churn (used by integration tests and the extensions bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.interfaces import LoadBalancer, Name
from repro.obs import metrics as obs_metrics
from repro.obs.registry import coalesce
from repro.obs.timers import Stopwatch
from repro.traces.base import Trace

#: An injected event: (packet_index, callable applied to the balancer).
TraceEvent = Tuple[int, Callable[[LoadBalancer], None]]


@dataclass
class ReplayResult:
    """Metrics from one trace replay."""

    trace_name: str
    n_flows: int
    n_packets: int
    max_oversubscription: float
    tracked_connections: int
    rate_pps: float
    wall_seconds: float
    pcc_violations: int
    inevitably_broken: int
    server_loads: Dict[Name, int] = field(default_factory=dict)
    #: CT occupancy high-water mark over the replay (0 for stateless).
    ct_peak_size: int = 0
    #: Active (working) servers at finalization; the denominator of the
    #: oversubscription average, carried so merged results can recompute it.
    active_servers: int = 0

    def row(self) -> str:
        return (
            f"{self.trace_name}: oversub={self.max_oversubscription:.3f} "
            f"tracked={self.tracked_connections:,} "
            f"rate={self.rate_pps / 1e6:.3f} Mpps "
            f"violations={self.pcc_violations}"
        )


def replay(
    trace: Trace,
    balancer: LoadBalancer,
    events: Sequence[TraceEvent] = (),
    metrics=None,
) -> ReplayResult:
    """Replay ``trace`` through ``balancer`` and measure the paper's metrics.

    ``events`` is an optional schedule of backend changes keyed by packet
    index (applied just before that packet is dispatched).

    ``metrics`` is an optional :class:`repro.obs.registry.Registry`.  All
    instrumentation happens *after* the dispatch loop (counters published
    from the loop's own tallies), so the loop is identical with metrics
    off, disabled (NullRegistry), or live -- the differential suite holds
    all three to the same decisions, and the throughput experiment's
    obs-overhead gate holds disabled to >= 0.95x uninstrumented.
    """
    keys: List[int] = [int(k) for k in trace.flow_keys]
    packet_flows: List[int] = trace.packets.tolist()
    first_destination: List[Optional[Name]] = [None] * trace.n_flows
    broken = bytearray(trace.n_flows)
    violations = 0
    inevitable = 0

    event_queue = sorted(events, key=lambda ev: ev[0])
    next_event = 0

    get_destination = balancer.get_destination
    # Load-aware balancers (Section 6.3) receive flow-start notifications
    # and a new-connection (TCP SYN) signal on each flow's first packet.
    note_flow_start = getattr(balancer, "note_flow_start", None)
    syn_aware = getattr(balancer, "dispatches_new_connections", False)
    watch = Stopwatch()
    if not event_queue and not syn_aware:
        # Hot path: no churn, skip per-packet event checks.
        for flow_index in packet_flows:
            destination = get_destination(keys[flow_index])
            previous = first_destination[flow_index]
            if previous is None:
                first_destination[flow_index] = destination
                if note_flow_start is not None:
                    note_flow_start(destination)
            elif destination != previous and not broken[flow_index]:
                broken[flow_index] = 1
                violations += 1
        wall = watch.stop()
    else:
        for packet_index, flow_index in enumerate(packet_flows):
            while next_event < len(event_queue) and event_queue[next_event][0] <= packet_index:
                event_queue[next_event][1](balancer)
                next_event += 1
            previous = first_destination[flow_index]
            if syn_aware:
                destination = get_destination(keys[flow_index], previous is None)
            else:
                destination = get_destination(keys[flow_index])
            if previous is None:
                first_destination[flow_index] = destination
                if note_flow_start is not None:
                    note_flow_start(destination)
            elif destination != previous and not broken[flow_index]:
                broken[flow_index] = 1
                if previous in balancer.working:
                    violations += 1
                else:
                    inevitable += 1
        wall = watch.stop()

    result = _build_result(trace, balancer, first_destination, violations, inevitable, wall)
    _publish_metrics(metrics, balancer, result, path="scalar", n_events=len(event_queue))
    return result


def _build_result(
    trace: Trace,
    balancer: LoadBalancer,
    first_destination: List[Optional[Name]],
    violations: int,
    inevitable: int,
    wall: float,
) -> ReplayResult:
    """Fold per-flow destinations into the ReplayResult metrics."""
    loads: Dict[Name, int] = {}
    for destination in first_destination:
        if destination is not None:
            loads[destination] = loads.get(destination, 0) + 1
    return _finalize(trace, balancer, loads, violations, inevitable, wall)


def _oversubscription(loads: Dict[Name, int], active_servers: int) -> float:
    """Max per-server load over the active-server average (0.0 when idle).

    Shared by single-run finalization and result merging so the merged
    figure is byte-identical to a single-process run over the same loads.
    """
    dispatched_flows = sum(loads.values())
    average = dispatched_flows / active_servers if active_servers else 0.0
    return max(loads.values()) / average if loads and average else 0.0


def _finalize(
    trace: Trace,
    balancer: LoadBalancer,
    loads: Dict[Name, int],
    violations: int,
    inevitable: int,
    wall: float,
) -> ReplayResult:
    """Assemble the ReplayResult from a per-server load dict."""
    active_servers = len(balancer.working)
    ct = getattr(balancer, "ct", None)
    return ReplayResult(
        trace_name=trace.name,
        n_flows=trace.n_flows,
        n_packets=trace.n_packets,
        max_oversubscription=_oversubscription(loads, active_servers),
        tracked_connections=balancer.tracked_connections,
        rate_pps=trace.n_packets / wall if wall > 0 else 0.0,
        wall_seconds=wall,
        pcc_violations=violations,
        inevitably_broken=inevitable,
        server_loads=loads,
        ct_peak_size=ct.stats.peak_size if ct is not None else 0,
        active_servers=active_servers,
    )


def merge_replay_results(results: Sequence[ReplayResult]) -> ReplayResult:
    """Fold per-shard replay results into one, as if replayed unsharded.

    Associative and commutative over results from disjoint keyspace
    partitions of one trace: flow- and packet-level tallies (violations,
    inevitable breaks, tracked connections, per-server loads, packets)
    sum; ``n_flows`` is the shared flow population (max); oversubscription
    is recomputed from the merged loads over the shared working set.

    Timing composes as the parallel critical path: ``wall_seconds`` is the
    slowest shard's kernel wall and ``rate_pps`` the total packets over
    it -- the throughput ``N`` dedicated cores would realize.

    ``ct_peak_size`` sums, which is exact for churn-free replays into
    unbounded CTs (occupancy is monotone, so per-shard peaks coexist) and
    an upper bound under churn (shards may peak at different times).
    """
    if not results:
        raise ValueError("nothing to merge")
    loads: Dict[Name, int] = {}
    for result in results:
        for name, count in result.server_loads.items():
            loads[name] = loads.get(name, 0) + count
    active_servers = max(result.active_servers for result in results)
    wall = max(result.wall_seconds for result in results)
    n_packets = sum(result.n_packets for result in results)
    return ReplayResult(
        trace_name=results[0].trace_name,
        n_flows=max(result.n_flows for result in results),
        n_packets=n_packets,
        max_oversubscription=_oversubscription(loads, active_servers),
        tracked_connections=sum(r.tracked_connections for r in results),
        rate_pps=n_packets / wall if wall > 0 else 0.0,
        wall_seconds=wall,
        pcc_violations=sum(r.pcc_violations for r in results),
        inevitably_broken=sum(r.inevitably_broken for r in results),
        server_loads=loads,
        ct_peak_size=sum(r.ct_peak_size for r in results),
        active_servers=active_servers,
    )


def _publish_metrics(
    metrics, balancer: LoadBalancer, result: ReplayResult, path: str, n_events: int
) -> None:
    """Publish one replay's tallies to a registry (no-op when disabled).

    The tracked-fraction series are only published for churn-free
    replays: with injected backend events, CT inserts include re-tracks
    after invalidation and no longer count distinct unsafe flows, so the
    Theorem 4.2 comparison would be against the wrong denominator.
    """
    registry = coalesce(metrics)
    if not registry.enabled:
        return
    obs_metrics.instrument_balancer(registry, balancer)
    dispatched = sum(result.server_loads.values())
    registry.counter(obs_metrics.FLOWS, "Flows dispatched").inc(dispatched)
    registry.counter(obs_metrics.PCC_VIOLATIONS, "PCC violations").inc(
        result.pcc_violations
    )
    registry.counter(obs_metrics.INEVITABLY_BROKEN, "Inevitably broken flows").inc(
        result.inevitably_broken
    )
    # Loose exposure bound: each injected event can touch at most every
    # dispatched flow.  Zero events means zero exposure, which is what
    # makes the PCC-accounting monitor a real check on quiet replays.
    registry.counter(
        obs_metrics.CHURN_EXPOSED, "Flows exposed to backend churn (upper bound)"
    ).inc(n_events * dispatched)
    registry.counter(
        obs_metrics.DISPATCH_PACKETS, "Packets by dispatch path", path=path
    ).inc(result.n_packets)
    registry.histogram(
        obs_metrics.WALL_SECONDS, "Wall time by phase", phase="replay"
    ).observe(result.wall_seconds)
    ct = getattr(balancer, "ct", None)
    if n_events == 0 and ct is not None and dispatched:
        registry.counter(
            obs_metrics.TRACKED_FLOWS, "Flows tracked at first dispatch"
        ).inc(ct.stats.inserts)
        registry.gauge(
            obs_metrics.OBSERVED_TRACKED_FRACTION, "Observed tracked fraction"
        ).set(ct.stats.inserts / dispatched)


# Chosen by the chunk-size sweep in experiments/throughput.py
# (``--chunk-sizes``): per-chunk fixed costs (CT probe setup, mask
# passes) amortize up to ~32k keys while the working arrays stay far
# inside L2; the sweep's numbers ride along in BENCH_dataplane.json.
DEFAULT_CHUNK = 32768


def replay_batch(
    trace: Trace,
    balancer: LoadBalancer,
    events: Sequence[TraceEvent] = (),
    chunk_size: int = DEFAULT_CHUNK,
    metrics=None,
) -> ReplayResult:
    """Replay ``trace`` through the LB's batched dispatch path.

    Packets are drained in chunks of ``chunk_size`` through
    :meth:`~repro.core.interfaces.LoadBalancer.get_destinations_batch`;
    chunks are split at every injected event's packet index so each
    backend change still lands *between* batches, exactly where the
    scalar loop applies it.  Metrics (violations, loads, tracked count)
    are identical to :func:`replay` -- within a chunk no backend changes,
    so a flow's destination cannot move mid-chunk and per-packet PCC
    accounting commutes with batching.  Only the wall-clock rate differs.

    SYN-aware balancers (Section 6.3) need a per-packet new-connection
    flag, so they are delegated to the scalar loop unchanged -- as is any
    balancer whose ``batch_effective`` probe reports no real vector path
    (never-slower guarantee: batch assembly over a scalar-loop fallback
    only adds overhead, the 0.75-0.82x regressions of the PR 2 bench).

    Balancers whose ``columnar_effective`` probe answers True take the
    fully columnar loop instead: destinations flow as int32 backend ids,
    all PCC accounting runs on preallocated numpy arrays, and names are
    resolved once at the result edge -- zero Python objects per packet.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if getattr(balancer, "dispatches_new_connections", False):
        return replay(trace, balancer, events, metrics=metrics)
    if (
        getattr(balancer, "columnar_effective", False)
        and getattr(balancer, "note_flow_start", None) is None
    ):
        return _replay_columnar(trace, balancer, events, chunk_size, metrics)
    if not getattr(balancer, "batch_effective", False):
        return replay(trace, balancer, events, metrics=metrics)

    keys = np.ascontiguousarray(trace.flow_keys, dtype=np.uint64)
    packets = trace.packets
    n_packets = len(packets)
    first_destination: List[Optional[Name]] = [None] * trace.n_flows
    broken = bytearray(trace.n_flows)
    violations = 0
    inevitable = 0
    # The scalar hot path (no events) skips the working-set check and
    # counts every mid-flow move as a violation; mirror that exactly.
    check_working = bool(events)

    event_queue = sorted(events, key=lambda ev: ev[0])
    next_event = 0
    note_flow_start = getattr(balancer, "note_flow_start", None)

    watch = Stopwatch()
    position = 0
    while position < n_packets:
        while next_event < len(event_queue) and event_queue[next_event][0] <= position:
            event_queue[next_event][1](balancer)
            next_event += 1
        end = min(position + chunk_size, n_packets)
        if next_event < len(event_queue):
            end = min(end, event_queue[next_event][0])
        flow_indices = packets[position:end]
        destinations = balancer.get_destinations_batch(keys[flow_indices])
        # tolist() once per chunk: per-item object-array indexing costs
        # ~2x a plain list iteration and would eat the batch dividend for
        # cheap-scalar stacks (full CT over Maglev).
        for flow_index, destination in zip(flow_indices.tolist(), destinations.tolist()):
            previous = first_destination[flow_index]
            if previous is None:
                first_destination[flow_index] = destination
                if note_flow_start is not None:
                    note_flow_start(destination)
            elif destination != previous and not broken[flow_index]:
                broken[flow_index] = 1
                if not check_working or previous in balancer.working:
                    violations += 1
                else:
                    inevitable += 1
        position = end
    wall = watch.stop()

    result = _build_result(trace, balancer, first_destination, violations, inevitable, wall)
    _publish_metrics(metrics, balancer, result, path="batch", n_events=len(event_queue))
    return result


def _replay_columnar(
    trace: Trace,
    balancer: LoadBalancer,
    events: Sequence[TraceEvent],
    chunk_size: int,
    metrics,
) -> ReplayResult:
    """The integer-index replay loop: no Python object per packet.

    First-destination, broken-flow, and violation accounting all run on
    preallocated int32/bool arrays keyed by backend id; each chunk is one
    ``get_destinations_batch_idx`` call plus a handful of vectorized
    compares.  Metric equivalence with the scalar loop rests on the same
    argument as the name batch path (no backend change lands mid-chunk)
    plus two index-path facts: ids are stable across backend changes, and
    all occurrences of a newly seen flow within one chunk resolve to the
    same id (CT gets precede puts), so fancy assignment into ``first`` is
    order-independent.  Names are materialized exactly once, at the
    result edge, after the stopwatch stops.
    """
    keys = np.ascontiguousarray(trace.flow_keys, dtype=np.uint64)
    packets = trace.packets
    n_packets = len(packets)
    first = np.full(trace.n_flows, -1, dtype=np.int32)
    broken = np.zeros(trace.n_flows, dtype=bool)
    violations = 0
    inevitable = 0
    # Mirror the scalar hot path exactly: without events every mid-flow
    # move counts as a violation (no working-set check).
    check_working = bool(events)

    event_queue = sorted(events, key=lambda ev: ev[0])
    next_event = 0
    n_events = len(event_queue)
    get_batch_idx = balancer.get_destinations_batch_idx
    # id -> currently-working, cached between events (ids are stable, the
    # working set only changes when an event fires).
    working_mask: Optional[np.ndarray] = None

    watch = Stopwatch()
    position = 0
    while position < n_packets:
        while next_event < n_events and event_queue[next_event][0] <= position:
            event_queue[next_event][1](balancer)
            next_event += 1
            working_mask = None
        end = min(position + chunk_size, n_packets)
        if next_event < n_events:
            end = min(end, event_queue[next_event][0])
        flow_indices = packets[position:end]
        ids = get_batch_idx(keys[flow_indices])
        previous = first[flow_indices]
        unseen = previous < 0
        if unseen.any():
            first[flow_indices[unseen]] = ids[unseen]
        moved = (ids != previous) & ~unseen
        if moved.any():
            moved_flows = flow_indices[moved]
            newly = np.unique(moved_flows[~broken[moved_flows]])
            if len(newly):
                broken[newly] = True
                if check_working:
                    if working_mask is None:
                        working_mask = balancer.dispatch_working_mask()
                    still_working = working_mask[first[newly]]
                    hits = int(still_working.sum())
                    violations += hits
                    inevitable += len(newly) - hits
                else:
                    violations += len(newly)
        position = end
    wall = watch.stop()

    # Edge-only name resolution: one bincount over ids, one gather.
    names = balancer.dispatch_names()
    loads: Dict[Name, int] = {}
    dispatched = first[first >= 0]
    if len(dispatched):
        counts = np.bincount(dispatched, minlength=len(names))
        for ident, count in enumerate(counts.tolist()):
            if count:
                loads[names[ident]] = count

    result = _finalize(trace, balancer, loads, violations, inevitable, wall)
    _publish_metrics(metrics, balancer, result, path="columnar", n_events=n_events)
    return result
