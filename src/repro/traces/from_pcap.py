"""Pcap -> Trace conversion.

Bridges real packet captures into the replay harness: frames are parsed
to 5-tuples (:mod:`repro.net.parse`), distinct tuples become flows, and
the packet stream becomes the trace's flow-index sequence -- exactly the
preprocessing the paper applies to the UNI1 / CAIDA captures before
feeding their LBs.

Unparseable frames (non-IPv4, fragments, truncated) are skipped and
counted, as a capture-driven evaluation would do.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.net.parse import try_parse_ethernet, parse_ipv4, ParseError
from repro.net.pcap import LINKTYPE_ETHERNET, LINKTYPE_RAW_IPV4, read_pcap
from repro.traces.base import Trace


def trace_from_pcap(path: Union[str, Path], name: str = None) -> Tuple[Trace, int]:
    """Load a pcap into a :class:`Trace`.

    Returns ``(trace, skipped)`` where ``skipped`` counts frames that
    could not be parsed to a TCP/UDP 5-tuple.
    """
    linktype, packets = read_pcap(path)
    keys: List[int] = []
    key_index: Dict[int, int] = {}
    stream: List[int] = []
    skipped = 0
    for record in packets:
        if linktype == LINKTYPE_ETHERNET:
            five_tuple = try_parse_ethernet(record.data)
        elif linktype == LINKTYPE_RAW_IPV4:
            try:
                five_tuple = parse_ipv4(record.data)
            except ParseError:
                five_tuple = None
        else:
            raise ParseError(f"unsupported pcap linktype {linktype}")
        if five_tuple is None:
            skipped += 1
            continue
        key = five_tuple.key64
        index = key_index.get(key)
        if index is None:
            index = len(keys)
            key_index[key] = index
            keys.append(key)
        stream.append(index)
    if not keys:
        raise ParseError("no parseable TCP/UDP packets in capture")
    return (
        Trace(
            name=name or f"pcap:{Path(path).name}",
            flow_keys=np.array(keys, dtype=np.uint64),
            packets=np.array(stream, dtype=np.int64),
        ),
        skipped,
    )
