"""Packet traces: synthetic generators, persistence, and replay."""

from repro.traces.base import Trace
from repro.traces.zipf import PAPER_SKEWS, zipf_trace, zipf_trace_stream
from repro.traces.synthetic_dc import (
    NY18_FLOWS,
    NY18_PACKETS,
    UNI1_FLOWS,
    UNI1_PACKETS,
    dc_trace,
    ny18_like,
    uni1_like,
)
from repro.traces.replay import (
    ReplayResult,
    TraceEvent,
    merge_replay_results,
    replay,
    replay_batch,
)
from repro.traces.io import TraceWriter, cached_trace, load_trace, save_trace
from repro.traces.from_pcap import trace_from_pcap

__all__ = [
    "Trace",
    "zipf_trace",
    "zipf_trace_stream",
    "PAPER_SKEWS",
    "dc_trace",
    "uni1_like",
    "ny18_like",
    "UNI1_FLOWS",
    "UNI1_PACKETS",
    "NY18_FLOWS",
    "NY18_PACKETS",
    "replay",
    "replay_batch",
    "merge_replay_results",
    "ReplayResult",
    "TraceEvent",
    "save_trace",
    "load_trace",
    "cached_trace",
    "TraceWriter",
    "trace_from_pcap",
]
