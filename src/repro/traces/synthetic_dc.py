"""Calibrated synthetic stand-ins for the paper's real traces (Section 5.2).

The paper evaluates over two real captures we cannot redistribute:

- **UNI1** (IMC'10 university datacenter): 334K flows, 14.7M packets --
  mean ~44 packets/flow, highly skewed, heavy hitters up to ~10^6 packets;
- **NY18** (CAIDA Equinix New York 2018): 1.6M flows, 34.1M packets --
  mean ~21 packets/flow, considerably less skewed (Fig. 6a).

JET's trace metrics (tracked connections, oversubscription, lookup rate)
depend on the *flow-size distribution* and flow/packet counts, not on
payload or addressing, so a synthetic trace with matching counts and a
matching discrete-Pareto size law exercises the identical code paths.
The Pareto exponents below were fitted so the mean flow sizes match the
paper's (44.0 and 21.3) and the log-log histograms reproduce the Fig. 6a
shapes (UNI1 steeper tail reach, NY18 more flows / shorter tail).

``scale`` shrinks the flow population (packets shrink proportionally);
``scale=1.0`` reproduces paper-scale traces (~15M / ~34M packets), which
take a few GB-seconds in pure Python -- the benchmarks default to a
smaller scale and note it in their output.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.mix import splitmix64
from repro.traces.base import Trace
from repro.traces.zipf import _unique_keys

#: Published statistics of the original captures.
UNI1_FLOWS, UNI1_PACKETS = 334_000, 14_700_000
NY18_FLOWS, NY18_PACKETS = 1_600_000, 34_100_000


def _bounded_pareto_sizes(
    n: int, alpha: float, maximum: float, rng: np.random.Generator
) -> np.ndarray:
    """Discrete flow sizes from a bounded Pareto on [1, maximum]."""
    u = rng.random(n)
    lo, hi = 1.0, float(maximum)
    x = (lo**alpha) / (1 - u * (1 - (lo / hi) ** alpha))
    return np.maximum(1, x ** (1 / alpha)).astype(np.int64)


def dc_trace(
    name: str,
    n_flows: int,
    alpha: float,
    max_size: float,
    seed: int = 0,
) -> Trace:
    """Build a datacenter-like trace with Pareto flow sizes and uniformly
    interleaved packets (the LB-eye view of well-mixed traffic)."""
    if n_flows < 1:
        raise ValueError("n_flows must be positive")
    rng = np.random.default_rng(splitmix64(seed ^ 0x0DC0_FFEE) & 0x7FFF_FFFF)
    sizes = _bounded_pareto_sizes(n_flows, alpha, max_size, rng)
    packets = np.repeat(np.arange(n_flows, dtype=np.int64), sizes)
    rng.shuffle(packets)
    keys = _unique_keys(n_flows, seed=splitmix64(seed ^ 0xDEAD_10CC))
    return Trace(name=name, flow_keys=keys, packets=packets)


def uni1_like(scale: float = 0.05, seed: int = 0) -> Trace:
    """UNI1 stand-in: high skew, mean ~44 packets/flow.

    ``scale=1.0`` targets the original 334K flows / ~14.7M packets.
    """
    n_flows = max(1, int(UNI1_FLOWS * scale))
    return dc_trace(
        name=f"uni1-like(scale={scale})",
        n_flows=n_flows,
        alpha=0.84,
        # The heavy-hitter cap scales with the trace so the UNI1-vs-NY18
        # skew relation (larger-but-fewer elephants) holds at any scale.
        max_size=max(100.0, 1e6 * scale),
        seed=seed,
    )


def ny18_like(scale: float = 0.05, seed: int = 0) -> Trace:
    """NY18 stand-in: lower skew, mean ~21 packets/flow, many more flows.

    ``scale=1.0`` targets the original 1.6M flows / ~34.1M packets.
    """
    n_flows = max(1, int(NY18_FLOWS * scale))
    return dc_trace(
        name=f"ny18-like(scale={scale})",
        n_flows=n_flows,
        alpha=0.88,
        max_size=max(50.0, 1e5 * scale),
        seed=seed,
    )
