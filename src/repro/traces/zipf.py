"""Synthetic Zipf traces -- Section 5.3.

The paper evaluates over Zipf traces "with a skew varying from 0.6 (e.g.,
internet traffic) and up to 1.4 (highly skewed)", 100M packets each.  We
generate them the standard way (Breslau et al.): flow *popularities*
follow a Zipf law with exponent ``skew`` over a fixed flow population, and
each packet independently samples a flow from that law -- heavier skews
concentrate packets on fewer flows, shrinking the distinct-flow count
exactly as the paper observes ("as the skew grows, the number of distinct
flows drops").

Flows that receive zero packets are dropped from the population, so
``n_flows`` of the resulting trace is the number of *distinct* flows.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.mix import splitmix64
from repro.traces.base import Trace
from repro.traces.io import TraceWriter

#: The skews of Fig. 6b / Fig. 7.
PAPER_SKEWS = (0.6, 0.8, 1.0, 1.2, 1.4)


def _unique_keys(count: int, seed: int, start: int = 0) -> np.ndarray:
    """Deterministic distinct 64-bit keys (splitmix64 stream is a bijection
    of the counter, hence collision-free).

    ``start`` selects a window into the stream: ``_unique_keys(n, s)``
    equals the concatenation of ``_unique_keys(c_i, s, start=o_i)`` over
    any chunking -- what lets the streaming generator emit the same key
    population piecewise.
    """
    state = np.uint64(splitmix64(seed))
    # Vectorized splitmix64 over a counter range.
    counters = np.arange(start + 1, start + count + 1, dtype=np.uint64)
    x = (counters * np.uint64(0x9E3779B97F4A7C15)) + state
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def zipf_trace(
    skew: float,
    n_packets: int = 1_000_000,
    population: int = 200_000,
    seed: int = 0,
) -> Trace:
    """Generate a Zipf packet trace.

    ``population`` is the size of the underlying flow universe; the trace's
    distinct flow count is whatever the sampling touches (decreasing in
    ``skew``).  The paper's full-scale traces use 100M packets; defaults are
    scaled for laptop runs and can be raised to paper scale.
    """
    if skew < 0:
        raise ValueError("skew must be non-negative")
    if n_packets < 1 or population < 1:
        raise ValueError("n_packets and population must be positive")
    rng = np.random.default_rng(splitmix64(seed ^ 0x21F0_AAAD) & 0x7FFF_FFFF)
    ranks = np.arange(1, population + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    probabilities = weights / weights.sum()
    draws = rng.choice(population, size=n_packets, p=probabilities)

    # Compact to distinct flows only.
    distinct, packets = np.unique(draws, return_inverse=True)
    keys = _unique_keys(len(distinct), seed=splitmix64(seed ^ 0x51AF_E234))
    return Trace(
        name=f"zipf(skew={skew}, packets={n_packets})",
        flow_keys=keys,
        packets=packets.astype(np.int64),
    )


def zipf_trace_stream(
    path,
    skew: float,
    n_packets: int,
    population: int,
    seed: int = 0,
    chunk: int = 1 << 20,
):
    """Generate a Zipf trace of arbitrary size straight to disk.

    Never holds more than one ``chunk`` of packets in memory, so traces
    far larger than RAM can be produced; the output is an uncompressed
    npz (via :class:`~repro.traces.io.TraceWriter`) ready for
    ``load_trace(path, mmap=True)``.  Returns the final path.

    Two deliberate differences from :func:`zipf_trace`: zero-packet flows
    are *kept* (``n_flows == population`` -- compacting would need the
    full draw history), and packets are drawn per block from a
    precomputed CDF with a block-derived seed, so the trace is a
    deterministic function of ``(skew, n_packets, population, seed,
    chunk)``.  Zero-packet flows never dispatch, so replay metrics are
    unaffected by keeping them.
    """
    if skew < 0:
        raise ValueError("skew must be non-negative")
    if n_packets < 1 or population < 1:
        raise ValueError("n_packets and population must be positive")
    if chunk < 1:
        raise ValueError("chunk must be positive")
    ranks = np.arange(1, population + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    name = f"zipf-stream(skew={skew}, packets={n_packets})"
    key_seed = splitmix64(seed ^ 0x51AF_E234)
    with TraceWriter(path, name, n_flows=population, n_packets=n_packets) as writer:
        for start in range(0, population, chunk):
            count = min(chunk, population - start)
            writer.write_flow_keys(_unique_keys(count, seed=key_seed, start=start))
        for block, start in enumerate(range(0, n_packets, chunk)):
            count = min(chunk, n_packets - start)
            rng = np.random.default_rng(
                splitmix64(seed ^ 0x21F0_AAAD ^ (block + 1)) & 0x7FFF_FFFF
            )
            draws = np.searchsorted(cdf, rng.random(count), side="left")
            writer.write_packets(draws.astype(np.int64))
    return writer._final
