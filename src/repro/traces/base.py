"""Trace representation.

A trace is a packet stream over a fixed flow population.  We store it
columnar for memory efficiency at multi-million-packet scale:

- ``flow_keys``: uint64 array, the 64-bit connection key of each flow;
- ``packets``: int64 array of flow *indices*, one entry per packet, in
  arrival order.

This mirrors what the paper's C++ harness feeds its LBs: a pre-hashed
key per packet.  Helper accessors provide the flow-size histogram data
behind Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

import numpy as np


@dataclass
class Trace:
    """A replayable packet trace."""

    name: str
    flow_keys: np.ndarray  # shape (n_flows,), dtype uint64
    packets: np.ndarray    # shape (n_packets,), dtype int64 (flow indices)
    #: Skip the full range scan of ``packets`` on construction.  Set False
    #: only for sources that validated at write time (the streaming trace
    #: writer) -- a memmap-backed load would otherwise fault in the whole
    #: file just to re-check what the writer already enforced.
    validate: bool = field(default=True, repr=False, compare=False)

    def __post_init__(self):
        # asanyarray with the matching dtype is a no-copy view that keeps
        # the np.memmap subclass, so nothing is faulted in here.
        self.flow_keys = np.asanyarray(self.flow_keys, dtype=np.uint64)
        self.packets = np.asanyarray(self.packets, dtype=np.int64)
        if len(self.flow_keys) == 0:
            raise ValueError("trace must contain at least one flow")
        if self.validate and (
            self.packets.min(initial=0) < 0
            or (len(self.packets) and self.packets.max() >= len(self.flow_keys))
        ):
            raise ValueError("packet flow indices out of range")

    # --------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release memmap file handles backing the trace columns.

        A ``load_trace(path, mmap=True)`` trace holds the file open for
        as long as its arrays are mapped; close it (or use the trace as a
        context manager) when done so the handle does not live until GC.
        Idempotent; in-memory traces are unaffected.  The columns are
        swapped for empty arrays first, so a stale reference to a closed
        trace raises cleanly instead of faulting on the dead mapping --
        but views handed out earlier (e.g. shard sub-traces sharing
        ``flow_keys``) still pin the mapping and make close fail, so
        close only traces you own outright.
        """
        for attr in ("flow_keys", "packets"):
            array = getattr(self, attr)
            mapping = getattr(array, "_mmap", None)
            if mapping is not None:
                setattr(self, attr, np.empty(0, dtype=array.dtype))
                del array
                mapping.close()

    def __enter__(self) -> "Trace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------ sizes
    @property
    def n_flows(self) -> int:
        return len(self.flow_keys)

    @property
    def n_packets(self) -> int:
        return len(self.packets)

    def flow_sizes(self) -> np.ndarray:
        """Packets per flow (flows with zero packets included)."""
        return np.bincount(self.packets, minlength=self.n_flows)

    def size_histogram(self) -> Dict[int, int]:
        """Map flow size -> number of flows of that size (Fig. 6 data)."""
        sizes = self.flow_sizes()
        sizes = sizes[sizes > 0]
        values, counts = np.unique(sizes, return_counts=True)
        return dict(zip(values.tolist(), counts.tolist()))

    def mean_flow_size(self) -> float:
        return self.n_packets / self.n_flows

    # ------------------------------------------------------------ iter
    def iter_packets(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(key, flow_index)`` per packet in order."""
        keys = self.flow_keys
        for flow_index in self.packets.tolist():
            yield int(keys[flow_index]), flow_index

    def describe(self) -> str:
        sizes = self.flow_sizes()
        sizes = sizes[sizes > 0]
        return (
            f"{self.name}: {self.n_packets:,} packets, {self.n_flows:,} flows, "
            f"mean size {self.mean_flow_size():.1f}, "
            f"max size {int(sizes.max()):,}"
        )
