"""Sharded-dataplane experiment: replay speedup and per-shard CT cost.

Two questions, one payload (merged into ``BENCH_dataplane.json`` under
the ``"sharding"`` key):

- **Speedup**: how does the RSS-partitioned replay scale with shard
  count?  Throughput is reported as the *per-shard critical path*: each
  shard's kernel is timed on a dedicated pass (serial execution, so
  shards never contend for the same core) and the merged rate is total
  packets over the slowest shard's wall -- the throughput ``N``
  dedicated cores realize, measured robustly on any CI box including
  single-core runners.  Every merged result is asserted byte-equal to
  the single-process replay first, and one forked (real multi-process)
  run is exercised for the same equality; its end-to-end wall rides
  along for reference.

- **CT cost**: why is sharding cheap for JET specifically?  Each shard
  replicates the membership machine but tracks only its own unsafe
  flows, so per-shard CT state and cross-LB sync traffic (one delta per
  insert) stay ``|H|/(|W|+|H|)`` of the shard's flows (Theorem 4.2)
  while a full-CT dataplane pays the whole flow table per shard.  The
  sweep grows ``|W|/|H|`` at fixed horizon and records measured
  JET-vs-full per-shard entries, bytes, and sync deltas against the
  ``(|W|+|H|)/|H|`` theory ratio.

CI gate: ``--min-speedup2 X`` fails the run when the 2-shard critical-
path speedup over the 1-shard baseline drops below ``X``.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, List, Optional

from repro.experiments.scales import scale_name
from repro.shard import BalancerSpec, replay_sharded
from repro.traces import replay_batch, zipf_trace

#: Per-scale sizing.  The speedup trace is large enough that per-chunk
#: fixed costs vanish; the cost trace is smaller (entries, not pps).
SCALES: Dict[str, dict] = {
    "smoke": dict(
        n_servers=20, horizon=2, repeats=3, workers=(1, 2, 4),
        speedup_packets=400_000, speedup_population=60_000,
        cost_packets=120_000, cost_population=30_000,
        cost_horizon=4, cost_ratios=(4, 10, 25, 50), cost_shards=4,
    ),
    "default": dict(
        n_servers=50, horizon=5, repeats=3, workers=(1, 2, 4, 8),
        speedup_packets=2_000_000, speedup_population=300_000,
        cost_packets=500_000, cost_population=120_000,
        cost_horizon=5, cost_ratios=(4, 10, 25, 50, 100), cost_shards=4,
    ),
    "paper": dict(
        n_servers=468, horizon=47, repeats=5, workers=(1, 2, 4, 8, 16),
        speedup_packets=10_000_000, speedup_population=1_000_000,
        cost_packets=2_000_000, cost_population=500_000,
        cost_horizon=47, cost_ratios=(4, 10, 25, 50, 100), cost_shards=8,
    ),
}

#: Result fields compared between merged and single-process runs
#: (everything except the timing fields).
_TIMING_FIELDS = ("rate_pps", "wall_seconds")


def _assert_merged_equals_single(merged, single, context: str) -> None:
    for field in single.__dataclass_fields__:
        if field in _TIMING_FIELDS:
            continue
        if getattr(merged, field) != getattr(single, field):
            raise AssertionError(
                f"{context}: merged {field}={getattr(merged, field)!r} != "
                f"single {getattr(single, field)!r}"
            )


def run_speedup(params: dict, seed: int) -> dict:
    """Critical-path replay rate per shard count, gated on merge equality."""
    trace = zipf_trace(
        skew=1.0,
        n_packets=params["speedup_packets"],
        population=params["speedup_population"],
        seed=seed,
    )
    spec = BalancerSpec.fleet(
        mode="jet", family="table",
        n_servers=params["n_servers"], horizon_size=params["horizon"], seed=seed,
    )
    repeats = max(1, params["repeats"])

    single = replay_batch(trace, spec.build(0))
    baseline_pps = single.rate_pps
    for _ in range(repeats - 1):
        baseline_pps = max(baseline_pps, replay_batch(trace, spec.build(0)).rate_pps)

    rows: List[dict] = []
    for n_shards in params["workers"]:
        best = None
        for _ in range(repeats):
            sharded = replay_sharded(trace, spec, n_workers=1, n_shards=n_shards)
            _assert_merged_equals_single(
                sharded.result, single, f"speedup shards={n_shards}"
            )
            if best is None or sharded.result.rate_pps > best.result.rate_pps:
                best = sharded
        rows.append(
            {
                "shards": n_shards,
                "critical_path_pps": best.result.rate_pps,
                "speedup": best.result.rate_pps / baseline_pps if baseline_pps else 0.0,
                "slowest_shard_wall_s": best.result.wall_seconds,
                "packets_per_shard": [o.result.n_packets for o in best.outcomes],
            }
        )

    # One real multi-process run: correctness of the fork path, plus the
    # end-to-end wall (partition + fork + replay + merge) for reference.
    # On a single-core host this wall shows no speedup -- the per-shard
    # critical path above is the scaling figure; this is the proof the
    # process fan-out produces the identical merged result.
    forked = replay_sharded(trace, spec, n_workers=2, n_shards=2)
    _assert_merged_equals_single(forked.result, single, "forked workers=2")
    return {
        "balancer": "jet-table",
        "n_servers": params["n_servers"],
        "horizon": params["horizon"],
        "trace_packets": trace.n_packets,
        "trace_population": trace.n_flows,
        "baseline_pps": baseline_pps,
        "rows": rows,
        "forked": {
            "workers": 2,
            "end_to_end_seconds": forked.end_to_end_seconds,
            "matches_single": True,
            "host_cpus": os.cpu_count(),
        },
        "methodology": (
            "critical_path_pps = total packets / slowest shard kernel wall, "
            "shards timed serially so each gets a dedicated core's timing; "
            "the merged result is asserted byte-equal to the single-process "
            "replay before any rate is recorded."
        ),
    }


def run_ct_cost(params: dict, seed: int) -> dict:
    """JET vs full-CT per-shard state and sync cost as |W|/|H| grows."""
    horizon = params["cost_horizon"]
    n_shards = params["cost_shards"]
    trace = zipf_trace(
        skew=1.0,
        n_packets=params["cost_packets"],
        population=params["cost_population"],
        seed=seed + 1,
    )
    rows: List[dict] = []
    for ratio in params["cost_ratios"]:
        working = ratio * horizon
        per_mode: Dict[str, dict] = {}
        for mode in ("jet", "full"):
            spec = BalancerSpec.fleet(
                mode=mode, family="table",
                n_servers=working, horizon_size=horizon, seed=seed,
            )
            sharded = replay_sharded(trace, spec, n_workers=1, n_shards=n_shards)
            outcomes = sharded.outcomes
            entries = [o.result.tracked_connections for o in outcomes]
            per_mode[mode] = {
                # Churn-free unbounded CT: every insert is one tracked
                # entry and one cross-LB sync delta, so entries double as
                # the gossip-sync traffic figure.
                "entries_per_shard": sum(entries) / len(entries),
                "max_entries_per_shard": max(entries),
                "ct_bytes_per_shard": sum(o.ct_bytes for o in outcomes)
                / len(outcomes),
                "sync_deltas_per_shard": sum(entries) / len(entries),
            }
        theory = (working + horizon) / horizon
        measured = (
            per_mode["full"]["entries_per_shard"]
            / per_mode["jet"]["entries_per_shard"]
            if per_mode["jet"]["entries_per_shard"]
            else 0.0
        )
        rows.append(
            {
                "working": working,
                "horizon": horizon,
                "w_over_h": ratio,
                "jet": per_mode["jet"],
                "full": per_mode["full"],
                "full_over_jet_entries": measured,
                "theory_full_over_jet": theory,
            }
        )
    return {
        "family": "table",
        "n_shards": n_shards,
        "trace_packets": trace.n_packets,
        "trace_population": trace.n_flows,
        "rows": rows,
        "reading": (
            "JET tracks ~|H|/(|W|+|H|) of each shard's flows (Theorem 4.2), "
            "so per-shard CT memory and sync traffic shrink as |W|/|H| "
            "grows; full CT pays the whole per-shard flow table, a "
            "(|W|+|H|)/|H| multiplier that makes sharding it expensive."
        ),
    }


def run_sharding(scale: Optional[str] = None, seed: int = 1) -> dict:
    name = scale_name(scale)
    params = SCALES[name]
    return {
        "experiment": "sharded-dataplane",
        "scale": name,
        "seed": seed,
        "speedup": run_speedup(params, seed),
        "ct_cost": run_ct_cost(params, seed),
    }


def format_report(payload: dict) -> str:
    speedup = payload["speedup"]
    lines = [
        f"sharded dataplane @ scale={payload['scale']} "
        f"({speedup['balancer']}, {speedup['trace_packets']:,} packets, "
        f"W={speedup['n_servers']} H={speedup['horizon']})",
        f"baseline (1 process, columnar): {speedup['baseline_pps'] / 1e6:.2f} Mpps",
        f"{'shards':>7} {'critical-path pps':>18} {'speedup':>8}",
    ]
    for row in speedup["rows"]:
        lines.append(
            f"{row['shards']:>7} {row['critical_path_pps']:>18,.0f} "
            f"{row['speedup']:>7.2f}x"
        )
    forked = speedup["forked"]
    lines.append(
        f"forked {forked['workers']}-worker run: merged result matches single "
        f"(end-to-end {forked['end_to_end_seconds']:.3f}s on "
        f"{forked['host_cpus']} cpu(s))"
    )
    cost = payload["ct_cost"]
    lines.append(
        f"per-shard CT cost, {cost['n_shards']} shards, "
        f"{cost['trace_packets']:,} packets:"
    )
    lines.append(
        f"{'|W|/|H|':>8} {'jet entries':>12} {'full entries':>13} "
        f"{'full/jet':>9} {'theory':>7}"
    )
    for row in cost["rows"]:
        lines.append(
            f"{row['w_over_h']:>8} {row['jet']['entries_per_shard']:>12,.0f} "
            f"{row['full']['entries_per_shard']:>13,.0f} "
            f"{row['full_over_jet_entries']:>8.1f}x "
            f"{row['theory_full_over_jet']:>6.1f}x"
        )
    return "\n".join(lines)


def merge_into_bench(payload: dict, path: str) -> None:
    """Record the payload under ``"sharding"`` in the bench JSON at ``path``.

    An existing file keeps its other sections (the throughput experiment
    owns the top level); a missing or unreadable one is created fresh.
    """
    recorded: dict = {}
    try:
        with open(path) as fh:
            recorded = json.load(fh)
    except (OSError, ValueError):
        recorded = {}
    if not isinstance(recorded, dict):
        recorded = {}
    recorded["sharding"] = payload
    with open(path, "w") as fh:
        json.dump(recorded, fh, indent=2)
        fh.write("\n")


def speedup_at(payload: dict, n_shards: int) -> Optional[float]:
    for row in payload["speedup"]["rows"]:
        if row["shards"] == n_shards:
            return row["speedup"]
    return None


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default=None, choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--output", default="BENCH_dataplane.json",
                        help="bench JSON to merge the 'sharding' section into")
    parser.add_argument(
        "--min-speedup2", type=float, default=None, metavar="X",
        help="fail when the 2-shard critical-path speedup is below X (CI gate)",
    )
    args = parser.parse_args(argv)
    payload = run_sharding(scale=args.scale, seed=args.seed)
    print(format_report(payload))
    merge_into_bench(payload, args.output)
    print(f"recorded under 'sharding' in {args.output}")
    if args.min_speedup2 is not None:
        at2 = speedup_at(payload, 2)
        if at2 is None or at2 < args.min_speedup2:
            raise SystemExit(
                f"REGRESSION: 2-shard critical-path speedup "
                f"{at2 if at2 is not None else 'missing'} < {args.min_speedup2}"
            )
        print(f"2-shard speedup gate (>= {args.min_speedup2}): ok ({at2:.2f}x)")


if __name__ == "__main__":
    main()
