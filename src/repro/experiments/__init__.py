"""Reproductions of every table and figure in the paper's evaluation.

Each module is runnable (``python -m repro.experiments.fig3``) and exposes
a ``run_*`` function returning structured results; the ``benchmarks/``
directory wraps these in pytest-benchmark targets.

=================  ==========================================
Module             Paper artifact
=================  ==========================================
``fig3``           Fig. 3  (PCC violations vs CT size / update rate)
``fig4``           Fig. 4a+4b (PCC violations vs CT size / horizon)
``fig5``           Fig. 5  (max oversubscription vs rates)
``fig6``           Fig. 6a+6b (flow-size histograms)
``fig7``           Fig. 7  (Zipf sweep: oversub / tracked / rate)
``table12``        Tables 1-2 (UNI1-like, NY18-like traces)
``theory``         Theorems 4.2-4.4, Prop. 4.1, Property 1, §2.4
``extensions``     §6.1 batch changes, §6.3 load-aware JET
``lb_pool``        §6.2 LB pools behind ECMP, CT sync economy
``resilience``     beyond-paper: PCC under chaos (repro.faults),
                   §2.3 contract check, tracking under churn
=================  ==========================================
"""

from repro.experiments.scales import base_config, repeats, scale_name, trace_scale, zipf_params

__all__ = ["base_config", "scale_name", "trace_scale", "zipf_params", "repeats"]
