"""Batched-dataplane throughput experiment.

Measures the batch lookup path introduced by the vectorized dataplane
against the scalar reference at two layers:

- **CH layer**: ``lookup_with_safety_batch`` vs a ``lookup_with_safety``
  loop for every horizon-aware CH family (HRW, table-HRW, ring, anchor,
  jump, modulo, concury -- all vectorized), plus ``lookup_batch`` vs a
  ``lookup`` loop for Maglev (no safety variant, Section 3.6);
- **LB/replay layer**: :func:`repro.traces.replay_batch` vs
  :func:`repro.traces.replay` over a Zipf trace for JET and the
  baselines.  Every balancer must satisfy the never-slower contract
  (``batch_pps >= 0.95 * scalar_pps``) -- a balancer whose stack lacks a
  vector kernel routes straight through the scalar loop, so batch can
  only tie or win.

Every timed configuration is first differentially checked key-for-key
against the scalar path (the replay comparison additionally asserts
identical violations / tracked counts), so a broken vector path cannot
produce a benchmark number.

Results are written machine-readable to ``BENCH_dataplane.json`` (repo
root by default) to anchor the performance trajectory across PRs::

    python -m repro.experiments.throughput --scale smoke --seed 1

``--check-against BENCH_dataplane.json`` additionally gates the fresh run
against the committed numbers (CI's dataplane-smoke job): it fails when
any family's batch path is slower than scalar, when any replay balancer
drops below the never-slower floor, when a previously-vectorized family
regresses below half its recorded speedup, or when a columnar replay
rate falls below 0.9x the recorded absolute pps (same scale only).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ch import rows_for
from repro.ch.base import HorizonConsistentHash, has_batch_kernel
from repro.ch.properties import sample_keys
from repro.core.factories import make_ch, make_full_ct, make_jet
from repro.core.stateless import StatelessLoadBalancer
from repro.experiments.scales import scale_name
from repro.obs import NULL, Registry
from repro.obs.timers import best_of
from repro.traces import zipf_trace
from repro.traces.replay import DEFAULT_CHUNK, replay, replay_batch

#: Families swept at the CH layer.  "maglev" has no safety variant, so it
#: is timed through plain ``lookup``/``lookup_batch``; "concury" is the
#: Othello perfect-mapping family (table-HRW inner, default flowsets).
CH_SWEEP = ("hrw", "table", "ring", "anchor", "maglev", "jump", "modulo",
            "concury")

#: Per-scale sweep sizing (batch size stays at the acceptance-criteria
#: 10k keys everywhere; only population and repetition counts scale).
SWEEP_SCALES: Dict[str, dict] = {
    "smoke": dict(n_servers=20, repeats=2, trace_packets=30_000, trace_population=8_000),
    "default": dict(n_servers=50, repeats=3, trace_packets=200_000, trace_population=60_000),
    "paper": dict(n_servers=500, repeats=5, trace_packets=2_000_000, trace_population=500_000),
}

BATCH_SIZE = 10_000

#: Replay chunk sizes swept to justify ``repro.traces.replay.DEFAULT_CHUNK``.
CHUNK_SWEEP = (8_192, 16_384, 32_768, 65_536)

#: Regression floor for the columnar replay rate: a fresh run must keep at
#: least this fraction of the recorded ``batch_pps`` (same scale only).
REPLAY_PPS_FLOOR = 0.9


def _build_ch(family: str, n_servers: int):
    working = [f"s{i}" for i in range(n_servers)]
    horizon = [f"h{i}" for i in range(max(1, n_servers // 10))]
    kwargs = {}
    if family == "table":
        kwargs["rows"] = rows_for(n_servers)
    if family == "anchor":
        kwargs["capacity"] = 2 * (len(working) + len(horizon)) + 4
    if family == "maglev":
        horizon = ()  # no horizon support (Section 3.6)
    return make_ch(family, working, horizon, **kwargs)


def _sweep_one(ch, family: str, repeats: int, keys: np.ndarray) -> dict:
    """Differentially gate then time one (family, batch size) cell."""
    key_list = keys.tolist()
    batch_size = len(key_list)
    horizon_aware = isinstance(ch, HorizonConsistentHash)
    # Differential gate: a wrong batch path must never get timed.
    probe = keys[: min(512, batch_size)]
    if horizon_aware:
        destinations, unsafe = ch.lookup_with_safety_batch(probe)
        for i, k in enumerate(probe.tolist()):
            if (destinations[i], bool(unsafe[i])) != ch.lookup_with_safety(k):
                raise AssertionError(f"{family}: batch diverges from scalar at key {k}")
        scalar_s = best_of(
            repeats, lambda: [ch.lookup_with_safety(k) for k in key_list]
        )
        batch_s = best_of(repeats, lambda: ch.lookup_with_safety_batch(keys))
    else:
        destinations = ch.lookup_batch(probe)
        for i, k in enumerate(probe.tolist()):
            if destinations[i] != ch.lookup(k):
                raise AssertionError(f"{family}: batch diverges from scalar at key {k}")
        scalar_s = best_of(repeats, lambda: [ch.lookup(k) for k in key_list])
        batch_s = best_of(repeats, lambda: ch.lookup_batch(keys))
    return {
        "family": family,
        "vectorized": has_batch_kernel(ch),
        "batch_size": batch_size,
        "scalar_keys_per_s": batch_size / scalar_s,
        "batch_keys_per_s": batch_size / batch_s,
        "speedup": scalar_s / batch_s,
    }


def run_ch_sweep(
    n_servers: int,
    repeats: int,
    seed: int,
    batch_sizes: Sequence[int] = (BATCH_SIZE,),
) -> List[dict]:
    """Scalar-vs-batch lookup rate for every CH family, per batch size."""
    max_size = max(batch_sizes)
    all_keys = np.array(sample_keys(max_size, seed=seed), dtype=np.uint64)
    rows = []
    for family in CH_SWEEP:
        ch = _build_ch(family, n_servers)
        for batch_size in batch_sizes:
            rows.append(_sweep_one(ch, family, repeats, all_keys[:batch_size]))
    return rows


def _replay_balancers(n_servers: int):
    working = [f"s{i}" for i in range(n_servers)]
    horizon = [f"h{i}" for i in range(max(1, n_servers // 10))]
    table_rows = rows_for(n_servers)
    return {
        "jet-table": lambda: make_jet("table", working, horizon, rows=table_rows),
        "jet-hrw": lambda: make_jet("hrw", working, horizon),
        "full-ct-maglev": lambda: make_full_ct("maglev", working, table_size=65537),
        "stateless-table": lambda: StatelessLoadBalancer(
            make_ch("table", working, horizon, rows=table_rows)
        ),
    }


def run_replay_compare(
    n_servers: int, trace_packets: int, trace_population: int, seed: int
) -> List[dict]:
    """Scalar vs batched trace replay; asserts metric equality, times both."""
    trace = zipf_trace(
        skew=1.0, n_packets=trace_packets, population=trace_population, seed=seed
    )
    rows = []
    for label, build in _replay_balancers(n_servers).items():
        scalar_result = replay(trace, build())
        batch_balancer = build()
        batch_result = replay_batch(trace, batch_balancer)
        if (
            scalar_result.pcc_violations != batch_result.pcc_violations
            or scalar_result.tracked_connections != batch_result.tracked_connections
            or scalar_result.server_loads != batch_result.server_loads
        ):
            raise AssertionError(f"{label}: batched replay diverges from scalar")
        # Never-slower contract: a stack without a vector kernel routes
        # through the scalar loop, so batch can at worst tie within noise.
        if batch_result.rate_pps < 0.95 * scalar_result.rate_pps:
            raise AssertionError(
                f"{label}: batch replay slower than scalar "
                f"({batch_result.rate_pps:,.0f} vs {scalar_result.rate_pps:,.0f} pps)"
            )
        rows.append(
            {
                "balancer": label,
                "trace_packets": trace.n_packets,
                "scalar_pps": scalar_result.rate_pps,
                "batch_pps": batch_result.rate_pps,
                "speedup": batch_result.rate_pps / scalar_result.rate_pps
                if scalar_result.rate_pps
                else 0.0,
                "pcc_violations": batch_result.pcc_violations,
                "tracked_connections": batch_result.tracked_connections,
                # Which dispatch path the batch rate measured: True means
                # the integer-index columnar loop, False the object path.
                # check_against keys its pps floor off this flag.
                "columnar": bool(getattr(batch_balancer, "columnar_effective", False)),
                "chunk_size": DEFAULT_CHUNK,
            }
        )
    return rows


def run_chunk_sweep(
    n_servers: int,
    trace_packets: int,
    trace_population: int,
    seed: int,
    repeats: int,
    chunk_sizes: Sequence[int] = CHUNK_SWEEP,
) -> dict:
    """Columnar replay rate of the jet-table stack per chunk size.

    This is the evidence behind ``repro.traces.replay.DEFAULT_CHUNK``:
    the sweep rows plus a rationale string ride along in the bench JSON,
    so the default is never an unexplained constant.
    """
    trace = zipf_trace(
        skew=1.0, n_packets=trace_packets, population=trace_population, seed=seed
    )
    build = _replay_balancers(n_servers)["jet-table"]
    rows = []
    for chunk in sorted(set(chunk_sizes) | {DEFAULT_CHUNK}):
        best = 0.0
        for _ in range(max(1, repeats)):
            # Fresh balancer per repeat: a warm CT would flatter reruns.
            best = max(best, replay_batch(trace, build(), chunk_size=chunk).rate_pps)
        rows.append(
            {
                "balancer": "jet-table",
                "chunk_size": chunk,
                "batch_pps": best,
                "is_default": chunk == DEFAULT_CHUNK,
            }
        )
    best_row = max(rows, key=lambda row: row["batch_pps"])
    default_row = next(row for row in rows if row["is_default"])
    within = (
        default_row["batch_pps"] / best_row["batch_pps"]
        if best_row["batch_pps"]
        else 0.0
    )
    return {
        "rows": rows,
        "default_chunk": DEFAULT_CHUNK,
        "default_pps": default_row["batch_pps"],
        "best_chunk": best_row["chunk_size"],
        "default_vs_best": within,
        "rationale": (
            f"DEFAULT_CHUNK={DEFAULT_CHUNK}: per-chunk fixed costs (CT probe "
            f"setup, mask passes) amortize by ~32k keys while the chunk "
            f"arrays stay cache-resident and small enough for streaming "
            f"memmap replay; at this scale the default reaches "
            f"{within:.2f}x of the best swept chunk ({best_row['chunk_size']})."
        ),
    }


#: Floor for the instrumented-but-disabled replay path: a NullRegistry
#: run must keep at least this fraction of the uninstrumented rate.
OBS_DISABLED_FLOOR = 0.95


def run_obs_overhead(
    n_servers: int, trace_packets: int, trace_population: int, seed: int, repeats: int
) -> dict:
    """Measure the observability tax on the scalar replay loop.

    Three identical replays of the same trace through fresh JET stacks:
    ``metrics=None`` (uninstrumented), ``metrics=NULL`` (the instrumented
    code path with the no-op registry -- what a run pays for obs being
    *available* but off), and a live :class:`~repro.obs.Registry`.  All
    instrumentation sits at batch/run boundaries, so the disabled path
    must stay above :data:`OBS_DISABLED_FLOOR` of the uninstrumented rate
    -- the micro-bench guard CI enforces via :func:`check_against`.
    """
    trace = zipf_trace(
        skew=1.0, n_packets=trace_packets, population=trace_population, seed=seed
    )
    build = _replay_balancers(n_servers)["jet-table"]

    # Interleave the variants round-robin instead of timing each group in
    # sequence: on a machine whose clock drifts over the bench (thermal
    # throttling after the CH sweep), grouped timing skews the ratios by
    # whatever the drift was between groups.  Fresh balancer per repeat:
    # a warm CT would shortcut CH lookups and flatter later runs.
    variants = {"base": lambda: None, "disabled": lambda: NULL, "live": Registry}
    best = {label: 0.0 for label in variants}
    for _ in range(max(1, repeats)):
        for label, registry_factory in variants.items():
            rate = replay(trace, build(), metrics=registry_factory()).rate_pps
            best[label] = max(best[label], rate)
    base = best["base"]
    disabled = best["disabled"]
    live = best["live"]
    return {
        "balancer": "jet-table",
        "trace_packets": trace.n_packets,
        "base_pps": base,
        "disabled_pps": disabled,
        "live_pps": live,
        "disabled_ratio": disabled / base if base else 0.0,
        "live_ratio": live / base if base else 0.0,
    }


def run_throughput(
    scale: Optional[str] = None,
    seed: int = 1,
    batch_sizes: Sequence[int] = (BATCH_SIZE,),
    chunk_sizes: Sequence[int] = CHUNK_SWEEP,
) -> dict:
    """Run the full experiment at a preset scale; returns the JSON payload."""
    name = scale_name(scale)
    params = SWEEP_SCALES[name]
    return {
        "experiment": "batched-dataplane",
        "scale": name,
        "seed": seed,
        "n_servers": params["n_servers"],
        "batch_sizes": list(batch_sizes),
        "ch_lookup": run_ch_sweep(
            params["n_servers"], params["repeats"], seed, batch_sizes
        ),
        "replay": run_replay_compare(
            params["n_servers"],
            params["trace_packets"],
            params["trace_population"],
            seed,
        ),
        "chunk_sweep": run_chunk_sweep(
            params["n_servers"],
            params["trace_packets"],
            params["trace_population"],
            seed,
            params["repeats"],
            chunk_sizes,
        ),
        "obs_overhead": run_obs_overhead(
            params["n_servers"],
            params["trace_packets"],
            params["trace_population"],
            seed,
            params["repeats"],
        ),
    }


def check_against(payload: dict, recorded: dict) -> List[str]:
    """Regression gate for CI: compare a fresh payload to committed numbers.

    Failures (returned as human-readable strings; empty list == pass):

    - any fresh ``ch_lookup`` family with ``speedup < 1.0`` at the
      reference batch size, or any fresh ``replay`` balancer below the
      0.95 never-slower floor;
    - the instrumented-but-disabled replay path (``obs_overhead``)
      below :data:`OBS_DISABLED_FLOOR` of the uninstrumented rate;
    - any family recorded as ``vectorized`` whose fresh speedup fell
      below half the recorded one.  Speedups scale with population, so
      the half-of-recorded check only applies when the scales match;
    - any replay balancer recorded as ``columnar`` whose fresh batch rate
      fell below :data:`REPLAY_PPS_FLOOR` of the recorded ``batch_pps``
      (absolute-rate gate; same scale only, like the speedup check);
    - a fresh ``showdown`` section whose Concury columnar replay rate
      fell below :data:`REPLAY_PPS_FLOOR` of the recorded one (same
      scale only; sections either payload lacks are skipped, so the
      throughput and showdown experiments can each gate their own runs
      against the one committed bench file);
    - a fresh ``scenarios`` section with any native-mode envelope
      violation, or (same scale only) a scenario whose tracked-fraction
      margin collapsed below half the recorded headroom.
    """
    failures: List[str] = []

    def reference_rows(rows):
        # One row per family at the largest measured batch (the
        # acceptance-criteria size) even when a sweep recorded several.
        by_family: Dict[str, dict] = {}
        for row in rows:
            best = by_family.get(row["family"])
            if best is None or row["batch_size"] > best["batch_size"]:
                by_family[row["family"]] = row
        return by_family

    fresh_ch = reference_rows(payload.get("ch_lookup", []))
    for family, row in fresh_ch.items():
        if row["speedup"] < 1.0:
            failures.append(
                f"ch_lookup[{family}]: batch slower than scalar "
                f"(speedup {row['speedup']:.3f} < 1.0)"
            )
    for row in payload.get("replay", []):
        if row["speedup"] < 0.95:
            failures.append(
                f"replay[{row['balancer']}]: below never-slower floor "
                f"(speedup {row['speedup']:.3f} < 0.95)"
            )
    obs = payload.get("obs_overhead")
    if obs and obs["disabled_ratio"] < OBS_DISABLED_FLOOR:
        failures.append(
            f"obs_overhead[{obs['balancer']}]: disabled-registry replay below "
            f"{OBS_DISABLED_FLOOR}x uninstrumented "
            f"(ratio {obs['disabled_ratio']:.3f})"
        )

    if recorded.get("scale") == payload.get("scale"):
        recorded_ch = reference_rows(recorded.get("ch_lookup", []))
        for family, old in recorded_ch.items():
            fresh = fresh_ch.get(family)
            if fresh is None or not old.get("vectorized"):
                continue
            if fresh["speedup"] < 0.5 * old["speedup"]:
                failures.append(
                    f"ch_lookup[{family}]: regressed below half the recorded "
                    f"speedup ({fresh['speedup']:.2f} < 0.5 * {old['speedup']:.2f})"
                )
        fresh_replay = {row["balancer"]: row for row in payload.get("replay", [])}
        for old in recorded.get("replay", []):
            if not old.get("columnar"):
                continue
            fresh = fresh_replay.get(old["balancer"])
            if fresh is None:
                continue
            if fresh["batch_pps"] < REPLAY_PPS_FLOOR * old["batch_pps"]:
                failures.append(
                    f"replay[{old['balancer']}]: columnar rate below "
                    f"{REPLAY_PPS_FLOOR}x recorded "
                    f"({fresh['batch_pps']:,.0f} < {REPLAY_PPS_FLOOR} * "
                    f"{old['batch_pps']:,.0f} pps)"
                )

    def showdown_columnar(section):
        for row in (section or {}).get("lookup", {}).get("rows", []):
            if row.get("balancer") == "concury-table":
                return row.get("columnar_replay_pps")
        return None

    fresh_show = payload.get("showdown")
    old_show = recorded.get("showdown")
    if (
        fresh_show
        and old_show
        and fresh_show.get("scale") == old_show.get("scale")
    ):
        fresh_pps = showdown_columnar(fresh_show)
        old_pps = showdown_columnar(old_show)
        if fresh_pps is not None and old_pps:
            if fresh_pps < REPLAY_PPS_FLOOR * old_pps:
                failures.append(
                    f"showdown[concury-table]: columnar replay rate below "
                    f"{REPLAY_PPS_FLOOR}x recorded "
                    f"({fresh_pps:,.0f} < {REPLAY_PPS_FLOOR} * {old_pps:,.0f} pps)"
                )

    # Scenario-matrix envelopes (repro.experiments.scenario_matrix): any
    # fresh native-mode envelope violation is an absolute failure, and the
    # tracked-fraction headroom must not collapse below half the recorded
    # margin (same scale and same committed seeds, so the comparison is
    # exact, not statistical).
    fresh_scen = payload.get("scenarios")
    old_scen = recorded.get("scenarios")
    if fresh_scen:
        for name, row in sorted(fresh_scen.get("scenarios", {}).items()):
            if not row.get("ok", True):
                failures.append(
                    f"scenarios[{name}]: native-mode envelope violated"
                )
    if (
        fresh_scen
        and old_scen
        and fresh_scen.get("scale") == old_scen.get("scale")
    ):
        for name, old in sorted(old_scen.get("scenarios", {}).items()):
            fresh = fresh_scen.get("scenarios", {}).get(name)
            if fresh is None:
                continue
            old_margin = (old.get("margins") or {}).get("tracked_fraction")
            new_margin = (fresh.get("margins") or {}).get("tracked_fraction")
            if old_margin is None or new_margin is None or old_margin <= 0:
                continue
            if new_margin < 0.5 * old_margin:
                failures.append(
                    f"scenarios[{name}]: tracked-fraction margin collapsed "
                    f"({new_margin:.3f} < 0.5 * recorded {old_margin:.3f})"
                )
    return failures


def format_report(payload: dict) -> str:
    lines = [
        f"batched dataplane @ scale={payload['scale']} "
        f"(n={payload['n_servers']}, batches={payload.get('batch_sizes', [BATCH_SIZE])})",
        f"{'family':<10} {'batch':>7} {'scalar k/s':>12} {'batch k/s':>12} "
        f"{'speedup':>8}  vectorized",
    ]
    for row in payload["ch_lookup"]:
        lines.append(
            f"{row['family']:<10} {row['batch_size']:>7,} "
            f"{row['scalar_keys_per_s']:>12,.0f} "
            f"{row['batch_keys_per_s']:>12,.0f} {row['speedup']:>7.1f}x  "
            f"{'yes' if row['vectorized'] else 'fallback'}"
        )
    lines.append(
        f"{'balancer':<16} {'scalar pps':>12} {'batch pps':>12} {'speedup':>8}  path"
    )
    for row in payload["replay"]:
        lines.append(
            f"{row['balancer']:<16} {row['scalar_pps']:>12,.0f} "
            f"{row['batch_pps']:>12,.0f} {row['speedup']:>7.2f}x  "
            f"{'columnar' if row.get('columnar') else 'object'}"
        )
    sweep = payload.get("chunk_sweep")
    if sweep:
        lines.append(f"{'chunk':>8} {'batch pps':>12}  (jet-table columnar)")
        for row in sweep["rows"]:
            marker = "  <- default" if row["is_default"] else ""
            lines.append(
                f"{row['chunk_size']:>8,} {row['batch_pps']:>12,.0f}{marker}"
            )
    obs = payload.get("obs_overhead")
    if obs:
        lines.append(
            f"obs overhead ({obs['balancer']}): base {obs['base_pps']:,.0f} pps, "
            f"disabled {obs['disabled_ratio']:.3f}x "
            f"(floor {OBS_DISABLED_FLOOR}), live {obs['live_ratio']:.3f}x"
        )
    return "\n".join(lines)


def write_json(payload: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def _write_metrics_artifact(path: str, scale: str, seed: int) -> None:
    """One instrumented JET replay -> JSONL + Prometheus metrics files."""
    from repro.obs import (
        JsonlExporter,
        MonitorSuite,
        evaluate_and_export,
        prometheus_sibling,
        write_prometheus,
    )

    params = SWEEP_SCALES[scale]
    trace = zipf_trace(
        skew=1.0,
        n_packets=params["trace_packets"],
        population=params["trace_population"],
        seed=seed,
    )
    registry = Registry()
    with JsonlExporter(path) as exporter:
        registry.attach_exporter(exporter)
        result = replay(trace, _replay_balancers(params["n_servers"])["jet-table"](),
                        metrics=registry)
        results = evaluate_and_export(registry, t=result.wall_seconds)
    write_prometheus(registry, prometheus_sibling(path))
    print(f"metrics artifact: {path}")
    print(MonitorSuite.render(results))


def _parse_batch_sizes(spec: str) -> List[int]:
    sizes = sorted({int(s) for s in spec.split(",") if s.strip()})
    if not sizes or any(s < 1 for s in sizes):
        raise argparse.ArgumentTypeError("batch sizes must be positive integers")
    return sizes


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default=None, choices=sorted(SWEEP_SCALES))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--output", default="BENCH_dataplane.json")
    parser.add_argument(
        "--batch-sizes",
        type=_parse_batch_sizes,
        default=[BATCH_SIZE],
        help="comma-separated batch sizes for the CH sweep (one row each)",
    )
    parser.add_argument(
        "--chunk-sizes",
        type=_parse_batch_sizes,
        default=list(CHUNK_SWEEP),
        help="comma-separated replay chunk sizes for the DEFAULT_CHUNK "
        "justification sweep (the current default is always included)",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        metavar="PATH",
        help="committed BENCH_dataplane.json to gate against (CI); "
        "exits nonzero on any regression",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="replay one instrumented JET run and write its JSONL metrics "
        "artifact here (plus a Prometheus .prom sibling)",
    )
    args = parser.parse_args(argv)
    payload = run_throughput(
        scale=args.scale,
        seed=args.seed,
        batch_sizes=args.batch_sizes,
        chunk_sizes=args.chunk_sizes,
    )
    print(format_report(payload))
    write_json(payload, args.output)
    print(f"wrote {args.output}")
    if args.metrics_out:
        _write_metrics_artifact(args.metrics_out, payload["scale"], args.seed)
    if args.check_against:
        with open(args.check_against) as fh:
            recorded = json.load(fh)
        failures = check_against(payload, recorded)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            raise SystemExit(1)
        print(f"regression gate vs {args.check_against}: ok")


if __name__ == "__main__":
    main()
