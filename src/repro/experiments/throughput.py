"""Batched-dataplane throughput experiment.

Measures the batch lookup path introduced by the vectorized dataplane
against the scalar reference at two layers:

- **CH layer**: ``lookup_with_safety_batch`` vs a ``lookup_with_safety``
  loop for every registered CH family (vectorized: HRW, table-HRW,
  modulo, jump; scalar-fallback: ring, anchor -- included to show the
  interface costs nothing where no vector code exists);
- **LB/replay layer**: :func:`repro.traces.replay_batch` vs
  :func:`repro.traces.replay` over a Zipf trace for JET and the
  baselines.

Every timed configuration is first differentially checked key-for-key
against the scalar path (the replay comparison additionally asserts
identical violations / tracked counts), so a broken vector path cannot
produce a benchmark number.

Results are written machine-readable to ``BENCH_dataplane.json`` (repo
root by default) to anchor the performance trajectory across PRs::

    python -m repro.experiments.throughput --scale smoke --seed 1
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List, Optional

import numpy as np

from repro.ch import rows_for
from repro.ch.base import ConsistentHash, HorizonConsistentHash
from repro.ch.properties import sample_keys
from repro.core.factories import make_ch, make_full_ct, make_jet
from repro.core.stateless import StatelessLoadBalancer
from repro.experiments.scales import scale_name
from repro.traces import zipf_trace
from repro.traces.replay import replay, replay_batch

#: Families swept at the CH layer ("maglev" has no safety variant and is
#: exercised at the replay layer instead).
CH_SWEEP = ("hrw", "table", "ring", "anchor", "jump", "modulo")

#: Per-scale sweep sizing (batch size stays at the acceptance-criteria
#: 10k keys everywhere; only population and repetition counts scale).
SWEEP_SCALES: Dict[str, dict] = {
    "smoke": dict(n_servers=20, repeats=2, trace_packets=30_000, trace_population=8_000),
    "default": dict(n_servers=50, repeats=3, trace_packets=200_000, trace_population=60_000),
    "paper": dict(n_servers=500, repeats=5, trace_packets=2_000_000, trace_population=500_000),
}

BATCH_SIZE = 10_000


def _build_ch(family: str, n_servers: int):
    working = [f"s{i}" for i in range(n_servers)]
    horizon = [f"h{i}" for i in range(max(1, n_servers // 10))]
    kwargs = {}
    if family == "table":
        kwargs["rows"] = rows_for(n_servers)
    if family == "anchor":
        kwargs["capacity"] = 2 * (len(working) + len(horizon)) + 4
    return make_ch(family, working, horizon, **kwargs)


def _is_vectorized(ch) -> bool:
    """Whether the instance overrides the scalar-loop batch fallback."""
    method = type(ch).lookup_with_safety_batch
    return method is not HorizonConsistentHash.lookup_with_safety_batch


def _best_of(repeats: int, func) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def run_ch_sweep(
    n_servers: int, repeats: int, seed: int, batch_size: int = BATCH_SIZE
) -> List[dict]:
    """Scalar-vs-batch lookup rate for every CH family in the sweep."""
    keys = np.array(sample_keys(batch_size, seed=seed), dtype=np.uint64)
    key_list = keys.tolist()
    rows = []
    for family in CH_SWEEP:
        ch = _build_ch(family, n_servers)
        # Differential gate: a wrong batch path must never get timed.
        probe = keys[:512]
        destinations, unsafe = ch.lookup_with_safety_batch(probe)
        for i, k in enumerate(probe.tolist()):
            expected = ch.lookup_with_safety(k)
            if (destinations[i], bool(unsafe[i])) != expected:
                raise AssertionError(f"{family}: batch diverges from scalar at key {k}")

        scalar_s = _best_of(
            repeats, lambda: [ch.lookup_with_safety(k) for k in key_list]
        )
        batch_s = _best_of(repeats, lambda: ch.lookup_with_safety_batch(keys))
        rows.append(
            {
                "family": family,
                "vectorized": _is_vectorized(ch),
                "batch_size": batch_size,
                "scalar_keys_per_s": batch_size / scalar_s,
                "batch_keys_per_s": batch_size / batch_s,
                "speedup": scalar_s / batch_s,
            }
        )
    return rows


def _replay_balancers(n_servers: int):
    working = [f"s{i}" for i in range(n_servers)]
    horizon = [f"h{i}" for i in range(max(1, n_servers // 10))]
    table_rows = rows_for(n_servers)
    return {
        "jet-table": lambda: make_jet("table", working, horizon, rows=table_rows),
        "jet-hrw": lambda: make_jet("hrw", working, horizon),
        "full-ct-maglev": lambda: make_full_ct("maglev", working, table_size=65537),
        "stateless-table": lambda: StatelessLoadBalancer(
            make_ch("table", working, horizon, rows=table_rows)
        ),
    }


def run_replay_compare(
    n_servers: int, trace_packets: int, trace_population: int, seed: int
) -> List[dict]:
    """Scalar vs batched trace replay; asserts metric equality, times both."""
    trace = zipf_trace(
        skew=1.0, n_packets=trace_packets, population=trace_population, seed=seed
    )
    rows = []
    for label, build in _replay_balancers(n_servers).items():
        scalar_result = replay(trace, build())
        batch_result = replay_batch(trace, build())
        if (
            scalar_result.pcc_violations != batch_result.pcc_violations
            or scalar_result.tracked_connections != batch_result.tracked_connections
            or scalar_result.server_loads != batch_result.server_loads
        ):
            raise AssertionError(f"{label}: batched replay diverges from scalar")
        rows.append(
            {
                "balancer": label,
                "trace_packets": trace.n_packets,
                "scalar_pps": scalar_result.rate_pps,
                "batch_pps": batch_result.rate_pps,
                "speedup": batch_result.rate_pps / scalar_result.rate_pps
                if scalar_result.rate_pps
                else 0.0,
                "pcc_violations": batch_result.pcc_violations,
                "tracked_connections": batch_result.tracked_connections,
            }
        )
    return rows


def run_throughput(scale: Optional[str] = None, seed: int = 1) -> dict:
    """Run the full experiment at a preset scale; returns the JSON payload."""
    name = scale_name(scale)
    params = SWEEP_SCALES[name]
    return {
        "experiment": "batched-dataplane",
        "scale": name,
        "seed": seed,
        "n_servers": params["n_servers"],
        "ch_lookup": run_ch_sweep(params["n_servers"], params["repeats"], seed),
        "replay": run_replay_compare(
            params["n_servers"],
            params["trace_packets"],
            params["trace_population"],
            seed,
        ),
    }


def format_report(payload: dict) -> str:
    lines = [
        f"batched dataplane @ scale={payload['scale']} "
        f"(n={payload['n_servers']}, batch={BATCH_SIZE})",
        f"{'family':<10} {'scalar k/s':>12} {'batch k/s':>12} {'speedup':>8}  vectorized",
    ]
    for row in payload["ch_lookup"]:
        lines.append(
            f"{row['family']:<10} {row['scalar_keys_per_s']:>12,.0f} "
            f"{row['batch_keys_per_s']:>12,.0f} {row['speedup']:>7.1f}x  "
            f"{'yes' if row['vectorized'] else 'fallback'}"
        )
    lines.append(f"{'balancer':<16} {'scalar pps':>12} {'batch pps':>12} {'speedup':>8}")
    for row in payload["replay"]:
        lines.append(
            f"{row['balancer']:<16} {row['scalar_pps']:>12,.0f} "
            f"{row['batch_pps']:>12,.0f} {row['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


def write_json(payload: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default=None, choices=sorted(SWEEP_SCALES))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--output", default="BENCH_dataplane.json")
    args = parser.parse_args(argv)
    payload = run_throughput(scale=args.scale, seed=args.seed)
    print(format_report(payload))
    write_json(payload, args.output)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
