"""Shared trace-evaluation harness behind Tables 1-2 and Fig. 7.

For a given trace and backend size it measures, per the paper's setup:

- **maximum oversubscription**, **tracked connections**, and **rate** for
  JET and full CT over table-based HRW and AnchorHash, and full CT over
  MaglevHash (which cannot host JET, Section 3.6);
- horizon = 10 % of the backend; CT unbounded ("no flows are evicted");
- each configuration repeated; mean ± std reported.  Repetitions vary the
  server naming (hence every hash placement), which is what spreads the
  paper's tracked/oversubscription error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.stats import MeanStd, aggregate
from repro.ch import AnchorHash, MaglevHash, TableHRWHash, rows_for
from repro.core.full_ct import FullCTLoadBalancer
from repro.core.jet import JETLoadBalancer
from repro.traces.base import Trace
from repro.traces.replay import replay

#: (family, mode) configurations of Tables 1-2, in paper column order.
PAPER_CONFIGS: Tuple[Tuple[str, str], ...] = (
    ("table", "full"),
    ("table", "jet"),
    ("anchor", "full"),
    ("anchor", "jet"),
    ("maglev", "full"),
)

MAGLEV_TABLE_SIZE = 65537  # prime, the order of Maglev's published sizing
TABLE_COPIES = 300         # paper: "table-based HRW (with 300 copies per server)"


@dataclass
class TraceEvalCell:
    """One table cell: the three metrics for a (family, mode, n) config."""

    family: str
    mode: str
    n_servers: int
    oversubscription: MeanStd
    tracked: MeanStd
    rate_pps: MeanStd

    def row(self) -> List:
        return [
            self.n_servers,
            self.family,
            self.mode,
            format(self.oversubscription, ".3f"),
            format(self.tracked, ".0f"),
            f"{self.rate_pps.mean / 1e6:.3f} ±{self.rate_pps.std / 1e6:.3f}",
        ]


def _build_balancer(family: str, mode: str, n_servers: int, horizon_size: int, rep: int):
    working = [f"r{rep}s{i}" for i in range(n_servers)]
    horizon = [f"r{rep}h{i}" for i in range(horizon_size)]
    if family == "maglev":
        if mode != "full":
            raise ValueError("MaglevHash supports full CT only (Section 3.6)")
        return FullCTLoadBalancer(MaglevHash(working, table_size=MAGLEV_TABLE_SIZE))
    if family == "table":
        ch = TableHRWHash(working, horizon, rows=rows_for(n_servers, TABLE_COPIES))
    elif family == "anchor":
        ch = AnchorHash(working, horizon, capacity=2 * (n_servers + horizon_size))
    else:
        raise ValueError(f"unsupported trace-eval family {family!r}")
    if mode == "jet":
        return JETLoadBalancer(ch)
    return FullCTLoadBalancer(ch)


def evaluate_trace(
    trace: Trace,
    n_servers: int,
    repetitions: int = 3,
    horizon_fraction: float = 0.10,
    configs: Sequence[Tuple[str, str]] = PAPER_CONFIGS,
) -> List[TraceEvalCell]:
    """Measure every (family, mode) configuration over ``trace``."""
    horizon_size = max(1, round(n_servers * horizon_fraction))
    cells: List[TraceEvalCell] = []
    for family, mode in configs:
        oversubscription: List[float] = []
        tracked: List[float] = []
        rates: List[float] = []
        for rep in range(repetitions):
            balancer = _build_balancer(family, mode, n_servers, horizon_size, rep)
            outcome = replay(trace, balancer)
            if outcome.pcc_violations:
                raise AssertionError(
                    f"static-backend replay must not violate PCC "
                    f"({family}/{mode}: {outcome.pcc_violations})"
                )
            oversubscription.append(outcome.max_oversubscription)
            tracked.append(outcome.tracked_connections)
            rates.append(outcome.rate_pps)
        cells.append(
            TraceEvalCell(
                family=family,
                mode=mode,
                n_servers=n_servers,
                oversubscription=aggregate(oversubscription),
                tracked=aggregate(tracked),
                rate_pps=aggregate(rates),
            )
        )
    return cells


def cells_to_payload(cells: Sequence[TraceEvalCell]) -> List[Dict]:
    return [
        {
            "n": c.n_servers,
            "family": c.family,
            "mode": c.mode,
            "oversubscription": [c.oversubscription.mean, c.oversubscription.std],
            "tracked": [c.tracked.mean, c.tracked.std],
            "rate_pps": [c.rate_pps.mean, c.rate_pps.std],
        }
        for c in cells
    ]
