"""Section 6 extensions.

- **Simultaneous additions and removals (6.1)**: JET preserves PCC through
  *batches* of concurrent backend changes, provided additions come from the
  horizon.  We replay a trace with injected batch events and count
  violations (expected: zero for horizon batches; non-zero once a batch
  bypasses the horizon).

- **Load awareness (6.3)**: two integrations.  Power-of-2-choices: JET
  keeps the CH pick as one candidate; the less-loaded of two candidates
  wins; tracking is needed when the connection is unsafe *or* the winner
  deviates from the CH pick -- expected ~50 % tracked (vs ~10 % for plain
  JET and 100 % for full CT) with near-perfect balance.  Bounded loads
  (Mirrokni et al., the paper's [25]): a hard per-server cap with ring
  cascade -- enforces the cap while tracking only unsafe + cascaded keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.ch import AnchorHash, RingHash
from repro.core.bounded_load import BoundedLoadJET
from repro.core.full_ct import FullCTLoadBalancer
from repro.core.jet import JETLoadBalancer
from repro.core.load_aware import PowerOfTwoJET
from repro.experiments.report import banner, format_table, save_json
from repro.traces.replay import replay
from repro.traces.zipf import zipf_trace


# ----------------------------------------------------- 6.1: batch changes
def simultaneous_changes(
    n_servers: int = 60,
    horizon_size: int = 8,
    batch: int = 4,
    n_packets: int = 200_000,
    seed: int = 7,
) -> Dict[str, int]:
    """Replay with a mid-trace batch removal and a batch horizon addition.

    Returns violation counts for the two phases: the batch *removal* must
    cause only inevitable breakage; the batch *addition from the horizon*
    must cause zero violations.
    """
    trace = zipf_trace(0.9, n_packets=n_packets, population=n_packets // 4, seed=seed)
    working = [f"w{i}" for i in range(n_servers)]
    horizon = [f"h{i}" for i in range(horizon_size)]
    ch = AnchorHash(working, horizon, capacity=2 * (n_servers + horizon_size))
    balancer = JETLoadBalancer(ch)

    removal_batch = working[:batch]
    addition_batch = horizon[:batch]

    def remove_all(lb):
        for name in removal_batch:
            lb.remove_working_server(name)

    def add_all(lb):
        for name in addition_batch:
            lb.add_working_server(name)

    events = [(n_packets // 3, remove_all), (2 * n_packets // 3, add_all)]
    outcome = replay(trace, balancer, events=events)
    return {
        "pcc_violations": outcome.pcc_violations,
        "inevitably_broken": outcome.inevitably_broken,
        "tracked": outcome.tracked_connections,
    }


# ------------------------------------------------------------- 6.3: P2C
@dataclass
class LoadAwareRow:
    mode: str
    tracked_fraction: float
    max_oversubscription: float


def load_aware_comparison(
    n_servers: int = 50,
    horizon_size: int = 5,
    n_packets: int = 150_000,
    seed: int = 11,
) -> List[LoadAwareRow]:
    """Full CT vs plain JET vs P2C-JET vs bounded-load JET on one trace."""
    trace = zipf_trace(0.8, n_packets=n_packets, population=n_packets // 3, seed=seed)
    working = [f"w{i}" for i in range(n_servers)]
    horizon = [f"h{i}" for i in range(horizon_size)]

    # One CH family (Ring) for every row so the load-awareness effect is
    # isolated from CH balance differences.
    def fresh_ch():
        return RingHash(working, horizon, virtual_nodes=100)

    rows: List[LoadAwareRow] = []
    for mode, build in (
        ("full", lambda: FullCTLoadBalancer(fresh_ch())),
        ("jet", lambda: JETLoadBalancer(fresh_ch())),
        ("jet-p2c", lambda: PowerOfTwoJET(fresh_ch())),
        ("jet-chbl", lambda: BoundedLoadJET(fresh_ch(), epsilon=0.10)),
    ):
        balancer = build()
        outcome = replay(trace, balancer)
        rows.append(
            LoadAwareRow(
                mode=mode,
                tracked_fraction=outcome.tracked_connections / outcome.n_flows,
                max_oversubscription=outcome.max_oversubscription,
            )
        )
    return rows


def main():
    print(banner("Section 6.1 -- simultaneous backend changes"))
    batch = simultaneous_changes()
    print(
        f"batch removal+addition: violations={batch['pcc_violations']} "
        f"(expected 0), inevitable={batch['inevitably_broken']}, "
        f"tracked={batch['tracked']}"
    )

    print(banner("Section 6.3 -- load-aware JET (P2C and bounded loads)"))
    rows = load_aware_comparison()
    print(
        format_table(
            ["mode", "tracked fraction", "max oversubscription"],
            [[r.mode, f"{r.tracked_fraction:.3f}", f"{r.max_oversubscription:.3f}"] for r in rows],
        )
    )
    save_json(
        "extensions",
        {
            "simultaneous": batch,
            "load_aware": [
                {
                    "mode": r.mode,
                    "tracked_fraction": r.tracked_fraction,
                    "max_oversubscription": r.max_oversubscription,
                }
                for r in rows
            ],
        },
    )
    return batch, rows


if __name__ == "__main__":
    main()
