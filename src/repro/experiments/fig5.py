"""Figure 5: maximum oversubscription for different connection rates and
server update rates.

The paper plots max oversubscription against connection rates 50K-200K for
update rates {1, 10, 20, 40}/min, with a single line per update rate since
JET and full CT balance identically (Proposition 4.1; verified here by
running both and asserting equality of the balance series).

Expected shape: oversubscription decreases with the connection rate (more
balls per bin) and increases with the update rate (additions take time to
shoulder load).  Absolute values depend on flows-per-server, so the scaled
runs sit higher than the paper's 1.2-1.6 unless ``scale="paper"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.report import banner, format_table, save_json
from repro.experiments.scales import base_config, scale_name
from repro.sim.scenario import SimulationConfig, run_simulation

PAPER_UPDATE_RATES = (1, 10, 20, 40)
#: Connection rates as multiples of the preset's base rate (the paper's
#: 50K..200K against its 100K baseline).
RATE_MULTIPLIERS = (0.5, 1.0, 1.5, 2.0)


@dataclass
class Fig5Result:
    connection_rates: List[float]
    update_rates: Sequence[float]
    oversubscription: Dict[float, List[float]] = field(default_factory=dict)
    jet_equals_full: bool = True

    def to_rows(self) -> List[List]:
        return [
            [f"Update rate {rate:g}"] + [f"{v:.3f}" for v in self.oversubscription[rate]]
            for rate in self.update_rates
        ]


def run_fig5(
    scale: str = None,
    update_rates: Sequence[float] = PAPER_UPDATE_RATES,
    rate_multipliers: Sequence[float] = RATE_MULTIPLIERS,
    base: SimulationConfig = None,
    seed: int = 3,
    verify_pairing: bool = True,
) -> Fig5Result:
    cfg = base if base is not None else base_config(scale)
    rates = [cfg.connection_rate * m for m in rate_multipliers]
    result = Fig5Result(connection_rates=rates, update_rates=list(update_rates))
    for update_rate in update_rates:
        series: List[float] = []
        for rate in rates:
            run_cfg = cfg.with_(
                mode="jet",
                connection_rate=rate,
                update_rate_per_min=update_rate,
                seed=seed,
            )
            jet_run = run_simulation(run_cfg)
            series.append(jet_run.max_oversubscription)
            if verify_pairing and rate == rates[0]:
                full_run = run_simulation(run_cfg.with_(mode="full"))
                # Proposition 4.1: identical balance for identical seeds.
                if (
                    abs(full_run.max_oversubscription - jet_run.max_oversubscription)
                    > 1e-9
                ):
                    result.jet_equals_full = False
        result.oversubscription[update_rate] = series
    return result


def main(scale: str = None) -> Fig5Result:
    active = scale_name(scale)
    result = run_fig5(scale=active)
    print(banner(f"Figure 5 -- max oversubscription vs connection rate [scale={active}]"))
    headers = ["series"] + [f"rate={r:g}" for r in result.connection_rates]
    print(format_table(headers, result.to_rows()))
    print(f"JET/full-CT balance identical (Prop 4.1): {result.jet_equals_full}")
    save_json(
        "fig5",
        {
            "scale": active,
            "connection_rates": result.connection_rates,
            "oversubscription": {str(k): v for k, v in result.oversubscription.items()},
            "jet_equals_full": result.jet_equals_full,
        },
    )
    return result


if __name__ == "__main__":
    main()
