"""Figure 6: flow-size histograms (log-log).

(a) the two datacenter traces -- UNI1-like is more skewed than NY18-like:
fewer flows and larger heavy hitters; (b) synthetic Zipf traces for skews
0.6-1.4 -- higher skew concentrates packets on fewer, larger flows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.stats import loglog_histogram
from repro.experiments.report import banner, format_table, save_json
from repro.experiments.scales import scale_name, trace_scale, zipf_params
from repro.traces.synthetic_dc import ny18_like, uni1_like
from repro.traces.zipf import PAPER_SKEWS, zipf_trace

Series = List[Tuple[float, int]]


def run_fig6a(scale: str = None, seed: int = 0) -> Dict[str, Series]:
    """Histogram series for the UNI1-like and NY18-like traces."""
    s = trace_scale(scale_name(scale))
    return {
        "UNI1": loglog_histogram(uni1_like(scale=s, seed=seed).size_histogram()),
        "NY18": loglog_histogram(ny18_like(scale=s, seed=seed).size_histogram()),
    }


def run_fig6b(
    scale: str = None, skews: Sequence[float] = PAPER_SKEWS, seed: int = 0
) -> Dict[float, Series]:
    """Histogram series for the Zipf traces across skews."""
    params = zipf_params(scale_name(scale))
    return {
        skew: loglog_histogram(
            zipf_trace(skew, seed=seed, **params).size_histogram()
        )
        for skew in skews
    }


def _series_rows(series: Series) -> List[List]:
    return [[f"{center:.1f}", count] for center, count in series]


def main(scale: str = None):
    active = scale_name(scale)
    a = run_fig6a(scale=active)
    b = run_fig6b(scale=active)
    print(banner(f"Figure 6a -- real-trace stand-in flow sizes [scale={active}]"))
    for name, series in a.items():
        print(f"\n{name} (log-binned flow size -> #flows):")
        print(format_table(["size bin", "flows"], _series_rows(series)))
    print(banner(f"Figure 6b -- Zipf flow sizes by skew [scale={active}]"))
    for skew, series in b.items():
        tail = series[-1][0] if series else 0
        total = sum(count for _, count in series)
        print(f"skew={skew}: {total:,} distinct flows, largest bin ~{tail:,.0f} pkts")
    save_json(
        "fig6",
        {
            "scale": active,
            "fig6a": {k: v for k, v in a.items()},
            "fig6b": {str(k): v for k, v in b.items()},
        },
    )
    return a, b


if __name__ == "__main__":
    main()
