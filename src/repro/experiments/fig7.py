"""Figure 7: JET vs full CT over synthetic Zipf traces -- maximum
oversubscription, tracked connections, and rate, as functions of the skew
(0.6-1.4), for table-based HRW, AnchorHash, and MaglevHash (full CT only),
with backend sizes n ∈ {50, 500}.

Expected shapes (paper Section 5.3):

- oversubscription identical for JET and full CT; grows with skew
  (footnote 6 caveat aside, fewer distinct flows => noisier balance) and
  with backend size; AnchorHash/Maglev balance better than table-HRW;
- tracked connections: JET ≈ 10 % of full CT at every skew; the absolute
  number falls with skew as the distinct-flow count drops;
- rate rises with skew for every LB (more CT/table hits on hot rows) --
  in Python the effect comes from dict-hit locality rather than L1/L2.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.report import banner, format_table, save_json
from repro.experiments.scales import repeats, scale_name, zipf_params
from repro.experiments.trace_eval import (
    PAPER_CONFIGS,
    TraceEvalCell,
    cells_to_payload,
    evaluate_trace,
)
from repro.traces.zipf import PAPER_SKEWS, zipf_trace

PAPER_BACKEND_SIZES = (50, 500)

Fig7Result = Dict[Tuple[float, int], List[TraceEvalCell]]


def run_fig7(
    scale: str = None,
    skews: Sequence[float] = PAPER_SKEWS,
    backend_sizes: Sequence[int] = PAPER_BACKEND_SIZES,
    repetitions: int = None,
    configs=PAPER_CONFIGS,
    seed: int = 0,
) -> Fig7Result:
    active = scale_name(scale)
    if repetitions is None:
        repetitions = max(2, repeats(active) - 1)  # fig7 is the widest sweep
    params = zipf_params(active)
    results: Fig7Result = {}
    for skew in skews:
        trace = zipf_trace(skew, seed=seed, **params)
        for n in backend_sizes:
            results[(skew, n)] = evaluate_trace(
                trace, n, repetitions=repetitions, configs=configs
            )
    return results


def main(scale: str = None) -> Fig7Result:
    active = scale_name(scale)
    results = run_fig7(scale=active)
    print(banner(f"Figure 7 -- JET vs full CT across Zipf skews [scale={active}]"))
    headers = ["skew", "n", "hash", "mode", "max oversub", "tracked", "rate [Mpps]"]
    rows = []
    for (skew, n) in sorted(results):
        for cell in results[(skew, n)]:
            rows.append([skew] + cell.row())
    print(format_table(headers, rows))
    save_json(
        "fig7",
        {
            "scale": active,
            "cells": {
                f"skew={skew},n={n}": cells_to_payload(cells)
                for (skew, n), cells in results.items()
            },
        },
    )
    return results


if __name__ == "__main__":
    main()
