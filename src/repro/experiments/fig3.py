"""Figure 3: PCC violations vs CT table size for different backend update
rates -- full CT at update rates {1, 2, 5, 10, 20, 40}/min versus JET with a
10 % horizon.

The paper's CT sizes run from 10 % to 150 % of the connection rate
(10K-150K for rate 100K); we keep those fractions at the active scale.
The expected shape: full-CT violations grow with the update rate and fall
as the table grows, reaching zero once the table exceeds the active-flow
count (~150 % of the rate); JET stays at (near) zero everywhere except the
smallest table under the highest update rates -- and even there it is an
order of magnitude below full CT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.report import banner, format_table, save_json
from repro.experiments.scales import base_config, scale_name
from repro.sim.scenario import SimulationConfig, run_simulation

PAPER_UPDATE_RATES = (1, 2, 5, 10, 20, 40)
PAPER_CT_FRACTIONS = (0.10, 0.25, 0.50, 0.75, 1.00, 1.25, 1.50)


@dataclass
class Fig3Result:
    """Violations per (series, CT size); series are full-CT update rates
    plus one JET series per update rate."""

    ct_sizes: List[int]
    update_rates: Sequence[float]
    full_ct: Dict[float, List[int]] = field(default_factory=dict)
    jet: Dict[float, List[int]] = field(default_factory=dict)

    def to_rows(self) -> List[List]:
        rows = []
        for rate in self.update_rates:
            rows.append([f"Full CT (rate {rate:g})"] + self.full_ct[rate])
            rows.append([f"JET     (rate {rate:g})"] + self.jet[rate])
        return rows


def run_fig3(
    scale: str = None,
    update_rates: Sequence[float] = PAPER_UPDATE_RATES,
    ct_fractions: Sequence[float] = PAPER_CT_FRACTIONS,
    base: SimulationConfig = None,
    seed: int = 1,
) -> Fig3Result:
    """Run the Fig. 3 sweep and return the violation matrix."""
    cfg = base if base is not None else base_config(scale)
    ct_sizes = [max(64, int(cfg.connection_rate * f)) for f in ct_fractions]
    result = Fig3Result(ct_sizes=ct_sizes, update_rates=list(update_rates))
    for rate in update_rates:
        result.full_ct[rate] = []
        result.jet[rate] = []
        for ct_size in ct_sizes:
            common = cfg.with_(
                update_rate_per_min=rate, ct_capacity=ct_size, seed=seed
            )
            result.full_ct[rate].append(
                run_simulation(common.with_(mode="full")).pcc_violations
            )
            result.jet[rate].append(
                run_simulation(common.with_(mode="jet")).pcc_violations
            )
    return result


def main(scale: str = None) -> Fig3Result:
    active = scale_name(scale)
    result = run_fig3(scale=active)
    print(banner(f"Figure 3 -- PCC violations vs CT table size [scale={active}]"))
    headers = ["series"] + [f"CT={s}" for s in result.ct_sizes]
    print(format_table(headers, result.to_rows()))
    save_json(
        "fig3",
        {
            "scale": active,
            "ct_sizes": result.ct_sizes,
            "full_ct": {str(k): v for k, v in result.full_ct.items()},
            "jet": {str(k): v for k, v in result.jet.items()},
        },
    )
    return result


if __name__ == "__main__":
    main()
