"""Section 6.2 experiment: PCC under LB-pool changes.

Replays a trace through an LB pool, grows the pool mid-trace (the §6.2
disruption: ECMP re-steers flows onto a CT-less instance), and measures:

- PCC violations without synchronization -- non-zero for both JET and
  full CT, confirming §6.2's caveat;
- PCC violations with CT synchronization -- zero for both;
- the synchronization cost -- JET replicates ~|H|/(|W|+|H|) as many
  entries as full CT ("JET's smaller CT size means that a smaller state
  needs to be synchronized").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ch import AnchorHash
from repro.core.full_ct import FullCTLoadBalancer
from repro.core.jet import JETLoadBalancer
from repro.core.lb_pool import LBPool
from repro.experiments.report import banner, format_table, save_json
from repro.traces.replay import replay
from repro.traces.zipf import zipf_trace


@dataclass
class PoolRow:
    mode: str
    sync: bool
    pcc_violations: int
    synced_entries: int
    tracked_total: int

    def cells(self) -> List:
        return [
            self.mode,
            "yes" if self.sync else "no",
            self.pcc_violations,
            self.synced_entries,
            self.tracked_total,
        ]


def run_pool_experiment(
    n_servers: int = 50,
    horizon_size: int = 5,
    pool_size: int = 4,
    n_packets: int = 200_000,
    seed: int = 19,
) -> List[PoolRow]:
    trace = zipf_trace(0.9, n_packets=n_packets, population=n_packets // 4, seed=seed)
    working = [f"w{i}" for i in range(n_servers)]
    horizon = [f"h{i}" for i in range(horizon_size)]

    def jet_factory():
        return JETLoadBalancer(
            AnchorHash(working, horizon, capacity=2 * (n_servers + horizon_size))
        )

    def full_factory():
        return FullCTLoadBalancer(
            AnchorHash(working, horizon, capacity=2 * (n_servers + horizon_size))
        )

    rows: List[PoolRow] = []
    for mode, factory in (("jet", jet_factory), ("full", full_factory)):
        for sync in (False, True):
            pool = LBPool(factory, size=pool_size, sync=sync)
            # Mid-trace: a backend addition pins the unsafe connections to
            # CT entries that disagree with the current CH; the later pool
            # growth re-steers a slice of them onto a CT-less instance.
            events = [
                (n_packets // 4, lambda p: p.add_working_server(horizon[0])),
                (n_packets // 2, lambda p: p.add_lb()),
            ]
            outcome = replay(trace, pool, events=events)
            rows.append(
                PoolRow(
                    mode=mode,
                    sync=sync,
                    pcc_violations=outcome.pcc_violations,
                    synced_entries=pool.synced_entries,
                    tracked_total=pool.tracked_connections,
                )
            )
    return rows


def main():
    rows = run_pool_experiment()
    print(banner("Section 6.2 -- LB pool changes"))
    print(
        format_table(
            ["mode", "sync", "PCC violations", "synced entries", "tracked total"],
            [r.cells() for r in rows],
        )
    )
    jet_sync = next(r for r in rows if r.mode == "jet" and r.sync)
    full_sync = next(r for r in rows if r.mode == "full" and r.sync)
    if full_sync.synced_entries:
        ratio = jet_sync.synced_entries / full_sync.synced_entries
        print(f"JET syncs {ratio:.1%} of full CT's state")
    save_json(
        "lb_pool",
        [
            {
                "mode": r.mode,
                "sync": r.sync,
                "pcc_violations": r.pcc_violations,
                "synced_entries": r.synced_entries,
                "tracked_total": r.tracked_total,
            }
            for r in rows
        ],
    )
    return rows


if __name__ == "__main__":
    main()
