"""Figure 4: PCC violations vs CT table size for different JET horizon
sizes, at a fixed backend update rate of 10 removals/min.

The paper sweeps horizons {5, 12, 24, 47} on 468 servers (1 %-10 %); we
keep the same backend *fractions* at the active scale.  Expected shape
(Fig. 4a/4b): every horizon ≥ the update-rate scale matches full CT at
large tables and needs far smaller tables to reach zero violations; a
horizon smaller than the concurrent-down-server count (5 at update rate
10) keeps violating even with a large table, because recovering servers
get evicted from the horizon and return unannounced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.fig3 import PAPER_CT_FRACTIONS
from repro.experiments.report import banner, format_table, save_json
from repro.experiments.scales import base_config, scale_name
from repro.sim.scenario import SimulationConfig, run_simulation

#: The paper's horizon sizes as fractions of the 468-server backend, plus
#: one deliberately undersized horizon (1/468) that makes the
#: "horizon too small for the update rate" violations of Fig. 4a visible
#: at reduced scales (down-times shrink with the run length, so fewer
#: servers are concurrently down than in the paper's configuration).
PAPER_HORIZON_FRACTIONS = (1 / 468, 5 / 468, 12 / 468, 24 / 468, 47 / 468)


@dataclass
class Fig4Result:
    ct_sizes: List[int]
    horizons: List[int]
    full_ct: List[int] = field(default_factory=list)
    jet: Dict[int, List[int]] = field(default_factory=dict)

    def to_rows(self) -> List[List]:
        rows = [["Full CT"] + self.full_ct]
        for horizon in self.horizons:
            rows.append([f"JET (H={horizon})"] + self.jet[horizon])
        return rows


def run_fig4(
    scale: str = None,
    horizon_fractions: Sequence[float] = PAPER_HORIZON_FRACTIONS,
    ct_fractions: Sequence[float] = PAPER_CT_FRACTIONS,
    update_rate: float = 10.0,
    base: SimulationConfig = None,
    seed: int = 2,
) -> Fig4Result:
    cfg = base if base is not None else base_config(scale)
    cfg = cfg.with_(update_rate_per_min=update_rate, seed=seed)
    ct_sizes = [max(64, int(cfg.connection_rate * f)) for f in ct_fractions]
    horizons = sorted({max(1, round(cfg.n_servers * f)) for f in horizon_fractions})
    result = Fig4Result(ct_sizes=ct_sizes, horizons=horizons)
    for ct_size in ct_sizes:
        result.full_ct.append(
            run_simulation(cfg.with_(mode="full", ct_capacity=ct_size)).pcc_violations
        )
    for horizon in horizons:
        result.jet[horizon] = []
        for ct_size in ct_sizes:
            run = run_simulation(
                cfg.with_(mode="jet", ct_capacity=ct_size, horizon_size=horizon)
            )
            result.jet[horizon].append(run.pcc_violations)
    return result


def main(scale: str = None) -> Fig4Result:
    active = scale_name(scale)
    result = run_fig4(scale=active)
    print(banner(f"Figure 4 -- PCC violations vs CT size per horizon [scale={active}]"))
    headers = ["series"] + [f"CT={s}" for s in result.ct_sizes]
    print(format_table(headers, result.to_rows()))
    save_json(
        "fig4",
        {
            "scale": active,
            "ct_sizes": result.ct_sizes,
            "full_ct": result.full_ct,
            "jet": {str(k): v for k, v in result.jet.items()},
        },
    )
    return result


if __name__ == "__main__":
    main()
