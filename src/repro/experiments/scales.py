"""Scale presets for the reproduction experiments.

The paper's event-driven runs are 1000 s with ~100K concurrent connections
over 468 servers (~5M connections, hundreds of millions of packets) -- a
C++/laptop workload, not a pure-Python one.  Every experiment therefore
runs at a configurable scale that preserves the *ratios* that drive the
results (CT size / connection rate, horizon / backend size, flows per
server), while shrinking absolute counts.

Select with the ``REPRO_SCALE`` environment variable (``smoke``,
``default``, ``paper``) or pass a preset name explicitly.  ``paper``
reproduces the full published parameters; expect hours of runtime.
"""

from __future__ import annotations

import os
from typing import Dict

from repro.sim.distributions import LogNormal
from repro.sim.scenario import SimulationConfig

#: Simulation presets.  `connection_rate` follows the paper's convention
#: (nominal concurrent connections); the horizon is 10% of the backend.
#: Server down-times scale with the run length so that removed servers
#: actually *recover* within the simulated window -- additions are the
#: events that exercise JET's tracking (Section 2.2).
SCALES: Dict[str, dict] = {
    "smoke": dict(
        duration_s=30.0, connection_rate=400.0, n_servers=60, horizon_size=6,
        downtime_median=5.0,
    ),
    "default": dict(
        duration_s=100.0, connection_rate=1500.0, n_servers=234, horizon_size=24,
        downtime_median=12.0,
    ),
    "paper": dict(
        duration_s=1000.0, connection_rate=100_000.0, n_servers=468, horizon_size=47,
        downtime_median=60.0,
    ),
}

#: Trace-generation scale per preset (fraction of the original captures).
TRACE_SCALES: Dict[str, float] = {"smoke": 0.01, "default": 0.03, "paper": 1.0}

#: Zipf trace sizing per preset (packets, flow population).
ZIPF_SCALES: Dict[str, dict] = {
    "smoke": dict(n_packets=100_000, population=50_000),
    "default": dict(n_packets=400_000, population=150_000),
    "paper": dict(n_packets=100_000_000, population=20_000_000),
}

#: Repetition counts (the paper uses 10 for trace experiments).
REPEATS: Dict[str, int] = {"smoke": 2, "default": 3, "paper": 10}


def scale_name(explicit: str = None) -> str:
    """Resolve the active preset (explicit arg beats the environment)."""
    name = explicit or os.environ.get("REPRO_SCALE", "default")
    if name not in SCALES:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(SCALES)}")
    return name


def base_config(scale: str = None, **overrides) -> SimulationConfig:
    """The preset's simulation config, with optional field overrides."""
    params = dict(SCALES[scale_name(scale)])
    downtime_median = params.pop("downtime_median")
    params.setdefault("downtime_dist", LogNormal(median=downtime_median, sigma=0.8))
    params.update(overrides)
    return SimulationConfig(**params)


def trace_scale(scale: str = None) -> float:
    return TRACE_SCALES[scale_name(scale)]


def zipf_params(scale: str = None) -> dict:
    return dict(ZIPF_SCALES[scale_name(scale)])


def repeats(scale: str = None) -> int:
    return REPEATS[scale_name(scale)]
