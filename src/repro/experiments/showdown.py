"""Three-way production showdown: JET vs full-CT vs Concury.

One trace, one membership schedule, three points on the
stateful/stateless spectrum (all over the same table-HRW control plane):

- **jet-table** -- horizon tracking: a CT entry per *unsafe* flow;
- **full-ct-table** -- classic stateful: a CT entry per flow;
- **concury-table** -- Concury-style stateless: an Othello perfect
  mapping over fixed flowsets, zero per-connection state.

Four metric groups, merged into ``BENCH_dataplane.json`` under the
``"showdown"`` key:

- **memory**: bytes of dataplane state after a replay, per flow and per
  backend, plus an explicit connection-independence check (the same
  stack replayed at twice the flow population must not grow for
  Concury -- asserted, not just recorded);
- **lookup**: keys/s at every dispatch tier -- scalar loop, name-batch,
  columnar integer-index kernel -- plus the end-to-end columnar replay
  pps and the sharded per-shard critical-path pps (merged result
  asserted byte-equal to the single-process replay first);
- **update_cost**: control-plane seconds per membership event
  (remove + re-add cycles), with Concury's patch-vs-rebuild counters and
  Othello cells touched per event riding along;
- **pcc_churn**: PCC violations, inevitable breaks, tracked state, and
  oversubscription under an identical mid-trace remove/add schedule --
  the consistency price each design pays.

CI gates: ``--min-concury-ratio X`` fails when Concury's columnar
replay pps drops below ``X`` times jet-table's in the same run
(machine-relative, so it holds on any runner); ``--check-against`` runs
:func:`repro.experiments.throughput.check_against`, whose showdown
section fails a fresh Concury columnar rate below 0.9x the recorded one
(same scale only).
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.ch import rows_for
from repro.ch.properties import sample_keys
from repro.core.factories import make_concury, make_full_ct, make_jet
from repro.experiments.scales import scale_name
from repro.obs.timers import best_of
from repro.shard import BalancerSpec, replay_sharded
from repro.shard.worker import _ct_approx_bytes
from repro.traces import replay, replay_batch, zipf_trace

#: Per-scale sizing.  The lookup batch stays at the acceptance-criteria
#: 10k keys; traces and update-cycle counts scale.
SCALES: Dict[str, dict] = {
    "smoke": dict(
        n_servers=20, horizon=2, repeats=3, batch=10_000, shards=4,
        trace_packets=60_000, trace_population=12_000, update_cycles=30,
    ),
    "default": dict(
        n_servers=50, horizon=5, repeats=3, batch=10_000, shards=4,
        trace_packets=400_000, trace_population=80_000, update_cycles=50,
    ),
    "paper": dict(
        n_servers=468, horizon=47, repeats=5, batch=10_000, shards=8,
        trace_packets=4_000_000, trace_population=600_000, update_cycles=100,
    ),
}

#: The three contenders, keyed by report label.  ``spec_mode`` is the
#: :class:`~repro.shard.BalancerSpec` mode used for the sharded tier.
CONTENDERS = ("jet-table", "full-ct-table", "concury-table")
_SPEC_MODES = {"jet-table": "jet", "full-ct-table": "full", "concury-table": "concury"}

_TIMING_FIELDS = ("rate_pps", "wall_seconds")


def _builders(params: dict, seed: int) -> Dict[str, Callable]:
    n = params["n_servers"]
    working = [f"s{i}" for i in range(n)]
    horizon = [f"h{i}" for i in range(params["horizon"])]
    rows = rows_for(n)
    return {
        "jet-table": lambda: make_jet("table", working, horizon, rows=rows),
        "full-ct-table": lambda: make_full_ct("table", working, horizon, rows=rows),
        "concury-table": lambda: make_concury(
            "table", working, horizon, seed=seed, rows=rows
        ),
    }


def _state_bytes(balancer) -> int:
    """Dataplane state: the Othello map for Concury, the CT otherwise."""
    map_bytes = getattr(balancer, "map_memory_bytes", None)
    if map_bytes is not None:
        return int(map_bytes)
    return _ct_approx_bytes(balancer)


def run_memory(params: dict, seed: int) -> List[dict]:
    """State bytes after a replay, and whether they track connection count."""
    base = zipf_trace(
        skew=1.0, n_packets=params["trace_packets"],
        population=params["trace_population"], seed=seed,
    )
    double = zipf_trace(
        skew=1.0, n_packets=params["trace_packets"],
        population=2 * params["trace_population"], seed=seed + 1,
    )
    backends = params["n_servers"] + params["horizon"]
    rows = []
    for label, build in _builders(params, seed).items():
        lb = build()
        result = replay_batch(base, lb)
        state = _state_bytes(lb)
        lb2 = build()
        replay_batch(double, lb2)
        state2 = _state_bytes(lb2)
        independent = state2 == state
        if label == "concury-table" and not independent:
            raise AssertionError(
                f"concury state grew with connection count "
                f"({state} -> {state2} bytes at 2x population)"
            )
        rows.append(
            {
                "balancer": label,
                "flows": result.n_flows,
                "tracked_connections": result.tracked_connections,
                "state_bytes": state,
                "bytes_per_flow": state / result.n_flows if result.n_flows else 0.0,
                "bytes_per_backend": state / backends,
                "state_bytes_2x_population": state2,
                "connection_independent": independent,
            }
        )
    return rows


def run_lookup(params: dict, seed: int) -> dict:
    """Keys/s per dispatch tier: scalar, name-batch, columnar, sharded."""
    batch = params["batch"]
    repeats = max(1, params["repeats"])
    keys = np.array(sample_keys(batch, seed=seed), dtype=np.uint64)
    key_list = keys.tolist()
    trace = zipf_trace(
        skew=1.0, n_packets=params["trace_packets"],
        population=params["trace_population"], seed=seed,
    )
    rows = []
    for label, build in _builders(params, seed).items():
        lb = build()
        # Differential gate before any timing: the integer-index kernel,
        # the name batch, and the scalar loop must agree key for key.
        probe = keys[:512]
        names = lb.get_destinations_batch(probe)
        idx = lb.get_destinations_batch_idx(probe)
        table = lb.dispatch_names()
        for i, k in enumerate(probe.tolist()):
            scalar = lb.get_destination(k)
            if names[i] != scalar or table[idx[i]] != scalar:
                raise AssertionError(f"{label}: dispatch tiers diverge at key {k}")
        lb.get_destinations_batch(keys)  # warm the CT before steady-state timing
        scalar_s = best_of(
            repeats, lambda: [lb.get_destination(k) for k in key_list]
        )
        name_s = best_of(repeats, lambda: lb.get_destinations_batch(keys))
        idx_s = best_of(repeats, lambda: lb.get_destinations_batch_idx(keys))

        replay_pps = 0.0
        for _ in range(repeats):
            # Fresh balancer per repeat: a warm CT would flatter reruns.
            replay_pps = max(replay_pps, replay_batch(trace, build()).rate_pps)

        spec = BalancerSpec.fleet(
            mode=_SPEC_MODES[label], family="table",
            n_servers=params["n_servers"], horizon_size=params["horizon"],
            seed=seed,
        )
        single = replay_batch(trace, spec.build(0))
        sharded = replay_sharded(
            trace, spec, n_workers=1, n_shards=params["shards"]
        )
        for field in single.__dataclass_fields__:
            if field in _TIMING_FIELDS:
                continue
            if getattr(sharded.result, field) != getattr(single, field):
                raise AssertionError(
                    f"{label}: sharded merge diverges from single ({field})"
                )
        rows.append(
            {
                "balancer": label,
                "batch_size": batch,
                "scalar_keys_per_s": batch / scalar_s,
                "name_batch_keys_per_s": batch / name_s,
                "columnar_kernel_keys_per_s": batch / idx_s,
                "columnar_replay_pps": replay_pps,
                "sharded_critical_path_pps": sharded.result.rate_pps,
            }
        )
    by_label = {row["balancer"]: row for row in rows}
    jet = by_label["jet-table"]["columnar_replay_pps"]
    concury = by_label["concury-table"]["columnar_replay_pps"]
    return {
        "batch_size": batch,
        "shards": params["shards"],
        "trace_packets": trace.n_packets,
        "rows": rows,
        "concury_vs_jet_columnar": concury / jet if jet else 0.0,
    }


def run_update_cost(params: dict, seed: int) -> List[dict]:
    """Control-plane seconds per membership event (remove + re-add cycles)."""
    trace = zipf_trace(
        skew=1.0, n_packets=params["trace_packets"] // 4,
        population=params["trace_population"] // 4, seed=seed,
    )
    victim = f"s{params['n_servers'] - 1}"
    cycles = params["update_cycles"]
    rows = []
    for label, build in _builders(params, seed).items():
        lb = build()
        replay_batch(trace, lb)  # a populated CT makes invalidation cost real
        start = perf_counter()
        for _ in range(cycles):
            lb.remove_working_server(victim)
            lb.add_working_server(victim)
        elapsed = perf_counter() - start
        row = {
            "balancer": label,
            "events": 2 * cycles,
            "seconds_per_event": elapsed / (2 * cycles),
        }
        stats = getattr(lb, "update_stats", None)
        if stats is not None:
            row["concury"] = {
                "rebuilds": stats["rebuilds"],
                "patches": stats["patches"],
                "flowsets_per_event": stats["flowsets_changed"] / (2 * cycles),
                "cells_per_event": stats["cells_touched"] / (2 * cycles),
            }
        rows.append(row)
    return rows


def run_pcc_churn(params: dict, seed: int) -> List[dict]:
    """PCC under an identical mid-trace remove/add schedule per contender."""
    packets = params["trace_packets"]
    trace = zipf_trace(
        skew=1.0, n_packets=packets,
        population=params["trace_population"], seed=seed + 2,
    )

    def events():
        return [
            (packets // 3, lambda lb: lb.remove_working_server("s0")),
            (2 * packets // 3, lambda lb: lb.add_working_server("h0")),
        ]

    rows = []
    for label, build in _builders(params, seed).items():
        result = replay_batch(trace, build(), events())
        rows.append(
            {
                "balancer": label,
                "pcc_violations": result.pcc_violations,
                "inevitably_broken": result.inevitably_broken,
                "violation_rate": result.pcc_violations / result.n_flows,
                "tracked_connections": result.tracked_connections,
                "max_oversubscription": result.max_oversubscription,
            }
        )
    return rows


def run_showdown(scale: Optional[str] = None, seed: int = 1) -> dict:
    name = scale_name(scale)
    params = SCALES[name]
    return {
        "experiment": "showdown",
        "scale": name,
        "seed": seed,
        "n_servers": params["n_servers"],
        "horizon": params["horizon"],
        "contenders": list(CONTENDERS),
        "memory": run_memory(params, seed),
        "lookup": run_lookup(params, seed),
        "update_cost": run_update_cost(params, seed),
        "pcc_churn": run_pcc_churn(params, seed),
    }


def concury_ratio(payload: dict) -> float:
    return payload["lookup"]["concury_vs_jet_columnar"]


def format_report(payload: dict) -> str:
    lines = [
        f"three-way showdown @ scale={payload['scale']} "
        f"(W={payload['n_servers']} H={payload['horizon']})",
        f"{'balancer':<15} {'tracked':>9} {'state B':>10} {'B/flow':>8} "
        f"{'B/backend':>10}  conn-independent",
    ]
    for row in payload["memory"]:
        lines.append(
            f"{row['balancer']:<15} {row['tracked_connections']:>9,} "
            f"{row['state_bytes']:>10,} {row['bytes_per_flow']:>8.1f} "
            f"{row['bytes_per_backend']:>10,.0f}  "
            f"{'yes' if row['connection_independent'] else 'no'}"
        )
    lookup = payload["lookup"]
    lines.append(
        f"{'balancer':<15} {'scalar k/s':>11} {'name k/s':>11} "
        f"{'idx k/s':>11} {'replay pps':>12} {'sharded pps':>12}"
    )
    for row in lookup["rows"]:
        lines.append(
            f"{row['balancer']:<15} {row['scalar_keys_per_s']:>11,.0f} "
            f"{row['name_batch_keys_per_s']:>11,.0f} "
            f"{row['columnar_kernel_keys_per_s']:>11,.0f} "
            f"{row['columnar_replay_pps']:>12,.0f} "
            f"{row['sharded_critical_path_pps']:>12,.0f}"
        )
    lines.append(
        f"concury/jet columnar replay ratio: {lookup['concury_vs_jet_columnar']:.2f}x"
    )
    lines.append(f"{'balancer':<15} {'s/event':>12}  control-plane detail")
    for row in payload["update_cost"]:
        detail = ""
        if "concury" in row:
            c = row["concury"]
            detail = (
                f"patches={c['patches']} rebuilds={c['rebuilds']} "
                f"{c['flowsets_per_event']:.0f} flowsets/event "
                f"{c['cells_per_event']:.0f} cells/event"
            )
        lines.append(f"{row['balancer']:<15} {row['seconds_per_event']:>12.6f}  {detail}")
    lines.append(
        f"{'balancer':<15} {'pcc viol':>9} {'inevitable':>11} {'rate':>9} "
        f"{'tracked':>9} {'oversub':>8}"
    )
    for row in payload["pcc_churn"]:
        lines.append(
            f"{row['balancer']:<15} {row['pcc_violations']:>9,} "
            f"{row['inevitably_broken']:>11,} {row['violation_rate']:>9.5f} "
            f"{row['tracked_connections']:>9,} {row['max_oversubscription']:>8.3f}"
        )
    return "\n".join(lines)


def merge_into_bench(payload: dict, path: str) -> None:
    """Record the payload under ``"showdown"`` in the bench JSON at ``path``.

    An existing file keeps its other sections (the throughput experiment
    owns the top level, sharding its own key); a missing or unreadable
    one is created fresh.
    """
    recorded: dict = {}
    try:
        with open(path) as fh:
            recorded = json.load(fh)
    except (OSError, ValueError):
        recorded = {}
    if not isinstance(recorded, dict):
        recorded = {}
    recorded["showdown"] = payload
    with open(path, "w") as fh:
        json.dump(recorded, fh, indent=2)
        fh.write("\n")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default=None, choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--output", default="BENCH_dataplane.json",
                        help="bench JSON to merge the 'showdown' section into")
    parser.add_argument(
        "--min-concury-ratio", type=float, default=None, metavar="X",
        help="fail when Concury's columnar replay pps is below X times "
        "jet-table's in the same run (CI gate, machine-relative)",
    )
    parser.add_argument(
        "--check-against", default=None, metavar="PATH",
        help="committed BENCH_dataplane.json to gate against (CI); "
        "exits nonzero when the fresh Concury columnar rate regresses "
        "below 0.9x the recorded one",
    )
    args = parser.parse_args(argv)
    payload = run_showdown(scale=args.scale, seed=args.seed)
    print(format_report(payload))
    merge_into_bench(payload, args.output)
    print(f"recorded under 'showdown' in {args.output}")
    if args.min_concury_ratio is not None:
        ratio = concury_ratio(payload)
        if ratio < args.min_concury_ratio:
            raise SystemExit(
                f"REGRESSION: concury/jet columnar ratio {ratio:.2f} "
                f"< {args.min_concury_ratio}"
            )
        print(f"concury ratio gate (>= {args.min_concury_ratio}): ok ({ratio:.2f}x)")
    if args.check_against:
        from repro.experiments.throughput import check_against

        with open(args.check_against) as fh:
            recorded = json.load(fh)
        failures = check_against({"scale": payload["scale"], "showdown": payload},
                                 recorded)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            raise SystemExit(1)
        print(f"regression gate vs {args.check_against}: ok")


if __name__ == "__main__":
    main()
