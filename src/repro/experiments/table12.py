"""Tables 1 and 2: evaluation over the UNI1 (IMC'10) and NY18 (CAIDA 2018)
traces -- here their calibrated synthetic stand-ins (see
``repro.traces.synthetic_dc`` and DESIGN.md for the substitution).

Per trace and backend size n ∈ {50, 500}: maximum oversubscription, tracked
connections, and packet rate for table-based HRW (full CT / JET), AnchorHash
(full CT / JET), and MaglevHash (full CT), with an unbounded CT and a 10 %
horizon.  Expected shapes:

- tracked(JET) ≈ 10 % of tracked(full CT) = 10 % of the flow count,
  insensitive to n and to the hash family;
- oversubscription identical between JET and full CT per family; better
  for AnchorHash/Maglev than table-HRW; worse at n=500 than n=50;
- rate: Python measures interpreter costs, not cache residency, so only
  the JET-vs-full *tracking* effects carry over (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.report import banner, format_table, save_json
from repro.experiments.scales import repeats, scale_name, trace_scale
from repro.experiments.trace_eval import TraceEvalCell, cells_to_payload, evaluate_trace
from repro.traces.synthetic_dc import ny18_like, uni1_like

PAPER_BACKEND_SIZES = (50, 500)


def run_table(
    which: str,
    scale: str = None,
    backend_sizes: Sequence[int] = PAPER_BACKEND_SIZES,
    repetitions: int = None,
    seed: int = 0,
) -> Dict[int, List[TraceEvalCell]]:
    """Run Table 1 (``which="uni1"``) or Table 2 (``which="ny18"``)."""
    active = scale_name(scale)
    if repetitions is None:
        repetitions = repeats(active)
    factory = {"uni1": uni1_like, "ny18": ny18_like}[which]
    trace = factory(scale=trace_scale(active), seed=seed)
    return {
        n: evaluate_trace(trace, n, repetitions=repetitions)
        for n in backend_sizes
    }, trace


def _print(which: str, title: str, scale: str = None):
    active = scale_name(scale)
    results, trace = run_table(which, scale=active)
    print(banner(f"{title} [scale={active}]"))
    print(trace.describe())
    headers = ["n", "hash", "mode", "max oversub", "tracked", "rate [Mpps]"]
    rows = [cell.row() for n in sorted(results) for cell in results[n]]
    print(format_table(headers, rows))
    save_json(
        f"table_{which}",
        {
            "scale": active,
            "trace": trace.describe(),
            "cells": {str(n): cells_to_payload(cells) for n, cells in results.items()},
        },
    )
    return results


def main_table1(scale: str = None):
    """Table 1 -- UNI1-like trace."""
    return _print("uni1", "Table 1 -- UNI1-like trace evaluation", scale)


def main_table2(scale: str = None):
    """Table 2 -- NY18-like trace."""
    return _print("ny18", "Table 2 -- NY18-like trace evaluation", scale)


if __name__ == "__main__":
    main_table1()
    main_table2()
