"""Closed-loop control plane: does JET's horizon contract survive when
``H`` is *produced* by an autoscaler instead of handed down by fiat?

The paper treats the horizon as given ("servers about to be added").
This experiment closes the loop: a seeded autoscaler watches the live
load signal, announces its pending launches into ``H`` with a lead time,
and a health prober evicts/readmits backends on probe evidence.  Four
measurements, all bit-reproducible for a fixed ``--seed``:

1. **Flash crowd, perfect forecast** -- the acceptance run.  Tracked
   fraction must stay within tolerance of the *flow-weighted* mean
   ``|H|/(|W|+|H|)`` (Theorems 4.2/4.3 with a time-varying horizon), and
   PCC breakage must not exceed an exogenous-H baseline running the same
   workload with the same membership-event rate through the paper's own
   §5 churn model.
2. **Forecast-quality sweep** -- degrade announcement recall (launches
   arrive unannounced -> surprise additions) and precision (phantom
   announcements squat horizon slots), and quantify the PCC breakage
   each costs.  The scorecard's precision/recall must match the
   configured forecast quality.
3. **Diurnal load** -- a full scale-out *and* scale-in cycle: the loop
   must retire what it launched and keep |H| honest on the way down.
4. **Gossip convergence** -- an LB pool replicating CT entries by
   fanout-k gossip: partition a member (staleness grows), heal it
   (anti-entropy drains the missed suffix to zero), crash one (its
   unreplicated deltas land in ``stats.lost``, never silently).
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional

from repro.experiments.report import banner, format_table, save_json
from repro.experiments.scales import scale_name
from repro.sim.distributions import Constant, Exponential
from repro.sim.scenario import SimulationConfig, run_simulation
from repro.sim.workload import RateProfile

#: Control-loop presets.  Flows are short (exponential, a few seconds) so
#: concurrency answers the rate profile fast enough for a forecaster to
#: see the ramp; the paper's 20 s Hadoop flows would smear a flash crowd
#: over most of a smoke-scale run.
CONTROL_SCALES: Dict[str, dict] = {
    # horizon_size doubles as the announcement cap, so it must cover the
    # autoscaler's outstanding-launch budget (autoscale_max=8) or genuine
    # announcements get revoked by overflow and realize as surprises.
    "smoke": dict(
        duration_s=60.0, connection_rate=300.0, n_servers=20, horizon_size=8,
        flow_mean_s=3.0,
    ),
    "default": dict(
        duration_s=120.0, connection_rate=900.0, n_servers=60, horizon_size=8,
        flow_mean_s=4.0,
    ),
    "paper": dict(
        duration_s=600.0, connection_rate=10_000.0, n_servers=234, horizon_size=24,
        flow_mean_s=5.0,
    ),
}

#: Tracked-fraction acceptance tolerance for the perfect-forecast run.
TRACKED_TOLERANCE = 0.15
#: (recall, precision) grid for the forecast-quality sweep.
FORECAST_GRID = ((1.0, 1.0), (0.7, 1.0), (0.3, 1.0), (0.0, 1.0), (1.0, 0.5))


def control_base(scale: Optional[str] = None, seed: int = 0) -> SimulationConfig:
    params = dict(CONTROL_SCALES[scale_name(scale)])
    flow_mean = params.pop("flow_mean_s")
    duration = params["duration_s"]
    return SimulationConfig(
        **params,
        update_rate_per_min=0.0,
        mode="jet",
        seed=seed,
        duration_dist=Exponential(flow_mean),
        size_dist=Constant(8),
        control=True,
        control_interval_s=0.5,
        # An addition only breaks flows older than its announcement, so
        # lead time is the closed loop's protection window: 3x the mean
        # flow age leaves ~e^-3 of re-steered flows unprotected -- the
        # same coverage an exogenous FIFO gets from announcing a server
        # for its entire downtime.
        scale_lead_time_s=3.0 * flow_mean,
        rate_profile=RateProfile.flash_crowd(
            start=duration / 4, ramp_s=duration / 8,
            magnitude=2.0, hold_s=duration / 4,
        ),
    )


def _control_row(result) -> Dict:
    return {
        "flows_started": result.flows_started,
        "pcc_violations": result.pcc_violations,
        "inevitably_broken": result.inevitably_broken,
        "blackholed_flows": result.blackholed_flows,
        "scale_outs": result.scale_outs,
        "scale_ins": result.scale_ins,
        "surprise_additions": result.surprise_additions,
        "phantom_announcements": result.phantom_announcements,
        "probe_evictions": result.probe_evictions,
        "probe_false_evictions": result.probe_false_evictions,
        "horizon_precision": result.horizon_precision,
        "horizon_recall": result.horizon_recall,
        "observed_tracked_fraction": result.observed_tracked_fraction,
        "mean_expected_tracked_fraction": result.mean_expected_tracked_fraction,
        "peak_tracked": result.peak_tracked,
    }


def run_flash_crowd(
    scale: Optional[str] = None, seed: int = 0, registry=None
) -> Dict:
    """Perfect forecast under a flash crowd, vs an exogenous-H baseline.

    The baseline runs the identical workload with ``control=False`` and
    the §5 update churn dialed to the closed-loop run's *realized*
    membership-event rate, so both runs disturb the backend equally often
    -- the comparison isolates *how* H is produced, not how much churn
    there is."""
    cfg = control_base(scale, seed)
    closed = run_simulation(cfg.with_(registry=registry))
    events = closed.scale_outs + closed.scale_ins + closed.removals
    baseline_rate = 60.0 * events / cfg.duration_s
    baseline = run_simulation(
        cfg.with_(control=False, update_rate_per_min=baseline_rate, registry=None)
    )
    expected = closed.mean_expected_tracked_fraction or 0.0
    observed = closed.observed_tracked_fraction
    error = abs(observed - expected) / expected if expected else 0.0
    return {
        "closed_loop": _control_row(closed),
        "baseline_update_rate_per_min": baseline_rate,
        "baseline_pcc_violations": baseline.pcc_violations,
        "baseline_observed_tracked_fraction": baseline.observed_tracked_fraction,
        "tracked_fraction_error": error,
        "tracked_fraction_tolerance": TRACKED_TOLERANCE,
        "tracked_fraction_ok": error <= TRACKED_TOLERANCE,
        "breakage_ok": closed.pcc_violations <= baseline.pcc_violations,
    }


def run_forecast_sweep(scale: Optional[str] = None, seed: int = 0) -> List[Dict]:
    """PCC breakage as forecast quality degrades (recall, then precision)."""
    cfg = control_base(scale, seed)
    rows: List[Dict] = []
    for recall, precision in FORECAST_GRID:
        result = run_simulation(
            cfg.with_(forecast_recall=recall, forecast_precision=precision)
        )
        row = _control_row(result)
        row["forecast_recall"] = recall
        row["forecast_precision"] = precision
        rows.append(row)
    return rows


def run_diurnal(scale: Optional[str] = None, seed: int = 0) -> Dict:
    """One diurnal cycle: the loop must scale out at the peak and retire
    its own launches in the trough (|H| stays the pending-change set)."""
    cfg = control_base(scale, seed)
    cfg = cfg.with_(
        rate_profile=RateProfile.diurnal(period_s=cfg.duration_s, amplitude=0.6),
    )
    result = run_simulation(cfg)
    row = _control_row(result)
    row["cycle_closed"] = result.scale_ins > 0
    return row


def run_gossip_convergence(
    scale: Optional[str] = None, seed: int = 0, registry=None
) -> Dict:
    """Partition -> heal -> crash on a gossip-synced LB pool."""
    from repro.control import GossipSync
    from repro.core.factories import make_jet
    from repro.core.lb_pool import LBPool

    params = CONTROL_SCALES[scale_name(scale)]
    n = params["n_servers"]
    lookups = 50 * n

    def factory():
        return make_jet(
            "ring", list(range(n)), [f"h{i}" for i in range(params["horizon_size"])]
        )

    channel = GossipSync(fanout=2, round_lookups=16, loss_probability=0.1, seed=seed)
    pool = LBPool(factory, size=4, sync=channel, registry=registry)
    if registry is not None:
        from repro.obs.collectors import instrument_balancer

        instrument_balancer(registry, pool)

    def traffic(start: int, count: int) -> None:
        for i in range(start, start + count):
            pool.get_destination((i * 0x9E3779B97F4A7C15 + seed) & (2**64 - 1))

    traffic(0, lookups)
    channel.drain()
    pool.partition_lb(1)
    traffic(lookups, lookups)
    channel.drain()
    staleness_partitioned = channel.staleness()
    pool.heal_lb(1)
    heal_rounds = channel.drain()
    staleness_healed = channel.staleness()
    # Crash a member that is partitioned when it dies: the CT inserts its
    # ECMP slice kept making could never disseminate, so they are genuine
    # state loss -- and must land in ``stats.lost``, never vanish silently.
    pool.partition_lb(2)
    traffic(2 * lookups, lookups)
    lost_before_crash = channel.stats.lost
    pool.crash_lb(2)
    channel.drain()
    return {
        "members": pool.size,
        "deliveries": channel.stats.delivered,
        "lost_pushes": channel.stats.lost_pushes,
        "mean_lag_rounds": channel.stats.mean_lag_rounds,
        "staleness_during_partition": staleness_partitioned,
        "rounds_to_heal": heal_rounds,
        "staleness_after_heal": staleness_healed,
        "anti_entropy_repairs": channel.stats.anti_entropy,
        "crash_lost_accounted": channel.stats.lost - lost_before_crash,
        "final_staleness": channel.staleness(),
        "converged": channel.converged,
    }


def build_payload(
    scale: Optional[str] = None, seed: int = 0, registry=None
) -> Dict:
    resolved = scale_name(scale)
    return {
        "experiment": "control_loop",
        "scale": resolved,
        "seed": seed,
        "flash_crowd": run_flash_crowd(resolved, seed=seed, registry=registry),
        "forecast_sweep": run_forecast_sweep(resolved, seed=seed),
        "diurnal": run_diurnal(resolved, seed=seed),
        "gossip": run_gossip_convergence(resolved, seed=seed, registry=registry),
    }


def main(scale: Optional[str] = None, seed: int = 0, metrics_out: Optional[str] = None):
    # Always instrument (the artifact must not depend on --metrics-out).
    from repro.obs import JsonlExporter, Registry

    registry = Registry()
    exporter = None
    if metrics_out:
        exporter = JsonlExporter(metrics_out)
        registry.attach_exporter(exporter)
    payload = build_payload(scale, seed=seed, registry=registry)
    print(banner(f"Closed-loop control plane [scale={payload['scale']} seed={seed}]"))

    flash = payload["flash_crowd"]
    closed = flash["closed_loop"]
    print(
        f"flash crowd (perfect forecast): "
        f"observed tracked {closed['observed_tracked_fraction']:.4f} vs "
        f"flow-weighted |H|/(|W|+|H|) {closed['mean_expected_tracked_fraction']:.4f} "
        f"(error {flash['tracked_fraction_error']:.3f}, "
        f"tolerance {flash['tracked_fraction_tolerance']}) "
        f"{'OK' if flash['tracked_fraction_ok'] else 'FAIL'}"
    )
    print(
        f"PCC breakage: closed loop {closed['pcc_violations']} vs exogenous-H "
        f"baseline {flash['baseline_pcc_violations']} at matched churn "
        f"({flash['baseline_update_rate_per_min']:.1f} events/min) "
        f"{'OK' if flash['breakage_ok'] else 'FAIL'}"
    )

    print("\nforecast-quality sweep:")
    print(
        format_table(
            [
                "recall", "precision", "violations", "blackholed", "surprise",
                "phantoms", "scorecard P", "scorecard R",
            ],
            [
                [
                    r["forecast_recall"], r["forecast_precision"],
                    r["pcc_violations"], r["blackholed_flows"],
                    r["surprise_additions"], r["phantom_announcements"],
                    "n/a" if r["horizon_precision"] is None
                    else f"{r['horizon_precision']:.2f}",
                    "n/a" if r["horizon_recall"] is None
                    else f"{r['horizon_recall']:.2f}",
                ]
                for r in payload["forecast_sweep"]
            ],
        )
    )

    diurnal = payload["diurnal"]
    print(
        f"\ndiurnal cycle: scale-outs {diurnal['scale_outs']}, "
        f"scale-ins {diurnal['scale_ins']} "
        f"({'cycle closed' if diurnal['cycle_closed'] else 'no scale-in fired'})"
    )

    gossip = payload["gossip"]
    print(
        f"gossip: staleness {gossip['staleness_during_partition']} during "
        f"partition -> {gossip['staleness_after_heal']} after heal "
        f"({gossip['rounds_to_heal']} rounds, "
        f"{gossip['anti_entropy_repairs']} anti-entropy repairs); "
        f"crash accounted {gossip['crash_lost_accounted']} lost deltas; "
        f"mean lag {gossip['mean_lag_rounds']:.2f} rounds"
    )

    from repro.obs import (
        HorizonFidelityMonitor,
        MonitorSuite,
        default_monitors,
        evaluate_and_export,
        prometheus_sibling,
        write_prometheus,
    )

    # The instrumented run had a perfect forecast, so gate on it: both
    # scores must sit at 1.0 (tolerance via floor) or the loop is broken.
    monitors = [
        m for m in default_monitors(tolerance=TRACKED_TOLERANCE)
        if not isinstance(m, HorizonFidelityMonitor)
    ]
    monitors.append(HorizonFidelityMonitor(min_precision=0.99, min_recall=0.99))
    results = evaluate_and_export(registry, monitors=monitors)
    payload["invariants"] = MonitorSuite.to_json(results)
    if exporter is not None:
        exporter.close()
        write_prometheus(registry, prometheus_sibling(metrics_out))
        print(f"\nmetrics artifact: {metrics_out}")
    print()
    print(MonitorSuite.render(results))
    save_json("control_loop", payload)
    return payload


def _cli() -> int:
    parser = argparse.ArgumentParser(description="closed-loop control-plane experiment")
    parser.add_argument("--scale", choices=["smoke", "default", "paper"], default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="JSONL metrics artifact for the instrumented runs")
    args = parser.parse_args()
    main(args.scale, seed=args.seed, metrics_out=args.metrics_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(_cli())
