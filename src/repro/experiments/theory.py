"""Empirical validation of Section 4's theoretical guarantees.

- **Theorem 4.2**: a new connection is tracked with probability
  α/(α+1), α = |H|/|W| -- measured per CH family over an α grid.
- **Theorem 4.3**: the tracked count concentrates below |K|·γ/(1+γ)
  with exponentially decaying excess probability (Hoeffding) -- measured
  as the empirical exceedance frequency vs the bound.
- **Theorem 4.4 / Property 1**: safe connections never move under any
  horizon admission order/prefix -- randomized order checks per family.
- **Proposition 4.1**: JET and full CT dispatch identically (same CH,
  same events, same packets), hence balance identically.
- **Section 2.4**: the mod-N strawman makes an expected ≈ 1 - 1/N of
  connections unsafe per change, motivating consistent hashing.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.ch import JET_FAMILIES, ModuloHash
from repro.ch.properties import check_prefix_safety, check_property1, sample_keys
from repro.core.full_ct import FullCTLoadBalancer
from repro.core.jet import JETLoadBalancer
from repro.experiments.report import banner, format_table, save_json


def _family_factory(family: str, working: List, horizon: List) -> Callable:
    cls = JET_FAMILIES[family]
    kwargs = {}
    if family == "anchor":
        kwargs["capacity"] = 2 * (len(working) + len(horizon)) + 8
    elif family == "table":
        kwargs["rows"] = 8209
    elif family == "ring":
        kwargs["virtual_nodes"] = 50
    return lambda: cls(working=working, horizon=horizon, **kwargs)


# ----------------------------------------------------------- Theorem 4.2
def tracking_probability(
    families: Sequence[str] = ("hrw", "ring", "table", "anchor"),
    alphas: Sequence[float] = (0.05, 0.1, 0.2, 0.5),
    n_working: int = 40,
    n_keys: int = 20_000,
    seed: int = 17,
) -> List[Tuple[str, float, float, float]]:
    """Rows of (family, alpha, measured tracking prob, predicted)."""
    keys = sample_keys(n_keys, seed=seed)
    rows = []
    for family in families:
        for alpha in alphas:
            h = max(1, round(alpha * n_working))
            working = [f"w{i}" for i in range(n_working)]
            horizon = [f"h{i}" for i in range(h)]
            ch = _family_factory(family, working, horizon)()
            tracked = sum(ch.lookup_with_safety(k)[1] for k in keys)
            measured = tracked / n_keys
            predicted = h / (n_working + h)
            rows.append((family, h / n_working, measured, predicted))
    return rows


# ----------------------------------------------------------- Theorem 4.3
@dataclass
class ConcentrationResult:
    keys_per_trial: int
    gamma: float
    bound_mean: float
    trials: int
    exceed_by_t: List[Tuple[int, float, float]]  # (t, empirical, hoeffding)


def concentration(
    family: str = "anchor",
    n_working: int = 40,
    n_horizon: int = 4,
    keys_per_trial: int = 2_000,
    trials: int = 200,
    seed: int = 23,
) -> ConcentrationResult:
    """Empirical P(tracked > |K|γ/(1+γ) + t) vs exp(-2t²/|K|)."""
    working = [f"w{i}" for i in range(n_working)]
    horizon = [f"h{i}" for i in range(n_horizon)]
    ch = _family_factory(family, working, horizon)()
    gamma = n_horizon / n_working
    mean_bound = keys_per_trial * gamma / (1 + gamma)
    counts = []
    for trial in range(trials):
        keys = sample_keys(keys_per_trial, seed=seed + 1000 * trial + 1)
        counts.append(sum(ch.lookup_with_safety(k)[1] for k in keys))
    thresholds = [
        int(0.5 * math.sqrt(keys_per_trial)),
        int(1.0 * math.sqrt(keys_per_trial)),
        int(2.0 * math.sqrt(keys_per_trial)),
    ]
    exceed = []
    for t in thresholds:
        empirical = sum(c > mean_bound + t for c in counts) / trials
        hoeffding = math.exp(-2 * t * t / keys_per_trial)
        exceed.append((t, empirical, hoeffding))
    return ConcentrationResult(keys_per_trial, gamma, mean_bound, trials, exceed)


# --------------------------------------------- Theorem 4.4 / Property 1
def order_invariance(
    families: Sequence[str] = ("hrw", "ring", "table", "anchor"),
    n_working: int = 24,
    n_horizon: int = 5,
    n_keys: int = 3_000,
    seed: int = 31,
) -> Dict[str, Tuple[bool, bool]]:
    """(Property 1 holds, prefix safety holds) per family."""
    keys = sample_keys(n_keys, seed=seed)
    working = [f"w{i}" for i in range(n_working)]
    horizon = [f"h{i}" for i in range(n_horizon)]
    outcome = {}
    for family in families:
        factory = _family_factory(family, working, horizon)
        outcome[family] = (
            check_property1(factory, keys, rng=random.Random(seed)),
            check_prefix_safety(factory, keys, rng=random.Random(seed + 1)),
        )
    return outcome


# ------------------------------------------------------ Proposition 4.1
def paired_dispatching(
    family: str = "anchor",
    n_working: int = 30,
    n_horizon: int = 3,
    n_keys: int = 4_000,
    n_events: int = 20,
    seed: int = 41,
) -> Tuple[int, int]:
    """Drive a JET LB and a full-CT LB through identical packets and
    backend events; return (compared packets, disagreements).  Theorem
    guarantee: zero disagreements (no connections break here because every
    key is re-dispatched each round and both LBs track/CH identically)."""
    working = [f"w{i}" for i in range(n_working)]
    horizon = [f"h{i}" for i in range(n_horizon)]
    jet = JETLoadBalancer(_family_factory(family, working, horizon)())
    full = FullCTLoadBalancer(_family_factory(family, working, horizon)())
    keys = sample_keys(n_keys, seed=seed)
    rng = random.Random(seed)
    broken: set = set()
    truth: Dict[int, str] = {}
    compared = disagreements = 0
    for round_index in range(n_events):
        for k in keys:
            a = jet.get_destination(k)
            b = full.get_destination(k)
            compared += 1
            if k in broken:
                continue
            if a != b:
                disagreements += 1
            first = truth.setdefault(k, a)
            if a != first:
                broken.add(k)
        # One backend change per round, mirrored to both LBs.
        if rng.random() < 0.5 and len(jet.ch.horizon) > 0:
            target = sorted(jet.ch.horizon, key=str)[0]
            jet.add_working_server(target)
            full.add_working_server(target)
        elif len(jet.working) > 2:
            target = sorted(jet.working, key=str)[rng.randrange(len(jet.working))]
            jet.remove_working_server(target)
            full.remove_working_server(target)
            broken.update(k for k, d in truth.items() if d == target)
    return compared, disagreements


# ----------------------------------------------------------- Section 2.4
def modn_unsafe_fraction(
    n_servers: int = 50, n_keys: int = 10_000, seed: int = 53
) -> Tuple[float, float]:
    """(measured unsafe fraction on one addition, predicted 1 - 1/(N+1))."""
    keys = sample_keys(n_keys, seed=seed)
    working = [f"w{i}" for i in range(n_servers)]
    ch = ModuloHash(working, horizon=["h0"])
    before = {k: ch.lookup(k) for k in keys}
    ch.add_working("h0")
    moved = sum(ch.lookup(k) != before[k] for k in keys)
    return moved / n_keys, 1 - 1 / (n_servers + 1)


def main():
    print(banner("Theorem 4.2 -- tracking probability = alpha/(alpha+1)"))
    rows = tracking_probability()
    print(
        format_table(
            ["family", "alpha", "measured", "predicted"],
            [[f, f"{a:.3f}", f"{m:.4f}", f"{p:.4f}"] for f, a, m, p in rows],
        )
    )

    print(banner("Theorem 4.3 -- concentration of the tracked count"))
    conc = concentration()
    print(
        f"gamma={conc.gamma:.3f}, bound mean={conc.bound_mean:.1f} over "
        f"{conc.keys_per_trial} keys, {conc.trials} trials"
    )
    print(
        format_table(
            ["t", "empirical P(X > mean+t)", "Hoeffding bound"],
            [[t, f"{e:.4f}", f"{h:.4f}"] for t, e, h in conc.exceed_by_t],
        )
    )

    print(banner("Theorem 4.4 / Property 1 -- order invariance"))
    invariance = order_invariance()
    print(
        format_table(
            ["family", "property 1", "prefix safety"],
            [[f, str(p1), str(pref)] for f, (p1, pref) in invariance.items()],
        )
    )

    print(banner("Proposition 4.1 -- identical dispatching JET vs full CT"))
    compared, disagreements = paired_dispatching()
    print(f"compared packets: {compared}, disagreements: {disagreements}")

    print(banner("Section 2.4 -- mod-N strawman unsafe fraction"))
    measured, predicted = modn_unsafe_fraction()
    print(f"measured: {measured:.4f}  predicted ~1-1/N: {predicted:.4f}")

    save_json(
        "theory",
        {
            "tracking_probability": rows,
            "concentration": {
                "gamma": conc.gamma,
                "bound_mean": conc.bound_mean,
                "exceedance": conc.exceed_by_t,
            },
            "order_invariance": {k: list(v) for k, v in invariance.items()},
            "prop41": {"compared": compared, "disagreements": disagreements},
            "modn": {"measured": measured, "predicted": predicted},
        },
    )


if __name__ == "__main__":
    main()
