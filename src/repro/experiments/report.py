"""Experiment output: ASCII tables and JSON result archives.

Every experiment module prints the same rows/series the paper reports and
(best-effort) archives the raw numbers under ``results/`` so
EXPERIMENTS.md can cite exact measured values.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, List, Sequence

RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([_cell(v) for v in row])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(rendered):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def save_json(name: str, payload: Any) -> Path:
    """Archive a result payload; returns the path (best-effort on failure)."""
    path = RESULTS_DIR / f"{name}.json"
    try:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
    except OSError:
        pass
    return path


def banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"{bar}\n{title}\n{bar}"
