"""Resilience sweep: PCC under adversarial churn (the :mod:`repro.faults`
chaos model).

Two measurements, both bit-reproducible for a fixed ``--seed``:

1. **Mixed-fault sweep** -- JET vs full CT vs stateless under an
   escalating :func:`~repro.faults.events.chaos_mix` (crashes, flaps,
   correlated rack failures, unannounced additions).  The paper's claim
   under test: JET's violations track full CT's while its table stays
   ~``|H|/(|W|+|H|)`` of full CT's (Theorem 4.2 should survive churn it
   was never advertised for).

2. **§2.3 contract check** -- an *unannounced-addition-only* schedule.
   The §2.3 operational contract says PCC is guaranteed only for
   additions announced through the horizon; for a server that bypasses
   it, consistent hashing re-steers each active connection with
   probability ``1/(|W|+1)``, and the untracked (``1 - |H|/(|W|+|H|)``)
   share of those breaks.  The engine records that prediction at each
   force-add; here we compare it with the measured violations.  Measured
   counts run *below* the prediction by an observation factor: a broken
   connection is only detected when it sends another packet before
   ending (right-censoring), so the expected measured/predicted ratio
   sits in a workload-dependent band (~0.3-0.8 for the Hadoop-style
   workload) rather than at 1.0.  Full CT stays at ~0 (it tracks
   everything); stateless is the upper envelope.

Every scenario uses the Table-HRW family: this repo's AnchorHash hands a
force-added server the top *horizon-region* bucket, whose keys JET has
already tracked -- an implementation quirk that makes anchor immune to
unannounced additions and therefore useless for measuring the contract
violation.  Table-HRW re-steers ~``1/(|W|+1)`` of the key space like any
plain consistent hash, which is the behaviour §2.3 reasons about.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional

from repro.ch import rows_for
from repro.experiments.report import banner, format_table, save_json
from repro.experiments.scales import base_config, scale_name
from repro.faults import FaultSchedule, chaos_mix
from repro.sim.scenario import run_simulation

MODES = ("jet", "full", "stateless")
FAULT_RATES_PER_MIN = (0.0, 5.0, 10.0, 20.0, 40.0)
#: Tracked-fraction tolerance for the *chaos* metrics artifact.  Theorem
#: 4.2's |H|/(|W|+|H|) expectation assumes a static backend; under the
#: heavy mixed-fault schedule more arrivals are unsafe (crashed servers
#: shrink W, re-admissions churn the horizon), so the observed fraction
#: legitimately drifts above the static expectation.  The strict 10%
#: acceptance bar applies to the churn-polite default simulation, not
#: this adversarial run.
CHAOS_TRACKED_TOLERANCE = 0.35
#: Unannounced additions per minute for the §2.3 contract scenario.
CONTRACT_ADD_RATE = 24.0


def _chaos_base(scale: Optional[str], seed: int):
    cfg = base_config(scale).with_(seed=seed, update_rate_per_min=0.0)
    return cfg.with_(ch_family="table", ch_kwargs={"rows": rows_for(cfg.n_servers)})


def _result_row(mode: str, fault_rate: float, result) -> Dict:
    return {
        "mode": mode,
        "fault_rate_per_min": fault_rate,
        "flows_started": result.flows_started,
        "pcc_violations": result.pcc_violations,
        "violations_under_fault": result.violations_under_fault,
        "inevitably_broken": result.inevitably_broken,
        "fault_events": result.fault_events,
        "crashes": result.crashes,
        "flaps": result.flaps,
        "correlated_failures": result.correlated_failures,
        "unannounced_additions": result.unannounced_additions,
        "probation_readmissions": result.probation_readmissions,
        "surprise_additions": result.surprise_additions,
        # Horizon-fidelity attribution: under chaos, crashed servers
        # overflow the bounded horizon and lose their announcement, so
        # their recoveries land as surprises -- recall < 1 quantifies
        # exactly how much of the exposure was late-announced rather
        # than contract-honouring churn.
        "horizon_precision": result.horizon_precision,
        "horizon_recall": result.horizon_recall,
        "peak_tracked": result.peak_tracked,
        "ct_peak_size": result.ct_peak_size,
    }


def run_resilience_sweep(
    scale: Optional[str] = None,
    seed: int = 0,
    fault_rates=FAULT_RATES_PER_MIN,
) -> List[Dict]:
    """JET / full / stateless under an escalating mixed-fault chaos load."""
    cfg = _chaos_base(scale, seed)
    rows: List[Dict] = []
    for fault_rate in fault_rates:
        schedule = chaos_mix(cfg.duration_s, fault_rate, seed=seed)
        chaos_cfg = cfg.with_(fault_schedule=schedule)
        for mode in MODES:
            result = run_simulation(chaos_cfg.with_(mode=mode))
            rows.append(_result_row(mode, fault_rate, result))
    return rows


def run_contract_check(scale: Optional[str] = None, seed: int = 0) -> Dict:
    """Unannounced-addition-only chaos vs the §2.3 breakage prediction."""
    cfg = _chaos_base(scale, seed)
    # Double the window so most additions land at steady-state occupancy
    # (predictions during ramp-up are tiny and noisy).
    cfg = cfg.with_(duration_s=2 * cfg.duration_s)
    cfg = cfg.with_(
        fault_schedule=FaultSchedule.generate(
            cfg.duration_s, seed=seed, unannounced_rate_per_min=CONTRACT_ADD_RATE
        ),
    )
    h_fraction = cfg.horizon_size / (cfg.n_servers + cfg.horizon_size)
    outcome: Dict = {
        "unannounced_rate_per_min": CONTRACT_ADD_RATE,
        "horizon_fraction": h_fraction,
        "modes": {},
    }
    for mode in MODES:
        result = run_simulation(cfg.with_(mode=mode))
        raw = result.predicted_unannounced_breakage
        adjusted = raw * (1.0 - h_fraction)  # tracked share is CT-protected
        outcome["modes"][mode] = {
            "unannounced_additions": result.unannounced_additions,
            # Every chaos add bypasses the horizon, so recall directly
            # attributes the contract violation: proper/(proper+surprise).
            "horizon_recall": result.horizon_recall,
            "pcc_violations": result.pcc_violations,
            "violations_under_fault": result.violations_under_fault,
            "predicted_breakage_raw": raw,
            "predicted_breakage_adjusted": adjusted,
            "measured_over_predicted": (
                result.pcc_violations / adjusted if adjusted else 0.0
            ),
        }
    return outcome


def run_tracking_economy(
    scale: Optional[str] = None, seed: int = 0, registry=None
) -> Dict:
    """CT occupancy, JET vs full, under heavy chaos: Theorem 4.2's
    |H|/(|W|+|H|) bound should survive adversarial churn.

    ``registry`` (a :class:`repro.obs.Registry`) instruments the JET run;
    the invariant monitors then check the same claim from telemetry.
    """
    cfg = _chaos_base(scale, seed)
    schedule = chaos_mix(cfg.duration_s, fault_rates_heavy(), seed=seed)
    chaos_cfg = cfg.with_(fault_schedule=schedule)
    jet = run_simulation(chaos_cfg.with_(mode="jet", registry=registry))
    full = run_simulation(chaos_cfg.with_(mode="full"))
    expected = cfg.horizon_size / (cfg.n_servers + cfg.horizon_size)

    def steady_mean(result) -> float:
        # Skip the ramp-up: tracked counts only settle once flows do.
        series = result.tracked_series[len(result.tracked_series) // 3:]
        return sum(series) / len(series) if series else 0.0

    jet_mean, full_mean = steady_mean(jet), steady_mean(full)
    return {
        "fault_rate_per_min": fault_rates_heavy(),
        "jet_peak_tracked": jet.peak_tracked,
        "full_peak_tracked": full.peak_tracked,
        "jet_ct_peak_size": jet.ct_peak_size,
        "full_ct_peak_size": full.ct_peak_size,
        "jet_mean_tracked": jet_mean,
        "full_mean_tracked": full_mean,
        "tracked_ratio": jet_mean / full_mean if full_mean else 0.0,
        "expected_fraction": expected,
    }


def fault_rates_heavy() -> float:
    return FAULT_RATES_PER_MIN[-1]


def build_payload(
    scale: Optional[str] = None, seed: int = 0, registry=None
) -> Dict:
    """Everything the resilience figure needs, as a JSON-stable payload
    (no wall-clock fields, so identical seeds emit identical bytes)."""
    resolved = scale_name(scale)
    return {
        "experiment": "resilience",
        "scale": resolved,
        "seed": seed,
        "fault_rates_per_min": list(FAULT_RATES_PER_MIN),
        "sweep": run_resilience_sweep(resolved, seed=seed),
        "contract_check": run_contract_check(resolved, seed=seed),
        "tracking_economy": run_tracking_economy(resolved, seed=seed, registry=registry),
    }


def main(scale: Optional[str] = None, seed: int = 0, metrics_out: Optional[str] = None):
    # Always instrument: the archived payload must not depend on whether
    # --metrics-out was passed (same seed -> identical artifact bytes).
    from repro.obs import JsonlExporter, Registry

    registry = Registry()
    exporter = None
    if metrics_out:
        exporter = JsonlExporter(metrics_out)
        registry.attach_exporter(exporter)
    payload = build_payload(scale, seed=seed, registry=registry)
    print(banner(f"Resilience under chaos [scale={payload['scale']} seed={seed}]"))
    print(
        format_table(
            [
                "mode", "faults/min", "violations", "under fault", "inevitable",
                "probation", "peak tracked", "ct peak",
            ],
            [
                [
                    r["mode"], r["fault_rate_per_min"], r["pcc_violations"],
                    r["violations_under_fault"], r["inevitably_broken"],
                    r["probation_readmissions"], r["peak_tracked"],
                    r["ct_peak_size"],
                ]
                for r in payload["sweep"]
            ],
        )
    )
    economy = payload["tracking_economy"]
    print(
        f"\ntracking under heavy chaos: JET mean {economy['jet_mean_tracked']:.0f} "
        f"vs full {economy['full_mean_tracked']:.0f} "
        f"(ratio {economy['tracked_ratio']:.3f}, "
        f"|H|/(|W|+|H|) = {economy['expected_fraction']:.3f})"
    )
    contract = payload["contract_check"]
    print("\n§2.3 contract check (unannounced additions only):")
    print(
        format_table(
            ["mode", "adds", "violations", "predicted (adj.)", "measured/predicted"],
            [
                [
                    mode, m["unannounced_additions"], m["pcc_violations"],
                    m["predicted_breakage_adjusted"], m["measured_over_predicted"],
                ]
                for mode, m in contract["modes"].items()
            ],
        )
    )
    from repro.obs import (
        MonitorSuite,
        evaluate_and_export,
        prometheus_sibling,
        write_prometheus,
    )

    results = evaluate_and_export(registry, tolerance=CHAOS_TRACKED_TOLERANCE)
    payload["invariants"] = MonitorSuite.to_json(results)
    if exporter is not None:
        exporter.close()
        write_prometheus(registry, prometheus_sibling(metrics_out))
        print(f"\nmetrics artifact: {metrics_out}")
    print()
    print(MonitorSuite.render(results))
    save_json("resilience", payload)
    return payload


def _cli() -> int:
    parser = argparse.ArgumentParser(description="resilience-under-chaos sweep")
    parser.add_argument("--scale", choices=["smoke", "default", "paper"], default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="JSONL metrics artifact for the instrumented "
                             "tracking-economy JET run")
    args = parser.parse_args()
    main(args.scale, seed=args.seed, metrics_out=args.metrics_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(_cli())
