"""Scenario matrix: every library scenario under every tracking family.

Sweeps the declarative scenario library (:mod:`repro.scenarios`) across
LB modes -- JET, full CT, and the stateless Concury mapping, plus the
scenario's own native mode when it differs (``jet-p2c`` for the
load-aware scenario) -- and judges each run against the scenario's
expected envelope.  The point of the matrix is the contrast: the same
production situation, the same seed, three tracking disciplines; the
envelope encodes what JET's theory promises, and the other modes show
what that promise costs or buys (e.g. Concury breaching the balance-CV
bound that occupancy-weighted dispatch meets).

Gate semantics: only the *native* mode's envelope verdict gates the
experiment (and CI) -- non-native modes are comparison rows, recorded
but never failing the run.  A mode a scenario cannot express (Concury
over a weighted inner family) records as skipped with the reason.

The payload archives to ``results/scenarios.json`` and merges into
``BENCH_dataplane.json`` under the ``"scenarios"`` key: per-scenario
wall time and envelope margins (tracked-fraction headroom above all),
which ``throughput.check_against`` gates against the committed bench.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List, Optional

from repro.experiments.report import banner, format_table, save_json

#: The comparison modes every scenario runs under.
MATRIX_MODES = ("jet", "full", "concury")

#: Duration multiplier per scale (the library ships smoke-sized specs).
SCALES = {"smoke": 1.0, "default": 1.0, "paper": 4.0}


def _mode_row(report, wall: float) -> Dict:
    result = report.result
    return {
        "ok": report.ok,
        "violations": [m.name for m in report.monitors if m.violated],
        "margins": report.margins,
        "flows": result.flows_started,
        "pcc_violations": result.pcc_violations,
        "inevitably_broken": result.inevitably_broken,
        "peak_tracked": result.peak_tracked,
        "max_balance_cv": result.max_balance_cv,
        "observed_tracked_fraction": result.observed_tracked_fraction,
        "mean_expected_tracked_fraction": result.mean_expected_tracked_fraction,
        "wall_seconds": wall,
    }


def run_matrix(
    scale: Optional[str] = None,
    seed: Optional[int] = None,
    workers: int = 1,
    exporter=None,
) -> Dict:
    """Run the full matrix; returns the archive payload.

    ``seed`` overrides every spec's own seed when given (the default
    keeps each scenario's committed seed, so the payload is the committed
    reference run).  When ``exporter`` is given, each native-mode run's
    registry streams its final snapshot -- monitor verdicts included --
    into it, producing the JSONL artifact the CI strict gate reads.
    """
    from repro.obs.registry import Registry
    from repro.scenarios import load_all, run_scenario

    scale = scale or "smoke"
    factor = SCALES[scale]
    scenarios: Dict[str, Dict] = {}
    t_start = time.perf_counter()
    for name, spec in load_all().items():
        duration = spec.duration_s * factor if factor != 1.0 else None
        modes = list(MATRIX_MODES)
        if spec.mode not in modes:
            modes.append(spec.mode)
        rows: Dict[str, Dict] = {}
        for mode in modes:
            native = mode == spec.mode
            registry = None
            if native and exporter is not None:
                registry = Registry()
                registry.attach_exporter(exporter)
            t0 = time.perf_counter()
            try:
                report = run_scenario(
                    spec,
                    workers=workers,
                    seed=seed,
                    mode=mode,
                    duration_s=duration,
                    registry=registry,
                )
            except Exception as exc:  # a mode the scenario cannot express
                rows[mode] = {"skipped": True, "reason": f"{type(exc).__name__}: {exc}"}
                continue
            rows[mode] = _mode_row(report, time.perf_counter() - t0)
        scenarios[name] = {
            "native_mode": spec.mode,
            "seed": spec.seed if seed is None else seed,
            "modes": rows,
            "ok": rows.get(spec.mode, {}).get("ok", False),
        }
    return {
        "experiment": "scenario_matrix",
        "scale": scale,
        "workers": workers,
        "wall_seconds_total": time.perf_counter() - t_start,
        "scenarios": scenarios,
        "ok": all(entry["ok"] for entry in scenarios.values()),
    }


def bench_section(payload: Dict) -> Dict:
    """The compact slice recorded under ``"scenarios"`` in the bench JSON:
    wall time plus per-scenario native-mode envelope margins."""
    rows = {}
    for name, entry in payload["scenarios"].items():
        native = entry["modes"].get(entry["native_mode"], {})
        rows[name] = {
            "ok": entry["ok"],
            "wall_seconds": native.get("wall_seconds"),
            "margins": native.get("margins", {}),
        }
    return {
        "scale": payload["scale"],
        "wall_seconds_total": payload["wall_seconds_total"],
        "scenarios": rows,
    }


def merge_into_bench(payload: Dict, path: str) -> None:
    """Record the bench slice under ``"scenarios"`` in the bench JSON,
    preserving the file's other sections (throughput owns the top level)."""
    recorded: dict = {}
    try:
        with open(path) as fh:
            recorded = json.load(fh)
    except (OSError, ValueError):
        recorded = {}
    if not isinstance(recorded, dict):
        recorded = {}
    recorded["scenarios"] = bench_section(payload)
    with open(path, "w") as fh:
        json.dump(recorded, fh, indent=2)
        fh.write("\n")


def format_report(payload: Dict) -> str:
    lines = [banner(f"scenario matrix [scale={payload['scale']}]")]
    headers = ["scenario", "mode", "ok", "flows", "broken", "balance CV", "tracked err margin"]
    rows: List[List] = []
    for name, entry in payload["scenarios"].items():
        for mode, row in entry["modes"].items():
            tag = f"{mode}*" if mode == entry["native_mode"] else mode
            if row.get("skipped"):
                rows.append([name, tag, "skip", "-", "-", "-", "-"])
                continue
            margin = row["margins"].get("tracked_fraction")
            rows.append([
                name,
                tag,
                "ok" if row["ok"] else "VIOLATED",
                row["flows"],
                row["pcc_violations"],
                f"{row['max_balance_cv']:.3f}",
                "-" if margin is None else f"{margin:+.3f}",
            ])
    lines.append(format_table(headers, rows))
    lines.append("(* = native mode; only native-mode envelopes gate)")
    status = "all native envelopes OK" if payload["ok"] else "ENVELOPE VIOLATIONS"
    lines.append(f"total wall {payload['wall_seconds_total']:.1f}s -- {status}")
    return "\n".join(lines)


def main(argv=None) -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default=None, choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=None,
                        help="override every scenario's committed seed")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--output", default="BENCH_dataplane.json",
                        help="bench JSON to merge the 'scenarios' section into")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="JSONL metrics artifact of the native-mode runs "
                             "(one final snapshot per scenario, monitor "
                             "verdicts included; feed to 'repro obs "
                             "summarize --strict')")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero when any native-mode envelope is "
                             "violated (CI gate)")
    parser.add_argument("--check-against", default=None, metavar="PATH",
                        help="recorded bench JSON to compare the fresh "
                             "'scenarios' section against (exit nonzero on "
                             "regression)")
    args = parser.parse_args(argv)
    exporter = None
    if args.metrics_out:
        from repro.obs import JsonlExporter

        exporter = JsonlExporter(args.metrics_out)
    payload = run_matrix(
        scale=args.scale, seed=args.seed, workers=args.workers, exporter=exporter
    )
    if exporter is not None:
        exporter.close()
        print(f"metrics artifact: {args.metrics_out}")
    print(format_report(payload))
    save_json("scenarios", payload)
    merge_into_bench(payload, args.output)
    print(f"archived to results/scenarios.json; "
          f"recorded under 'scenarios' in {args.output}")
    if args.check_against:
        import sys

        from repro.experiments.throughput import check_against

        with open(args.check_against) as fh:
            recorded = json.load(fh)
        failures = check_against(
            {"scale": payload["scale"], "scenarios": bench_section(payload)},
            recorded,
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            raise SystemExit(1)
        print(f"no regressions vs {args.check_against}")
    if args.strict and not payload["ok"]:
        raise SystemExit("REGRESSION: scenario envelope violation(s); see table")
    return payload


if __name__ == "__main__":
    main()
