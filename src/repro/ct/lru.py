"""Bounded CT table with least-recently-used eviction.

The paper's evaluation policy (Section 5.1): "we employ the effective
least-recently-used (LRU) policy in which the oldest entries in the table
are removed".  Recency is refreshed on every hit, so long-lived chatty
connections stay tracked while idle ones age out -- at the risk of evicting
a still-alive quiet connection, the source of full-CT's PCC violations in
Fig. 3 when the table is undersized.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from repro.ct.base import ConnectionTracker, Destination


class LRUCT(ConnectionTracker):
    """OrderedDict-backed LRU table with a hard capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        super().__init__()
        self.capacity = capacity
        self._table: "OrderedDict[int, Destination]" = OrderedDict()

    def get(self, key: int) -> Optional[Destination]:
        self.stats.lookups += 1
        destination = self._table.get(key)
        if destination is not None:
            self.stats.hits += 1
            self._table.move_to_end(key)
        return destination

    def put(self, key: int, destination: Destination) -> None:
        if key in self._table:
            self._table[key] = destination
            self._table.move_to_end(key)
            return
        if len(self._table) >= self.capacity:
            self._table.popitem(last=False)
            self.stats.evictions += 1
        self._table[key] = destination
        self.stats.inserts += 1
        self._note_size()

    def delete(self, key: int) -> bool:
        return self._table.pop(key, None) is not None

    def peek(self, key: int) -> Optional[Destination]:
        return self._table.get(key)

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[int]:
        return iter(list(self._table))

    def items(self) -> Iterator[Tuple[int, Destination]]:
        """Single dict scan; does not disturb LRU recency order."""
        return iter(list(self._table.items()))
