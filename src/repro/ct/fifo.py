"""Bounded CT table with first-in-first-out eviction.

Ablation alternative to LRU: cheaper bookkeeping (no per-hit recency
update, matching hardware-friendly designs) but evicts purely by insertion
age, so long-lived connections are the first to go -- the worst case for
PCC under memory pressure.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from repro.ct.base import ConnectionTracker, Destination


class FIFOCT(ConnectionTracker):
    """OrderedDict-backed FIFO table with a hard capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        super().__init__()
        self.capacity = capacity
        self._table: "OrderedDict[int, Destination]" = OrderedDict()

    def get(self, key: int) -> Optional[Destination]:
        self.stats.lookups += 1
        destination = self._table.get(key)
        if destination is not None:
            self.stats.hits += 1
        return destination

    def put(self, key: int, destination: Destination) -> None:
        if key in self._table:
            self._table[key] = destination  # refresh value, keep queue slot
            return
        if len(self._table) >= self.capacity:
            self._table.popitem(last=False)
            self.stats.evictions += 1
        self._table[key] = destination
        self.stats.inserts += 1
        self._note_size()

    def delete(self, key: int) -> bool:
        return self._table.pop(key, None) is not None

    def peek(self, key: int) -> Optional[Destination]:
        return self._table.get(key)

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[int]:
        return iter(list(self._table))

    def items(self) -> Iterator[Tuple[int, Destination]]:
        return iter(list(self._table.items()))
