"""Connection-tracking tables with pluggable eviction policies."""

from repro.ct.base import ConnectionTracker, CTStats, Destination
from repro.ct.unbounded import UnboundedCT
from repro.ct.lru import LRUCT
from repro.ct.fifo import FIFOCT
from repro.ct.random_evict import RandomEvictCT
from repro.ct.ttl import Clock, TTLCT, WallClock


def make_ct(
    capacity=None,
    policy: str = "lru",
    seed: int = 0,
    ttl: float = None,
    clock=None,
) -> ConnectionTracker:
    """Build a CT table.

    ``policy="ttl"`` builds an idle-timeout table (optionally also
    capacity-bounded).  Otherwise: unbounded when ``capacity`` is None,
    else the requested eviction policy ("lru", "fifo", or "random").
    """
    if policy == "ttl":
        return TTLCT(ttl if ttl is not None else 60.0, capacity, clock=clock)
    if capacity is None:
        return UnboundedCT()
    if policy == "lru":
        return LRUCT(capacity)
    if policy == "fifo":
        return FIFOCT(capacity)
    if policy == "random":
        return RandomEvictCT(capacity, seed=seed)
    raise ValueError(f"unknown eviction policy {policy!r}")


__all__ = [
    "ConnectionTracker",
    "CTStats",
    "Destination",
    "UnboundedCT",
    "LRUCT",
    "FIFOCT",
    "RandomEvictCT",
    "TTLCT",
    "Clock",
    "WallClock",
    "make_ct",
]
