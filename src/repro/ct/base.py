"""Connection-tracking (CT) table interfaces.

The CT module of Algorithm 1: ``CT[k]`` stores the chosen destination of a
tracked connection; ``NIL`` (None here) means untracked, evicted, or
destination-removed.  Real LBs bound the table and *evict* under pressure
(Section 5: "the eviction policy attempts to limit the CT table size by
heuristically evicting ... if these connections are still alive, it may
cause PCC violations").  We provide the paper's LRU policy plus FIFO and
random eviction for ablations, and an unbounded table for the trace
evaluations (Tables 1-2 let the CT "grow as needed").

All tables key on the pre-hashed 64-bit connection identifier, matching how
the CH modules consume keys.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable, Iterator, Optional, Tuple

import numpy as np

Destination = Hashable


@dataclass
class CTStats:
    """Counters a CT table maintains for evaluation.

    These plain ints are the *hot-loop* counters: the observability layer
    (:mod:`repro.obs`) never instruments per-packet paths directly but
    scrapes this object at snapshot boundaries (``repro_ct_*`` series,
    with ``peak_size`` surfaced as the occupancy high-water mark in
    ``SimResult.ct_peak_size`` / ``ReplayResult.ct_peak_size``).
    """

    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    evictions: int = 0
    invalidations: int = 0
    peak_size: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def credit_repeat_hits(ct: "ConnectionTracker", inserted_keys: np.ndarray) -> None:
    """Credit within-chunk repeats of just-inserted keys as CT hits.

    The batched dataplane probes a whole chunk before inserting its
    misses, so packets of a flow that entered the table earlier *in the
    same chunk* probe as misses -- where the scalar spec (get, then put,
    per packet) counts them as hits.  Crediting ``occurrences - unique``
    of the insert batch here makes hit totals chunk-size-invariant and
    equal to the scalar loop.  Exact only because batch paths are gated
    on ``batch_reorder_safe`` (unbounded tables): nothing can evict a
    just-inserted key before its same-chunk repeats.
    """
    repeats = len(inserted_keys) - len(np.unique(inserted_keys))
    if repeats:
        ct.stats.hits += repeats


class ConnectionTracker(ABC):
    """A destination cache keyed by connection identifier hash."""

    #: True when batched get/put may regroup per-key operations (all gets,
    #: then all puts) without changing future behaviour.  Only tables with
    #: no recency or eviction state can promise this; bounded tables keep
    #: it False so the batch dataplane falls back to the exact scalar
    #: interleaving and eviction order is preserved.
    batch_reorder_safe = False

    def __init__(self) -> None:
        self.stats = CTStats()

    @abstractmethod
    def get(self, key: int) -> Optional[Destination]:
        """Return the tracked destination, or None if untracked."""

    @abstractmethod
    def put(self, key: int, destination: Destination) -> None:
        """Track ``key``'s destination, evicting if the table is full."""

    def get_batch(self, keys: np.ndarray) -> np.ndarray:
        """Tracked destinations for a uint64 key array (None per miss).

        Semantically ``[get(k) for k in keys]`` -- stats totals included;
        this default is that loop.  Dict-backed tables override it to
        shed the per-call method and stats overhead.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.empty(len(keys), dtype=object)
        for i, k in enumerate(keys.tolist()):
            out[i] = self.get(k)
        return out

    def put_batch(self, keys: np.ndarray, destinations: np.ndarray) -> None:
        """Track every ``(key, destination)`` pair, in array order.

        Semantically ``for k, d in zip(keys, destinations): put(k, d)``;
        the default loop keeps eviction order byte-identical to the
        scalar path on bounded tables.
        """
        for k, d in zip(np.asarray(keys, dtype=np.uint64).tolist(), destinations):
            self.put(k, d)

    # ------------------------------------------------- integer-index mode
    # The columnar dataplane stores destinations as small ints (LB-local
    # backend ids, see repro.core.indexing) instead of names.  A balancer
    # switches a table to index mode by remapping the stored values once
    # (:meth:`remap_values`); from then on the ``*_idx`` entry points
    # move int32 arrays with -1 as the miss sentinel and no per-entry
    # Python objects.  These defaults are the scalar spec; vectorized
    # tables (UnboundedCT's open-addressing mirror) override them.

    def get_batch_idx(self, keys: np.ndarray) -> np.ndarray:
        """Tracked destination *ids* for a uint64 key array (-1 per miss).

        Semantically ``[get(k) for k in keys]`` with ``None -> -1``, for a
        table whose stored values are ints; stats totals included.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.full(len(keys), -1, dtype=np.int32)
        for i, k in enumerate(keys.tolist()):
            destination = self.get(k)
            if destination is not None:
                out[i] = destination
        return out

    def put_batch_idx(self, keys: np.ndarray, ids: np.ndarray) -> None:
        """Track every ``(key, id)`` pair, in array order (int values)."""
        for k, ident in zip(
            np.asarray(keys, dtype=np.uint64).tolist(),
            np.asarray(ids).tolist(),
        ):
            self.put(k, ident)

    def remap_values(self, fn) -> None:
        """Re-encode every stored destination through ``fn`` in place.

        Used exactly once per table when a balancer's columnar path first
        engages (name -> backend id).  Stats, recency order, and the key
        set are untouched.  The default rewrites the ``_table`` dict every
        dict-backed table in this package uses; exotic tables override.
        """
        table = getattr(self, "_table", None)
        if table is None:
            raise NotImplementedError(
                f"{type(self).__name__} does not support value remapping"
            )
        for key in table:
            table[key] = fn(table[key])

    @abstractmethod
    def delete(self, key: int) -> bool:
        """Forget ``key``; True if it was tracked."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of tracked connections."""

    @abstractmethod
    def __iter__(self) -> Iterator[int]:
        """Iterate over tracked keys (no particular order guaranteed)."""

    def items(self) -> Iterator[Tuple[int, Destination]]:
        """Iterate ``(key, destination)`` pairs without touching stats or
        recency state.

        The default composes :meth:`__iter__` with :meth:`peek` (one
        method call per entry); dict-backed tables override it with a
        single table scan, which is what makes active cleanup cheap.
        """
        for key in self:
            yield key, self.peek(key)

    def invalidate_destination(self, destination: Destination) -> int:
        """Drop every entry pointing at ``destination``.

        Footnote 3 of the paper: when a working server is removed, all of
        its connections are inevitably broken and the table "can be cleaned
        from such connections (in an active or a lazy manner)".  This is the
        active variant -- one :meth:`items` scan; returns the number of
        entries dropped.
        """
        victims = [key for key, dest in self.items() if dest == destination]
        for key in victims:
            self.delete(key)
        self.stats.invalidations += len(victims)
        return len(victims)

    @abstractmethod
    def peek(self, key: int) -> Optional[Destination]:
        """Like :meth:`get` but without touching stats or recency state."""

    def _note_size(self) -> None:
        size = len(self)
        if size > self.stats.peak_size:
            self.stats.peak_size = size
