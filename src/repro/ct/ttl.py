"""Idle-timeout (TTL) CT table.

Section 5: "In an ideal eviction policy, inactive connections should be
removed from the CT."  Real LBs approximate this with an idle timeout
(Maglev/Katran expire flows after a TCP-timeout-scale quiet period).  This
table implements that policy: an entry whose last touch is older than
``ttl`` is treated as absent and reclaimed lazily.

Time comes from an injectable :class:`Clock` so the event-driven simulator
can drive entries with *simulated* time; the default clock is wall time.

The structure keeps entries in insertion/touch order (an OrderedDict, like
LRU), so expiry scans stop at the first fresh entry -- O(expired) per
operation, O(1) amortized.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from repro.ct.base import ConnectionTracker, Destination


class Clock:
    """A mutable time source (the simulator advances ``now`` directly)."""

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class WallClock:
    """Real time, for live use."""

    def __call__(self) -> float:  # pragma: no cover - trivial
        return time.monotonic()


class TTLCT(ConnectionTracker):
    """CT table whose entries expire after ``ttl`` seconds of idleness.

    Optionally also bounded: with ``capacity`` set, the stalest entry is
    evicted when a fresh insert finds the table full (after expiry
    reclamation).
    """

    def __init__(self, ttl: float, capacity: Optional[int] = None, clock=None):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 when set")
        super().__init__()
        self.ttl = ttl
        self.capacity = capacity
        self.clock = clock if clock is not None else WallClock()
        # key -> (destination, last_touch); ordered stalest-first.
        self._table: "OrderedDict[int, Tuple[Destination, float]]" = OrderedDict()
        self.expired = 0

    # ----------------------------------------------------------- expiry
    def _reap(self, now: float) -> None:
        """Drop entries idle longer than ttl (stop at the first fresh one)."""
        horizon = now - self.ttl
        table = self._table
        while table:
            key, (_, touched) = next(iter(table.items()))
            if touched >= horizon:
                break
            del table[key]
            self.expired += 1

    # ------------------------------------------------------------- API
    def get(self, key: int) -> Optional[Destination]:
        now = self.clock()
        self.stats.lookups += 1
        entry = self._table.get(key)
        if entry is None:
            return None
        destination, touched = entry
        if touched < now - self.ttl:
            del self._table[key]
            self.expired += 1
            return None
        self.stats.hits += 1
        self._table[key] = (destination, now)
        self._table.move_to_end(key)
        return destination

    def put(self, key: int, destination: Destination) -> None:
        now = self.clock()
        self._reap(now)
        if key in self._table:
            self._table[key] = (destination, now)
            self._table.move_to_end(key)
            return
        if self.capacity is not None and len(self._table) >= self.capacity:
            self._table.popitem(last=False)  # stalest entry
            self.stats.evictions += 1
        self._table[key] = (destination, now)
        self.stats.inserts += 1
        self._note_size()

    def delete(self, key: int) -> bool:
        return self._table.pop(key, None) is not None

    def peek(self, key: int) -> Optional[Destination]:
        entry = self._table.get(key)
        if entry is None:
            return None
        destination, touched = entry
        if touched < self.clock() - self.ttl:
            return None
        return destination

    def __len__(self) -> int:
        # Expired-but-unreaped entries are not tracked connections.
        self._reap(self.clock())
        return len(self._table)

    def __iter__(self) -> Iterator[int]:
        self._reap(self.clock())
        return iter(list(self._table))

    def items(self) -> Iterator[Tuple[int, Destination]]:
        self._reap(self.clock())
        return iter([(k, d) for k, (d, _) in self._table.items()])
