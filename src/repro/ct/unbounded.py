"""Unbounded CT table: a plain dict, never evicts.

Used by the trace evaluations (Tables 1-2), where the paper lets the CT
"grow as needed (i.e., no flows are evicted from CT)" to isolate tracking
volume from eviction effects.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.ct.base import ConnectionTracker, Destination


class UnboundedCT(ConnectionTracker):
    """Dictionary-backed CT with no capacity limit."""

    # No recency/eviction state: batched gets and puts may be regrouped.
    batch_reorder_safe = True

    def __init__(self) -> None:
        super().__init__()
        self._table: Dict[int, Destination] = {}

    def get(self, key: int) -> Optional[Destination]:
        self.stats.lookups += 1
        destination = self._table.get(key)
        if destination is not None:
            self.stats.hits += 1
        return destination

    def put(self, key: int, destination: Destination) -> None:
        if key not in self._table:
            self.stats.inserts += 1
        self._table[key] = destination
        self._note_size()

    def get_batch(self, keys: np.ndarray) -> np.ndarray:
        """One tight pass over the table; stats updated once per batch."""
        table_get = self._table.get
        found = [table_get(k) for k in np.asarray(keys, dtype=np.uint64).tolist()]
        out = np.empty(len(found), dtype=object)
        out[:] = found
        self.stats.lookups += len(found)
        self.stats.hits += len(found) - found.count(None)
        return out

    def put_batch(self, keys: np.ndarray, destinations: np.ndarray) -> None:
        """Bulk insert; peak size is noted once (the table only grows)."""
        table = self._table
        inserts = 0
        destinations = (
            destinations.tolist()
            if isinstance(destinations, np.ndarray)
            else destinations
        )
        for k, d in zip(np.asarray(keys, dtype=np.uint64).tolist(), destinations):
            if k not in table:
                inserts += 1
            table[k] = d
        self.stats.inserts += inserts
        self._note_size()

    def delete(self, key: int) -> bool:
        return self._table.pop(key, None) is not None

    def peek(self, key: int) -> Optional[Destination]:
        return self._table.get(key)

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[int]:
        return iter(list(self._table))

    def items(self) -> Iterator[Tuple[int, Destination]]:
        return iter(list(self._table.items()))
