"""Unbounded CT table: a plain dict, never evicts.

Used by the trace evaluations (Tables 1-2), where the paper lets the CT
"grow as needed (i.e., no flows are evicted from CT)" to isolate tracking
volume from eviction effects.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.ct.base import ConnectionTracker, Destination


class UnboundedCT(ConnectionTracker):
    """Dictionary-backed CT with no capacity limit."""

    def __init__(self) -> None:
        super().__init__()
        self._table: Dict[int, Destination] = {}

    def get(self, key: int) -> Optional[Destination]:
        self.stats.lookups += 1
        destination = self._table.get(key)
        if destination is not None:
            self.stats.hits += 1
        return destination

    def put(self, key: int, destination: Destination) -> None:
        if key not in self._table:
            self.stats.inserts += 1
        self._table[key] = destination
        self._note_size()

    def delete(self, key: int) -> bool:
        return self._table.pop(key, None) is not None

    def peek(self, key: int) -> Optional[Destination]:
        return self._table.get(key)

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[int]:
        return iter(list(self._table))

    def items(self) -> Iterator[Tuple[int, Destination]]:
        return iter(list(self._table.items()))
