"""Unbounded CT table: a plain dict, never evicts.

Used by the trace evaluations (Tables 1-2), where the paper lets the CT
"grow as needed (i.e., no flows are evicted from CT)" to isolate tracking
volume from eviction effects.

The dict stays the source of truth and the scalar entry points are
unchanged (they are the executable spec).  For the columnar dataplane the
table additionally maintains a numpy *mirror* -- an open-addressing
linear-probe hash (uint64 keys, int32 values) -- so ``get_batch_idx`` is
a vectorized probe (~7 ns/key vs ~80 ns/key for dict probing, the single
biggest term in the 10M pps replay budget).  Scalar mutations just mark
the mirror dirty; it is rebuilt lazily from the dict on the next batch
probe, so correctness never depends on the mirror being current.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.ct.base import ConnectionTracker, Destination

#: Fibonacci multiplier for multiply-shift slot hashing.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
#: Mirror slots with key 0 are empty; a real key 0 lives in the dict only.
_EMPTY = np.uint64(0)


class UnboundedCT(ConnectionTracker):
    """Dictionary-backed CT with no capacity limit."""

    # No recency/eviction state: batched gets and puts may be regrouped.
    batch_reorder_safe = True

    def __init__(self) -> None:
        super().__init__()
        self._table: Dict[int, Destination] = {}
        # Open-addressing mirror (only valid when not dirty; values are
        # the int backend-ids of index mode -- see ConnectionTracker).
        self._mirror_keys: Optional[np.ndarray] = None
        self._mirror_vals: Optional[np.ndarray] = None
        self._mirror_used = 0
        self._mirror_shift = np.uint64(58)
        self._mirror_dirty = True

    def get(self, key: int) -> Optional[Destination]:
        self.stats.lookups += 1
        destination = self._table.get(key)
        if destination is not None:
            self.stats.hits += 1
        return destination

    def put(self, key: int, destination: Destination) -> None:
        if key not in self._table:
            self.stats.inserts += 1
        self._table[key] = destination
        self._mirror_dirty = True
        self._note_size()

    def get_batch(self, keys: np.ndarray) -> np.ndarray:
        """One tight pass over the table; stats updated once per batch."""
        table_get = self._table.get
        found = [table_get(k) for k in np.asarray(keys, dtype=np.uint64).tolist()]
        out = np.empty(len(found), dtype=object)
        out[:] = found
        self.stats.lookups += len(found)
        self.stats.hits += len(found) - found.count(None)
        return out

    def put_batch(self, keys: np.ndarray, destinations: np.ndarray) -> None:
        """Bulk insert; peak size is noted once (the table only grows)."""
        table = self._table
        inserts = 0
        destinations = (
            destinations.tolist()
            if isinstance(destinations, np.ndarray)
            else destinations
        )
        for k, d in zip(np.asarray(keys, dtype=np.uint64).tolist(), destinations):
            if k not in table:
                inserts += 1
            table[k] = d
        self.stats.inserts += inserts
        self._mirror_dirty = True
        self._note_size()

    # ------------------------------------------------- integer-index mode
    def get_batch_idx(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized probe of the numpy mirror (-1 per miss).

        Semantically identical to the base scalar spec for int-valued
        tables; stats are updated once per batch like :meth:`get_batch`.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        n = len(keys)
        out = np.full(n, -1, dtype=np.int32)
        if n:
            if self._mirror_dirty:
                self._rebuild_mirror()
            mirror_keys = self._mirror_keys
            mirror_vals = self._mirror_vals
            wrap = np.intp(len(mirror_keys) - 1)
            with np.errstate(over="ignore"):
                slots = ((keys * _GAMMA) >> self._mirror_shift).astype(np.intp)
            pending = np.arange(n, dtype=np.intp)
            while pending.size:
                at = slots[pending]
                resident = mirror_keys[at]
                match = resident == keys[pending]
                if match.any():
                    out[pending[match]] = mirror_vals[at[match]]
                probing = ~match & (resident != _EMPTY)
                if not probing.any():
                    break
                pending = pending[probing]
                slots[pending] = (at[probing] + 1) & wrap
            # Key 0 collides with the empty sentinel: dict side-channel.
            zero = keys == _EMPTY
            if zero.any():
                tracked = self._table.get(0)
                if tracked is not None:
                    out[zero] = tracked
        self.stats.lookups += n
        self.stats.hits += int((out >= 0).sum())
        return out

    def put_batch_idx(self, keys: np.ndarray, ids: np.ndarray) -> None:
        """Bulk insert of int backend-ids.

        The dict is updated first (authoritative, counts inserts); the
        mirror absorbs the same pairs incrementally when it is current, or
        stays dirty for a lazy rebuild when it is not (or would exceed its
        load factor).
        """
        keys = np.asarray(keys, dtype=np.uint64)
        ids = np.asarray(ids, dtype=np.int32)
        table = self._table
        inserts = 0
        for k, v in zip(keys.tolist(), ids.tolist()):
            if k not in table:
                inserts += 1
            table[k] = v
        self.stats.inserts += inserts
        self._note_size()
        if self._mirror_dirty:
            return
        if 5 * (self._mirror_used + len(keys)) > 3 * len(self._mirror_keys):
            self._mirror_dirty = True  # would breach 0.6 load: rebuild lazily
            return
        nonzero = keys != _EMPTY
        if not nonzero.all():
            keys = keys[nonzero]
            ids = ids[nonzero]
        self._mirror_insert(keys, ids)

    def remap_values(self, fn) -> None:
        table = self._table
        for key in table:
            table[key] = fn(table[key])
        self._mirror_dirty = True

    def _rebuild_mirror(self) -> None:
        """Rebuild the open-addressing mirror from the dict (load < 0.4)."""
        count = len(self._table)
        size = 64
        while 3 * size < 8 * (count + 1):
            size <<= 1
        self._mirror_keys = np.zeros(size, dtype=np.uint64)
        self._mirror_vals = np.full(size, -1, dtype=np.int32)
        self._mirror_shift = np.uint64(64 - (size.bit_length() - 1))
        self._mirror_used = 0
        self._mirror_dirty = False
        if count:
            keys = np.fromiter(self._table.keys(), dtype=np.uint64, count=count)
            vals = np.fromiter(self._table.values(), dtype=np.int32, count=count)
            nonzero = keys != _EMPTY
            self._mirror_insert(keys[nonzero], vals[nonzero])

    def _mirror_insert(self, keys: np.ndarray, vals: np.ndarray) -> None:
        """Vectorized linear-probe insert (keys nonzero, capacity ensured).

        Within-batch duplicate keys resolve to the last occurrence, like
        the dict: the first occurrence claims the empty slot (unique-
        winner rule), later duplicates re-probe, match it, and overwrite
        (numpy fancy assignment applies duplicates in array order).
        """
        mirror_keys = self._mirror_keys
        mirror_vals = self._mirror_vals
        wrap = np.intp(len(mirror_keys) - 1)
        with np.errstate(over="ignore"):
            slots = ((keys * _GAMMA) >> self._mirror_shift).astype(np.intp)
        pending = np.arange(len(keys), dtype=np.intp)
        while pending.size:
            at = slots[pending]
            resident = mirror_keys[at]
            match = resident == keys[pending]
            if match.any():
                mirror_vals[at[match]] = vals[pending[match]]
            empty = resident == _EMPTY
            claimed = np.zeros(len(pending), dtype=bool)
            if empty.any():
                contenders = np.flatnonzero(empty)
                _, first = np.unique(at[contenders], return_index=True)
                winners = contenders[first]
                winner_slots = at[winners]
                mirror_keys[winner_slots] = keys[pending[winners]]
                mirror_vals[winner_slots] = vals[pending[winners]]
                self._mirror_used += len(winners)
                claimed[winners] = True
            # Advance only true collisions; claim losers retry the same
            # slot (it now holds a key: theirs -> match, other -> advance).
            collide = ~match & ~empty
            if collide.any():
                slots[pending[collide]] = (at[collide] + 1) & wrap
            pending = pending[~match & ~claimed]

    # ----------------------------------------------------------- plumbing
    def delete(self, key: int) -> bool:
        removed = self._table.pop(key, None) is not None
        if removed:
            self._mirror_dirty = True
        return removed

    def peek(self, key: int) -> Optional[Destination]:
        return self._table.get(key)

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[int]:
        return iter(list(self._table))

    def items(self) -> Iterator[Tuple[int, Destination]]:
        return iter(list(self._table.items()))
