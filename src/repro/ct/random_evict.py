"""Bounded CT table with random eviction.

Random replacement is the policy cheap hardware tables (e.g. CAM/SRAM
flow caches) often end up with; it needs no ordering state at all.  Used
as an ablation point against LRU/FIFO.

Eviction candidates are chosen with a dedicated, seeded RNG so simulation
runs stay reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ct.base import ConnectionTracker, Destination


class RandomEvictCT(ConnectionTracker):
    """Hash-table CT that evicts a uniformly random entry when full.

    Keeps a parallel list of keys for O(1) random choice with
    swap-with-last deletion.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        super().__init__()
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._table: Dict[int, Destination] = {}
        self._keys: List[int] = []
        self._index: Dict[int, int] = {}

    def get(self, key: int) -> Optional[Destination]:
        self.stats.lookups += 1
        destination = self._table.get(key)
        if destination is not None:
            self.stats.hits += 1
        return destination

    def _drop(self, key: int) -> None:
        position = self._index.pop(key)
        last = self._keys.pop()
        if last != key:
            self._keys[position] = last
            self._index[last] = position
        del self._table[key]

    def put(self, key: int, destination: Destination) -> None:
        if key in self._table:
            self._table[key] = destination
            return
        if len(self._table) >= self.capacity:
            victim = self._keys[self._rng.randrange(len(self._keys))]
            self._drop(victim)
            self.stats.evictions += 1
        self._table[key] = destination
        self._index[key] = len(self._keys)
        self._keys.append(key)
        self.stats.inserts += 1
        self._note_size()

    def delete(self, key: int) -> bool:
        if key not in self._table:
            return False
        self._drop(key)
        return True

    def peek(self, key: int) -> Optional[Destination]:
        return self._table.get(key)

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[int]:
        return iter(list(self._keys))

    def items(self) -> Iterator[Tuple[int, Destination]]:
        return iter(list(self._table.items()))
