"""Empirical checkers for the consistent-hash properties JET relies on.

Section 2.4 / Section 4 require the CH module to provide:

- **minimal disruption** -- adding a server only moves keys *to* it;
  removing a server only moves keys *off* it;
- **balance** -- keys spread (near-)uniformly over the working set;
- **Property 1** -- whether ``CH(W ∪ H, k)`` equals ``CH(W, k)`` does not
  depend on the order in which the horizon is admitted.

These checkers drive both the test suite and the theory benchmarks.  They
operate on factory callables so each trial gets a fresh CH instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.ch.base import HorizonConsistentHash, Name
from repro.hashing.mix import splitmix64


def sample_keys(count: int, seed: int = 1) -> List[int]:
    """Deterministic pseudo-random 64-bit key hashes for experiments."""
    keys = []
    state = seed
    for _ in range(count):
        state = splitmix64(state)
        keys.append(state)
    return keys


@dataclass
class DisruptionReport:
    """Outcome of a minimal-disruption check around one backend change."""

    moved_to_changed: int
    moved_elsewhere: int
    total: int

    @property
    def is_minimal(self) -> bool:
        return self.moved_elsewhere == 0

    @property
    def moved_fraction(self) -> float:
        return (self.moved_to_changed + self.moved_elsewhere) / max(self.total, 1)


def check_addition_disruption(
    ch: HorizonConsistentHash, new_server: Name, keys: Sequence[int]
) -> DisruptionReport:
    """Admit ``new_server`` from the horizon and classify key movements."""
    before = {k: ch.lookup(k) for k in keys}
    ch.add_working(new_server)
    moved_to, moved_elsewhere = 0, 0
    for k in keys:
        after = ch.lookup(k)
        if after != before[k]:
            if after == new_server:
                moved_to += 1
            else:
                moved_elsewhere += 1
    return DisruptionReport(moved_to, moved_elsewhere, len(keys))


def check_removal_disruption(
    ch: HorizonConsistentHash, victim: Name, keys: Sequence[int]
) -> DisruptionReport:
    """Remove ``victim`` and classify key movements (only victim's keys may move)."""
    before = {k: ch.lookup(k) for k in keys}
    if hasattr(ch, "remove_working"):
        ch.remove_working(victim)
    else:  # plain ConsistentHash (e.g. MaglevHash)
        ch.remove(victim)
    moved_off, moved_elsewhere = 0, 0
    for k in keys:
        after = ch.lookup(k)
        if after != before[k]:
            if before[k] == victim:
                moved_off += 1
            else:
                moved_elsewhere += 1
    return DisruptionReport(moved_off, moved_elsewhere, len(keys))


def balance_counts(ch, keys: Sequence[int]) -> Dict[Name, int]:
    """Keys per working server."""
    counts: Dict[Name, int] = {name: 0 for name in ch.working}
    for k in keys:
        counts[ch.lookup(k)] += 1
    return counts


def check_property1(
    factory: Callable[[], HorizonConsistentHash],
    keys: Sequence[int],
    orderings: int = 5,
    rng: random.Random = None,
) -> bool:
    """Verify Property 1: the safe/unsafe partition is ordering-invariant.

    For several random admission orders of the horizon, admit every horizon
    server and compare the final destination of each key against the
    pre-admission ``lookup``; the set of keys whose destination changed must
    be identical across orderings, and must equal the keys flagged unsafe by
    ``lookup_with_safety``.
    """
    rng = rng or random.Random(0)
    reference = factory()
    flagged = {k for k in keys if reference.lookup_with_safety(k)[1]}

    partitions = []
    for _ in range(orderings):
        ch = factory()
        before = {k: ch.lookup(k) for k in keys}
        order = list(ch.horizon)
        rng.shuffle(order)
        for server in order:
            ch.add_working(server)
        changed = {k for k in keys if ch.lookup(k) != before[k]}
        partitions.append(changed)

    return all(p == partitions[0] for p in partitions) and partitions[0] == flagged


def check_prefix_safety(
    factory: Callable[[], HorizonConsistentHash],
    keys: Sequence[int],
    trials: int = 5,
    rng: random.Random = None,
) -> bool:
    """Theorem 4.4's stronger claim: a key deemed *safe* never changes
    destination under any subset/prefix of horizon admissions, checked after
    every single admission step."""
    rng = rng or random.Random(1)
    reference = factory()
    safe = {k for k in keys if not reference.lookup_with_safety(k)[1]}
    for _ in range(trials):
        ch = factory()
        before = {k: ch.lookup(k) for k in safe}
        order = list(ch.horizon)
        rng.shuffle(order)
        for server in order:
            ch.add_working(server)
            for k in safe:
                if ch.lookup(k) != before[k]:
                    return False
    return True
