"""Highest Random Weight (rendezvous) hashing -- Section 3.2 / Algorithm 2.

Each server carries an independent 64-bit weight stream over keys; a key is
dispatched to the working server with the highest weight.  The JET safety
check is Algorithm 2 line 5: a key is unsafe iff some *horizon* server's
weight beats the chosen working server's weight -- there is no need to
evaluate ``CH(W ∪ H, k)`` in full.

Ties: 64-bit weights collide with probability ~2^-64 per pair; we still break
ties deterministically by server seed so that ``lookup`` is a pure function
of (W, k) regardless of insertion order (required by Property 1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple

import numpy as np

from repro.ch.base import BackendError, HorizonConsistentHash, Name
from repro.hashing.keyed import KeyedHasher
from repro.hashing.vector import v_mix2_outer


class HRWHash(HorizonConsistentHash):
    """Rendezvous hashing over ``W`` with a horizon-aware safety test."""

    def __init__(self, working: Iterable[Name] = (), horizon: Iterable[Name] = ()):
        self._working: Dict[Name, KeyedHasher] = {}
        self._horizon: Dict[Name, KeyedHasher] = {}
        # Batch kernel caches: (seeds, names) per side, rebuilt on change.
        # The names array doubles as the canonical backend table, so a
        # rebuild (fresh array object) is what signals downstream
        # translation caches to refresh (identity-based invalidation).
        self._w_matrix = None
        self._h_matrix = None
        for name in working:
            self._admit(self._working, name)
        for name in horizon:
            self.add_horizon(name)

    # ------------------------------------------------------------- sets
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working)

    @property
    def horizon(self) -> FrozenSet[Name]:
        return frozenset(self._horizon)

    def _admit(self, side: Dict[Name, KeyedHasher], name: Name) -> None:
        if name in self._working or name in self._horizon:
            raise BackendError(f"server {name!r} already present")
        side[name] = KeyedHasher(name)
        self._invalidate_matrices()

    # ----------------------------------------------------------- lookup
    def lookup(self, key_hash: int) -> Name:
        best = self._argmax(self._working.values(), key_hash)
        if best is None:
            raise BackendError("lookup on empty working set")
        return best.name

    def lookup_with_safety(self, key_hash: int) -> Tuple[Name, bool]:
        best = self._argmax(self._working.values(), key_hash)
        if best is None:
            raise BackendError("lookup on empty working set")
        best_weight = best.weight(key_hash)
        unsafe = any(
            self._beats(h, key_hash, best_weight, best)
            for h in self._horizon.values()
        )
        return best.name, unsafe

    def lookup_union(self, key_hash: int) -> Name:
        candidates = list(self._working.values()) + list(self._horizon.values())
        best = self._argmax(candidates, key_hash)
        if best is None:
            raise BackendError("lookup on empty server set")
        return best.name

    def lookup_with_safety_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized Algorithm 2 name path: the index kernel plus one
        gather through the cached backend table."""
        indices, unsafe = self.lookup_with_safety_batch_idx(keys)
        return self.backend_table()[indices], unsafe

    def lookup_with_safety_batch_idx(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized Algorithm 2: one weight matrix per side, argmax over
        servers.  Server rows are sorted by descending seed so that
        ``argmax`` (first maximum) realizes the scalar ``(weight, seed)``
        lexicographic tie-break.  Returns indices into
        :meth:`backend_table` (the seed-sorted working names)."""
        keys = np.asarray(keys, dtype=np.uint64)
        n = len(keys)
        if n == 0:
            return np.empty(0, dtype=np.int32), np.zeros(0, dtype=bool)
        if not self._working:
            raise BackendError("lookup on empty working set")
        w_seeds, _ = self._working_matrix()
        weights = v_mix2_outer(w_seeds, keys)
        winner = weights.argmax(axis=0)
        indices = winner.astype(np.int32)
        columns = np.arange(n)
        best_weight = weights[winner, columns]
        if not self._horizon:
            return indices, np.zeros(n, dtype=bool)
        best_seed = w_seeds[winner]
        if self._h_matrix is None:
            self._h_matrix = self._seed_matrix(self._horizon)
        h_seeds, _ = self._h_matrix
        h_weights = v_mix2_outer(h_seeds, keys)
        challenger = h_weights.argmax(axis=0)
        h_best = h_weights[challenger, columns]
        h_seed = h_seeds[challenger]
        unsafe = (h_best > best_weight) | (
            (h_best == best_weight) & (h_seed > best_seed)
        )
        return indices, unsafe

    def backend_table(self) -> np.ndarray:
        """Working names sorted by descending seed -- the argmax row order
        of the batch kernel (identity-stable until a backend change)."""
        return self._working_matrix()[1]

    def _working_matrix(self):
        if self._w_matrix is None:
            self._w_matrix = self._seed_matrix(self._working)
        return self._w_matrix

    def _invalidate_matrices(self) -> None:
        self._w_matrix = None
        self._h_matrix = None

    @staticmethod
    def _seed_matrix(side: Dict[Name, KeyedHasher]):
        """(seeds, names) arrays of one side, sorted by descending seed."""
        hashers = sorted(side.values(), key=lambda h: h.seed, reverse=True)
        seeds = np.array([h.seed for h in hashers], dtype=np.uint64)
        names = np.empty(len(hashers), dtype=object)
        names[:] = [h.name for h in hashers]
        return seeds, names

    @staticmethod
    def _argmax(hashers, key_hash: int):
        best = None
        best_key = None
        for h in hashers:
            w = (h.weight(key_hash), h.seed)
            if best_key is None or w > best_key:
                best, best_key = h, w
        return best

    @staticmethod
    def _beats(h: KeyedHasher, key_hash: int, best_weight: int, best: KeyedHasher) -> bool:
        w = h.weight(key_hash)
        return (w, h.seed) > (best_weight, best.seed)

    # --------------------------------------------------------- mutation
    def add_working(self, name: Name) -> None:
        hasher = self._horizon.pop(name, None)
        if hasher is None:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._working[name] = hasher
        self._invalidate_matrices()

    def remove_working(self, name: Name) -> None:
        hasher = self._working.pop(name, None)
        if hasher is None:
            raise BackendError(f"server {name!r} is not working")
        self._horizon[name] = hasher
        self._invalidate_matrices()

    def add_horizon(self, name: Name) -> None:
        self._admit(self._horizon, name)

    def remove_horizon(self, name: Name) -> None:
        if self._horizon.pop(name, None) is None:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._invalidate_matrices()
