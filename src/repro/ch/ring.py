"""Ring consistent hashing with virtual nodes -- Section 3.3 / Algorithm 3.

Servers are placed on a 2^64-point ring at positions derived from their name
(``virtual_nodes`` positions per server, 100-300 in the paper); a key goes to
the first server position clockwise from ``hash(k)``.

JET integration follows POPULATERING (Algorithm 3): the ring is built from
*both* working and horizon positions.  A working position carries
``(server, track=False)``.  A horizon position carries
``(successor-working-server, track=True)`` -- keys landing on it are still
dispatched within ``W`` (to the server they map to *today*), but they are
unsafe because a horizon addition would capture them.

The merged ring is rebuilt lazily after backend changes (the paper notes a
full repopulate per change is acceptable; an incremental variant only
touches affected successors -- we rebuild, which is simpler and still
O((|W|+|H|)·V log) per change, amortized over many lookups).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.ch.base import BackendError, HorizonConsistentHash, Name
from repro.hashing.keyed import server_seed
from repro.hashing.mix import fmix64, mix2

DEFAULT_VIRTUAL_NODES = 100


def _vnode_positions(name: Name, virtual_nodes: int) -> List[int]:
    """Ring positions of a server's virtual nodes (deterministic in name)."""
    seed = server_seed(name)
    return [mix2(seed, fmix64(replica)) for replica in range(virtual_nodes)]


class RingHash(HorizonConsistentHash):
    """Ring hashing over ``W`` with the horizon folded in per Algorithm 3."""

    def __init__(
        self,
        working: Iterable[Name] = (),
        horizon: Iterable[Name] = (),
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ):
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._working: Dict[Name, List[int]] = {}
        self._horizon: Dict[Name, List[int]] = {}
        # Merged ring: parallel arrays sorted by position.
        self._positions: List[int] = []
        self._entries: List[Tuple[Name, bool]] = []
        self._dirty = True
        for name in working:
            self._register(self._working, name)
        for name in horizon:
            self._register(self._horizon, name)

    # ------------------------------------------------------------- sets
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working)

    @property
    def horizon(self) -> FrozenSet[Name]:
        return frozenset(self._horizon)

    def _register(self, side: Dict[Name, List[int]], name: Name) -> None:
        if name in self._working or name in self._horizon:
            raise BackendError(f"server {name!r} already present")
        side[name] = _vnode_positions(name, self.virtual_nodes)
        self._dirty = True

    # --------------------------------------------------------- populate
    def _rebuild(self) -> None:
        """POPULATERING of Algorithm 3, merged into sorted parallel arrays."""
        ring_w: List[Tuple[int, int, Name]] = []  # (pos, tiebreak, server)
        for name, positions in self._working.items():
            seed = server_seed(name)
            for pos in positions:
                ring_w.append((pos, seed, name))
        ring_w.sort()

        merged: List[Tuple[int, int, Name, bool]] = [
            (pos, tiebreak, name, False) for pos, tiebreak, name in ring_w
        ]
        if ring_w:
            # Map each horizon vnode to its working successor's server.
            w_positions = [item[0] for item in ring_w]
            n = len(ring_w)
            for name, positions in self._horizon.items():
                seed = server_seed(name)
                for pos in positions:
                    successor = ring_w[bisect_right(w_positions, pos) % n][2]
                    merged.append((pos, seed, successor, True))
        merged.sort()
        self._positions = [item[0] for item in merged]
        self._entries = [(item[2], item[3]) for item in merged]
        self._dirty = False

    # ----------------------------------------------------------- lookup
    def lookup_with_safety(self, key_hash: int) -> Tuple[Name, bool]:
        if self._dirty:
            self._rebuild()
        if not self._working:
            raise BackendError("lookup on empty working set")
        index = bisect_right(self._positions, key_hash) % len(self._positions)
        return self._entries[index]

    def iter_successors(self, key_hash: int):
        """Yield distinct *working* servers in clockwise ring order from
        the key's position.

        The deterministic fallback sequence that bounded-load dispatching
        (Mirrokni et al.; see :mod:`repro.core.bounded_load`) walks when
        the primary choice is saturated.
        """
        if self._dirty:
            self._rebuild()
        if not self._working:
            raise BackendError("lookup on empty working set")
        n = len(self._positions)
        start = bisect_right(self._positions, key_hash) % n
        seen = set()
        for step in range(n):
            server, _ = self._entries[(start + step) % n]
            if server not in seen:
                seen.add(server)
                yield server

    def lookup_union(self, key_hash: int) -> Name:
        """Successor over the true union ring of ``W ∪ H`` (reference)."""
        union: List[Tuple[int, int, Name]] = []
        for side in (self._working, self._horizon):
            for name, positions in side.items():
                seed = server_seed(name)
                for pos in positions:
                    union.append((pos, seed, name))
        if not union:
            raise BackendError("lookup on empty server set")
        union.sort()
        positions = [item[0] for item in union]
        return union[bisect_right(positions, key_hash) % len(union)][2]

    # --------------------------------------------------------- mutation
    def add_working(self, name: Name) -> None:
        positions = self._horizon.pop(name, None)
        if positions is None:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._working[name] = positions
        self._dirty = True

    def remove_working(self, name: Name) -> None:
        positions = self._working.pop(name, None)
        if positions is None:
            raise BackendError(f"server {name!r} is not working")
        self._horizon[name] = positions
        self._dirty = True

    def add_horizon(self, name: Name) -> None:
        self._register(self._horizon, name)

    def remove_horizon(self, name: Name) -> None:
        if self._horizon.pop(name, None) is None:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._dirty = True
