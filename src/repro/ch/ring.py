"""Ring consistent hashing with virtual nodes -- Section 3.3 / Algorithm 3.

Servers are placed on a 2^64-point ring at positions derived from their name
(``virtual_nodes`` positions per server, 100-300 in the paper); a key goes to
the first server position clockwise from ``hash(k)``.

JET integration follows POPULATERING (Algorithm 3): the ring is built from
*both* working and horizon positions.  A working position carries
``(server, track=False)``.  A horizon position carries
``(successor-working-server, track=True)`` -- keys landing on it are still
dispatched within ``W`` (to the server they map to *today*), but they are
unsafe because a horizon addition would capture them.

The merged ring is rebuilt lazily after backend changes (the paper notes a
full repopulate per change is acceptable; an incremental variant only
touches affected successors -- we rebuild, which is simpler and still
O((|W|+|H|)·V log) per change, amortized over many lookups).

Three lookup data structures are derived from the merged ring and cached
until the next backend change:

- ``_positions``/``_entries`` -- Python lists used by the scalar path
  (``bisect_right`` over a list of ints is the fastest scalar search);
- a numpy kernel (sorted uint64 positions, an int32 entry->server index
  into a compact object array of names, and a bool track-flag array) that
  turns ``lookup_with_safety_batch`` into one ``searchsorted`` plus two
  fancy-indexed gathers -- the same table-gather shape as Maglev's packet
  dataplane (Eisenbud et al., NSDI'16);
- a cached *union* ring (every vnode under its own owner) so the scalar
  ``lookup_union`` is one binary search instead of an O(R log R) rebuild
  per call.  The union only changes when a server identity enters or
  leaves the system -- moving between W and H preserves it.

Vnode positions and server seeds are deterministic in the name, so they
are memoized process-wide (:func:`_server_placement`): churning a server
out and back in, or rebuilding after every event, never recomputes the
``virtual_nodes`` hash mixes.
"""

from __future__ import annotations

from bisect import bisect_right
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from repro.ch.base import BackendError, HorizonConsistentHash, Name
from repro.hashing.keyed import server_seed
from repro.hashing.mix import fmix64, mix2

DEFAULT_VIRTUAL_NODES = 100


#: Memoized server seeds -- every rebuild needs each server's tiebreak
#: seed, and seeds are pure functions of the name.
_cached_seed = lru_cache(maxsize=65536)(server_seed)


@lru_cache(maxsize=65536)
def _server_placement(name: Name, virtual_nodes: int) -> Tuple[int, Tuple[int, ...]]:
    """``(seed, vnode positions)`` of a server -- deterministic in the name,
    memoized so rebuilds and churned re-registrations never re-mix."""
    seed = _cached_seed(name)
    return seed, tuple(mix2(seed, fmix64(replica)) for replica in range(virtual_nodes))


def _vnode_positions(name: Name, virtual_nodes: int) -> Sequence[int]:
    """Ring positions of a server's virtual nodes (deterministic in name)."""
    return _server_placement(name, virtual_nodes)[1]


class RingHash(HorizonConsistentHash):
    """Ring hashing over ``W`` with the horizon folded in per Algorithm 3."""

    def __init__(
        self,
        working: Iterable[Name] = (),
        horizon: Iterable[Name] = (),
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ):
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._working: Dict[Name, Sequence[int]] = {}
        self._horizon: Dict[Name, Sequence[int]] = {}
        # Merged ring: parallel arrays sorted by position.
        self._positions: List[int] = []
        self._entries: List[Tuple[Name, bool]] = []
        self._dirty = True
        # Numpy kernel over the merged ring (see _ensure_kernel).
        self._kernel_dirty = True
        self._np_positions = np.empty(0, dtype=np.uint64)
        self._np_entry_server = np.empty(0, dtype=np.int32)
        self._np_track = np.empty(0, dtype=bool)
        self._np_names = np.empty(0, dtype=object)
        self._np_entry_names = np.empty(0, dtype=object)
        self._bucket_shift = np.uint64(63)
        self._bucket_lo = np.zeros(3, dtype=np.intp)
        # Cached union ring (changes only when an identity joins/leaves).
        self._union_dirty = True
        self._union_positions: List[int] = []
        self._union_names: List[Name] = []
        for name in working:
            self._register(self._working, name)
        for name in horizon:
            self._register(self._horizon, name)

    # ------------------------------------------------------------- sets
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working)

    @property
    def horizon(self) -> FrozenSet[Name]:
        return frozenset(self._horizon)

    def _placement(self, name: Name) -> Sequence[int]:
        """Vnode positions used for a newly registered server (weighted
        subclasses override to vary the vnode count per server)."""
        return _vnode_positions(name, self.virtual_nodes)

    def _register(self, side: Dict[Name, Sequence[int]], name: Name) -> None:
        if name in self._working or name in self._horizon:
            raise BackendError(f"server {name!r} already present")
        side[name] = self._placement(name)
        self._dirty = True
        self._union_dirty = True

    # --------------------------------------------------------- populate
    def _rebuild(self) -> None:
        """POPULATERING of Algorithm 3, merged into sorted parallel arrays."""
        ring_w: List[Tuple[int, int, Name]] = []  # (pos, tiebreak, server)
        for name, positions in self._working.items():
            seed = _cached_seed(name)
            for pos in positions:
                ring_w.append((pos, seed, name))
        ring_w.sort()

        merged: List[Tuple[int, int, Name, bool]] = [
            (pos, tiebreak, name, False) for pos, tiebreak, name in ring_w
        ]
        if ring_w:
            # Map each horizon vnode to its working successor's server.
            w_positions = [item[0] for item in ring_w]
            n = len(ring_w)
            for name, positions in self._horizon.items():
                seed = _cached_seed(name)
                for pos in positions:
                    successor = ring_w[bisect_right(w_positions, pos) % n][2]
                    merged.append((pos, seed, successor, True))
        merged.sort()
        self._positions = [item[0] for item in merged]
        self._entries = [(item[2], item[3]) for item in merged]
        self._dirty = False
        self._kernel_dirty = True

    def _ensure_kernel(self) -> None:
        """Materialize the merged ring into the numpy lookup kernel."""
        if self._dirty:
            self._rebuild()
        if not self._kernel_dirty:
            return
        n = len(self._positions)
        self._np_positions = np.array(self._positions, dtype=np.uint64)
        index_of: Dict[Name, int] = {}
        names: List[Name] = []
        entry_server = np.empty(n, dtype=np.int32)
        track = np.empty(n, dtype=bool)
        for i, (name, tracked) in enumerate(self._entries):
            j = index_of.get(name)
            if j is None:
                j = index_of[name] = len(names)
                names.append(name)
            entry_server[i] = j
            track[i] = tracked
        name_array = np.empty(len(names), dtype=object)
        name_array[:] = names
        self._np_entry_server = entry_server
        self._np_track = track
        self._np_names = name_array
        # Pre-composed per-entry name gather (entry index -> owner name).
        self._np_entry_names = name_array[entry_server] if n else np.empty(0, dtype=object)
        # Quantized-prefix successor index: split the 2^64 ring into M
        # uniform buckets (M = power of two >= 2 * entries) and record,
        # per bucket start, the bisect_right insertion point.  A batch
        # lookup then replaces the branchy binary search with one shift,
        # one gather, and a short advance loop (uniform hash positions
        # put ~0.5 entries per bucket, so the loop converges in a step
        # or two).
        bits = min(26, max(1, (2 * max(n, 1) - 1).bit_length()))
        shift = np.uint64(64 - bits)
        starts = np.arange(1 << bits, dtype=np.uint64) << shift
        lo = np.searchsorted(self._np_positions, starts, side="left").astype(np.intp)
        self._bucket_shift = shift
        self._bucket_lo = np.concatenate([lo, np.array([n], dtype=np.intp)])
        self._kernel_dirty = False

    def _ensure_union(self) -> None:
        """Materialize the union ring (every vnode under its own owner)."""
        if not self._union_dirty:
            return
        union: List[Tuple[int, int, Name]] = []
        for side in (self._working, self._horizon):
            for name, positions in side.items():
                seed = _cached_seed(name)
                for pos in positions:
                    union.append((pos, seed, name))
        union.sort()
        self._union_positions = [item[0] for item in union]
        self._union_names = [item[2] for item in union]
        self._union_dirty = False

    # ----------------------------------------------------------- lookup
    def lookup_with_safety(self, key_hash: int) -> Tuple[Name, bool]:
        if self._dirty:
            self._rebuild()
        if not self._working:
            raise BackendError("lookup on empty working set")
        index = bisect_right(self._positions, key_hash) % len(self._positions)
        return self._entries[index]

    def lookup_with_safety_batch(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized successor search via the quantized-prefix index: each
        key's high bits select a ring bucket whose ``bisect_right``
        insertion point was precomputed at kernel build; a short
        active-mask loop advances past the few in-bucket positions <= key,
        then two fancy-indexed gathers read the entry's owner name and
        track flag.  The advance count *is* ``bisect_right`` (number of
        positions <= key), so the result is bit-identical to the scalar
        walk -- the differential suites hold it to that key for key."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=object), np.zeros(0, dtype=bool)
        index = self._search_batch(keys)
        return self._np_entry_names[index], self._np_track[index]

    def lookup_with_safety_batch_idx(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All-integer variant: the same successor search, but the entry's
        owner is returned as its index into :meth:`backend_table` (the
        kernel's compact name array) instead of gathering the name."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=np.int32), np.zeros(0, dtype=bool)
        index = self._search_batch(keys)
        return self._np_entry_server[index], self._np_track[index]

    def backend_table(self) -> np.ndarray:
        """The kernel's compact owner-name array (fresh object on rebuild)."""
        if self._dirty:
            self._rebuild()
        self._ensure_kernel()
        return self._np_names

    def _search_batch(self, keys: np.ndarray) -> np.ndarray:
        """Successor entry index per key via the quantized-prefix index."""
        if self._dirty:
            self._rebuild()
        if not self._working:
            raise BackendError("lookup on empty working set")
        self._ensure_kernel()
        positions = self._np_positions
        bucket = (keys >> self._bucket_shift).astype(np.intp)
        index = self._bucket_lo[bucket]
        hi = self._bucket_lo[bucket + 1]
        active = np.flatnonzero(index < hi)
        while active.size:
            at = index[active]
            advanced = positions[at] <= keys[active]
            at = at + advanced  # bool adds as 0/1
            index[active] = at
            active = active[advanced & (at < hi[active])]
        index[index == len(positions)] = 0  # clockwise wrap (mod n)
        return index

    def iter_successors(self, key_hash: int):
        """Yield distinct *working* servers in clockwise ring order from
        the key's position.

        The deterministic fallback sequence that bounded-load dispatching
        (Mirrokni et al.; see :mod:`repro.core.bounded_load`) walks when
        the primary choice is saturated.
        """
        if self._dirty:
            self._rebuild()
        if not self._working:
            raise BackendError("lookup on empty working set")
        n = len(self._positions)
        start = bisect_right(self._positions, key_hash) % n
        seen = set()
        for step in range(n):
            server, _ = self._entries[(start + step) % n]
            if server not in seen:
                seen.add(server)
                yield server

    def lookup_union(self, key_hash: int) -> Name:
        """Successor over the true union ring of ``W ∪ H`` (reference)."""
        self._ensure_union()
        if not self._union_positions:
            raise BackendError("lookup on empty server set")
        index = bisect_right(self._union_positions, key_hash) % len(
            self._union_positions
        )
        return self._union_names[index]

    # --------------------------------------------------------- mutation
    def add_working(self, name: Name) -> None:
        positions = self._horizon.pop(name, None)
        if positions is None:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._working[name] = positions
        self._dirty = True

    def remove_working(self, name: Name) -> None:
        positions = self._working.pop(name, None)
        if positions is None:
            raise BackendError(f"server {name!r} is not working")
        self._horizon[name] = positions
        self._dirty = True

    def add_horizon(self, name: Name) -> None:
        self._register(self._horizon, name)

    def remove_horizon(self, name: Name) -> None:
        if self._horizon.pop(name, None) is None:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._dirty = True
        self._union_dirty = True
