"""MaglevHash -- the table-based consistent hash of Google's Maglev LB.

Used in the paper (Sections 3.6 and 5) only as a *full-CT baseline*: Maglev's
table population can "flip" rows unrelated to the changed server, so JET
cannot efficiently enumerate unsafe connections for it -- integrating the two
is explicitly left open.  We therefore implement the classic algorithm
(Eisenbud et al., NSDI'16, Section 3.4) without horizon support.

Each backend ``i`` derives a permutation of table rows from two hashes of its
name (``offset``/``skip``); population rounds let each backend claim its next
preferred empty row until the table is full, giving each backend within-1
row counts of each other (up to disruption minimisation after changes).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

import numpy as np

from repro.ch.base import BackendError, ConsistentHash, Name
from repro.hashing.fnv import fnv1a64
from repro.hashing.keyed import server_seed
from repro.hashing.mix import fmix64

DEFAULT_TABLE_SIZE = 4099  # must be prime so every `skip` is a generator


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


class MaglevHash(ConsistentHash):
    """Classic Maglev table population over a prime-sized lookup table."""

    def __init__(self, working: Iterable[Name] = (), table_size: int = DEFAULT_TABLE_SIZE):
        if not _is_prime(table_size):
            raise ValueError(f"table_size must be prime, got {table_size}")
        self.table_size = table_size
        self._perm_params: Dict[Name, tuple] = {}
        self._table: List[Optional[Name]] = [None] * table_size
        # Batch kernel twins of _table: an int32 row->backend index array
        # over a compact object array of names (see _populate).
        self._table_idx = np.full(table_size, -1, dtype=np.int32)
        self._names_obj = np.empty(0, dtype=object)
        for name in working:
            self._register(name)
        self._populate()

    # ------------------------------------------------------------- sets
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._perm_params)

    # ----------------------------------------------------------- lookup
    def lookup(self, key_hash: int) -> Name:
        name = self._table[key_hash % self.table_size]
        if name is None:
            raise BackendError("lookup on empty working set")
        return name

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized table walk -- ``names[table[keys % size]]``, the same
        row-gather the Maglev dataplane performs per packet (NSDI'16), so
        the batch path is two fancy-indexed gathers for any batch size."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=object)
        if not self._perm_params:
            raise BackendError("lookup on empty working set")
        rows = (keys % np.uint64(self.table_size)).astype(np.intp)
        return self._names_obj[self._table_idx[rows]]

    def lookup_batch_idx(self, keys: np.ndarray) -> np.ndarray:
        """All-integer table walk: one row gather, indices into
        :meth:`backend_table` (the population's compact name array)."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=np.int32)
        if not self._perm_params:
            raise BackendError("lookup on empty working set")
        rows = (keys % np.uint64(self.table_size)).astype(np.intp)
        return self._table_idx[rows]

    def backend_table(self) -> np.ndarray:
        """Backend index -> name (replaced wholesale on each repopulation)."""
        return self._names_obj

    def row_counts(self) -> Dict[Name, int]:
        """Rows owned per backend (balance diagnostics)."""
        counts: Dict[Name, int] = {name: 0 for name in self._perm_params}
        for name in self._table:
            if name is not None:
                counts[name] += 1
        return counts

    # --------------------------------------------------------- mutation
    def _register(self, name: Name) -> None:
        if name in self._perm_params:
            raise BackendError(f"server {name!r} already present")
        seed = server_seed(name)
        offset = seed % self.table_size
        alt = fmix64(fnv1a64(repr(name).encode("utf-8"), seed))
        skip = alt % (self.table_size - 1) + 1
        self._perm_params[name] = (offset, skip)

    def add(self, name: Name) -> None:
        self._register(name)
        self._populate()

    def remove(self, name: Name) -> None:
        if self._perm_params.pop(name, None) is None:
            raise BackendError(f"server {name!r} is not working")
        self._populate()

    # --------------------------------------------------------- populate
    def _populate(self) -> None:
        """NSDI'16 population: round-robin preference filling.

        Deterministic in the *set* of backends (iteration ordered by seed)
        so that all LB replicas agree on the table.
        """
        size = self.table_size
        table_idx = np.full(size, -1, dtype=np.int32)
        if not self._perm_params:
            self._table = [None] * size
            self._table_idx = table_idx
            self._names_obj = np.empty(0, dtype=object)
            return
        backends = sorted(self._perm_params.items(), key=lambda kv: server_seed(kv[0]))
        taken = [False] * size
        next_index = [0] * len(backends)
        filled = 0
        while filled < size:
            for i, (name, (offset, skip)) in enumerate(backends):
                j = next_index[i]
                row = (offset + j * skip) % size
                while taken[row]:
                    j += 1
                    row = (offset + j * skip) % size
                taken[row] = True
                table_idx[row] = i
                next_index[i] = j + 1
                filled += 1
                if filled == size:
                    break
        names_obj = np.empty(len(backends), dtype=object)
        names_obj[:] = [name for name, _ in backends]
        self._table_idx = table_idx
        self._names_obj = names_obj
        self._table = names_obj[table_idx].tolist()
