"""AnchorHash consistent hashing -- Section 3.5 / Algorithm 5.

This module implements the full AnchorHash algorithm (Mendelson et al.,
IEEE/ACM ToN 2021, Algorithm 2) from scratch -- the *bucket* layer -- plus
the JET integration layer that maps server names onto buckets and maintains
the horizon.

AnchorHash bucket layer
-----------------------
An *anchor* set of ``capacity`` buckets is allocated up front.  Working
buckets serve keys; removed buckets sit on a LIFO stack ``R``.  For each
removed bucket ``b``, ``A[b]`` records ``|W_b|``, the number of working
buckets right after ``b``'s removal.  ``GETBUCKET`` iteratively re-hashes a
key into the historical working set of each removed bucket it lands on,
until it reaches a working bucket -- achieving full minimal disruption and
uniform balance with O(1) expected lookups when the anchor is mostly
working.

JET integration (the name layer)
--------------------------------
Bucket additions are inherently LIFO (``ADDBUCKET`` pops the stack), yet JET
allows *any* horizon server to be added next.  Appendix A.5's resolution is
indirection: server identities are decoupled from buckets, so when horizon
server ``s`` is admitted, it takes ownership of the popped top-of-stack
bucket and the bucket it previously owned is handed to the displaced owner.
Bucket addition order stays LIFO -- hence ``CH(W ∪ H, k)`` is well defined
and Property 1 holds trivially -- while server addition order is free.

We maintain the invariant that *horizon servers own exactly the top |H|
stack buckets*.  The removal stack always holds consecutive ``A`` values
``N, N+1, N+2, ...`` from the top (each removal pushes ``A = N``; each
addition pops the ``A = N`` top), so the JET safety test is O(1):

    unsafe(k)  iff  A[penultimate bucket on k's GETBUCKET path] < N + |H|

where the *penultimate* bucket is the last removed bucket the lookup path
visits -- exactly the check of Algorithm 5 lines 8-9.  Path ``A`` values
strictly decrease, so if the penultimate (minimum-``A``) bucket is outside
the horizon region, every earlier path bucket is too, and ``k`` is safe.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.ch.base import BackendError, HorizonConsistentHash, Name
from repro.hashing.mix import MASK64, fmix64, mix2
from repro.hashing.vector import _SM_GAMMA, v_fmix64

_JUMP_SALT = 0x5851_F42D_4C95_7F2D


class AnchorBuckets:
    """The bucket layer: AnchorHash Algorithm 2 (INIT/GET/ADD/REMOVE)."""

    __slots__ = ("capacity", "A", "K", "W", "L", "R", "N", "_mix")

    def __init__(self, capacity: int, initial_working: int):
        if not 0 < initial_working <= capacity:
            raise ValueError("need 0 < initial_working <= capacity")
        self.capacity = capacity
        self.A: List[int] = [0] * capacity
        self.K: List[int] = list(range(capacity))
        self.W: List[int] = list(range(capacity))
        self.L: List[int] = list(range(capacity))
        self.R: List[int] = []  # removal stack; top is R[-1]
        self.N = capacity
        self._mix: Optional[np.ndarray] = None  # per-bucket fmix64(b ^ salt)
        for bucket in range(capacity - 1, initial_working - 1, -1):
            self.R.append(bucket)
            self.A[bucket] = bucket
            self.N -= 1

    # ------------------------------------------------------------ paths
    def _jump(self, bucket: int, key_hash: int) -> int:
        """``h_b(k)``: re-hash ``k`` into ``{0, ..., A[b]-1}``."""
        return mix2(fmix64(bucket ^ _JUMP_SALT), key_hash) % self.A[bucket]

    def get_path(self, key_hash: int) -> Tuple[int, Optional[int]]:
        """GETBUCKET returning ``(bucket, penultimate)``.

        ``penultimate`` is the last *removed* bucket visited (None when the
        initial bucket is already working) -- the quantity Algorithm 5's
        safety test inspects.
        """
        if self.N == 0:
            raise BackendError("lookup with no working buckets")
        A = self.A
        K = self.K
        b = key_hash % self.capacity
        penultimate: Optional[int] = None
        while A[b] > 0:  # b is removed
            penultimate = b
            h = self._jump(b, key_hash)
            while A[h] >= A[b]:  # W_b is a subset of W_h: keep following K
                h = K[h]
            b = h
        return b, penultimate

    def get(self, key_hash: int) -> int:
        return self.get_path(key_hash)[0]

    def get_path_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized GETBUCKET over a uint64 key array.

        Returns ``(buckets, penultimates)`` with ``penultimate == -1``
        standing in for the scalar path's ``None``.  The wandering loop
        runs jump-style: an *active* index set shrinks as keys reach
        working buckets, and the inner ``K``-chase is its own shrinking
        mask -- every arithmetic step is the uint64 twin of the scalar
        walk, so the result is bit-identical key for key.
        """
        if self.N == 0:
            raise BackendError("lookup with no working buckets")
        A = np.asarray(self.A, dtype=np.int64)
        K = np.asarray(self.K, dtype=np.int64)
        if self._mix is None:
            ids = np.arange(self.capacity, dtype=np.uint64) ^ np.uint64(_JUMP_SALT)
            self._mix = v_fmix64(ids)
        b = (keys % np.uint64(self.capacity)).astype(np.int64)
        penultimate = np.full(len(keys), -1, dtype=np.int64)
        active = np.flatnonzero(A[b] > 0)  # keys sitting on a removed bucket
        with np.errstate(over="ignore"):
            while active.size:
                ba = b[active]
                ab = A[ba]
                penultimate[active] = ba
                hashed = v_fmix64(self._mix[ba] * _SM_GAMMA + keys[active])
                h = (hashed % ab.astype(np.uint64)).astype(np.int64)
                chase = np.flatnonzero(A[h] >= ab)  # W_b ⊆ W_h: follow K
                while chase.size:
                    h[chase] = K[h[chase]]
                    chase = chase[A[h[chase]] >= ab[chase]]
                b[active] = h
                active = active[A[h] > 0]
        return b, penultimate

    # --------------------------------------------------------- mutation
    def add(self) -> int:
        """ADDBUCKET: restore the most recently removed bucket."""
        if not self.R:
            raise BackendError("anchor capacity exhausted: no removed buckets")
        b = self.R.pop()
        self.A[b] = 0
        self.L[self.W[self.N]] = self.N
        self.W[self.L[b]] = b
        self.K[b] = b
        self.N += 1
        return b

    def remove(self, b: int) -> None:
        """REMOVEBUCKET: push a working bucket onto the removal stack."""
        if self.A[b] != 0 or self.N == 0:
            raise BackendError(f"bucket {b} is not working")
        self.R.append(b)
        self.N -= 1
        self.A[b] = self.N
        self.W[self.L[b]] = self.W[self.N]
        self.L[self.W[self.N]] = self.L[b]
        self.K[b] = self.W[self.N]

    def is_working(self, b: int) -> bool:
        return self.A[b] == 0

    @property
    def removed_count(self) -> int:
        return len(self.R)


class AnchorHash(HorizonConsistentHash):
    """AnchorHash with JET horizon support (Algorithm 5)."""

    def __init__(
        self,
        working: Iterable[Name] = (),
        horizon: Iterable[Name] = (),
        capacity: Optional[int] = None,
    ):
        working = list(working)
        horizon = list(horizon)
        total = len(working) + len(horizon)
        if total == 0:
            total = 1
        if capacity is None:
            capacity = max(2 * total, 16)
        if capacity < total:
            raise BackendError("capacity smaller than initial working+horizon")
        if not working:
            raise BackendError("AnchorHash requires a non-empty initial working set")

        self._buckets = AnchorBuckets(capacity, len(working))
        self._bucket_of: Dict[Name, int] = {}
        self._name_of: Dict[int, Optional[Name]] = {}
        # Cached bucket -> name object array (the canonical backend
        # table).  Replaced -- never mutated -- whenever ownership
        # changes, so downstream translation caches can key on identity.
        self._names_table: Optional[np.ndarray] = None
        self._working_names: set = set()
        self._horizon_names: set = set()

        for i, name in enumerate(working):
            self._own(name, i)
            self._working_names.add(name)
        for name in horizon:
            self.add_horizon(name)

    # ---------------------------------------------------------- helpers
    def _own(self, name: Name, bucket: int) -> None:
        if name in self._bucket_of:
            raise BackendError(f"server {name!r} already present")
        self._bucket_of[name] = bucket
        self._name_of[bucket] = name
        self._names_table = None

    def _swap_owners(self, bucket_a: int, bucket_b: int) -> None:
        """Exchange the owners of two buckets (the A.5 indirection)."""
        if bucket_a == bucket_b:
            return
        name_a = self._name_of.get(bucket_a)
        name_b = self._name_of.get(bucket_b)
        self._name_of[bucket_a] = name_b
        self._name_of[bucket_b] = name_a
        self._names_table = None
        if name_a is not None:
            self._bucket_of[name_a] = bucket_b
        if name_b is not None:
            self._bucket_of[name_b] = bucket_a

    def _horizon_region_size(self) -> int:
        return len(self._horizon_names)

    # ------------------------------------------------------------- sets
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working_names)

    @property
    def horizon(self) -> FrozenSet[Name]:
        return frozenset(self._horizon_names)

    # ----------------------------------------------------------- lookup
    def lookup_with_safety(self, key_hash: int) -> Tuple[Name, bool]:
        key_hash &= MASK64
        bucket, penultimate = self._buckets.get_path(key_hash)
        name = self._name_of[bucket]
        if penultimate is None:
            return name, False
        # Horizon buckets are exactly the stack's top |H| entries, which
        # hold the consecutive A values N, ..., N + |H| - 1.
        unsafe = self._buckets.A[penultimate] < self._buckets.N + len(self._horizon_names)
        return name, unsafe

    def lookup_with_safety_batch(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized Algorithm 5: one :meth:`AnchorBuckets.get_path_batch`
        wandering pass plus a gather through the bucket->name table; the
        safety test is the same single ``A[penultimate]`` comparison,
        applied where a removed bucket was visited at all."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=object), np.zeros(0, dtype=bool)
        indices, unsafe = self.lookup_with_safety_batch_idx(keys)
        return self.backend_table()[indices], unsafe

    def lookup_with_safety_batch_idx(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All-integer Algorithm 5: the winning *bucket* is already the
        index into :meth:`backend_table` (buckets own at most one name),
        so the kernel is the wandering pass plus the safety compare with
        no name traffic at all."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=np.int32), np.zeros(0, dtype=bool)
        buckets, penultimate = self._buckets.get_path_batch(keys)
        unsafe = np.zeros(len(keys), dtype=bool)
        walked = penultimate >= 0
        if walked.any():
            A = np.asarray(self._buckets.A, dtype=np.int64)
            boundary = self._buckets.N + len(self._horizon_names)
            unsafe[walked] = A[penultimate[walked]] < boundary
        return buckets.astype(np.int32), unsafe

    def backend_table(self) -> np.ndarray:
        """Bucket -> owner-name object array (unowned buckets hold None)."""
        if self._names_table is None:
            table = np.empty(self._buckets.capacity, dtype=object)
            for bucket, name in self._name_of.items():
                table[bucket] = name
            self._names_table = table
        return self._names_table

    def lookup_union(self, key_hash: int) -> Name:
        """Destination once the whole horizon is admitted (canonical LIFO
        bucket order).  Computed by walking the GETBUCKET path and stopping
        at the first bucket inside ``W`` or the horizon region."""
        key_hash &= MASK64
        buckets = self._buckets
        boundary = buckets.N + len(self._horizon_names)
        b = key_hash % buckets.capacity
        while buckets.A[b] >= boundary:  # removed and not restorable
            h = buckets._jump(b, key_hash)
            while buckets.A[h] >= buckets.A[b]:
                h = buckets.K[h]
            b = h
        name = self._name_of.get(b)
        if name is None:
            raise BackendError("lookup_union reached an unowned bucket")
        return name

    # --------------------------------------------------------- mutation
    def add_working(self, name: Name) -> None:
        if name not in self._horizon_names:
            raise BackendError(f"server {name!r} is not in the horizon")
        top = self._buckets.R[-1]
        self._swap_owners(self._bucket_of[name], top)
        restored = self._buckets.add()
        assert restored == top
        self._horizon_names.discard(name)
        self._working_names.add(name)

    def remove_working(self, name: Name) -> None:
        if name not in self._working_names:
            raise BackendError(f"server {name!r} is not working")
        self._buckets.remove(self._bucket_of[name])
        self._working_names.discard(name)
        self._horizon_names.add(name)

    def add_horizon(self, name: Name) -> None:
        if name in self._bucket_of:
            raise BackendError(f"server {name!r} already present")
        stack = self._buckets.R
        region = len(self._horizon_names)
        if len(stack) < region + 1:
            raise BackendError("anchor capacity exhausted: grow `capacity`")
        # The bucket just below the horizon region becomes part of the
        # (now one larger) region and is handed to the new server.
        bucket = stack[-(region + 1)]
        previous_owner = self._name_of.get(bucket)
        if previous_owner is not None:
            # A dead identity (permanently removed) may still own it.
            del self._bucket_of[previous_owner]
        self._own(name, bucket)
        self._horizon_names.add(name)

    def remove_horizon(self, name: Name) -> None:
        if name not in self._horizon_names:
            raise BackendError(f"server {name!r} is not in the horizon")
        stack = self._buckets.R
        region = len(self._horizon_names)
        deepest = stack[-region]
        self._swap_owners(self._bucket_of[name], deepest)
        # `name` now owns the deepest region bucket, which falls out of the
        # region once |H| shrinks; drop the identity entirely.
        bucket = self._bucket_of.pop(name)
        self._name_of[bucket] = None
        self._names_table = None
        self._horizon_names.discard(name)

    def force_add_working(self, name: Name) -> None:
        """Unanticipated addition: pop the top bucket for ``name`` even
        though ``name`` never sat in the horizon.  The displaced horizon
        owner (if any) is re-seated on the bucket just below the region so
        the top-|H| invariant survives."""
        if name in self._bucket_of:
            raise BackendError(f"server {name!r} already present")
        stack = self._buckets.R
        if not stack:
            raise BackendError("anchor capacity exhausted: no removed buckets")
        top = stack[-1]
        displaced = self._name_of.get(top)
        if displaced is not None and displaced in self._horizon_names:
            region = len(self._horizon_names)
            if len(stack) < region + 1:
                raise BackendError("anchor capacity exhausted: grow `capacity`")
            replacement = stack[-(region + 1)]
            dead = self._name_of.get(replacement)
            if dead is not None:
                del self._bucket_of[dead]
            self._bucket_of[displaced] = replacement
            self._name_of[replacement] = displaced
            self._name_of[top] = None
            self._names_table = None
        elif displaced is not None:
            del self._bucket_of[displaced]
            self._name_of[top] = None
            self._names_table = None
        self._own(name, top)
        self._buckets.add()
        self._working_names.add(name)
