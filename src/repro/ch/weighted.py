"""Weighted consistent hashing -- heterogeneous backends.

Production pools mix server generations, so LBs weight their dispatching
(bigger machines take proportionally more connections).  This module adds
weights to two JET-compatible families:

- :class:`WeightedHRWHash` -- HRW with the classic logarithmic method
  (Thaler & Ravishankar): score(s, k) = -weight_s / ln(h(s,k)) where
  ``h`` maps to (0, 1).  The winner distribution is exactly proportional
  to the weights, and the JET safety test is the same single comparison
  against the horizon's best score (Algorithm 2 line 5 generalizes
  verbatim).

- :class:`WeightedRingHash` -- Ring with per-server virtual-node counts
  proportional to weight (the standard practice); inherits Algorithm 3's
  populate-with-horizon unchanged.

Both preserve Property 1 (scores/positions are order-independent), so
Theorem 4.4 applies and JET integration is sound; only the *tracking
probability* changes -- it becomes weight(H) / weight(W ∪ H), the natural
generalization of Theorem 4.2 (asserted empirically in the tests).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple, Union

from repro.ch.base import BackendError, HorizonConsistentHash, Name
from repro.ch.ring import RingHash
from repro.hashing.keyed import KeyedHasher
from repro.hashing.mix import MASK64

#: Accepted server specs: {"name": weight} mapping or iterable of names
#: (weight 1.0 each).
ServerSpec = Union[Mapping[Name, float], Iterable[Name]]


def _normalize(spec: ServerSpec) -> Dict[Name, float]:
    if isinstance(spec, Mapping):
        weights = dict(spec)
    else:
        weights = {name: 1.0 for name in spec}
    for name, weight in weights.items():
        if weight <= 0:
            raise BackendError(f"server {name!r} needs a positive weight")
    return weights


class _WeightedServer:
    """Precomputed per-server state for weighted rendezvous scoring."""

    __slots__ = ("name", "weight", "hasher")

    def __init__(self, name: Name, weight: float):
        self.name = name
        self.weight = weight
        self.hasher = KeyedHasher(name)

    def score(self, key_hash: int) -> float:
        # h in (0, 1]: shift by 1 so ln never sees 0; -w/ln(h) in (0, inf).
        h = (self.hasher.weight(key_hash) + 1) / (MASK64 + 2)
        return -self.weight / math.log(h)


class WeightedHRWHash(HorizonConsistentHash):
    """Weight-proportional rendezvous hashing with JET horizon support."""

    def __init__(self, working: ServerSpec = (), horizon: ServerSpec = ()):
        self._working: Dict[Name, _WeightedServer] = {}
        self._horizon: Dict[Name, _WeightedServer] = {}
        for name, weight in _normalize(working).items():
            self._admit(self._working, name, weight)
        for name, weight in _normalize(horizon).items():
            self._admit(self._horizon, name, weight)

    # ------------------------------------------------------------- sets
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working)

    @property
    def horizon(self) -> FrozenSet[Name]:
        return frozenset(self._horizon)

    def weight_of(self, name: Name) -> float:
        server = self._working.get(name) or self._horizon.get(name)
        if server is None:
            raise BackendError(f"server {name!r} is not present")
        return server.weight

    def _admit(self, side: Dict[Name, _WeightedServer], name: Name, weight: float) -> None:
        if name in self._working or name in self._horizon:
            raise BackendError(f"server {name!r} already present")
        side[name] = _WeightedServer(name, weight)

    # ----------------------------------------------------------- lookup
    def _best(self, servers, key_hash: int):
        best, best_score = None, -1.0
        for server in servers:
            score = server.score(key_hash)
            if score > best_score:
                best, best_score = server, score
        return best, best_score

    def lookup(self, key_hash: int) -> Name:
        best, _ = self._best(self._working.values(), key_hash)
        if best is None:
            raise BackendError("lookup on empty working set")
        return best.name

    def lookup_with_safety(self, key_hash: int) -> Tuple[Name, bool]:
        best, best_score = self._best(self._working.values(), key_hash)
        if best is None:
            raise BackendError("lookup on empty working set")
        unsafe = any(
            server.score(key_hash) > best_score for server in self._horizon.values()
        )
        return best.name, unsafe

    def lookup_union(self, key_hash: int) -> Name:
        candidates = list(self._working.values()) + list(self._horizon.values())
        best, _ = self._best(candidates, key_hash)
        if best is None:
            raise BackendError("lookup on empty server set")
        return best.name

    # --------------------------------------------------------- mutation
    def add_working(self, name: Name) -> None:
        server = self._horizon.pop(name, None)
        if server is None:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._working[name] = server

    def remove_working(self, name: Name) -> None:
        server = self._working.pop(name, None)
        if server is None:
            raise BackendError(f"server {name!r} is not working")
        self._horizon[name] = server

    def add_horizon(self, name: Name, weight: float = 1.0) -> None:
        self._admit(self._horizon, name, weight)

    def remove_horizon(self, name: Name) -> None:
        if self._horizon.pop(name, None) is None:
            raise BackendError(f"server {name!r} is not in the horizon")


class WeightedRingHash(RingHash):
    """Ring hashing with weight-proportional virtual-node counts.

    ``base_virtual_nodes`` vnodes correspond to weight 1.0; a weight-3
    server gets three times as many ring positions.
    """

    def __init__(
        self,
        working: ServerSpec = (),
        horizon: ServerSpec = (),
        base_virtual_nodes: int = 100,
    ):
        self._weights = _normalize(working)
        self._weights.update(_normalize(horizon))
        self.base_virtual_nodes = base_virtual_nodes
        super().__init__(
            working=list(_normalize(working)),
            horizon=list(_normalize(horizon)),
            virtual_nodes=base_virtual_nodes,
        )

    def _vnodes_for(self, name: Name) -> int:
        weight = self._weights.get(name, 1.0)
        return max(1, round(self.base_virtual_nodes * weight))

    def _placement(self, name: Name):
        from repro.ch.ring import _vnode_positions

        return _vnode_positions(name, self._vnodes_for(name))

    def weight_of(self, name: Name) -> float:
        if name not in self._working and name not in self._horizon:
            raise BackendError(f"server {name!r} is not present")
        return self._weights.get(name, 1.0)

    def add_horizon(self, name: Name, weight: float = 1.0) -> None:
        if weight <= 0:
            raise BackendError(f"server {name!r} needs a positive weight")
        self._weights[name] = weight
        super().add_horizon(name)
