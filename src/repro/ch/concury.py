"""Concury-style consistent hash: an Othello perfect mapping over flowsets.

Concury (arXiv 1908.01889) removes per-connection dataplane state by the
opposite move to JET: instead of tracking the connections a backend change
would break, it *freezes the mapping itself*.  Packets hash into one of
``S`` fixed **flowsets**; an :class:`~repro.hashing.othello.Othello`
structure stores ``flowset -> backend`` so the per-packet dataplane is

    s = splitmix64(key ^ salt) & (S-1)        # flowset id
    backend = A[h_a(s)] ^ B[h_b(s)]           # Othello probe

-- O(1), branch-free, and sized by ``S`` alone: dataplane memory is
independent of how many connections exist.  All mutation happens in the
control plane: a membership change recomputes the flowset assignment with
an *inner* consistent hash (so new-flow placement stays CH-driven and
churn behaviour is comparable to JET), patches a clone of the Othello map
with incremental per-flowset updates, and flips the clone in atomically.

The trade-off this family exists to measure (Cohen et al., arXiv
2010.13385): connection consistency only holds at *flowset* granularity.
When a backend change moves a flowset, every live connection in it breaks
-- there is no CT to pin the old ones.  The ``unsafe`` bit of
:meth:`lookup_with_safety` reports exactly that horizon-instability at
flowset granularity, so JET composed over this family tracks per-flowset
rather than per-connection state.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.ch.base import (
    BackendError,
    HorizonConsistentHash,
    Name,
    has_index_kernel,
)
from repro.ch.anchor import AnchorHash
from repro.ch.hrw import HRWHash
from repro.ch.jump import JumpHash
from repro.ch.modulo import ModuloHash
from repro.ch.ring import RingHash
from repro.ch.ring_incremental import IncrementalRingHash
from repro.ch.table_hrw import TableHRWHash
from repro.hashing.mix import MASK64, splitmix64
from repro.hashing.othello import Othello
from repro.hashing.vector import v_splitmix64

__all__ = ["ConcuryHash"]

#: Inner CH families the control plane may drive flowset placement with.
#: Maglev is excluded (no horizon, so no safety answer to delegate).
_INNER_FAMILIES = {
    "hrw": HRWHash,
    "ring": RingHash,
    "ring-incremental": IncrementalRingHash,
    "table": TableHRWHash,
    "anchor": AnchorHash,
    "jump": JumpHash,
    "modulo": ModuloHash,
}

#: Flowsets per (working + horizon) server when ``flowsets`` is left to
#: default.  Concury sizes S for load-balance granularity, not per
#: connection; 32 keeps the max/min backend load spread tight while the
#: Othello arrays stay a few KiB.
_FLOWSETS_PER_SERVER = 32
_MIN_FLOWSETS = 1024

_SALT_CONST = 0xC0C0_12D1_5EED_0001


def _pow2_at_least(n: int) -> int:
    size = 1
    while size < n:
        size <<= 1
    return size


class ConcuryHash(HorizonConsistentHash):
    """Flowset-granular CH with an O(1) Othello dataplane.

    ``inner`` names the control-plane CH family that decides where each
    flowset lives (and answers horizon safety); extra kwargs reach its
    constructor.  ``flowsets`` must be a power of two and is fixed for
    the lifetime of the instance -- Concury's key universe never changes,
    only the stored values do.
    """

    def __init__(
        self,
        working: Sequence[Name] = (),
        horizon: Sequence[Name] = (),
        inner: str = "table",
        flowsets: int = None,
        seed: int = 0,
        **inner_kwargs,
    ):
        cls = _INNER_FAMILIES.get(inner)
        if cls is None:
            raise BackendError(
                f"unknown Concury inner family {inner!r}; choose from "
                f"{sorted(_INNER_FAMILIES)}"
            )
        self.inner_family = inner
        self._inner = cls(working=working, horizon=horizon, **inner_kwargs)
        n_servers = len(self._inner.working) + len(self._inner.horizon)
        if flowsets is None:
            flowsets = _pow2_at_least(
                max(_MIN_FLOWSETS, _FLOWSETS_PER_SERVER * max(1, n_servers))
            )
        if flowsets < 1 or flowsets & (flowsets - 1):
            raise BackendError("flowsets must be a power of two")
        self.flowsets = flowsets
        self.seed = seed
        # Packet -> flowset salt, and per-flowset pseudo-keys for the
        # inner CH (splitmix64 is a bijection, so they are distinct).
        self._salt = splitmix64(seed ^ _SALT_CONST)
        self._salt64 = np.uint64(self._salt)
        self._smask = np.uint64(flowsets - 1)
        self._fs_keys = v_splitmix64(
            np.arange(flowsets, dtype=np.uint64) ^ np.uint64(self._salt)
        )
        # Append-only backend slot space: Othello values index into it.
        # Retired names keep their slot (no lookup resolves there), so
        # patched clones never renumber surviving flowsets.
        self._slots: List[Name] = []
        self._slot_index: Dict[Name, int] = {}
        for name in list(working) + list(horizon):
            self._ensure_slot(name)
        self._map: Othello = None
        self._fs_vals: np.ndarray = None
        self._unsafe_fs = np.zeros(flowsets, dtype=bool)
        self._slots_table = None
        self._empty = not self._inner.working
        # Control-plane update-cost accounting for the showdown.
        self.rebuilds = 0
        self.patches = 0
        self.last_refresh_changed = 0
        self.last_refresh_touched = 0
        self.total_changed = 0
        self.total_touched = 0
        self._refresh()

    # ------------------------------------------------------------- sets
    @property
    def working(self) -> FrozenSet[Name]:
        return self._inner.working

    @property
    def horizon(self) -> FrozenSet[Name]:
        return self._inner.horizon

    # ------------------------------------------------------ control plane
    def _ensure_slot(self, name: Name) -> None:
        if name not in self._slot_index:
            self._slot_index[name] = len(self._slots)
            self._slots.append(name)

    def _flowset_values(self) -> Tuple[np.ndarray, np.ndarray]:
        """(slot id, unsafe) per flowset, from the inner CH."""
        if has_index_kernel(self._inner):
            idx, unsafe = self._inner.lookup_with_safety_batch_idx(self._fs_keys)
            inner_table = self._inner.backend_table()
            # Inner table positions renumber under churn; translate them
            # into the stable slot space once per refresh.  ``None``
            # entries (retired inner slots) are unreachable by contract.
            trans = np.fromiter(
                (self._slot_index.get(name, 0) for name in inner_table.tolist()),
                dtype=np.int64,
                count=len(inner_table),
            )
            return trans[idx], unsafe
        names, unsafe = self._inner.lookup_with_safety_batch(self._fs_keys)
        vals = np.fromiter(
            (self._slot_index[name] for name in names.tolist()),
            dtype=np.int64,
            count=len(names),
        )
        return vals, unsafe

    def _refresh(self) -> None:
        """Recompute flowset placement and publish a new map version.

        The new Othello version is patched *aside* (clone + incremental
        updates) and flipped in with one reference assignment, so a
        concurrent dataplane reader only ever sees a consistent map.
        Full rebuild happens on first use and when more than half the
        flowsets moved -- at that point per-flowset patching costs more
        than one bulk construction.
        """
        self._slots_table = None
        if not self._inner.working:
            self._empty = True
            return
        self._empty = False
        new_vals, unsafe = self._flowset_values()
        self._unsafe_fs = np.asarray(unsafe, dtype=bool)
        old_vals = self._fs_vals
        if old_vals is None:
            changed = None
        else:
            changed = np.nonzero(old_vals != new_vals)[0]
            if not len(changed):
                return
        self.last_refresh_touched = 0
        if changed is None or len(changed) > self.flowsets // 2:
            self._map = Othello(
                range(self.flowsets), new_vals.tolist(), seed=self.seed
            )
            self.rebuilds += 1
            self.last_refresh_changed = int(
                self.flowsets if changed is None else len(changed)
            )
        else:
            patched = self._map.clone()
            touched = 0
            for s in changed.tolist():
                touched += patched.update(s, int(new_vals[s]))
            self._map = patched
            self.patches += 1
            self.last_refresh_changed = len(changed)
            self.last_refresh_touched = touched
            self.total_touched += touched
        self.total_changed += self.last_refresh_changed
        self._fs_vals = new_vals

    # ----------------------------------------------------------- lookup
    def flowset_of(self, key_hash: int) -> int:
        """The flowset a pre-hashed key belongs to (dataplane step 1)."""
        return splitmix64((key_hash ^ self._salt) & MASK64) & (self.flowsets - 1)

    def lookup_with_safety(self, key_hash: int) -> Tuple[Name, bool]:
        if self._empty:
            raise BackendError("lookup on empty working set")
        s = self.flowset_of(key_hash)
        return self._slots[self._map.lookup(s)], bool(self._unsafe_fs[s])

    def lookup_with_safety_batch(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized name path: index kernel plus one table gather."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=object), np.zeros(0, dtype=bool)
        indices, unsafe = self.lookup_with_safety_batch_idx(keys)
        return self.backend_table()[indices], unsafe

    def lookup_with_safety_batch_idx(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The branch-free columnar dataplane: splitmix64 + mask to the
        flowset, two Othello gathers + XOR to the slot, one gather for
        the safety bit.  No per-connection state anywhere."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=np.int32), np.zeros(0, dtype=bool)
        if self._empty:
            raise BackendError("lookup on empty working set")
        s = v_splitmix64(keys ^ self._salt64) & self._smask
        slots = self._map.lookup_batch(s)
        fs = s.astype(np.int64)
        return slots.astype(np.int32), self._unsafe_fs[fs]

    def backend_table(self) -> np.ndarray:
        """The slot space itself: Othello values index straight into it."""
        if self._slots_table is None:
            table = np.empty(len(self._slots), dtype=object)
            table[:] = self._slots
            self._slots_table = table
        return self._slots_table

    def lookup_union(self, key_hash: int) -> Name:
        """``CH(W ∪ H)`` at flowset granularity, via the inner CH."""
        return self._inner.lookup_union(
            int(self._fs_keys[self.flowset_of(key_hash)])
        )

    # --------------------------------------------------------- mutation
    def add_working(self, name: Name) -> None:
        self._inner.add_working(name)
        self._ensure_slot(name)
        self._refresh()

    def remove_working(self, name: Name) -> None:
        self._inner.remove_working(name)
        self._refresh()

    def add_horizon(self, name: Name) -> None:
        self._inner.add_horizon(name)
        self._ensure_slot(name)
        self._refresh()

    def remove_horizon(self, name: Name) -> None:
        self._inner.remove_horizon(name)
        self._refresh()

    def force_add_working(self, name: Name) -> None:
        self._inner.force_add_working(name)
        self._ensure_slot(name)
        self._refresh()

    # ------------------------------------------------------------- state
    @property
    def memory_bytes(self) -> int:
        """Dataplane footprint: Othello arrays + the per-flowset safety
        bits.  A function of ``S`` only -- never of connection count."""
        if self._map is None:
            return self._unsafe_fs.nbytes
        return self._map.memory_bytes + self._unsafe_fs.nbytes

    @property
    def map_attempts(self) -> int:
        """Build attempts the current Othello version burned."""
        return 0 if self._map is None else self._map.attempts
